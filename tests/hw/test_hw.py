"""Tests for the hardware substrate: CPU rings, machine spec, TSC."""

import pytest

from repro.errors import SimulationError
from repro.hw.cpu import CPU, CPUFeatureFlags, Ring
from repro.hw.machine import (
    MACHINES,
    Machine,
    MODERN_WORKSTATION,
    OPENBSD36_PIII,
    PAGE_SIZE,
    make_modern_machine,
    make_paper_machine,
)
from repro.hw.tsc import TimestampCounter
from repro.sim import costs


class TestRings:
    def test_four_levels_exist(self):
        """The paper's background: the 386 defined four privilege rings."""
        assert [r.value for r in Ring] == [0, 1, 2, 3]

    def test_kernel_more_privileged_than_user(self):
        assert Ring.KERNEL.more_privileged_than(Ring.USER)
        assert not Ring.USER.more_privileged_than(Ring.KERNEL)

    def test_access_rules(self):
        assert Ring.KERNEL.may_access(Ring.USER)
        assert Ring.KERNEL.may_access(Ring.KERNEL)
        assert not Ring.USER.may_access(Ring.KERNEL)
        assert not Ring.SERVICE.may_access(Ring.DRIVER)


class TestCPU:
    def test_defaults_match_figure7(self):
        cpu = CPU()
        assert cpu.mhz == pytest.approx(599.0)
        assert cpu.l2_cache_kb == 512
        assert cpu.ring is Ring.USER

    def test_feature_flags(self):
        flags = CPUFeatureFlags()
        assert flags.has("TSC")
        assert flags.has("sse")
        assert not flags.has("AVX")
        assert "SEP" in flags.as_string()

    def test_ring_transitions(self):
        cpu = CPU()
        previous = cpu.enter_ring(Ring.KERNEL)
        assert previous is Ring.USER
        assert cpu.ring is Ring.KERNEL
        cpu.require_ring(Ring.KERNEL)
        cpu.enter_ring(previous)
        with pytest.raises(SimulationError):
            cpu.require_ring(Ring.KERNEL)

    def test_identity_line_mentions_model_and_mhz(self):
        line = CPU().identity_line()
        assert "Pentium III" in line and "599" in line


class TestMachineSpec:
    def test_paper_machine_fields(self):
        assert OPENBSD36_PIII.mhz == pytest.approx(599.0)
        assert OPENBSD36_PIII.hz == 100
        assert OPENBSD36_PIII.real_mem_bytes == 536_440_832
        assert OPENBSD36_PIII.l2_cache_kb == 512
        assert "OpenBSD 3.6" in OPENBSD36_PIII.os_version

    def test_dmesg_contains_figure7_lines(self):
        text = "\n".join(OPENBSD36_PIII.dmesg())
        assert "OpenBSD 3.6" in text
        assert "Pentium III" in text
        assert "CLOCK_TICK_PER_SECOND is 100" in text
        assert "IBM-DPTA-372730" in text

    def test_physical_pages(self):
        assert OPENBSD36_PIII.num_physical_pages == OPENBSD36_PIII.real_mem_bytes // PAGE_SIZE

    def test_registry_contains_both_machines(self):
        assert OPENBSD36_PIII.name in MACHINES
        assert MODERN_WORKSTATION.name in MACHINES


class TestMachineInstance:
    def test_machine_wires_clock_meter_trace(self):
        machine = make_paper_machine()
        machine.charge(costs.TRAP_ENTRY)
        assert machine.clock.cycles == machine.spec.profile.cost(costs.TRAP_ENTRY)
        assert machine.meter.count(costs.TRAP_ENTRY) == 1
        assert machine.page_size == PAGE_SIZE

    def test_trace_disabled_by_default(self):
        machine = make_paper_machine()
        assert machine.trace.emit("c", "x") is None
        traced = make_paper_machine(trace_enabled=True)
        assert traced.trace.emit("c", "x") is not None

    def test_charge_words(self):
        machine = make_paper_machine()
        machine.charge_words(costs.COPY_WORD, 8)
        assert machine.meter.count(costs.COPY_WORD) == 8

    def test_idle_passthrough(self):
        machine = make_paper_machine()
        machine.idle(250)
        assert machine.clock.cycles == 250
        assert machine.clock.events == 1
        assert machine.meter.snapshot() == {}

    def test_modern_machine_uses_its_own_profile(self):
        machine = make_modern_machine()
        assert machine.spec.profile.mhz == pytest.approx(3000.0)

    def test_microseconds_passthrough(self):
        machine = make_paper_machine()
        machine.clock.advance(599)
        assert machine.microseconds() == pytest.approx(1.0)


class TestTSC:
    def test_read_and_elapsed(self):
        machine = make_paper_machine()
        tsc = TimestampCounter(machine.clock, machine.spec.mhz)
        start = tsc.read()
        machine.clock.advance(1198)
        assert tsc.elapsed_cycles(start) == 1198
        assert tsc.elapsed_microseconds(start) == pytest.approx(2.0)

    def test_conversions_roundtrip(self):
        tsc = TimestampCounter(clock=Machine().clock, mhz=599.0)
        assert tsc.microseconds_to_cycles(tsc.cycles_to_microseconds(599)) == 599
