"""Tests for XDR marshalling and the RPC message formats."""

import pytest

from repro.errors import SimulationError
from repro.hw.machine import make_paper_machine
from repro.rpc.message import (
    AcceptStat,
    AuthFlavor,
    CallMessage,
    OpaqueAuth,
    ReplyMessage,
    ReplyStat,
)
from repro.rpc.xdr import XdrDecoder, XdrEncoder
from repro.sim import costs


class TestXdr:
    def test_uint_roundtrip_and_alignment(self):
        encoder = XdrEncoder()
        encoder.put_uint(7).put_uint(0xFFFFFFFF)
        data = encoder.getvalue()
        assert len(data) == 8
        decoder = XdrDecoder(data)
        assert decoder.get_uint() == 7
        assert decoder.get_uint() == 0xFFFFFFFF
        assert decoder.done()

    def test_int_negative_roundtrip(self):
        data = XdrEncoder().put_int(-12345).getvalue()
        assert XdrDecoder(data).get_int() == -12345

    def test_int_range_checked(self):
        with pytest.raises(SimulationError):
            XdrEncoder().put_uint(-1)
        with pytest.raises(SimulationError):
            XdrEncoder().put_int(2**40)

    def test_hyper_and_bool(self):
        data = XdrEncoder().put_hyper(-2**40).put_bool(True).put_bool(False).getvalue()
        decoder = XdrDecoder(data)
        assert decoder.get_hyper() == -2**40
        assert decoder.get_bool() is True
        assert decoder.get_bool() is False

    def test_opaque_padding(self):
        data = XdrEncoder().put_opaque(b"abcde").getvalue()
        assert len(data) == 4 + 8            # length word + padded payload
        assert XdrDecoder(data).get_opaque() == b"abcde"

    def test_string_roundtrip(self):
        data = XdrEncoder().put_string("hello xdr").getvalue()
        assert XdrDecoder(data).get_string() == "hello xdr"

    def test_int_array_roundtrip(self):
        values = [1, -2, 3, -4, 5]
        data = XdrEncoder().put_int_array(values).getvalue()
        assert XdrDecoder(data).get_int_array() == values

    def test_decode_past_end_rejected(self):
        decoder = XdrDecoder(b"\x00\x00")
        with pytest.raises(SimulationError):
            decoder.get_uint()

    def test_items_charged_to_machine(self):
        machine = make_paper_machine()
        encoder = XdrEncoder(machine)
        encoder.put_uint(1).put_string("abcd")
        assert machine.meter.count(costs.XDR_ITEM) == encoder.items_encoded
        assert encoder.items_encoded >= 3


class TestRpcMessages:
    def test_call_roundtrip(self):
        call = CallMessage(xid=0xABCD, prog=0x20000101, vers=1, proc=1,
                           args=[41], cred=OpaqueAuth(AuthFlavor.AUTH_SYS, b"u"))
        decoded = CallMessage.decode(call.encode())
        assert decoded.xid == call.xid
        assert decoded.prog == call.prog
        assert decoded.proc == 1
        assert decoded.args == [41]
        assert decoded.cred.flavor is AuthFlavor.AUTH_SYS

    def test_reply_success_roundtrip(self):
        reply = ReplyMessage(xid=7, result=42)
        decoded = ReplyMessage.decode(reply.encode())
        assert decoded.xid == 7
        assert decoded.accept_stat is AcceptStat.SUCCESS
        assert decoded.result == 42

    def test_reply_error_roundtrip(self):
        reply = ReplyMessage(xid=7, accept_stat=AcceptStat.PROC_UNAVAIL)
        decoded = ReplyMessage.decode(reply.encode())
        assert decoded.accept_stat is AcceptStat.PROC_UNAVAIL
        assert decoded.result is None

    def test_denied_reply(self):
        reply = ReplyMessage(xid=9, reply_stat=ReplyStat.MSG_DENIED)
        decoded = ReplyMessage.decode(reply.encode())
        assert decoded.reply_stat is ReplyStat.MSG_DENIED

    def test_wrong_message_type_rejected(self):
        call = CallMessage(xid=1, prog=2, vers=3, proc=4)
        with pytest.raises(SimulationError):
            ReplyMessage.decode(call.encode())
        reply = ReplyMessage(xid=1)
        with pytest.raises(SimulationError):
            CallMessage.decode(reply.encode())

    def test_header_items_charged(self):
        machine = make_paper_machine()
        CallMessage(xid=1, prog=2, vers=3, proc=4, args=[1]).encode(machine)
        # xid, msgtype, rpcvers, prog, vers, proc, cred(2+), verf(2+), len, arg
        assert machine.meter.count(costs.XDR_ITEM) >= 12
