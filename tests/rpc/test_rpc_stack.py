"""Tests for the loopback transport, portmapper, server, client and rpcgen."""

import pytest

from repro.errors import SimulationError
from repro.kernel.cred import unprivileged
from repro.kernel.errno import Errno
from repro.kernel.kernel import make_booted_kernel
from repro.kernel.proc import ProcState
from repro.rpc.client import RpcError
from repro.rpc.portmap import Portmapper
from repro.rpc.rpcgen import InterfaceDefinition, generate_service
from repro.rpc.rpcgen import testincr_interface as make_testincr_interface
from repro.rpc.transport import install_network
from repro.sim import costs


@pytest.fixture
def kernel():
    return make_booted_kernel()


@pytest.fixture
def service(kernel):
    return generate_service(kernel, make_testincr_interface())


@pytest.fixture
def client(kernel, service):
    proc = kernel.create_process("rpc-client", cred=unprivileged(1000))
    return service.make_client(kernel, proc)


class TestPortmapper:
    def test_set_getport_unset(self):
        portmap = Portmapper()
        portmap.set(100003, 3, 2049)
        assert portmap.getport(100003, 3) == 2049
        assert portmap.getport(100003, 4) is None
        assert portmap.unset(100003, 3)
        assert not portmap.unset(100003, 3)
        assert portmap.lookups == 2

    def test_duplicate_registration_rejected(self):
        portmap = Portmapper()
        portmap.set(1, 1, 1000)
        with pytest.raises(SimulationError):
            portmap.set(1, 1, 2000)

    def test_invalid_port_rejected(self):
        with pytest.raises(SimulationError):
            Portmapper().set(1, 1, 0)

    def test_dump(self):
        portmap = Portmapper()
        portmap.set(2, 1, 111)
        portmap.set(1, 1, 222)
        assert [e.prog for e in portmap.dump()] == [1, 2]
        assert len(portmap) == 2


class TestTransport:
    def test_socket_bind_send_recv(self, kernel):
        network = install_network(kernel)
        sender = kernel.create_process("sender", cred=unprivileged(1000))
        receiver = kernel.create_process("receiver", cred=unprivileged(1000))
        sfd = kernel.syscall(sender, "socket").unwrap()
        rfd = kernel.syscall(receiver, "socket").unwrap()
        kernel.syscall(receiver, "bind", rfd, 5000).unwrap()
        assert kernel.syscall(sender, "sendto", sfd, b"ping", 5000).ok
        datagram = kernel.syscall(receiver, "recvfrom", rfd).unwrap()
        assert datagram.payload == b"ping"
        assert network.datagrams_sent == 1

    def test_install_network_idempotent(self, kernel):
        assert install_network(kernel) is install_network(kernel)

    def test_send_to_unbound_port_fails(self, kernel):
        install_network(kernel)
        sender = kernel.create_process("sender", cred=unprivileged(1000))
        sfd = kernel.syscall(sender, "socket").unwrap()
        result = kernel.syscall(sender, "sendto", sfd, b"x", 9999)
        assert result.errno is Errno.ENOENT
        assert kernel.network.datagrams_dropped == 1

    def test_recv_empty_blocks_process(self, kernel):
        install_network(kernel)
        receiver = kernel.create_process("receiver", cred=unprivileged(1000))
        rfd = kernel.syscall(receiver, "socket").unwrap()
        result = kernel.syscall(receiver, "recvfrom", rfd)
        assert result.errno is Errno.EAGAIN
        assert receiver.state is ProcState.SLEEPING

    def test_foreign_socket_rejected(self, kernel):
        install_network(kernel)
        owner = kernel.create_process("owner", cred=unprivileged(1000))
        thief = kernel.create_process("thief", cred=unprivileged(1000))
        fd = kernel.syscall(owner, "socket").unwrap()
        assert kernel.syscall(thief, "sendto", fd, b"x", 1).errno is Errno.EINVAL

    def test_bind_conflict(self, kernel):
        install_network(kernel)
        a = kernel.create_process("a", cred=unprivileged(1000))
        b = kernel.create_process("b", cred=unprivileged(1000))
        fda = kernel.syscall(a, "socket").unwrap()
        fdb = kernel.syscall(b, "socket").unwrap()
        assert kernel.syscall(a, "bind", fda, 7000).ok
        assert kernel.syscall(b, "bind", fdb, 7000).errno is Errno.EBUSY


class TestRpcService:
    def test_testincr_call(self, client):
        assert client.test_incr(41) == 42
        assert client.call("test_add", 2, 3) == 5
        assert client.rpc.stats.calls == 2

    def test_nullproc(self, client):
        assert client.rpc.null_call() == 0

    def test_unknown_procedure_name(self, client):
        with pytest.raises(SimulationError):
            client.call("does_not_exist")

    def test_unknown_procedure_number_rejected_by_server(self, client):
        with pytest.raises(RpcError):
            client.rpc.clnt_call(99, [1])
        assert client.rpc.server.garbage_calls == 1

    def test_server_handler_exception_becomes_system_err(self, kernel):
        interface = InterfaceDefinition(name="broken", prog=0x20000999, vers=1)
        interface.add_procedure(1, "explode",
                                lambda args: (_ for _ in ()).throw(ValueError()))
        service = generate_service(kernel, interface, port=3000)
        proc = kernel.create_process("c", cred=unprivileged(1000))
        client = service.make_client(kernel, proc)
        with pytest.raises(RpcError):
            client.call("explode", 1)

    def test_per_call_costs_include_network_paths(self, kernel, client):
        before_send = kernel.machine.meter.count(costs.UDP_SEND_PATH)
        before_recv = kernel.machine.meter.count(costs.UDP_RECV_PATH)
        client.test_incr(1)
        assert kernel.machine.meter.count(costs.UDP_SEND_PATH) == before_send + 2
        assert kernel.machine.meter.count(costs.UDP_RECV_PATH) == before_recv + 2

    def test_rpc_latency_matches_paper(self, kernel, client):
        client.test_incr(0)
        mark = kernel.machine.clock.checkpoint()
        client.test_incr(1)
        us = kernel.machine.clock.since(mark).microseconds(kernel.machine.spec.mhz)
        assert us == pytest.approx(63.23, rel=0.05)

    def test_rpc_is_roughly_ten_times_smod(self, kernel, client):
        """The paper's headline comparison, at the single-call level."""
        from repro.secmodule.api import SecModuleSystem
        client.test_incr(0)
        mark = kernel.machine.clock.checkpoint()
        client.test_incr(1)
        rpc_us = kernel.machine.clock.since(mark).microseconds(kernel.machine.spec.mhz)
        system = SecModuleSystem.create(seed=55)
        system.call("test_incr", 0)
        mark = system.machine.clock.checkpoint()
        system.call("test_incr", 1)
        smod_us = system.machine.clock.since(mark).microseconds(system.machine.spec.mhz)
        assert 5 < rpc_us / smod_us < 20

    def test_interface_definition_text(self):
        text = make_testincr_interface().definition_text()
        assert "TEST_INCR" in text and "program TESTINCR" in text

    def test_duplicate_procedure_number_rejected(self):
        interface = make_testincr_interface()
        with pytest.raises(SimulationError):
            interface.add_procedure(1, "again", lambda args: 0)
        with pytest.raises(SimulationError):
            interface.add_procedure(0, "null", lambda args: 0)

    def test_two_programs_on_distinct_ports(self, kernel, service):
        other = InterfaceDefinition(name="other", prog=0x20000555, vers=1)
        other.add_procedure(1, "echo", lambda args: args[0] if args else 0)
        other_service = generate_service(kernel, other, port=4000,
                                         portmap=service.portmap)
        proc = kernel.create_process("c2", cred=unprivileged(1000))
        client_a = service.make_client(kernel, proc)
        client_b = other_service.make_client(kernel, proc)
        assert client_a.test_incr(1) == 2
        assert client_b.echo(7) == 7
