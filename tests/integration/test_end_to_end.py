"""Integration tests: whole-system flows across every layer."""


from repro.kernel.errno import Errno
from repro.kernel.proc import ProcFlag
from repro.kernel.ptrace import PtraceRequest
from repro.kernel.signals import Signal
from repro.secmodule.api import SecModuleSystem
from repro.secmodule.module import SecModuleDefinition
from repro.secmodule.policy import CallQuotaPolicy
from repro.secmodule.protection import ProtectionMode, handle_plaintext_view
from repro.sim import costs


class TestFullSystemBringUp:
    def test_create_registers_modules_and_establishes_session(self):
        system = SecModuleSystem.create(seed=60)
        assert system.report.registered_modules == ["libc", "libtest"]
        assert system.report.session_id == 1
        assert system.report.stub_count == len(system.libc_pack.definition)
        assert system.session.established
        assert "SecModule system" in system.describe()

    def test_quickstart_flow(self):
        system = SecModuleSystem.create(seed=61)
        assert system.call("test_incr", 41) == 42
        address = system.call("malloc", 64)
        system.client.write_memory(address, b"end-to-end")
        assert system.handle_proc.vmspace.read(address, 10) == b"end-to-end"
        assert system.call("getpid") == system.native_getpid()
        assert system.elapsed_microseconds() > 0
        assert costs.CONTEXT_SWITCH in system.operation_counts()

    def test_custom_module_alongside_builtin_ones(self):
        billing = SecModuleDefinition("libbilling", 1,
                                      policy=CallQuotaPolicy(max_calls=3))
        billing.add_function("charge", lambda env, cents: cents * 2,
                             doc="double the amount, as a stand-in for work")
        system = SecModuleSystem.create(extra_modules=[billing], seed=62)
        assert system.call("charge", 50) == 100
        assert system.call("charge", 10) == 20
        assert system.call("charge", 10) == 20
        denied = system.call_outcome("charge", 10)
        assert denied.errno is Errno.EACCES
        # other modules in the same session are unaffected by that quota
        assert system.call("test_incr", 1) == 2

    def test_teardown_then_no_more_calls(self):
        system = SecModuleSystem.create(seed=63)
        system.teardown()
        assert not system.handle_proc.alive
        outcome = system.call_outcome("test_incr", 1)
        assert not outcome.ok

    def test_two_independent_systems_do_not_interfere(self):
        a = SecModuleSystem.create(seed=64)
        b = SecModuleSystem.create(seed=65)
        assert a.call("test_incr", 1) == 2
        assert b.call("test_incr", 10) == 11
        assert a.kernel is not b.kernel
        assert a.session.session_id == b.session.session_id == 1


class TestSecurityProperties:
    """The paper's three questions, asked of the running system."""

    def test_client_never_holds_plaintext_module_text(self):
        system = SecModuleSystem.create(protection=ProtectionMode.ENCRYPT, seed=70)
        module = system.session.module_by_name("libtest")
        plaintext = handle_plaintext_view(module)
        for entry in system.client_proc.vmspace.vm_map:
            if entry.uobj is None or entry.name == "client:.text":
                continue
            assert plaintext[:32] not in bytes(entry.uobj.data)

    def test_handle_cannot_be_ptraced_or_dump_core(self):
        system = SecModuleSystem.create(seed=71)
        handle = system.handle_proc
        result = system.kernel.syscall(system.client_proc, "ptrace",
                                       PtraceRequest.ATTACH, handle.pid)
        assert result.errno is Errno.EPERM
        assert system.kernel.coredump.dump(handle) is None

    def test_signals_to_handle_land_on_client(self):
        system = SecModuleSystem.create(seed=72)
        target = system.kernel.signals.post(system.handle_proc, Signal.SIGUSR1)
        assert target is system.client_proc

    def test_handle_flags_always_present_for_all_sessions(self):
        system = SecModuleSystem.create(seed=74)
        forked = system.fork_client()
        for handle in (system.handle_proc, forked.handle_proc):
            assert handle.has_flag(ProcFlag.SMOD_HANDLE)
            assert handle.has_flag(ProcFlag.NOCORE)
            assert handle.has_flag(ProcFlag.NOTRACE)

    def test_calls_per_module_accounted_separately(self):
        system = SecModuleSystem.create(seed=75)
        system.call("test_incr", 1)
        system.call("test_incr", 2)
        system.call("malloc", 16)
        per_module = system.session.calls_per_module
        libtest = system.session.module_by_name("libtest")
        libc = system.session.module_by_name("libc")
        assert per_module[libtest.m_id] == 2
        assert per_module[libc.m_id] == 1


class TestLatencyShapeEndToEnd:
    """Single-call latencies carry the Figure 8 shape end to end."""

    def test_ordering_native_smod_rpc(self):
        from repro.kernel.cred import unprivileged
        from repro.kernel.kernel import make_booted_kernel
        from repro.rpc.rpcgen import generate_service
        from repro.rpc.rpcgen import testincr_interface as make_iface

        system = SecModuleSystem.create(seed=80)
        system.native_getpid()
        mark = system.machine.clock.checkpoint()
        system.native_getpid()
        native = system.machine.clock.since(mark).cycles

        system.call("test_incr", 0)
        mark = system.machine.clock.checkpoint()
        system.call("test_incr", 1)
        smod = system.machine.clock.since(mark).cycles

        kernel = make_booted_kernel()
        service = generate_service(kernel, make_iface())
        proc = kernel.create_process("c", cred=unprivileged(1000))
        rpc_client = service.make_client(kernel, proc)
        rpc_client.test_incr(0)
        mark = kernel.machine.clock.checkpoint()
        rpc_client.test_incr(1)
        rpc = kernel.machine.clock.since(mark).cycles

        assert native < smod < rpc
        assert 5 <= smod / native <= 20
        assert 5 <= rpc / smod <= 20
