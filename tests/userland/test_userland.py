"""Tests for the user-level runtime: malloc arena, string routines, Program."""

import pytest

from repro.errors import SimulationError
from repro.kernel.kernel import make_booted_kernel
from repro.userland.libc.malloc import ALIGNMENT, MallocArena
from repro.userland.libc.string import (
    load_c_string,
    memcmp,
    memcpy,
    memset,
    store_c_string,
    strcpy,
    strlen,
)
from repro.userland.libc import syscall_stubs
from repro.userland.process import Program


@pytest.fixture
def kernel():
    return make_booted_kernel()


@pytest.fixture
def program(kernel):
    return Program.spawn(kernel, "prog", uid=1000)


@pytest.fixture
def arena(kernel, program):
    return MallocArena(kernel, program.proc)


class TestMallocArena:
    def test_basic_alloc_free(self, arena):
        addr = arena.malloc(100)
        assert addr % ALIGNMENT == 0
        arena.free(addr)
        assert arena.allocations == 1 and arena.frees == 1
        arena.check_invariants()

    def test_distinct_allocations_do_not_overlap(self, arena):
        addrs = [arena.malloc(64) for _ in range(20)]
        blocks = sorted((arena.block_at(a).address, arena.block_at(a).size)
                        for a in addrs)
        for (a1, s1), (a2, _) in zip(blocks, blocks[1:]):
            assert a1 + s1 <= a2
        arena.check_invariants()

    def test_free_reuses_space(self, arena):
        addr = arena.malloc(128)
        arena.free(addr)
        again = arena.malloc(128)
        assert again == addr

    def test_double_free_detected(self, arena):
        addr = arena.malloc(32)
        arena.free(addr)
        with pytest.raises(SimulationError):
            arena.free(addr)

    def test_free_unknown_address_detected(self, arena):
        with pytest.raises(SimulationError):
            arena.free(0xDEAD000)

    def test_invalid_size_rejected(self, arena):
        with pytest.raises(SimulationError):
            arena.malloc(0)

    def test_coalescing_allows_large_realloc(self, arena):
        a = arena.malloc(4096)
        b = arena.malloc(4096)
        arena.free(a)
        arena.free(b)
        merged = arena.malloc(8192)
        assert merged == a
        arena.check_invariants()

    def test_calloc_zeroes(self, arena, program):
        addr = arena.calloc(4, 16)
        assert program.read_memory(addr, 64) == bytes(64)

    def test_realloc_copies_contents(self, arena, program):
        addr = arena.malloc(32)
        program.write_memory(addr, b"preserve me")
        new_addr = arena.realloc(addr, 1024)
        assert program.read_memory(new_addr, 11) == b"preserve me"
        with pytest.raises(SimulationError):
            arena.realloc(addr, 64)      # old block was freed

    def test_growth_goes_through_obreak(self, kernel, arena, program):
        before = kernel.syscalls.count("obreak")
        arena.malloc(1024 * 1024)
        assert kernel.syscalls.count("obreak") > before
        assert program.proc.vmspace.brk > 0x0800_0000

    def test_accounting(self, arena):
        a = arena.malloc(100)
        arena.malloc(200)
        arena.free(a)
        assert arena.allocated_bytes() >= 200
        assert arena.free_bytes() > 0


class TestStringRoutines:
    def test_strlen_and_store(self, kernel, program):
        addr = program.malloc(64)
        store_c_string(program.proc, addr, "four")
        assert strlen(kernel, program.proc, addr) == 4

    def test_strcpy_and_load(self, kernel, program):
        src = program.malloc(64)
        dst = program.malloc(64)
        store_c_string(program.proc, src, "copy me")
        strcpy(kernel, program.proc, dst, src)
        assert load_c_string(program.proc, dst) == "copy me"

    def test_memset_memcpy_memcmp(self, kernel, program):
        a = program.malloc(32)
        b = program.malloc(32)
        memset(kernel, program.proc, a, 0x5A, 32)
        memcpy(kernel, program.proc, b, a, 32)
        assert memcmp(kernel, program.proc, a, b, 32) == 0
        memset(kernel, program.proc, b, 0x00, 1)
        assert memcmp(kernel, program.proc, a, b, 32) != 0

    def test_negative_lengths_rejected(self, kernel, program):
        addr = program.malloc(16)
        with pytest.raises(SimulationError):
            memset(kernel, program.proc, addr, 0, -1)
        with pytest.raises(SimulationError):
            memcpy(kernel, program.proc, addr, addr, -4)


class TestSyscallStubs:
    def test_getpid_and_fork(self, kernel, program):
        assert syscall_stubs.getpid(kernel, program.proc) == program.proc.pid
        child_pid = syscall_stubs.fork(kernel, program.proc)
        assert kernel.procs.lookup(child_pid).ppid == program.proc.pid
        assert syscall_stubs.getppid(kernel, kernel.procs.lookup(child_pid)) == program.proc.pid

    def test_brk(self, kernel, program):
        new_break = syscall_stubs.brk(kernel, program.proc,
                                      program.proc.vmspace.brk + 4096)
        assert new_break >= program.proc.vmspace.brk

    def test_msg_stubs(self, kernel, program):
        msqid = syscall_stubs.msgget(kernel, program.proc, 0)
        assert syscall_stubs.msgsnd(kernel, program.proc, msqid, 1, (5,)).ok
        assert syscall_stubs.msgrcv(kernel, program.proc, msqid).unwrap().payload == (5,)


class TestProgram:
    def test_spawn_root_and_user(self, kernel):
        user = Program.spawn(kernel, "u", uid=500)
        root = Program.spawn(kernel, "r", uid=0)
        assert user.proc.cred.uid == 500
        assert root.proc.cred.uid == 0

    def test_program_memory_helpers(self, program):
        addr = program.malloc(16)
        program.write_memory(addr, b"hello")
        assert program.read_memory(addr, 5) == b"hello"
        program.free(addr)

    def test_getpid_wrapper(self, program):
        assert program.getpid() == program.proc.pid
