"""The live source tree must satisfy its own invariants.

This is the test the CI gate mirrors: ``repro analyze`` over the installed
``repro`` package reports zero findings, every line suppression is used
(SUP002 polices staleness), and the allowlist covers only files that still
exist.
"""

from pathlib import Path

import repro
from repro.analyze import analyze_tree
from repro.analyze.config import DEFAULT_ALLOWLIST, default_config

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


class TestLiveTreeClean:
    def test_zero_findings(self):
        report = analyze_tree(default_config())
        details = "\n".join(f.render() for f in report.findings)
        assert report.ok, f"repro analyze is dirty:\n{details}"

    def test_scans_the_whole_package(self):
        report = analyze_tree(default_config())
        on_disk = len(list(PACKAGE_ROOT.rglob("*.py")))
        assert report.files_scanned == on_disk

    def test_allowlist_paths_exist(self):
        for rule, entries in DEFAULT_ALLOWLIST.items():
            for rel_path, reason in entries.items():
                target = PACKAGE_ROOT.parent / rel_path
                assert target.exists(), (
                    f"allowlist entry {rule}:{rel_path} points at a file "
                    f"that no longer exists")
                assert reason.strip(), f"allowlist {rule}:{rel_path} "

    def test_known_exemptions_are_exercised(self):
        """The wall-clock allowlist actually absorbs findings (not inert)."""
        report = analyze_tree(default_config())
        assert report.allowlisted > 0
        assert report.suppressed > 0
