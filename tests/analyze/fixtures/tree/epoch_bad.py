"""EPOCH fixtures: guarded state mutated with and without its bump."""


class Cache:
    def __init__(self):
        # smod: guarded-by epoch
        self.entries = {}
        self.epoch = 0

    def forgot_bump(self, key):
        self.entries.pop(key)     # -> EPOCH001 (no epoch bump)

    def bumps(self, key, value):
        self.entries[key] = value
        self.epoch += 1           # ok: mutation + bump

    def excused(self, key):
        # smod: allow(EPOCH001)  removed outright, nothing goes stale
        del self.entries[key]


class BadGuard:
    def __init__(self):
        # smod: guarded-by no_such_epoch
        self.table = []           # -> EPOCH002 (unknown epoch attribute)


# smod: guarded-by epoch
ORPHAN = 1                        # -> EPOCH002 (not a class field)
