"""A file every checker should pass without comment."""

from sim import costs


def call(machine):
    machine.charge(costs.TRAP)
    machine.charge_words(costs.MSG_SEND, 2)
    machine.idle(10)


def refuse(machine):
    machine.charge(costs.ADMIT_CHECK)
    machine.charge(costs.SHED)
