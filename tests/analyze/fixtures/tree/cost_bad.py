"""COST fixtures: literal, unresolvable, and unknown charge operations."""

from sim import costs
from sim.costs import MSG_SEND


def run(machine, op):
    machine.charge("trap")           # -> COST001 (string literal)
    machine.charge(costs.TRAP)       # ok: names a table constant
    machine.charge_words(MSG_SEND, 4)  # ok: constant imported directly
    machine.charge(costs.NOT_A_COST)   # -> COST003 (not in the table)
    machine.charge(op)               # -> COST002 (unresolvable forward)
