"""CLOCK fixtures: unmetered VirtualClock advances."""


def skip_ahead(clock):
    clock.advance(500)            # -> CLOCK001
    clock.advance_many(100, 3)    # -> CLOCK001


def metered(machine):
    machine.idle(500)             # ok: routed through the meter
