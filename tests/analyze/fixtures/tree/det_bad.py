"""DET fixtures: ambient time and entropy in a simulation path."""

import random                    # -> DET002
import time
from time import perf_counter    # alias binding for the call below


def stamp():
    return time.time()           # -> DET001


def measure():
    return perf_counter()        # -> DET001


def jitter():
    return random.random()       # -> DET001 (on top of the DET002 import)
