"""TELEM fixtures: a span tracer that perturbs the run it observes."""

from sim import costs                  # -> TELEM001


def start(machine, kind):
    machine.charge(costs.TRAP)         # -> TELEM002: tracing must not charge
    return kind


def finish(machine, span):
    machine.clock.advance(10)          # -> TELEM002 (the CLOCK pass fires too)
