"""TELEM fixtures: a pure span tracer — observation only, no findings.

Mirrors the shape of ``repro.telemetry.tracing``: timestamps come from
reading the clock's cycle counter (never advancing it), spans land in a
bounded ring, and nothing imports the cost model.
"""


class Span:
    __slots__ = ("kind", "start_us", "end_us")

    def __init__(self, kind, start_us):
        self.kind = kind
        self.start_us = start_us
        self.end_us = start_us


class Tracer:
    def __init__(self, clock, mhz, capacity=16):
        self._clock = clock
        self._inv_mhz = 1.0 / mhz
        self._capacity = capacity
        self._ring = []

    def now_us(self):
        return self._clock.cycles * self._inv_mhz    # ok: pure read

    def start(self, kind):
        return Span(kind, self.now_us())

    def finish(self, span):
        span.end_us = self.now_us()
        if len(self._ring) < self._capacity:
            self._ring.append(span)

    def spans(self):
        return list(self._ring)
