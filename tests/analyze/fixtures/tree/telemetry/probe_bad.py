"""TELEM fixtures: the observation plane reaching into the cost model."""

from sim import costs             # -> TELEM001


def record(machine):
    machine.charge(costs.TRAP)    # -> TELEM002 (and the COST pass sees it too)


def observe(snapshot):
    return dict(snapshot)         # ok: pure observation
