"""Miniature cost table for the checker fixtures."""

TRAP = "trap"
MSG_SEND = "msg_send"
ADMIT_CHECK = "admit_check"  # overload family: tabled + charged in clean.py
SHED = "shed"                # ditto -- must raise no COST003/COST004
DEAD_OP = "dead_op"      # in the table but never charged -> COST004
BOGUS = "bogus"          # defined but missing from ALL_OPERATIONS -> COST003

ALL_OPERATIONS = (TRAP, MSG_SEND, ADMIT_CHECK, SHED, DEAD_OP)
