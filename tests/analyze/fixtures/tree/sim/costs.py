"""Miniature cost table for the checker fixtures."""

TRAP = "trap"
MSG_SEND = "msg_send"
DEAD_OP = "dead_op"      # in the table but never charged -> COST004
BOGUS = "bogus"          # defined but missing from ALL_OPERATIONS -> COST003

ALL_OPERATIONS = (TRAP, MSG_SEND, DEAD_OP)
