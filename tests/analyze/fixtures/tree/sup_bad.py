"""SUP fixtures: suppression comments that are themselves defective."""

import time


def reasonless():
    # smod: allow(DET001)
    return time.time()            # suppressed, but -> SUP001 (no reason)


def stale():
    # smod: allow(CLOCK001)  nothing here ever advances a clock
    return 42                     # -> SUP002 (suppresses nothing)


# smod: frobnicate the widget
WIDGET = object()                 # -> SUP003 (unrecognized directive)
