"""Unit tests for the analysis framework itself (directives, aliases, config)."""

from pathlib import Path

import pytest

from repro.analyze import AnalysisConfig, iter_rules
from repro.analyze.core import (
    SourceFile,
    dotted_name,
    module_aliases,
    parse_directives,
)

import ast


class TestParseDirectives:
    def test_trailing_allow_targets_own_line(self):
        src = "x = 1\ny = compute()  # smod: allow(DET001)  explicit seed\n"
        (directive,) = parse_directives(src)
        assert directive.kind == "allow"
        assert directive.rules == ("DET001",)
        assert directive.reason == "explicit seed"
        assert directive.target_line == 2

    def test_standalone_allow_targets_next_code_line(self):
        src = ("def f():\n"
               "    # smod: allow(COST002)  forwarding wrapper\n"
               "    # (continuation prose the parser must skip)\n"
               "    return charge(op)\n")
        (directive,) = parse_directives(src)
        assert directive.line == 2
        assert directive.target_line == 4

    def test_multi_rule_allow(self):
        src = "# smod: allow(DET001, CLOCK001)  both excused here\nx = 1\n"
        (directive,) = parse_directives(src)
        assert directive.rules == ("DET001", "CLOCK001")

    def test_guarded_by(self):
        src = "# smod: guarded-by policy_epoch\nself.table = {}\n"
        (directive,) = parse_directives(src)
        assert directive.kind == "guarded-by"
        assert directive.epoch == "policy_epoch"
        assert directive.target_line == 2

    def test_unknown_directive(self):
        (directive,) = parse_directives("# smod: frobnicate\nx = 1\n")
        assert directive.kind == "unknown"

    def test_prose_mentioning_directives_is_ignored(self):
        src = ('#: syntax is ``# smod: allow(RULE)  reason``\n'
               "x = 1\n")
        assert parse_directives(src) == []

    def test_plain_comments_ignored(self):
        assert parse_directives("# just a comment\nx = 1\n") == []


class TestImportResolution:
    def test_alias_and_from_import(self):
        tree = ast.parse("import numpy as np\nfrom time import perf_counter\n")
        aliases = module_aliases(tree)
        assert aliases["np"] == "numpy"
        assert aliases["perf_counter"] == "time.perf_counter"

    def test_dotted_name_through_alias(self):
        tree = ast.parse("import numpy as np\nnp.random.default_rng(0)\n")
        aliases = module_aliases(tree)
        call = tree.body[1].value
        assert dotted_name(call.func, aliases) == "numpy.random.default_rng"

    def test_unrooted_chain_resolves_to_none(self):
        tree = ast.parse("self._rng.uniform()\n")
        call = tree.body[0].value
        assert dotted_name(call.func, {}) is None


class TestAnalysisConfig:
    def test_family_allowlist_covers_numbered_rules(self):
        config = AnalysisConfig(
            root=Path("."), allowlist={"DET": {"a/b.py": "why"}})
        assert config.allowlisted("DET001", "a/b.py") == "why"
        assert config.allowlisted("DET002", "a/b.py") == "why"
        assert config.allowlisted("COST001", "a/b.py") is None
        assert config.allowlisted("DET001", "a/c.py") is None

    def test_exact_rule_beats_family(self):
        config = AnalysisConfig(
            root=Path("."),
            allowlist={"COST002": {"a.py": "exact"}, "COST": {"a.py": "fam"}})
        assert config.allowlisted("COST002", "a.py") == "exact"
        assert config.allowlisted("COST001", "a.py") == "fam"

    def test_rule_selection_by_prefix(self):
        config = AnalysisConfig(root=Path("."), only_rules=("DET", "COST001"))
        assert config.rule_selected("DET002")
        assert config.rule_selected("COST001")
        assert not config.rule_selected("COST002")

    def test_empty_selection_selects_everything(self):
        config = AnalysisConfig(root=Path("."))
        assert config.rule_selected("ANYTHING999")


class TestRuleCatalogue:
    def test_catalogue_covers_every_family(self):
        rules = iter_rules()
        for family in ("DET", "COST", "CLOCK", "TELEM", "EPOCH", "SUP",
                       "PARSE"):
            assert any(rule.startswith(family) for rule in rules), family

    def test_descriptions_nonempty(self):
        for rule, description in iter_rules().items():
            assert description, rule


class TestSourceFile:
    def test_part_of_matches_path_components(self, tmp_path):
        path = tmp_path / "x.py"
        path.write_text("x = 1\n")
        source = SourceFile(path, "repro/telemetry/metrics.py", "x = 1\n")
        assert source.part_of("telemetry")
        assert not source.part_of("tele")

    def test_syntax_error_propagates(self, tmp_path):
        path = tmp_path / "bad.py"
        with pytest.raises(SyntaxError):
            SourceFile(path, "bad.py", "def f(:\n")
