"""Each checker fires on its bad fixture and stays quiet on the clean one.

The fixtures under ``fixtures/tree`` form a miniature package with its own
``sim/costs.py``; running the real :func:`analyze_tree` over it exercises
the same path ``repro analyze`` takes over the live source.
"""

from pathlib import Path

import pytest

from repro.analyze import AnalysisConfig, analyze_tree

FIXTURES = Path(__file__).parent / "fixtures"
TREE = FIXTURES / "tree"


@pytest.fixture(scope="module")
def report():
    return analyze_tree(AnalysisConfig(root=TREE, allowlist={}))


def rules_in(report, filename):
    return sorted({f.rule for f in report.findings
                   if f.path.endswith(filename)})


class TestDeterminism:
    def test_bad_fixture(self, report):
        assert rules_in(report, "det_bad.py") == ["DET001", "DET002"]

    def test_counts(self, report):
        det1 = [f for f in report.findings if f.rule == "DET001"
                and f.path.endswith("det_bad.py")]
        assert len(det1) == 3  # time.time, perf_counter, random.random


class TestCost:
    def test_bad_fixture(self, report):
        assert rules_in(report, "cost_bad.py") == [
            "COST001", "COST002", "COST003"]

    def test_dead_and_untabled_constants(self, report):
        costs_rules = [f.rule for f in report.findings
                       if f.path.endswith("sim/costs.py")]
        assert costs_rules.count("COST003") == 1  # BOGUS not in the table
        assert costs_rules.count("COST004") == 1  # DEAD_OP never charged

    def test_literal_message_names_the_literal(self, report):
        (finding,) = [f for f in report.findings if f.rule == "COST001"]
        assert "'trap'" in finding.message


class TestClock:
    def test_bad_fixture(self, report):
        findings = [f for f in report.findings
                    if f.path.endswith("clock_bad.py")]
        assert [f.rule for f in findings] == ["CLOCK001", "CLOCK001"]

    def test_idle_is_not_flagged(self, report):
        lines = [f.line for f in report.findings
                 if f.path.endswith("clock_bad.py")]
        assert lines == [5, 6]


class TestTelemetry:
    def test_bad_fixture(self, report):
        assert "TELEM001" in rules_in(report, "telemetry/probe_bad.py")
        assert "TELEM002" in rules_in(report, "telemetry/probe_bad.py")

    def test_tracing_bad_fixture(self, report):
        rules = rules_in(report, "telemetry/tracing_bad.py")
        assert "TELEM001" in rules   # imports sim.costs
        assert "TELEM002" in rules   # charge() and clock.advance()
        telem2 = [f for f in report.findings if f.rule == "TELEM002"
                  and f.path.endswith("tracing_bad.py")]
        assert len(telem2) == 2

    def test_tracing_good_fixture_is_clean(self, report):
        assert rules_in(report, "telemetry/tracing_good.py") == []

    def test_scope_is_telemetry_only(self, report):
        outside = [f for f in report.findings
                   if f.rule.startswith("TELEM")
                   and "telemetry/" not in f.path]
        assert outside == []


class TestEpoch:
    def test_missing_bump(self, report):
        epoch1 = [f for f in report.findings if f.rule == "EPOCH001"]
        assert len(epoch1) == 1
        assert epoch1[0].path.endswith("epoch_bad.py")
        assert "forgot_bump" in epoch1[0].message

    def test_bump_and_excused_mutations_pass(self, report):
        lines = {f.line for f in report.findings
                 if f.path.endswith("epoch_bad.py")
                 and f.rule == "EPOCH001"}
        assert lines == {11}  # only the unexcused pop

    def test_malformed_annotations(self, report):
        epoch2 = [f for f in report.findings if f.rule == "EPOCH002"]
        assert len(epoch2) == 2  # unknown epoch attr + orphan directive


class TestSuppressionMeta:
    def test_reasonless_allow(self, report):
        assert "SUP001" in rules_in(report, "sup_bad.py")

    def test_stale_allow(self, report):
        assert "SUP002" in rules_in(report, "sup_bad.py")

    def test_unknown_directive(self, report):
        assert "SUP003" in rules_in(report, "sup_bad.py")

    def test_used_suppressions_counted(self, report):
        # det suppression in sup_bad.py + epoch excusal in epoch_bad.py
        assert report.suppressed == 2


class TestCleanAndScoping:
    def test_clean_fixture_has_no_findings(self, report):
        assert rules_in(report, "clean.py") == []

    def test_allowlist_drops_findings(self):
        allow = {"DET": {"tree/det_bad.py": "fixture exercising the rule"},
                 "CLOCK": {"tree/clock_bad.py": "fixture"}}
        report = analyze_tree(AnalysisConfig(root=TREE, allowlist=allow))
        assert rules_in(report, "det_bad.py") == []
        assert rules_in(report, "clock_bad.py") == []
        assert report.allowlisted == 6  # 3 DET001 + 1 DET002 + 2 CLOCK001

    def test_only_rules_restricts_output(self):
        report = analyze_tree(AnalysisConfig(
            root=TREE, allowlist={}, only_rules=("CLOCK",)))
        rules = {f.rule for f in report.findings
                 if not f.rule.startswith(("SUP", "PARSE"))}
        assert rules == {"CLOCK001"}

    def test_findings_sorted_and_renderable(self, report):
        keys = [(f.path, f.line, f.rule) for f in report.findings]
        assert keys == sorted(keys)
        for finding in report.findings:
            assert finding.path in finding.render()

    def test_json_roundtrip(self, report):
        import json
        payload = json.loads(report.render_json())
        assert payload["ok"] is False
        assert payload["files_scanned"] == report.files_scanned
        assert len(payload["findings"]) == len(report.findings)
        assert sum(payload["counts_by_rule"].values()) == len(report.findings)
