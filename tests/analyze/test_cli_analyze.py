"""`repro analyze` CLI: exit codes, JSON mode, rule listing, rule filters."""

import json
from pathlib import Path

from repro.cli import main

FIXTURE_TREE = str(Path(__file__).parent / "fixtures" / "tree")


class TestAnalyzeCommand:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_dirty_tree_exits_nonzero(self, capsys):
        assert main(["analyze", "--root", FIXTURE_TREE]) == 1
        out = capsys.readouterr().out
        assert "COST001" in out
        assert "by rule:" in out

    def test_json_format(self, capsys):
        code = main(["analyze", "--root", FIXTURE_TREE, "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["version"] == 1
        rules = {f["rule"] for f in payload["findings"]}
        assert "DET001" in rules

    def test_rule_filter(self, capsys):
        code = main(["analyze", "--root", FIXTURE_TREE, "--rules", "CLOCK",
                     "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"CLOCK001"}

    def test_list_rules(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("DET001", "COST004", "CLOCK001", "TELEM002",
                     "EPOCH001", "SUP002", "PARSE001"):
            assert rule in out
