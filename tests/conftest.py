"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hw.machine import make_paper_machine
from repro.kernel.cred import unprivileged
from repro.kernel.kernel import Kernel
from repro.secmodule.api import SecModuleSystem
from repro.secmodule.smod_syscalls import install_secmodule


@pytest.fixture
def machine():
    """A fresh paper-spec machine (Pentium III, 599 MHz)."""
    return make_paper_machine(seed=1234)


@pytest.fixture
def traced_machine():
    """A paper machine with event tracing enabled."""
    return make_paper_machine(seed=1234, trace_enabled=True)


@pytest.fixture
def kernel(machine):
    """A booted kernel without the SecModule extension."""
    return Kernel(machine=machine).boot()

@pytest.fixture
def smod_kernel(machine):
    """A booted kernel with the SecModule extension installed."""
    k = Kernel(machine=machine).boot()
    ext = install_secmodule(k)
    return k, ext


@pytest.fixture
def user_proc(kernel):
    """An ordinary unprivileged process on the plain kernel."""
    return kernel.create_process("user", cred=unprivileged(1000))


@pytest.fixture(scope="module")
def shared_system():
    """A module-scoped SecModule system for read-mostly tests.

    Tests that mutate global state (teardown, fork, exec) must build their
    own system instead of using this fixture.
    """
    return SecModuleSystem.create(seed=777)


@pytest.fixture
def system():
    """A function-scoped, fully isolated SecModule system."""
    return SecModuleSystem.create(seed=4242)
