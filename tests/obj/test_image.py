"""Tests for the miniature object-file format."""

import pytest

from repro.errors import ToolchainError
from repro.obj.image import (
    ObjectImage,
    Relocation,
    RelocationType,
    Section,
    Symbol,
    SymbolBinding,
    SymbolType,
    WORD_SIZE,
    make_function_image,
)


class TestSection:
    def test_word_roundtrip(self):
        section = Section(name=".data", data=bytearray(16), writable=True)
        section.write_word(4, 0xDEADBEEF)
        assert section.read_word(4) == 0xDEADBEEF

    def test_out_of_range_read_write(self):
        section = Section(name=".data", data=bytearray(8))
        with pytest.raises(ToolchainError):
            section.read_word(6)
        with pytest.raises(ToolchainError):
            section.write_word(-1, 0)

    def test_copy_is_independent(self):
        section = Section(name=".text", data=bytearray(b"abcd"), executable=True)
        clone = section.copy()
        clone.data[0] = 0
        assert section.data[0] == ord("a")


class TestObjectImage:
    def _image(self):
        image = ObjectImage(name="a.o")
        image.add_section(Section(name=".text", data=bytearray(64), executable=True))
        image.add_section(Section(name=".data", data=bytearray(32), writable=True))
        return image

    def test_duplicate_section_rejected(self):
        image = self._image()
        with pytest.raises(ToolchainError):
            image.add_section(Section(name=".text"))

    def test_missing_section_lookup(self):
        image = self._image()
        with pytest.raises(ToolchainError):
            image.get_section(".bss")

    def test_symbol_must_fit_inside_section(self):
        image = self._image()
        image.add_symbol(Symbol(name="f", section=".text", offset=0, size=32))
        with pytest.raises(ToolchainError):
            image.add_symbol(Symbol(name="g", section=".text", offset=60, size=16))
        with pytest.raises(ToolchainError):
            image.add_symbol(Symbol(name="h", section=".bss", offset=0, size=4))

    def test_relocation_bounds_checked(self):
        image = self._image()
        image.add_relocation(Relocation(section=".text", offset=8, symbol="x"))
        with pytest.raises(ToolchainError):
            image.add_relocation(Relocation(section=".text", offset=62, symbol="x"))
        with pytest.raises(ToolchainError):
            image.add_relocation(Relocation(section=".missing", offset=0, symbol="x"))

    def test_function_symbol_queries(self):
        image = self._image()
        image.add_symbol(Symbol(name="f", section=".text", offset=0, size=16))
        image.add_symbol(Symbol(name="datum", section=".data", offset=0, size=4,
                                sym_type=SymbolType.OBJECT))
        image.add_symbol(Symbol(name="local", section=".text", offset=16, size=8,
                                binding=SymbolBinding.LOCAL))
        assert [s.name for s in image.function_symbols()] == ["f", "local"]
        assert image.global_function_names() == ["f"]
        assert image.find_symbol("datum").sym_type is SymbolType.OBJECT
        assert image.find_symbol("missing") is None

    def test_relocation_offsets_cover_word_span(self):
        image = self._image()
        image.add_relocation(Relocation(section=".text", offset=8, symbol="x"))
        assert image.relocation_offsets(".text") == [8, 9, 10, 11]
        assert image.relocation_offsets(".data") == []

    def test_total_size_and_text_sections(self):
        image = self._image()
        assert image.total_size() == 96
        assert [s.name for s in image.text_sections()] == [".text"]

    def test_copy_deep(self):
        image = self._image()
        image.notes["k"] = 1
        clone = image.copy()
        clone.get_section(".text").data[0] = 0xFF
        clone.notes["k"] = 2
        assert image.get_section(".text").data[0] == 0
        assert image.notes["k"] == 1


class TestMakeFunctionImage:
    def test_symbols_and_sizes(self):
        image = make_function_image("lib.o", {"f": 32, "g": 48})
        assert image.find_symbol("f").size == 32
        assert image.find_symbol("g").offset == 32
        assert image.get_section(".text").size == 80

    def test_call_relocations_planted(self):
        image = make_function_image("lib.o", {"f": 32, "g": 48},
                                    calls=[("f", "g")])
        assert len(image.relocations) == 1
        reloc = image.relocations[0]
        assert reloc.symbol == "g"
        assert reloc.rel_type is RelocationType.PCREL32
        # planted one word into f's body
        assert reloc.offset == image.find_symbol("f").offset + WORD_SIZE

    def test_too_small_function_rejected(self):
        with pytest.raises(ToolchainError):
            make_function_image("lib.o", {"tiny": 4})

    def test_unknown_caller_rejected(self):
        with pytest.raises(ToolchainError):
            make_function_image("lib.o", {"f": 32}, calls=[("nope", "f")])

    def test_deterministic_given_seed(self):
        a = make_function_image("lib.o", {"f": 32}, seed=3)
        b = make_function_image("lib.o", {"f": 32}, seed=3)
        c = make_function_image("lib.o", {"f": 32}, seed=4)
        assert bytes(a.get_section(".text").data) == bytes(b.get_section(".text").data)
        assert bytes(a.get_section(".text").data) != bytes(c.get_section(".text").data)
