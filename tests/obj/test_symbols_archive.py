"""Tests for symbol tables, objdump listings and archives."""

import pytest

from repro.errors import ToolchainError
from repro.obj.archive import Archive, build_archive
from repro.obj.image import ObjectImage, Section, Symbol, SymbolBinding, make_function_image
from repro.obj.symbols import SymbolTable, grep_function_symbols, objdump_t


class TestObjdumpListing:
    def test_listing_contains_function_markers(self):
        image = make_function_image("m.o", {"alpha": 32, "beta": 32})
        listing = objdump_t(image)
        assert "SYMBOL TABLE:" in listing
        assert " F " in listing
        assert "alpha" in listing and "beta" in listing

    def test_grep_filter_matches_paper_pipeline(self):
        image = make_function_image("m.o", {"alpha": 32, "beta": 32})
        names = grep_function_symbols(objdump_t(image))
        assert names == ["alpha", "beta"]

    def test_grep_ignores_non_function_lines(self):
        image = ObjectImage(name="d.o")
        image.add_section(Section(name=".data", data=bytearray(16), writable=True))
        image.add_symbol(Symbol(name="table", section=".data", offset=0, size=8,
                                sym_type=__import__("repro.obj.image", fromlist=["SymbolType"]).SymbolType.OBJECT))
        assert grep_function_symbols(objdump_t(image)) == []


class TestSymbolTable:
    def test_from_images_and_lookup(self):
        a = make_function_image("a.o", {"f": 32})
        b = make_function_image("b.o", {"g": 32})
        table = SymbolTable.from_images([a, b])
        assert len(table) == 2
        assert "f" in table and table.require("g").name == "g"
        assert table.origin["f"] == "a.o"

    def test_duplicate_symbol_rejected(self):
        a = make_function_image("a.o", {"f": 32})
        b = make_function_image("b.o", {"f": 32})
        with pytest.raises(ToolchainError):
            SymbolTable.from_images([a, b])
        table = SymbolTable.from_images([a, b], allow_duplicates=True)
        assert table.origin["f"] == "a.o"

    def test_local_symbols_excluded(self):
        image = make_function_image("a.o", {"f": 32})
        image.add_symbol(Symbol(name="helper", section=".text", offset=0, size=8,
                                binding=SymbolBinding.LOCAL))
        table = SymbolTable.from_images([image])
        assert "helper" not in table

    def test_require_missing_raises(self):
        table = SymbolTable.from_images([make_function_image("a.o", {"f": 32})])
        with pytest.raises(ToolchainError):
            table.require("missing")

    def test_undefined_references(self):
        caller = make_function_image("a.o", {"f": 32}, calls=[("f", "external")])
        table = SymbolTable.from_images([caller])
        assert table.undefined_references([caller]) == {"external"}


class TestArchive:
    def test_build_and_index(self):
        archive = build_archive("libx.a", [
            make_function_image("one.o", {"f": 32}),
            make_function_image("two.o", {"g": 32, "h": 32}),
        ])
        assert len(archive) == 2
        assert archive.global_symbols() == ["f", "g", "h"]
        assert archive.member_defining("g").name == "two.o"
        assert archive.member_defining("missing") is None
        assert archive.member("one.o").name == "one.o"

    def test_member_lookup_missing(self):
        archive = Archive(name="lib.a")
        with pytest.raises(ToolchainError):
            archive.member("nope.o")

    def test_duplicate_member_rejected(self):
        archive = Archive(name="lib.a")
        archive.add_member(make_function_image("one.o", {"f": 32}))
        with pytest.raises(ToolchainError):
            archive.add_member(make_function_image("one.o", {"g": 32}))

    def test_non_relocatable_member_rejected(self):
        archive = Archive(name="lib.a")
        image = make_function_image("exe", {"f": 32}, kind="executable")
        with pytest.raises(ToolchainError):
            archive.add_member(image)

    def test_first_definition_wins(self):
        first = make_function_image("one.o", {"f": 32})
        second = make_function_image("two.o", {"f": 32})
        archive = Archive(name="lib.a")
        archive.add_member(first)
        archive.add_member(second)
        assert archive.member_defining("f").name == "one.o"

    def test_text_bytes_and_function_symbols(self):
        archive = build_archive("lib.a", [make_function_image("one.o", {"f": 32, "g": 64})])
        assert archive.total_text_bytes() == 96
        assert sorted(s.name for s in archive.function_symbols()) == ["f", "g"]
