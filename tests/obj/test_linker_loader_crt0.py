"""Tests for the mini linker, the loader plan builder and the crt0 objects."""

import pytest

from repro.errors import ToolchainError
from repro.obj.archive import build_archive
from repro.obj.crt0 import (
    ModuleRequirement,
    SECMODULE_CRT0_CALLS,
    decode_module_descriptors,
    make_module_descriptor_object,
    make_secmodule_crt0,
    make_standard_crt0,
)
from repro.obj.image import make_function_image
from repro.obj.linker import DEFAULT_TEXT_BASE, link
from repro.obj.loader import build_load_plan


def _program_objects():
    main_obj = make_function_image("main.o", {"start": 32, "main": 64},
                                   calls=[("start", "main"), ("main", "helper")])
    helper_obj = make_function_image("helper.o", {"helper": 48, "exit": 32})
    return main_obj, helper_obj


class TestLinker:
    def test_link_resolves_symbols_and_relocations(self):
        main_obj, helper_obj = _program_objects()
        result = link("prog", [main_obj, helper_obj])
        assert result.image.kind == "executable"
        assert result.address_of("main") > DEFAULT_TEXT_BASE
        assert result.address_of("helper") != result.address_of("main")
        # relocations were recorded in the output (for the SecModule packer)
        assert len(result.image.relocations) == 2

    def test_undefined_reference_fails(self):
        main_obj, _ = _program_objects()
        with pytest.raises(ToolchainError, match="undefined references"):
            link("prog", [main_obj])

    def test_allow_undefined(self):
        main_obj, _ = _program_objects()
        result = link("prog", [main_obj], allow_undefined=["helper", "exit"])
        assert result.address_of("start") == DEFAULT_TEXT_BASE

    def test_archive_members_pulled_on_demand(self):
        main_obj, helper_obj = _program_objects()
        unused = make_function_image("unused.o", {"unused_fn": 32})
        archive = build_archive("libhelp.a", [helper_obj, unused])
        result = link("prog", [main_obj], archives=[archive])
        assert result.address_of("helper")
        member_names = {entry.input_image for entry in result.link_map}
        assert "helper.o" in member_names
        assert "unused.o" not in member_names

    def test_duplicate_definition_rejected(self):
        a = make_function_image("a.o", {"start": 32, "main": 32, "exit": 16,
                                        "helper": 16})
        b = make_function_image("b.o", {"main": 32})
        with pytest.raises(ToolchainError, match="multiple definition"):
            link("prog", [a, b])

    def test_missing_entry_symbol_rejected(self):
        helper = make_function_image("helper.o", {"helper": 48})
        with pytest.raises(ToolchainError, match="entry symbol"):
            link("prog", [helper])

    def test_zero_inputs_rejected(self):
        with pytest.raises(ToolchainError):
            link("prog", [])

    def test_link_map_offsets_are_disjoint(self):
        main_obj, helper_obj = _program_objects()
        result = link("prog", [main_obj, helper_obj])
        text_entries = sorted((e.output_offset, e.size) for e in result.link_map
                              if e.output_section == ".text")
        for (off1, size1), (off2, _) in zip(text_entries, text_entries[1:]):
            assert off1 + size1 <= off2


class TestLoader:
    def _linked(self):
        main_obj, helper_obj = _program_objects()
        return link("prog", [main_obj, helper_obj]).image

    def test_plan_segments_and_entry(self):
        plan = build_load_plan(self._linked())
        assert plan.entry_address is not None
        assert plan.overlaps() == []
        assert plan.text_segments() and plan.data_segments()
        assert plan.total_pages() >= 2

    def test_symbol_addresses_present(self):
        plan = build_load_plan(self._linked())
        assert "main" in plan.symbol_addresses
        assert plan.symbol_addresses["main"] != plan.symbol_addresses["helper"]

    def test_relocatable_input_rejected(self):
        with pytest.raises(ToolchainError):
            build_load_plan(make_function_image("a.o", {"f": 32}))

    def test_segment_lookup(self):
        plan = build_load_plan(self._linked())
        seg = plan.segment("prog:.text")
        assert seg.executable and not seg.writable
        with pytest.raises(ToolchainError):
            plan.segment("missing")


class TestCrt0:
    def test_standard_crt0_calls_main_and_exit(self):
        crt0 = make_standard_crt0()
        targets = {r.symbol for r in crt0.relocations}
        assert targets == {"main", "exit"}
        assert crt0.find_symbol("start") is not None

    def test_secmodule_crt0_encodes_handshake_order(self):
        crt0 = make_secmodule_crt0()
        targets = [r.symbol for r in sorted(crt0.relocations, key=lambda r: r.offset)]
        assert targets == list(SECMODULE_CRT0_CALLS)
        assert "smod_start_session" in targets
        assert targets.index("smod_find") < targets.index("smod_start_session")
        assert targets.index("smod_handle_info") < targets.index("smod_client_main")

    def test_module_descriptor_roundtrip(self):
        requirements = [
            ModuleRequirement("libc", 1, b"cred-bytes-1"),
            ModuleRequirement("libtest", 3, b"longer credential payload!"),
        ]
        descriptor = make_module_descriptor_object(requirements)
        decoded = decode_module_descriptors(descriptor)
        assert [(r.module_name, r.version, r.credential_bytes) for r in decoded] == \
               [(r.module_name, r.version, r.credential_bytes) for r in requirements]

    def test_empty_descriptor_decodes_empty(self):
        descriptor = make_module_descriptor_object([])
        assert decode_module_descriptors(descriptor) == []
