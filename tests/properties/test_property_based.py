"""Property-based tests (hypothesis) over the core data structures.

Targets the invariants the rest of the system leans on: the cipher round
trip with relocation holes, XDR round trips, the malloc arena's structural
invariants under arbitrary allocate/free sequences, the Figure 3 stack
discipline under arbitrary argument vectors, the Welford statistics
accumulator, and the KeyNote condition evaluator's totality over generated
expressions.
"""

from __future__ import annotations


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernel.kernel import make_booted_kernel
from repro.obj.image import Section
from repro.rpc.xdr import XdrDecoder, XdrEncoder
from repro.secmodule.crypto import (
    ModuleKey,
    decrypt_bytes,
    decrypt_section_in_place,
    encrypt_bytes,
    encrypt_section_in_place,
)
from repro.secmodule.keynote import evaluate_condition
from repro.secmodule.module import CallEnvironment, SecModuleDefinition
from repro.secmodule.stubs import ClientStub, SimStack, smod_stub_receive
from repro.sim.stats import RunningStats
from repro.userland.libc.malloc import ALIGNMENT, MallocArena

KEY = ModuleKey(material=bytes(range(16)))

#: Hypothesis profile: the default example counts are fine, but several of
#: these properties build a simulated kernel per example, which trips the
#: (wall-clock based) too_slow health check on slower machines.
RELAXED = settings(suppress_health_check=[HealthCheck.too_slow], deadline=None,
                   max_examples=30)


class TestCipherProperties:
    @given(data=st.binary(min_size=0, max_size=512))
    def test_roundtrip_identity(self, data):
        assert decrypt_bytes(encrypt_bytes(data, KEY), KEY) == data

    @given(data=st.binary(min_size=16, max_size=256))
    def test_ciphertext_never_equals_plaintext_for_nontrivial_input(self, data):
        assert encrypt_bytes(data, KEY) != data

    @given(data=st.binary(min_size=0, max_size=256))
    def test_length_preserved(self, data):
        assert len(encrypt_bytes(data, KEY)) == len(data)

    @given(size=st.integers(min_value=16, max_value=256),
           holes=st.sets(st.integers(min_value=0, max_value=255), max_size=40))
    def test_section_encrypt_skips_holes_and_roundtrips(self, size, holes):
        holes = {h for h in holes if h < size}
        section = Section(name=".text", executable=True,
                          data=bytearray((i * 37) % 256 for i in range(size)))
        original = bytes(section.data)
        info = encrypt_section_in_place(section, sorted(holes), KEY)
        for hole in holes:
            assert section.data[hole] == original[hole]
        assert info.bytes_protected + info.bytes_skipped == size
        decrypt_section_in_place(section, info, KEY)
        assert bytes(section.data) == original


class TestXdrProperties:
    @given(values=st.lists(st.integers(min_value=-2**31, max_value=2**31 - 1),
                           max_size=64))
    def test_int_array_roundtrip(self, values):
        data = XdrEncoder().put_int_array(values).getvalue()
        decoder = XdrDecoder(data)
        assert decoder.get_int_array() == values
        assert decoder.done()

    @given(blob=st.binary(max_size=128), text=st.text(max_size=64))
    def test_opaque_and_string_roundtrip(self, blob, text):
        encoder = XdrEncoder()
        encoder.put_opaque(blob)
        encoder.put_string(text)
        decoder = XdrDecoder(encoder.getvalue())
        assert decoder.get_opaque() == blob
        assert decoder.get_string() == text

    @given(blob=st.binary(max_size=64))
    def test_encoding_is_word_aligned(self, blob):
        data = XdrEncoder().put_opaque(blob).getvalue()
        assert len(data) % 4 == 0


class TestMallocProperties:
    @RELAXED
    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(min_value=1, max_value=8192)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
        ),
        max_size=60))
    def test_arena_invariants_hold_under_arbitrary_sequences(self, ops):
        kernel = make_booted_kernel()
        from repro.kernel.cred import unprivileged
        proc = kernel.create_process("heap", cred=unprivileged(1000))
        arena = MallocArena(kernel, proc)
        live = []
        for op, value in ops:
            if op == "malloc":
                address = arena.malloc(value)
                assert address % ALIGNMENT == 0
                assert all(address != other for other in live)
                live.append(address)
            elif live:
                index = value % len(live)
                arena.free(live.pop(index))
            arena.check_invariants()
        # everything still live is backed by a non-free block of adequate size
        for address in live:
            block = arena.block_at(address)
            assert block is not None and not block.free


class TestStackDisciplineProperties:
    @RELAXED
    @given(args=st.lists(st.integers(min_value=-2**31, max_value=2**31 - 1),
                         min_size=0, max_size=8),
           ret=st.integers(min_value=0, max_value=2**32 - 1),
           fp=st.integers(min_value=0, max_value=2**32 - 1))
    def test_figure3_protocol_balances_for_any_arguments(self, args, ret, fp):
        module = SecModuleDefinition("m", 1)
        function = module.add_function("sum_all", lambda env, *a: sum(a) & 0xFFFFFFFF,
                                       arg_words=max(1, len(args)))

        class _FakeKernel:
            from repro.hw.machine import make_paper_machine as _mk
            machine = _mk()

        env = CallEnvironment(kernel=_FakeKernel(), session=None, client=None,
                              handle=None)
        stack = SimStack()
        stub = ClientStub("sum_all", 1, function.func_id, arg_words=len(args))
        frame = stub.push_call(stack, args, return_address=ret, frame_pointer=fp)
        result = smod_stub_receive(stack, frame, function, env)
        assert result == sum(args) & 0xFFFFFFFF
        # after the receive, the stack holds exactly the original step-1 frame
        kinds = [slot.kind.name for slot in stack.snapshot()]
        assert kinds == ["ARG"] * len(args) + ["RETURN_ADDRESS", "FRAME_POINTER"]
        stub.pop_return(stack, frame)
        assert stack.depth() == 0


class TestStatsProperties:
    @given(xs=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=2, max_size=200))
    def test_welford_matches_naive_formulas(self, xs):
        stats = RunningStats()
        stats.extend(xs)
        naive_mean = sum(xs) / len(xs)
        naive_var = sum((x - naive_mean) ** 2 for x in xs) / (len(xs) - 1)
        assert stats.mean == pytest.approx(naive_mean, rel=1e-9, abs=1e-6)
        assert stats.variance == pytest.approx(naive_var, rel=1e-6, abs=1e-6)
        assert stats.minimum == min(xs)
        assert stats.maximum == max(xs)

    @given(xs=st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False),
                       min_size=2, max_size=50),
           ys=st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False),
                       min_size=2, max_size=50))
    def test_merge_is_equivalent_to_concatenation(self, xs, ys):
        left, right, combined = RunningStats(), RunningStats(), RunningStats()
        left.extend(xs)
        right.extend(ys)
        combined.extend(xs + ys)
        merged = left.merge(right)
        assert merged.n == combined.n
        assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-9)
        assert merged.stdev == pytest.approx(combined.stdev, rel=1e-6, abs=1e-6)


class TestKeyNoteConditionProperties:
    _names = st.sampled_from(["uid", "calls", "load", "app_domain", "function"])

    @given(name=_names,
           value=st.integers(min_value=-100, max_value=100),
           threshold=st.integers(min_value=-100, max_value=100))
    def test_numeric_comparisons_agree_with_python(self, name, value, threshold):
        attrs = {name: value}
        for op, expected in (("<", value < threshold), ("<=", value <= threshold),
                             (">", value > threshold), (">=", value >= threshold),
                             ("==", value == threshold), ("!=", value != threshold)):
            result, steps = evaluate_condition(f"{name} {op} {threshold}", attrs)
            assert result is expected
            assert steps >= 1

    @given(a=st.booleans(), b=st.booleans())
    def test_boolean_connectives(self, a, b):
        attrs = {"a": a, "b": b}
        assert evaluate_condition("a && b", attrs)[0] is (a and b)
        assert evaluate_condition("a || b", attrs)[0] is (a or b)
        assert evaluate_condition("!a", attrs)[0] is (not a)
        assert evaluate_condition("!(a && b) || (a && b)", attrs)[0] is True
