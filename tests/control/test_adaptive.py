"""The AIMD batch controller: unit behaviour and traffic-engine integration."""

import pytest

from repro.control.adaptive import AdaptiveBatchController, AdaptiveConfig
from repro.errors import SimulationError
from repro.telemetry import Telemetry
from repro.workloads.traffic import TrafficSpec, run_traffic


def _drive(controller, *, gap_us, arrivals, flush_every):
    """Feed a fixed-rate arrival train, flushing every ``flush_every``."""
    t = 0.0
    for index in range(arrivals):
        t += gap_us
        controller.observe_arrival(t)
        if (index + 1) % flush_every == 0:
            controller.on_flush(flush_every, t)
    return t


class TestControllerUnit:
    def test_grows_additively_under_fast_arrivals(self):
        controller = AdaptiveBatchController(
            AdaptiveConfig(max_depth=32, increase_step=4))
        _drive(controller, gap_us=1.0, arrivals=200, flush_every=8)
        assert controller.depth == 32
        assert controller.grows >= 8
        assert controller.shrinks == 0
        # additive: each growth step moved the depth by increase_step
        depths = [depth for _, depth in controller.trajectory]
        steps = [b - a for a, b in zip(depths, depths[1:])]
        assert all(step == 4 for step in steps[:-1])

    def test_shrinks_multiplicatively_after_a_lull(self):
        controller = AdaptiveBatchController(
            AdaptiveConfig(max_depth=32, initial_depth=32))
        last = _drive(controller, gap_us=100.0, arrivals=12, flush_every=1)
        assert controller.depth == 1
        assert controller.shrinks >= 5
        depths = [depth for _, depth in controller.trajectory]
        # 32 -> 16 -> 8 -> 4 -> 2 -> 1: halving, not counting down
        assert depths == [32, 16, 8, 4, 2, 1]
        # and a long gap reports the lull so the engine drains the queue
        assert controller.observe_arrival(last + 500.0)

    def test_holds_inside_the_dead_band(self):
        config = AdaptiveConfig(grow_below_us=8.0, shrink_above_us=24.0,
                                initial_depth=4, max_depth=32)
        controller = AdaptiveBatchController(config)
        _drive(controller, gap_us=16.0, arrivals=64, flush_every=4)
        assert controller.depth == 4
        assert controller.grows == 0 and controller.shrinks == 0

    def test_bounds_are_respected(self):
        controller = AdaptiveBatchController(AdaptiveConfig(max_depth=2))
        _drive(controller, gap_us=0.5, arrivals=64, flush_every=2)
        assert controller.depth == 2
        controller = AdaptiveBatchController(
            AdaptiveConfig(max_depth=8, initial_depth=1))
        _drive(controller, gap_us=100.0, arrivals=16, flush_every=1)
        assert controller.depth == 1

    def test_first_flush_without_ewma_holds(self):
        controller = AdaptiveBatchController()
        controller.observe_arrival(1.0)         # a single arrival: no gap yet
        controller.on_flush(1, 1.0)
        assert controller.depth == controller.config.initial_depth

    def test_depth_changes_feed_the_telemetry_gauge(self):
        telemetry = Telemetry()
        controller = AdaptiveBatchController(
            AdaptiveConfig(max_depth=8), telemetry=telemetry, client=3)
        _drive(controller, gap_us=1.0, arrivals=32, flush_every=4)
        gauges = telemetry.snapshot()["gauges"]
        assert gauges["adaptive_batch_depth{client=3}"]["max"] == 8

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            AdaptiveConfig(min_depth=0)
        with pytest.raises(SimulationError):
            AdaptiveConfig(initial_depth=9, max_depth=8)
        with pytest.raises(SimulationError):
            AdaptiveConfig(grow_below_us=24.0, shrink_above_us=24.0)
        with pytest.raises(SimulationError):
            AdaptiveConfig(decrease_factor=1.0)
        with pytest.raises(SimulationError):
            AdaptiveConfig(ewma_alpha=0.0)


def _steady_spec(**overrides):
    defaults = dict(clients=1, modules=1, calls_per_client=256,
                    arrival="open", mean_interval_us=2.0, seed=5)
    defaults.update(overrides)
    return TrafficSpec(**defaults)


class TestTrafficIntegration:
    def test_spec_validation(self):
        with pytest.raises(SimulationError):
            TrafficSpec(adaptive_batch=True)                 # closed loop
        with pytest.raises(SimulationError):
            TrafficSpec(adaptive_batch=True, arrival="open", batch_size=4)
        with pytest.raises(SimulationError):
            TrafficSpec(adaptive_batch=True, arrival="open",
                        adaptive_max_depth=0)

    def test_depth1_floor_is_cycle_identical_to_single_path(self):
        """The AIMD floor: a max_depth=1 controller flushes every call
        through the paper's per-call dispatch, cycle for cycle."""
        static = run_traffic(_steady_spec(clients=2, modules=2,
                                          calls_per_client=16))
        adaptive = run_traffic(_steady_spec(clients=2, modules=2,
                                            calls_per_client=16,
                                            adaptive_batch=True,
                                            adaptive_max_depth=1))
        assert adaptive.total_cycles == static.total_cycles
        assert adaptive.latencies_us == static.latencies_us
        assert adaptive.queue_delays_us == static.queue_delays_us
        assert adaptive.denied_calls == static.denied_calls

    def test_converges_under_steady_poisson_arrivals(self):
        adaptive = run_traffic(_steady_spec(adaptive_batch=True,
                                            adaptive_max_depth=16))
        static = run_traffic(_steady_spec(batch_size=16))
        snapshot = adaptive.adaptive["per_client"][0]
        assert snapshot["depth"] == 16              # converged to the ceiling
        assert snapshot["grows"] >= 4 and snapshot["shrinks"] == 0
        # converged tail within 20% of the static depth it converged to
        assert adaptive.tail_mean_service_us() <= \
            static.mean_service_us * 1.2
        # and far better than unbatched dispatch
        single = run_traffic(_steady_spec())
        assert adaptive.mean_service_us < single.mean_service_us * 0.5

    def test_ramps_up_and_shrinks_back_across_mmpp_bursts(self):
        result = run_traffic(TrafficSpec(
            clients=1, modules=1, calls_per_client=400, arrival="mmpp",
            mean_interval_us=48.0, burst_interval_us=1.5,
            burst_on_us=400.0, burst_off_us=1200.0,
            adaptive_batch=True, adaptive_max_depth=32, seed=11))
        snapshot = result.adaptive["per_client"][0]
        assert snapshot["max_depth_reached"] >= 8      # ramped up in a burst
        assert snapshot["shrinks"] > 0                 # and came back down
        trajectory = snapshot["trajectory"]
        peak = 0
        fell_after_peak = False
        for _, depth in trajectory:
            if depth > peak:
                peak = depth
            elif peak >= 8 and depth <= peak // 2:
                fell_after_peak = True
        assert fell_after_peak

    def test_telemetry_never_changes_cycle_totals(self):
        plain = run_traffic(_steady_spec(adaptive_batch=True,
                                         adaptive_max_depth=16))
        observed = run_traffic(_steady_spec(adaptive_batch=True,
                                            adaptive_max_depth=16,
                                            telemetry=True))
        assert observed.total_cycles == plain.total_cycles
        assert observed.latencies_us == plain.latencies_us
        assert observed.metrics and not plain.metrics

    def test_leftover_queue_drains_at_end_of_run(self):
        # 13 calls with a deep ceiling: the tail flush must still issue all
        result = run_traffic(_steady_spec(calls_per_client=13,
                                          adaptive_batch=True,
                                          adaptive_max_depth=64))
        assert result.total_calls == 13
