"""Unit tests for the overload-protection control plane.

Everything in :mod:`repro.control.overload` is a pure state machine over
the virtual clock: admission buckets, circuit breakers and retry budgets
are tested here in isolation (no kernel), including the telemetry
mirroring contract and the AIMD controller's closed-loop p95 feed.
"""

from __future__ import annotations

import pytest

from repro.control.adaptive import AdaptiveBatchController, AdaptiveConfig
from repro.control.overload import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    OverloadConfig,
    OverloadController,
    RetryBudget,
    TokenBucket,
)
from repro.errors import SimulationError
from repro.telemetry.metrics import Telemetry


class TestOverloadConfig:
    def test_defaults_disable_everything(self):
        config = OverloadConfig()
        assert not config.admission_enabled
        assert not config.deadline_enabled
        assert not config.breaker_enabled
        assert not config.retry_enabled

    def test_each_knob_enables_only_its_mechanism(self):
        assert OverloadConfig(admission_rate_per_us=0.1,
                              admission_burst=4.0).admission_enabled
        assert OverloadConfig(deadline_us=10.0).deadline_enabled
        assert OverloadConfig(breaker_window_us=50.0).breaker_enabled
        assert OverloadConfig(retry_budget=3).retry_enabled

    @pytest.mark.parametrize("kwargs", [
        {"admission_rate_per_us": -1.0},
        {"admission_rate_per_us": 0.5},            # rate without burst >= 1
        {"deadline_us": -1.0},
        {"breaker_window_us": -1.0},
        {"breaker_window_us": 10.0, "breaker_failure_ratio": 0.0},
        {"breaker_window_us": 10.0, "breaker_failure_ratio": 1.5},
        {"breaker_window_us": 10.0, "breaker_min_samples": 0},
        {"breaker_window_us": 10.0, "breaker_open_us": 0.0},
        {"retry_budget": -1},
        {"retry_backoff_us": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(SimulationError):
            OverloadConfig(**kwargs)


class TestTokenBucket:
    def test_burst_then_refuse_then_refill(self):
        bucket = TokenBucket(rate_per_us=1.0, burst=3.0)
        # the full burst admits back-to-back at t=0
        for _ in range(3):
            ok, _ = bucket.admit(0.0)
            assert ok
        ok, _ = bucket.admit(0.0)
        assert not ok
        assert bucket.admitted == 3 and bucket.refused == 1
        # two virtual microseconds refill two tokens, not more
        ok, refilled = bucket.admit(2.0, tokens=2)
        assert ok and refilled
        ok, _ = bucket.admit(2.0)
        assert not ok

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_us=10.0, burst=2.0)
        bucket.admit(0.0, tokens=2)
        bucket.admit(1000.0)          # a long lull cannot overfill
        assert bucket.tokens <= 2.0

    def test_refilled_flag_only_when_tokens_added(self):
        bucket = TokenBucket(rate_per_us=1.0, burst=2.0)
        _, refilled = bucket.admit(0.0)
        assert not refilled            # full bucket: nothing to add
        _, refilled = bucket.admit(5.0)
        assert refilled

    def test_multi_token_refusal_counts_all_tokens(self):
        bucket = TokenBucket(rate_per_us=0.001, burst=2.0)
        ok, _ = bucket.admit(0.0, tokens=5)
        assert not ok
        assert bucket.refused == 5
        # the batch refusal did not drain the bucket
        ok, _ = bucket.admit(0.0, tokens=2)
        assert ok


class _SpyTelemetry(Telemetry):
    def __init__(self):
        super().__init__()
        self.breaker_states = []
        self.admissions = []

    def record_breaker_state(self, backend, state):
        self.breaker_states.append((backend, state))

    def record_admission(self, client_pid, admitted, n=1):
        self.admissions.append((client_pid, admitted, n))


def _config(**kwargs):
    base = dict(breaker_window_us=100.0, breaker_failure_ratio=0.5,
                breaker_min_samples=4, breaker_open_us=50.0,
                breaker_half_open_probes=2)
    base.update(kwargs)
    return OverloadConfig(**base)


class TestCircuitBreaker:
    def test_trips_at_failure_ratio_with_min_samples(self):
        breaker = CircuitBreaker("b", _config())
        # three failures alone are below min_samples: no trip yet
        for t in (1.0, 2.0, 3.0):
            assert breaker.record(t, False) is None
        assert breaker.state == BREAKER_CLOSED
        assert breaker.record(4.0, False) == BREAKER_OPEN
        assert breaker.trips == 1

    def test_open_fast_fails_until_open_period_elapses(self):
        breaker = CircuitBreaker("b", _config())
        for t in range(1, 5):
            breaker.record(float(t), False)
        allowed, transition = breaker.allow(10.0)
        assert not allowed and transition is None
        assert breaker.fast_fails == 1
        # open_us later the breaker half-opens and admits a probe
        allowed, transition = breaker.allow(60.0)
        assert allowed and transition == BREAKER_HALF_OPEN

    def test_half_open_probe_success_closes_and_clears_window(self):
        breaker = CircuitBreaker("b", _config())
        for t in range(1, 5):
            breaker.record(float(t), False)
        breaker.allow(60.0)
        assert breaker.record(61.0, True) == BREAKER_CLOSED
        assert breaker.snapshot()["window"] == 0
        # one fresh failure cannot re-trip: the bad history is gone
        assert breaker.record(62.0, False) is None

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker("b", _config())
        for t in range(1, 5):
            breaker.record(float(t), False)
        breaker.allow(60.0)
        assert breaker.record(61.0, False) == BREAKER_OPEN
        assert breaker.trips == 2

    def test_half_open_bounds_concurrent_probes(self):
        breaker = CircuitBreaker("b", _config())
        for t in range(1, 5):
            breaker.record(float(t), False)
        assert breaker.allow(60.0)[0]
        assert breaker.allow(60.0)[0]          # two probes configured
        allowed, _ = breaker.allow(60.0)
        assert not allowed

    def test_window_prunes_old_outcomes(self):
        breaker = CircuitBreaker("b", _config())
        for t in (1.0, 2.0, 3.0):
            breaker.record(t, False)
        # 200us later those failures have aged out of the 100us window:
        # three fresh successes + one failure stay under the trip ratio
        for t in (200.0, 201.0, 202.0):
            assert breaker.record(t, True) is None
        assert breaker.record(203.0, False) is None
        assert breaker.state == BREAKER_CLOSED

    def test_open_ignores_outcomes(self):
        breaker = CircuitBreaker("b", _config())
        for t in range(1, 5):
            breaker.record(float(t), False)
        window = breaker.snapshot()["window"]
        assert breaker.record(10.0, True) is None
        assert breaker.snapshot()["window"] == window

    def test_transitions_mirrored_to_telemetry(self):
        telemetry = _SpyTelemetry()
        breaker = CircuitBreaker("b", _config(), telemetry=telemetry)
        for t in range(1, 5):
            breaker.record(float(t), False)
        breaker.allow(60.0)
        breaker.record(61.0, True)
        assert telemetry.breaker_states == [
            ("b", BREAKER_OPEN), ("b", BREAKER_HALF_OPEN),
            ("b", BREAKER_CLOSED)]


class TestRetryBudget:
    def test_consumes_then_exhausts(self):
        budget = RetryBudget(2, backoff_base_us=4.0)
        assert budget.try_consume() and budget.try_consume()
        assert not budget.try_consume()
        assert budget.remaining == 0
        assert budget.consumed == 2 and budget.exhaustions == 1

    def test_backoff_is_deterministic_exponential(self):
        budget = RetryBudget(4, backoff_base_us=8.0)
        assert [budget.backoff_us(n) for n in (1, 2, 3)] == [8.0, 16.0, 32.0]

    def test_zero_budget_never_retries(self):
        budget = RetryBudget(0)
        assert not budget.try_consume()


class TestOverloadController:
    def test_per_client_buckets_isolate(self):
        controller = OverloadController(OverloadConfig(
            admission_rate_per_us=0.001, admission_burst=1.0))
        assert controller.admit(1, 0.0)[0]
        assert not controller.admit(1, 0.0)[0]     # client 1 drained...
        assert controller.admit(2, 0.0)[0]         # ...client 2 untouched
        assert controller.admitted == 2 and controller.refused == 1

    def test_admissions_mirrored_to_telemetry(self):
        telemetry = _SpyTelemetry()
        controller = OverloadController(
            OverloadConfig(admission_rate_per_us=0.001, admission_burst=1.0),
            telemetry=telemetry)
        controller.admit(7, 0.0)
        controller.admit(7, 0.0)
        assert telemetry.admissions == [(7, True, 1), (7, False, 1)]

    def test_snapshot_is_json_shaped(self):
        import json
        controller = OverloadController(OverloadConfig(
            admission_rate_per_us=0.5, admission_burst=2.0))
        controller.admit(3, 1.0)
        json.dumps(controller.snapshot())


class TestAdaptiveP95Feed:
    """The closed-loop feed: observed service p95 overrides rate-AIMD."""

    def _controller(self, target, p95):
        config = AdaptiveConfig(initial_depth=8,
                                service_p95_target_us=target)
        controller = AdaptiveBatchController(config)
        controller.service_p95_supplier = lambda: p95
        # arrivals fast enough that the rate-only AIMD would grow
        for t in (0.0, 2.0, 4.0, 6.0):
            controller.observe_arrival(t)
        return controller

    def test_p95_over_target_shrinks_despite_fast_arrivals(self):
        controller = self._controller(target=30.0, p95=100.0)
        controller.on_flush(8, 10.0)
        assert controller.depth == 4
        assert controller.p95_shrinks == 1 and controller.grows == 0

    def test_p95_under_target_leaves_rate_aimd_in_charge(self):
        controller = self._controller(target=30.0, p95=5.0)
        controller.on_flush(8, 10.0)
        assert controller.depth > 8
        assert controller.p95_shrinks == 0 and controller.grows == 1

    def test_no_supplier_means_rate_only_even_with_target(self):
        config = AdaptiveConfig(initial_depth=8,
                                service_p95_target_us=30.0)
        controller = AdaptiveBatchController(config)
        for t in (0.0, 2.0, 4.0, 6.0):
            controller.observe_arrival(t)
        controller.on_flush(8, 10.0)
        assert controller.depth > 8 and controller.p95_shrinks == 0

    def test_shrink_floors_at_min_depth(self):
        config = AdaptiveConfig(initial_depth=1,
                                service_p95_target_us=30.0)
        controller = AdaptiveBatchController(config)
        controller.service_p95_supplier = lambda: 100.0
        for t in (0.0, 2.0, 4.0):
            controller.observe_arrival(t)
        controller.on_flush(1, 6.0)
        assert controller.depth == 1 and controller.p95_shrinks == 0
