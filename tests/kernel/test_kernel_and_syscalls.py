"""Tests for the kernel facade, the trap layer and the standard syscalls."""

import pytest

from repro.errors import SimulationError
from repro.hw.cpu import Ring
from repro.kernel.cred import unprivileged
from repro.kernel.errno import Errno, fail, ok
from repro.kernel.kernel import Kernel, make_booted_kernel
from repro.kernel.proc import ProcState
from repro.kernel.syscall import SYS_getpid
from repro.obj.image import make_function_image
from repro.obj.linker import link
from repro.obj.loader import build_load_plan
from repro.sim import costs


@pytest.fixture
def kernel():
    return make_booted_kernel()


@pytest.fixture
def proc(kernel):
    return kernel.create_process("user", cred=unprivileged(1000))


class TestSyscallResult:
    def test_ok_and_fail(self):
        assert ok(5).unwrap() == 5
        result = fail(Errno.ENOENT)
        assert result.failed and not result.ok
        with pytest.raises(OSError):
            result.unwrap()


class TestTrapLayer:
    def test_unbooted_kernel_rejects_syscalls(self):
        kernel = Kernel()
        with pytest.raises(SimulationError):
            kernel.create_process("x")

    def test_boot_idempotent(self, kernel):
        assert kernel.boot() is kernel

    def test_getpid_by_name_and_number(self, kernel, proc):
        assert kernel.syscall(proc, "getpid").value == proc.pid
        assert kernel.syscall(proc, SYS_getpid).value == proc.pid

    def test_unknown_syscall_is_enosys(self, kernel, proc):
        assert kernel.syscall(proc, "not_a_syscall").errno is Errno.ENOSYS

    def test_trap_costs_charged(self, kernel, proc):
        before = kernel.machine.clock.checkpoint()
        kernel.syscall(proc, "getpid")
        cycles = kernel.machine.clock.since(before).cycles
        expected = (kernel.machine.spec.profile.cost(costs.TRAP_ENTRY)
                    + kernel.machine.spec.profile.cost(costs.SYSCALL_DEMUX)
                    + kernel.machine.spec.profile.cost(costs.FUNC_BODY_GETPID)
                    + kernel.machine.spec.profile.cost(costs.TRAP_EXIT))
        assert cycles == expected

    def test_native_getpid_matches_paper_latency(self, kernel, proc):
        mark = kernel.machine.clock.checkpoint()
        kernel.syscall(proc, "getpid")
        us = kernel.machine.clock.since(mark).microseconds(kernel.machine.spec.mhz)
        assert us == pytest.approx(0.658, abs=0.01)

    def test_ring_restored_after_syscall(self, kernel, proc):
        kernel.syscall(proc, "getpid")
        assert kernel.machine.cpu.ring is Ring.USER

    def test_invocation_counter(self, kernel, proc):
        kernel.syscall(proc, "getpid")
        kernel.syscall(proc, "getpid")
        assert kernel.syscalls.count("getpid") == 2

    def test_dead_process_cannot_syscall(self, kernel, proc):
        kernel.exit_process(proc)
        with pytest.raises(SimulationError):
            kernel.syscall(proc, "getpid")

    def test_duplicate_registration_rejected(self, kernel):
        with pytest.raises(SimulationError):
            kernel.syscalls.register(20, "getpid", lambda *a: ok(0))

    def test_handler_must_return_syscall_result(self, kernel, proc):
        kernel.syscalls.register(999, "bad_call", lambda k, p: 42)
        with pytest.raises(SimulationError):
            kernel.syscall(proc, "bad_call")


class TestProcessLifecycle:
    def test_create_process_layout(self, kernel, proc):
        assert proc.pid >= 2
        assert proc.state in (ProcState.RUNNABLE, ProcState.RUNNING)
        names = [e.name for e in proc.vmspace.vm_map]
        assert "data" in names and "stack" in names

    def test_fork_returns_child_with_copied_memory(self, kernel, proc):
        from repro.kernel.uvm.layout import DATA_BASE
        proc.vmspace.write(DATA_BASE, b"parent!")
        result = kernel.syscall(proc, "fork")
        child = kernel.procs.lookup(result.value)
        assert child.ppid == proc.pid
        assert child.vmspace.read(DATA_BASE, 7) == b"parent!"
        child.vmspace.write(DATA_BASE, b"child!!")
        assert proc.vmspace.read(DATA_BASE, 7) == b"parent!"

    def test_getppid(self, kernel, proc):
        child = kernel.fork_process(proc)
        assert kernel.syscall(child, "getppid").value == proc.pid

    def test_exit_and_wait(self, kernel, proc):
        child = kernel.fork_process(proc)
        assert kernel.syscall(proc, "wait4", child.pid).errno is Errno.EAGAIN
        kernel.syscall(child, "exit", 7)
        assert child.state is ProcState.ZOMBIE
        assert kernel.syscall(proc, "wait4", child.pid).value == 7
        assert kernel.procs.lookup(child.pid) is None

    def test_wait_for_non_child(self, kernel, proc):
        stranger = kernel.create_process("stranger", cred=unprivileged(1000))
        assert kernel.syscall(proc, "wait4", stranger.pid).errno is Errno.ESRCH

    def test_exec_replaces_image_and_runs_hooks(self, kernel, proc):
        events = []
        kernel.register_hook("exec", lambda k, p, plan: events.append(p.pid))
        obj = make_function_image("prog.o", {"start": 32, "main": 32, "exit": 16},
                                  calls=[("start", "main")])
        plan = build_load_plan(link("newprog", [obj],
                                    allow_undefined=["exit"]).image)
        result = kernel.syscall(proc, "execve", plan, "newprog")
        assert result.ok
        assert proc.name == "newprog"
        assert events == [proc.pid]
        assert any(e.uobj is not None for e in proc.vmspace.vm_map)

    def test_exec_with_no_plan_fails(self, kernel, proc):
        assert kernel.syscall(proc, "execve", None).errno is Errno.EINVAL

    def test_exit_reparents_children(self, kernel, proc):
        child = kernel.fork_process(proc)
        grandchild = kernel.fork_process(child)
        kernel.exit_process(child)
        assert grandchild.ppid == 0

    def test_unknown_hook_event_rejected(self, kernel):
        with pytest.raises(SimulationError):
            kernel.register_hook("bogus", lambda: None)


class TestMemorySyscalls:
    def test_obreak_grows_and_returns_break(self, kernel, proc):
        old = proc.vmspace.brk
        result = kernel.syscall(proc, "obreak", old + 8192)
        assert result.ok and result.value >= old + 8192

    def test_obreak_rejects_huge_request(self, kernel, proc):
        assert kernel.syscall(proc, "obreak", 0x9000_0000).errno is Errno.ENOMEM

    def test_mmap_and_munmap(self, kernel, proc):
        addr = 0x2000_0000
        result = kernel.syscall(proc, "mmap", addr, 8192)
        assert result.ok and result.value == addr
        proc.vmspace.write(addr, b"mapped")
        assert kernel.syscall(proc, "munmap", addr, 8192).ok
        assert kernel.syscall(proc, "munmap", addr, 8192).errno is Errno.EINVAL

    def test_mmap_rejects_unaligned(self, kernel, proc):
        assert kernel.syscall(proc, "mmap", 0x2000_0001, 4096).errno is Errno.EINVAL
