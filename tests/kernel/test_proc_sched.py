"""Tests for processes, credentials, the process table and the scheduler."""

import pytest

from repro.errors import SimulationError
from repro.hw.machine import make_paper_machine
from repro.kernel.cred import ROOT, Ucred, unprivileged
from repro.kernel.proc import Proc, ProcFlag, ProcState, ProcTable
from repro.kernel.sched import Scheduler
from repro.kernel.uvm.page import PageAllocator
from repro.kernel.uvm.space import VMSpace
from repro.sim import costs


def make_proc(pid=10, name="p", flags=ProcFlag.NONE, cred=None):
    machine = make_paper_machine()
    vmspace = VMSpace(machine=machine, allocator=PageAllocator(128), name=name)
    return Proc(pid=pid, name=name, cred=cred or unprivileged(1000),
                vmspace=vmspace, state=ProcState.RUNNABLE, flags=flags)


class TestUcred:
    def test_root(self):
        assert ROOT.is_root
        assert not unprivileged(5).is_root

    def test_unprivileged_rejects_uid_zero(self):
        with pytest.raises(ValueError):
            unprivileged(0)

    def test_group_membership(self):
        cred = Ucred(uid=5, gid=5, groups=(10, 20))
        assert cred.member_of(5) and cred.member_of(20)
        assert not cred.member_of(99)

    def test_with_uid_and_describe(self):
        cred = unprivileged(7, groups=(1,))
        assert cred.with_uid(8).uid == 8
        assert "uid=7" in cred.describe()


class TestProc:
    def test_flags(self):
        proc = make_proc()
        assert not proc.is_smod_handle
        proc.set_flag(ProcFlag.SMOD_HANDLE)
        assert proc.is_smod_handle
        proc.clear_flag(ProcFlag.SMOD_HANDLE)
        assert not proc.is_smod_handle

    def test_effective_client_for_handle(self):
        client = make_proc(pid=1, name="client")
        handle = make_proc(pid=2, name="handle", flags=ProcFlag.SMOD_HANDLE)
        handle.smod_peer = client
        assert handle.effective_client() is client
        assert client.effective_client() is client

    def test_effective_client_without_peer_is_self(self):
        handle = make_proc(pid=2, flags=ProcFlag.SMOD_HANDLE)
        assert handle.effective_client() is handle

    def test_alive_and_describe(self):
        proc = make_proc()
        assert proc.alive
        proc.state = ProcState.ZOMBIE
        assert not proc.alive
        assert "zombie" in proc.describe()


class TestProcTable:
    def test_pid_allocation_monotonic(self):
        table = ProcTable()
        assert table.allocate_pid() == ProcTable.FIRST_USER_PID
        assert table.allocate_pid() == ProcTable.FIRST_USER_PID + 1

    def test_insert_lookup_remove(self):
        table = ProcTable()
        proc = make_proc(pid=table.allocate_pid())
        table.insert(proc)
        assert table.lookup(proc.pid) is proc
        assert proc.pid in table
        table.remove(proc.pid)
        assert table.lookup(proc.pid) is None

    def test_duplicate_pid_rejected(self):
        table = ProcTable()
        proc = make_proc(pid=5)
        table.insert(proc)
        with pytest.raises(SimulationError):
            table.insert(make_proc(pid=5))

    def test_children_of(self):
        table = ProcTable()
        parent = make_proc(pid=5)
        child = make_proc(pid=6)
        child.ppid = 5
        table.insert(parent)
        table.insert(child)
        assert [p.pid for p in table.children_of(5)] == [6]

    def test_capacity_enforced(self):
        table = ProcTable(max_procs=1)
        table.insert(make_proc(pid=table.allocate_pid()))
        with pytest.raises(SimulationError):
            table.allocate_pid()


class TestScheduler:
    @pytest.fixture
    def machine(self):
        return make_paper_machine()

    @pytest.fixture
    def sched(self, machine):
        return Scheduler(machine)

    def test_switch_charges_context_switch(self, sched, machine):
        a, b = make_proc(pid=1), make_proc(pid=2)
        sched.switch_to(a)
        before = machine.meter.count(costs.CONTEXT_SWITCH)
        sched.switch_to(b)
        assert machine.meter.count(costs.CONTEXT_SWITCH) == before + 1
        assert sched.current is b
        assert a.state is ProcState.RUNNABLE
        assert b.state is ProcState.RUNNING

    def test_switch_to_self_is_free(self, sched, machine):
        a = make_proc(pid=1)
        sched.switch_to(a)
        count = machine.meter.count(costs.CONTEXT_SWITCH)
        sched.switch_to(a)
        assert machine.meter.count(costs.CONTEXT_SWITCH) == count

    def test_switch_to_dead_rejected(self, sched):
        a = make_proc(pid=1)
        a.state = ProcState.ZOMBIE
        with pytest.raises(SimulationError):
            sched.switch_to(a)

    def test_sleep_and_wakeup(self, sched):
        a = make_proc(pid=1)
        sched.switch_to(a)
        sched.sleep(a, "msgwait:1")
        assert a.state is ProcState.SLEEPING
        assert sched.current is None
        assert sched.sleeping_on("msgwait:1") == [a]
        woken = sched.wakeup("msgwait:1")
        assert woken == [a]
        assert a.state is ProcState.RUNNABLE
        assert sched.run_queue_length() == 1

    def test_wakeup_empty_channel(self, sched):
        assert sched.wakeup("nothing") == []

    def test_make_runnable_idempotent(self, sched):
        a = make_proc(pid=1)
        sched.make_runnable(a)
        sched.make_runnable(a)
        assert sched.run_queue_length() == 1

    def test_suspend_keeps_process_off_ready_queue(self, sched):
        """The §4.4 'remove the client from the ready queue' hardening."""
        a = make_proc(pid=1)
        sched.make_runnable(a)
        sched.suspend(a)
        assert sched.run_queue_length() == 0
        sched.sleep(a, "w")
        sched.wakeup("w")
        assert sched.run_queue_length() == 0    # still suspended
        sched.resume(a)
        assert sched.run_queue_length() == 1
        assert not sched.is_suspended(a)

    def test_remove_cleans_all_structures(self, sched):
        a = make_proc(pid=1)
        sched.make_runnable(a)
        sched.switch_to(a)
        sched.remove(a)
        assert sched.current is None
        assert sched.run_queue_length() == 0


class TestSuspendSleepInterleavings:
    """Suspend/sleep/wakeup/resume orderings around the §4.4 hardening.

    Regression tests for the dropped-wakeup bug: a proc woken while
    suspended must be re-enqueued at resume time, whichever path (wakeup or
    make_runnable) delivered the wakeup.
    """

    @pytest.fixture
    def sched(self):
        return Scheduler(make_paper_machine())

    def test_sleep_wakeup_while_suspended_then_resume(self, sched):
        a = make_proc(pid=1)
        sched.make_runnable(a)
        sched.suspend(a)
        sched.sleep(a, "w")
        sched.wakeup("w")
        assert sched.run_queue_length() == 0    # still suspended
        sched.resume(a)
        assert a in sched.ready
        assert a.state is ProcState.RUNNABLE

    def test_sleep_resume_then_wakeup(self, sched):
        a = make_proc(pid=1)
        sched.make_runnable(a)
        sched.suspend(a)
        sched.sleep(a, "w")
        sched.resume(a)
        assert a.state is ProcState.SLEEPING    # still blocked, not lost
        assert sched.run_queue_length() == 0
        sched.wakeup("w")
        assert a in sched.ready

    def test_make_runnable_wakeup_while_suspended_not_lost(self, sched):
        """The dropped-wakeup case: a signal-style make_runnable on a proc
        sleeping under suspension used to leave it SLEEPING in a channel
        nobody would ever fire again."""
        a = make_proc(pid=1)
        sched.make_runnable(a)
        sched.suspend(a)
        sched.sleep(a, "w")
        sched.make_runnable(a)                  # e.g. signal delivery
        assert a.state is ProcState.RUNNABLE
        assert sched.sleeping_on("w") == []     # pulled out of the channel
        assert sched.run_queue_length() == 0    # but still suspended
        sched.resume(a)
        assert a in sched.ready

    def test_suspend_runnable_then_resume(self, sched):
        a = make_proc(pid=1)
        sched.make_runnable(a)
        sched.suspend(a)
        assert sched.run_queue_length() == 0
        sched.resume(a)
        assert a in sched.ready

    def test_double_suspend_resume_is_idempotent(self, sched):
        a = make_proc(pid=1)
        sched.make_runnable(a)
        sched.suspend(a)
        sched.suspend(a)
        sched.resume(a)
        sched.resume(a)
        assert sched.run_queue_length() == 1
        assert not sched.is_suspended(a)

    def test_remove_clears_deferred_wakeup(self, sched):
        a = make_proc(pid=1)
        sched.make_runnable(a)
        sched.suspend(a)
        sched.sleep(a, "w")
        sched.wakeup("w")
        a.state = ProcState.ZOMBIE              # the proc died while suspended
        sched.remove(a)
        sched.resume(a)
        assert sched.run_queue_length() == 0
        assert a.pid not in sched._deferred_wakeups
