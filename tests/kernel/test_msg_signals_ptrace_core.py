"""Tests for SysV message queues, signals, ptrace policy and core dumps."""

import pytest

from repro.kernel.cred import unprivileged
from repro.kernel.errno import Errno
from repro.kernel.kernel import make_booted_kernel
from repro.kernel.proc import ProcFlag, ProcState
from repro.kernel.ptrace import PtraceRequest
from repro.kernel.signals import Signal
from repro.kernel.sysv_msg import IPC_CREAT, IPC_NOWAIT, IPC_PRIVATE, Message
from repro.sim import costs


@pytest.fixture
def kernel():
    return make_booted_kernel()


@pytest.fixture
def proc(kernel):
    return kernel.create_process("user", cred=unprivileged(1000))


class TestSysVMsg:
    def test_private_queues_are_distinct(self, kernel, proc):
        q1 = kernel.msg.msgget(proc, IPC_PRIVATE)
        q2 = kernel.msg.msgget(proc, IPC_PRIVATE)
        assert q1 != q2

    def test_keyed_queue_reuse(self, kernel, proc):
        q1 = kernel.msg.msgget(proc, 1234, IPC_CREAT)
        q2 = kernel.msg.msgget(proc, 1234)
        assert q1 == q2

    def test_missing_keyed_queue_without_creat(self, kernel, proc):
        with pytest.raises(KeyError):
            kernel.msg.msgget(proc, 9999)

    def test_send_recv_roundtrip_charges_costs(self, kernel, proc):
        msqid = kernel.msg.msgget(proc, IPC_PRIVATE)
        before_send = kernel.machine.meter.count(costs.MSGQ_SEND)
        kernel.msg.msgsnd(proc, msqid, Message(mtype=1, payload=(1, 2, 3)))
        assert kernel.machine.meter.count(costs.MSGQ_SEND) == before_send + 1
        message = kernel.msg.msgrcv(proc, msqid, 1)
        assert message.payload == (1, 2, 3)
        assert kernel.machine.meter.count(costs.MSGQ_RECV) >= 1

    def test_recv_by_type(self, kernel, proc):
        msqid = kernel.msg.msgget(proc, IPC_PRIVATE)
        kernel.msg.msgsnd(proc, msqid, Message(mtype=1, payload=(1,)))
        kernel.msg.msgsnd(proc, msqid, Message(mtype=2, payload=(2,)))
        assert kernel.msg.msgrcv(proc, msqid, 2).payload == (2,)
        assert kernel.msg.msgrcv(proc, msqid, 0).payload == (1,)

    def test_recv_empty_nowait_raises(self, kernel, proc):
        msqid = kernel.msg.msgget(proc, IPC_PRIVATE)
        with pytest.raises(BlockingIOError):
            kernel.msg.msgrcv(proc, msqid, 0, IPC_NOWAIT)

    def test_recv_empty_blocking_returns_none(self, kernel, proc):
        msqid = kernel.msg.msgget(proc, IPC_PRIVATE)
        assert kernel.msg.msgrcv(proc, msqid, 0) is None

    def test_send_wakes_blocked_receiver(self, kernel, proc):
        other = kernel.create_process("receiver", cred=unprivileged(1000))
        msqid = kernel.msg.msgget(proc, IPC_PRIVATE)
        kernel.msg.block_receiver(other, msqid)
        assert other.state is ProcState.SLEEPING
        kernel.msg.msgsnd(proc, msqid, Message(mtype=1))
        assert other.state is ProcState.RUNNABLE

    def test_remove_requires_owner_or_root(self, kernel, proc):
        other = kernel.create_process("other", cred=unprivileged(2000))
        msqid = kernel.msg.msgget(proc, IPC_PRIVATE)
        with pytest.raises(PermissionError):
            kernel.msg.msgctl_remove(other, msqid)
        kernel.msg.msgctl_remove(proc, msqid)
        assert kernel.msg.lookup(msqid) is None

    def test_queue_full_nowait(self, kernel, proc):
        msqid = kernel.msg.msgget(proc, IPC_PRIVATE)
        queue = kernel.msg.lookup(msqid)
        queue.max_bytes = 8
        kernel.msg.msgsnd(proc, msqid, Message(mtype=1, payload=(1, 2)))
        with pytest.raises(BlockingIOError):
            kernel.msg.msgsnd(proc, msqid, Message(mtype=1, payload=(3,)),
                              flags=IPC_NOWAIT)

    def test_syscall_wrappers(self, kernel, proc):
        msqid = kernel.syscall(proc, "msgget", IPC_PRIVATE).unwrap()
        assert kernel.syscall(proc, "msgsnd", msqid, 7, (9,)).ok
        message = kernel.syscall(proc, "msgrcv", msqid, 7).unwrap()
        assert message.payload == (9,)
        assert kernel.syscall(proc, "msgctl", msqid).ok
        assert kernel.syscall(proc, "msgrcv", 999).errno is Errno.EINVAL


class TestSignals:
    def test_post_to_handle_redirects_to_client(self, kernel, proc):
        handle = kernel.fork_process(proc, flags=ProcFlag.SMOD_HANDLE)
        handle.smod_peer = proc
        target = kernel.signals.post(handle, Signal.SIGTERM)
        assert target is proc
        assert Signal.SIGTERM in kernel.signals.pending(proc)
        assert not kernel.signals.pending(handle)

    def test_fatal_default_kills_process(self, kernel, proc):
        kernel.signals.post(proc, Signal.SIGTERM)
        kernel.signals.deliver_pending(proc)
        assert proc.state is ProcState.ZOMBIE
        assert proc.exit_status == 128 + int(Signal.SIGTERM)

    def test_ignored_signal_is_dropped(self, kernel, proc):
        kernel.signals.set_action(proc, Signal.SIGTERM, "ignore")
        kernel.signals.post(proc, Signal.SIGTERM)
        kernel.signals.deliver_pending(proc)
        assert proc.alive

    def test_handler_invoked(self, kernel, proc):
        seen = []
        kernel.signals.set_action(proc, Signal.SIGUSR1,
                                  lambda p, s: seen.append((p.pid, s)))
        kernel.signals.post(proc, Signal.SIGUSR1)
        kernel.signals.deliver_pending(proc)
        assert seen == [(proc.pid, Signal.SIGUSR1)]
        assert proc.alive

    def test_sigkill_cannot_be_caught(self, kernel, proc):
        with pytest.raises(PermissionError):
            kernel.signals.set_action(proc, Signal.SIGKILL, "ignore")

    def test_kill_syscall_permissions(self, kernel, proc):
        victim = kernel.create_process("victim", cred=unprivileged(2000))
        result = kernel.syscall(proc, "kill", victim.pid, int(Signal.SIGTERM))
        assert result.errno is Errno.EPERM
        root_proc = kernel.create_process("rootproc")
        assert kernel.syscall(root_proc, "kill", victim.pid,
                              int(Signal.SIGTERM)).ok
        assert kernel.syscall(proc, "kill", 9999, int(Signal.SIGTERM)).errno is Errno.ESRCH


class TestPtracePolicy:
    def test_handle_cannot_be_traced_even_by_root(self, kernel, proc):
        handle = kernel.fork_process(proc, flags=ProcFlag.SMOD_HANDLE | ProcFlag.NOTRACE)
        root_proc = kernel.create_process("debugger")          # root cred
        decision = kernel.ptrace.check(root_proc, handle, PtraceRequest.ATTACH)
        assert not decision.allowed
        assert decision.errno is Errno.EPERM
        assert kernel.ptrace.denials

    def test_same_uid_may_trace_ordinary_process(self, kernel, proc):
        tracer = kernel.create_process("tracer", cred=unprivileged(1000))
        assert kernel.ptrace.check(tracer, proc, PtraceRequest.ATTACH).allowed

    def test_different_uid_denied(self, kernel, proc):
        tracer = kernel.create_process("tracer", cred=unprivileged(2000))
        assert not kernel.ptrace.check(tracer, proc, PtraceRequest.ATTACH).allowed

    def test_ptrace_syscall(self, kernel, proc):
        handle = kernel.fork_process(proc, flags=ProcFlag.SMOD_HANDLE)
        result = kernel.syscall(proc, "ptrace", PtraceRequest.ATTACH, handle.pid)
        assert result.errno is Errno.EPERM
        assert kernel.syscall(proc, "ptrace", PtraceRequest.ATTACH, 9999).errno is Errno.ESRCH


class TestCoreDumps:
    def test_handle_never_dumps(self, kernel, proc):
        handle = kernel.fork_process(proc, flags=ProcFlag.SMOD_HANDLE | ProcFlag.NOCORE)
        policy = kernel.coredump
        assert policy.dump(handle) is None
        assert handle.pid in policy.suppressed

    def test_smod_client_suppressed_too(self, kernel, proc):
        proc.set_flag(ProcFlag.SMOD_CLIENT)
        assert kernel.coredump.dump(proc) is None

    def test_ordinary_process_dumps_without_nocore_entries(self, kernel, proc):
        proc.vmspace.map_secret_region()          # a no_core entry
        image = kernel.coredump.dump(proc)
        assert image is not None
        names = [name for name, _, _ in image.segments]
        assert "smod_secret" not in names
        assert image.total_bytes > 0

    def test_crash_process_uses_policy(self, kernel, proc):
        handle = kernel.fork_process(proc, flags=ProcFlag.SMOD_HANDLE)
        assert kernel.crash_process(handle) is None
        assert not handle.alive
