"""Telemetry plane: histogram correctness, registry views, null overhead."""

import gc
import math
import sys

import pytest

from repro.sim.costs import CostMeter, PENTIUM_III_599
from repro.sim.clock import Stopwatch, VirtualClock
from repro.sim.rng import DeterministicRNG
from repro.sim.stats import jain_fairness_index
from repro.telemetry import (
    NULL_TELEMETRY,
    LogHistogram,
    MetricsRegistry,
    Telemetry,
    make_telemetry,
    render_snapshot,
)


def _reference_quantile(samples, p):
    """The same rank statistic LogHistogram.quantile targets, sample-exact."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


class TestLogHistogram:
    def test_quantile_error_is_within_the_documented_bound(self):
        rng = DeterministicRNG(123)
        histogram = LogHistogram()
        samples = [rng.lognormal(10.0, 1.2) for _ in range(5000)]
        for sample in samples:
            histogram.record(sample)
        for p in (1, 10, 25, 50, 75, 90, 95, 99, 99.9):
            true = _reference_quantile(samples, p)
            estimate = histogram.quantile(p)
            relative_error = abs(estimate - true) / true
            assert relative_error <= histogram.relative_error_bound + 1e-9, \
                f"p{p}: {estimate} vs {true}"

    def test_quantile_spans_ten_orders_of_magnitude(self):
        histogram = LogHistogram()
        for exponent in range(-4, 7):
            histogram.record(10.0 ** exponent)
        assert histogram.quantile(0) == pytest.approx(1e-4, rel=0.19)
        assert histogram.quantile(100) == pytest.approx(1e6, rel=0.19)
        # sparse dict buckets, not a dense array over the span
        assert histogram.bucket_count == 11

    def test_mean_min_max_are_exact(self):
        histogram = LogHistogram()
        for value in (1.0, 2.0, 4.0, 8.0):
            histogram.record(value)
        assert histogram.mean == pytest.approx(3.75)
        assert histogram.minimum == 1.0
        assert histogram.maximum == 8.0
        assert histogram.count == 4

    def test_non_positive_samples_land_in_the_zero_bucket(self):
        histogram = LogHistogram()
        histogram.record(0.0, n=3)
        histogram.record(5.0)
        assert histogram.count == 4
        assert histogram.quantile(50) == 0.0
        assert histogram.quantile(99) == pytest.approx(5.0, rel=0.19)

    def test_empty_histogram_is_quiet(self):
        histogram = LogHistogram()
        assert histogram.quantile(99) == 0.0
        assert histogram.mean == 0.0
        assert histogram.summary()["count"] == 0

    def test_merge_equals_recording_into_one(self):
        rng = DeterministicRNG(7)
        separate = [LogHistogram() for _ in range(3)]
        combined = LogHistogram()
        for index, histogram in enumerate(separate):
            for _ in range(500):
                value = rng.exponential(4.0 * (index + 1))
                histogram.record(value)
                combined.record(value)
        merged = LogHistogram.merged(separate)
        assert merged.count == combined.count
        assert merged.total == pytest.approx(combined.total)
        for p in (50, 95, 99):
            assert merged.quantile(p) == combined.quantile(p)

    def test_merge_rejects_mismatched_bases(self):
        with pytest.raises(ValueError):
            LogHistogram(base=2.0).merge(LogHistogram(base=1.5))


class TestRegistryAndViews:
    def test_labelled_metrics_are_stable_identities(self):
        registry = MetricsRegistry()
        assert registry.counter("x", a=1) is registry.counter("x", a=1)
        assert registry.counter("x", a=1) is not registry.counter("x", a=2)
        registry.counter("x", a=1).inc(3)
        assert registry.snapshot()["counters"]["x{a=1}"] == 3

    def test_per_session_histograms_merge_into_per_module_view(self):
        telemetry = Telemetry()
        for session_id in (1, 2, 3):
            for call in range(session_id * 10):
                telemetry.record_dispatch(session_id, "libm", 6.4 + call)
        telemetry.record_dispatch(9, "libother", 1.0)
        merged = telemetry.module_latency("libm")
        assert merged.count == 10 + 20 + 30
        # the view matches a single histogram fed every session's samples
        direct = LogHistogram()
        for session_id in (1, 2, 3):
            for call in range(session_id * 10):
                direct.record(6.4 + call)
        assert merged.quantile(95) == direct.quantile(95)

    def test_snapshot_round_trips_and_renders(self):
        telemetry = Telemetry()
        telemetry.record_dispatch(1, "libm", 6.4)
        telemetry.record_batch(1, 8, 10.0)
        telemetry.record_handle_queue(5, 8)
        telemetry.record_queue_delay(5, 2, 0.25)
        telemetry.cache_event("hits", 3)
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["decision_cache.hits"] == 3
        text = render_snapshot(snapshot)
        assert "dispatch_latency_us" in text
        assert "pool_queue_delay_us{client=2,handle=5}" in text

    def test_cost_meter_mirrors_charges_into_telemetry(self):
        clock = VirtualClock()
        meter = CostMeter(PENTIUM_III_599, clock)
        telemetry = Telemetry()
        meter.telemetry = telemetry
        before = clock.cycles
        meter.charge("trap_entry", 2)
        assert telemetry.op_counts["trap_entry"] == 2
        assert telemetry.op_cycles["trap_entry"] == clock.cycles - before

    def test_stopwatch_reads_without_charging(self):
        clock = VirtualClock()
        watch = Stopwatch(clock, mhz=599.0)
        clock.advance(599)
        assert watch.elapsed_us() == pytest.approx(1.0)
        events_before = clock.events
        watch.elapsed_us()
        watch.restart()
        assert clock.events == events_before


class TestJainIndex:
    def test_even_allocation_is_one(self):
        assert jain_fairness_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_n(self):
        assert jain_fairness_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_degenerate_inputs_are_fair_by_convention(self):
        assert jain_fairness_index([]) == 1.0
        assert jain_fairness_index([0.0, 0.0]) == 1.0


class TestNullTelemetry:
    def test_disabled_flag_and_empty_snapshot(self):
        assert not NULL_TELEMETRY.enabled
        assert NULL_TELEMETRY.snapshot() == {}
        assert make_telemetry(False) is NULL_TELEMETRY
        assert make_telemetry(True).enabled

    def test_disabled_recording_creates_no_metrics(self):
        NULL_TELEMETRY.record_dispatch(1, "libm", 6.4)
        NULL_TELEMETRY.record_batch(1, 8, 10.0)
        NULL_TELEMETRY.record_handle_queue(5, 8)
        NULL_TELEMETRY.record_queue_delay(5, 2, 0.25)
        NULL_TELEMETRY.cache_event("hits")
        NULL_TELEMETRY.op_charge("trap_entry", 1, 170)
        NULL_TELEMETRY.record_depth(0, 16)
        assert len(NULL_TELEMETRY.registry) == 0
        assert NULL_TELEMETRY.op_counts == {}

    def test_disabled_recording_is_zero_allocation(self):
        telemetry = NULL_TELEMETRY

        def spin(n):
            for _ in range(n):
                telemetry.record_dispatch(1, "libm", 6.4)
                telemetry.record_batch(1, 8, 10.0)
                telemetry.record_handle_queue(5, 8)
                telemetry.record_queue_delay(5, 2, 0.25)
                telemetry.cache_event("hits")
                telemetry.op_charge("trap_entry", 1, 170)

        spin(1000)                      # warm any lazily-built interpreter state
        gc.collect()
        before = sys.getallocatedblocks()
        spin(5000)
        gc.collect()
        after = sys.getallocatedblocks()
        # 30k recording calls must not retain a single new allocation
        # (small slack absorbs interpreter-internal block jitter)
        assert after - before <= 8
