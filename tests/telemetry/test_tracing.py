"""The span tracer: flight recorder, sampling, drain, export.

Mirrors the metrics-plane contract tests: the disabled path allocates
nothing, the enabled path never touches the clock, the ring is bounded,
and everything is deterministic under a fixed seed.
"""

import gc
import json
import sys

import pytest

from repro.sim.clock import VirtualClock
from repro.telemetry.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    TIER_FAST_FORWARD,
    TIER_REPLAY,
    Tracer,
    make_tracer,
)
from repro.telemetry.trace_export import (
    chrome_trace,
    critical_path_report,
    render_critical_path,
    segment_of,
    validate_chrome_trace,
    write_chrome_trace,
)


def make(**kwargs):
    """A tracer over a fresh 1 MHz clock: one cycle == one microsecond."""
    clock = VirtualClock()
    return clock, Tracer(clock, 1.0, **kwargs)


class TestSpanLifecycle:
    def test_start_finish_stamps_virtual_time(self):
        clock, tracer = make()
        clock.advance(10)
        span = tracer.start("dispatch.call", client_id=3, session_id=7)
        clock.advance(25)
        tracer.finish(span, tier=TIER_REPLAY)
        assert span.start_us == 10.0
        assert span.end_us == 35.0
        assert span.duration_us == 25.0
        assert span.tier == TIER_REPLAY
        assert tracer.spans() == [span]

    def test_children_link_and_inherit_attribution(self):
        clock, tracer = make()
        root = tracer.start("serve.call", client_id=9, session_id=4)
        child = tracer.start("serve.resolve")
        assert child.parent_id == root.span_id
        assert child.client_id == 9
        assert child.session_id == 4
        tracer.finish(child)
        grandchild_free = tracer.interval("broker.queue_wait", 0.0, 1.0)
        assert grandchild_free.parent_id == root.span_id
        tracer.finish(root)
        assert tracer.open_spans() == []

    def test_tracing_never_charges_the_clock(self):
        clock, tracer = make()
        clock.advance(100)
        cycles, events = clock.cycles, clock.events
        span = tracer.start("dispatch.call")
        tracer.interval("broker.queue_wait", 1.0, 2.0)
        tracer.aggregate("dispatch.call", span_us=1.0, n=10)
        tracer.finish(span)
        tracer.now_us()
        assert (clock.cycles, clock.events) == (cycles, events)

    def test_out_of_order_finish_is_tolerated(self):
        clock, tracer = make()
        outer = tracer.start("serve.call")
        inner = tracer.start("dispatch.call")
        tracer.finish(outer)          # mismatched: outer closed first
        tracer.finish(inner)
        tracer.finish(None)           # a site that started nothing
        assert tracer.open_spans() == []
        assert tracer.stats()["finished"] == 2


class TestFlightRecorder:
    def test_ring_wraparound_keeps_last_n(self):
        clock, tracer = make(capacity=4)
        for index in range(10):
            tracer.interval("dispatch.call", float(index), float(index) + 0.5)
        kept = tracer.spans()
        assert len(kept) == 4
        assert tracer.stats()["dropped"] == 6
        # oldest-first, and exactly the last four recorded
        assert [span.start_us for span in kept] == [6.0, 7.0, 8.0, 9.0]

    def test_ring_below_capacity_is_chronological(self):
        clock, tracer = make(capacity=16)
        for index in range(5):
            tracer.interval("dispatch.call", float(index), float(index))
        assert [span.start_us for span in tracer.spans()] == \
            [0.0, 1.0, 2.0, 3.0, 4.0]
        assert tracer.stats()["dropped"] == 0

    def test_drain_closes_and_flags_open_spans(self):
        clock, tracer = make()
        outer = tracer.start("serve.call")
        clock.advance(5)
        inner = tracer.start("dispatch.call")
        clock.advance(5)
        assert tracer.drain() == 2
        assert tracer.open_spans() == []
        assert outer.unclosed and inner.unclosed
        assert outer.end_us == 10.0 and inner.end_us == 10.0
        assert {span.span_id for span in tracer.spans()} == \
            {outer.span_id, inner.span_id}
        assert tracer.drain() == 0

    def test_aggregate_covers_the_window(self):
        clock, tracer = make()
        clock.advance(100)
        span = tracer.aggregate("dispatch.call", span_us=5.0, n=10,
                                client_id=2)
        assert span.start_us == 50.0
        assert span.end_us == 100.0
        assert span.count == 10
        assert span.tier == TIER_FAST_FORWARD

    def test_constructor_validation(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            Tracer(clock, 1.0, capacity=0)
        with pytest.raises(ValueError):
            Tracer(clock, 1.0, sample_every=0)
        with pytest.raises(ValueError):
            make_tracer(True)          # a live tracer needs clock + MHz


class TestSampling:
    def test_sample_every_one_keeps_everything(self):
        clock, tracer = make()
        assert all(tracer.client_sampled(client) for client in range(32))

    def test_system_work_is_always_kept(self):
        clock, tracer = make(sample_every=1000)
        assert tracer.client_sampled(-1)

    def test_decisions_are_deterministic_per_seed(self):
        _, a = make(sample_every=4, seed=77)
        _, b = make(sample_every=4, seed=77)
        ids = range(64)
        assert [a.client_sampled(i) for i in ids] == \
            [b.client_sampled(i) for i in ids]

    def test_roughly_one_in_k(self):
        clock, tracer = make(sample_every=4)
        kept = sum(tracer.client_sampled(client) for client in range(256))
        assert 256 * 0.10 < kept < 256 * 0.50

    def test_children_inherit_the_root_decision(self):
        clock, tracer = make(sample_every=10_000, seed=1)
        unsampled = next(client for client in range(64)
                         if not tracer.client_sampled(client))
        root = tracer.start("serve.call", client_id=unsampled)
        child = tracer.start("dispatch.call")
        assert tracer.interval("broker.queue_wait", 0.0, 1.0) is None
        tracer.finish(child)
        tracer.finish(root)
        assert tracer.spans() == []
        assert tracer.stats()["sampled_out"] == 3


class TestNullTracer:
    def test_shared_singleton_and_disabled(self):
        assert make_tracer(False) is NULL_TRACER
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True

    def test_every_tap_is_a_no_op(self):
        tracer = NullTracer()
        assert tracer.start("dispatch.call") is None
        tracer.finish(None)
        assert tracer.interval("broker.queue_wait", 0.0, 1.0) is None
        assert tracer.aggregate("dispatch.call", span_us=1.0, n=5) is None
        assert tracer.spans() == []
        assert tracer.open_spans() == []
        assert tracer.drain() == 0
        assert tracer.stats() == {}
        assert tracer.snapshot() == {}
        assert tracer.client_sampled(0) is False

    def test_disabled_path_is_allocation_free(self):
        tracer = NULL_TRACER

        def spin(rounds: int) -> None:
            for _ in range(rounds):
                if tracer.enabled:
                    span = tracer.start("dispatch.call")
                    tracer.finish(span)
                if tracer.enabled:
                    tracer.interval("broker.queue_wait", 0.0, 1.0)
                if tracer.enabled:
                    tracer.aggregate("dispatch.call", span_us=1.0, n=8)

        spin(1000)                  # warm any lazily-built interpreter state
        gc.collect()
        before = sys.getallocatedblocks()
        spin(5000)
        gc.collect()
        after = sys.getallocatedblocks()
        # matching the NULL_TELEMETRY contract: no retained allocations
        assert after - before <= 8


def _span(span_id, parent_id, kind, start, end, count=1):
    span = Span(span_id, parent_id, kind, start, count=count)
    span.end_us = end
    return span


class TestCriticalPath:
    def test_segment_mapping(self):
        assert segment_of("broker.queue_wait") == "queue"
        assert segment_of("pool.checkout") == "queue"
        assert segment_of("serve.resolve") == "resolve"
        assert segment_of("serve.health") == "resolve"
        assert segment_of("dispatch.call") == "service"
        assert segment_of("dispatch.batch") == "service"
        assert segment_of("rpc.serve_call") == "rpc"
        assert segment_of("serve.call") == "switch"

    def test_self_time_attribution_sums_to_root(self):
        spans = [
            _span(1, None, "rpc.serve_call", 0.0, 100.0),
            _span(2, 1, "serve.resolve", 10.0, 20.0),
            _span(3, 1, "dispatch.call", 30.0, 90.0),
        ]
        report = critical_path_report(spans)
        assert report["requests"] == 1
        segments = report["segments"]
        assert segments["resolve"]["mean"] == pytest.approx(10.0)
        assert segments["service"]["mean"] == pytest.approx(60.0)
        # root self time (100 - 10 - 60) is uncovered switch/transport
        assert segments["switch"]["mean"] == pytest.approx(30.0)
        total_share = sum(s["share"] for s in segments.values())
        assert total_share == pytest.approx(1.0)

    def test_childless_root_keeps_its_own_segment(self):
        report = critical_path_report(
            [_span(1, None, "broker.queue_wait", 0.0, 40.0)])
        assert list(report["segments"]) == ["queue"]
        assert report["segments"]["queue"]["share"] == pytest.approx(1.0)

    def test_aggregate_roots_weigh_per_call(self):
        report = critical_path_report(
            [_span(1, None, "dispatch.call", 0.0, 40.0, count=4)])
        assert report["requests"] == 4
        assert report["total_us"]["mean"] == pytest.approx(10.0)

    def test_orphaned_child_is_treated_as_root(self):
        # parent evicted from the ring: the child still reports
        report = critical_path_report(
            [_span(9, 1234, "dispatch.call", 0.0, 5.0)])
        assert report["roots"] == 1

    def test_render_is_printable(self):
        spans = [_span(1, None, "rpc.serve_call", 0.0, 100.0),
                 _span(2, 1, "dispatch.call", 10.0, 90.0)]
        text = render_critical_path(critical_path_report(spans))
        assert "requests: 1" in text
        assert "service" in text
        empty = render_critical_path(critical_path_report([]))
        assert "was tracing enabled" in empty


class TestChromeExport:
    def test_events_carry_the_required_fields(self):
        spans = [
            _span(1, None, "rpc.serve_call", 0.0, 100.0),
            _span(2, 1, "dispatch.call", 10.0, 90.0),
        ]
        spans[0].client_id = 5
        payload = chrome_trace(spans)
        assert validate_chrome_trace(payload) is None
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        for event in complete:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)

    def test_validation_catches_malformed_payloads(self):
        assert validate_chrome_trace({}) is not None
        assert validate_chrome_trace({"traceEvents": []}) is not None
        bad_dur = {"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 0}]}
        assert validate_chrome_trace(bad_dur) is not None
        bad_ph = {"traceEvents": [
            {"name": "x", "ph": "Q", "ts": 0, "dur": 1, "pid": 1, "tid": 0}]}
        assert validate_chrome_trace(bad_ph) is not None

    def test_write_round_trips_through_json(self, tmp_path):
        spans = [_span(1, None, "dispatch.call", 0.0, 10.0)]
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), spans)
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        assert validate_chrome_trace(payload) is None


class TestTracerSnapshot:
    def test_snapshot_is_json_serializable(self):
        clock, tracer = make()
        span = tracer.start("dispatch.call", client_id=1)
        clock.advance(3)
        tracer.finish(span)
        tracer.start("serve.call")
        tracer.drain()
        snapshot = tracer.snapshot()
        encoded = json.loads(json.dumps(snapshot))
        assert encoded["stats"]["recorded"] == 2
        unclosed = [s for s in encoded["spans"] if s.get("unclosed")]
        assert len(unclosed) == 1
