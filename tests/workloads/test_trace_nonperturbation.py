"""Tracing is compiled out of the numbers: traced == untraced, byte for byte.

Mirror of ``tests/secmodule/test_trace_replay.py``'s differential-identity
harness, with the toggle being ``TrafficSpec.tracing`` instead of the
replay tier: every accounting observable — cycles, events, per-op counts,
latencies, queue delays, cache state — must be identical with the span
tracer attached or not, across every driver the engine has.
"""

import pytest

from repro.errors import SimulationError
from repro.telemetry.tracing import TIER_FAST_FORWARD
from repro.workloads.traffic import TrafficEngine, TrafficSpec


def run_engine(spec: TrafficSpec):
    engine = TrafficEngine(spec)
    result = engine.run()
    return engine, result


def accounting(engine, result):
    """Everything that must be identical with tracing on and off."""
    return {
        "cycles": engine.machine.clock.cycles,
        "events": engine.machine.clock.events,
        "ops": dict(engine.machine.meter.op_counts),
        "cache": result.cache_stats,
        "total_calls": result.total_calls,
        "denied": result.denied_calls,
        "latencies": result.latencies_us,
        "queue_delays": result.queue_delays_us,
        "dispatched": engine.extension.dispatcher.calls_dispatched,
        "broker": result.broker_stats,
        "sessions": result.session_count,
    }


def assert_traced_identical(**spec_kwargs):
    """Run the spec untraced and traced; the books must match exactly."""
    off_engine, off_result = run_engine(TrafficSpec(**spec_kwargs))
    on_engine, on_result = run_engine(
        TrafficSpec(tracing=True, **spec_kwargs))
    assert accounting(off_engine, off_result) == \
        accounting(on_engine, on_result)
    assert off_result.trace_spans == [] and off_result.trace_stats == {}
    assert on_result.trace_stats["started"] > 0
    assert on_result.trace_stats["open"] == 0     # everything drained
    return on_result


class TestDirectDispatch:
    def test_closed_loop(self):
        result = assert_traced_identical(
            clients=4, modules=2, calls_per_client=40)
        kinds = {span.kind for span in result.trace_spans}
        assert "dispatch.call" in kinds

    def test_open_loop(self):
        assert_traced_identical(
            clients=4, modules=2, calls_per_client=40, arrival="open")

    def test_mmpp(self):
        assert_traced_identical(
            clients=4, modules=2, calls_per_client=40, arrival="mmpp")

    def test_fast_forward_windows_become_aggregate_spans(self):
        # depth-1 open-loop single-module: the fused fast-forward driver
        result = assert_traced_identical(
            clients=4, modules=1, calls_per_client=64, arrival="open")
        aggregates = [span for span in result.trace_spans
                      if span.tier == TIER_FAST_FORWARD]
        assert aggregates
        assert sum(span.count for span in aggregates) > len(aggregates)

    def test_batched(self):
        result = assert_traced_identical(
            clients=3, modules=2, calls_per_client=32, batch_size=4)
        assert any(span.kind == "dispatch.batch"
                   for span in result.trace_spans)

    def test_pooled_handles(self):
        assert_traced_identical(
            clients=4, modules=2, calls_per_client=24,
            handle_policy="pooled", pool_max_sessions=4)

    def test_adaptive_batching(self):
        assert_traced_identical(
            clients=3, modules=2, calls_per_client=32, arrival="open",
            adaptive_batch=True, adaptive_max_depth=8)


class TestViaService:
    def test_mmpp(self):
        result = assert_traced_identical(
            clients=4, modules=2, calls_per_client=16, arrival="mmpp",
            via_service=True)
        kinds = {span.kind for span in result.trace_spans}
        assert {"rpc.attach", "rpc.serve_call", "serve.call",
                "serve.resolve", "dispatch.call"} <= kinds

    def test_closed_loop_multi_tenant(self):
        assert_traced_identical(
            clients=4, modules=2, calls_per_client=12, via_service=True,
            service_tenants=2)

    def test_spans_form_trees(self):
        result = assert_traced_identical(
            clients=2, modules=1, calls_per_client=8, arrival="mmpp",
            via_service=True)
        by_id = {span.span_id: span for span in result.trace_spans}
        children = [span for span in result.trace_spans
                    if span.parent_id is not None]
        assert children
        for span in children:
            parent = by_id.get(span.parent_id)
            if parent is None:
                continue              # evicted from the ring
            assert parent.start_us <= span.start_us
            assert span.end_us <= parent.end_us + 1e-9


class TestObservationCoexistence:
    def test_tracing_with_telemetry(self):
        # both observation planes at once must still not move the clock
        assert_traced_identical(
            clients=3, modules=2, calls_per_client=24, arrival="open",
            telemetry=True)

    def test_sampled_tracing_is_also_free(self):
        result = assert_traced_identical(
            clients=6, modules=2, calls_per_client=16,
            trace_sample_every=3)
        assert result.trace_stats["sampled_out"] > 0

    def test_bounded_recorder_is_also_free(self):
        result = assert_traced_identical(
            clients=4, modules=2, calls_per_client=32, trace_capacity=16)
        assert result.trace_stats["recorded"] == 16
        assert result.trace_stats["dropped"] > 0


class TestSpecValidation:
    def test_tracing_rejects_sharded_runs(self):
        with pytest.raises(SimulationError):
            TrafficSpec(clients=4, tracing=True, shards=2)

    def test_sampling_knobs_validate(self):
        with pytest.raises(SimulationError):
            TrafficSpec(tracing=True, trace_sample_every=0)
        with pytest.raises(SimulationError):
            TrafficSpec(tracing=True, trace_capacity=-1)
