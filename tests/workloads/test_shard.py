"""Sharded parallel traffic: partitioning, the deterministic merge, and
worker-count independence.

The contract under test (docs/performance.md, "Sharded parallel
execution"): the merged result is byte-identical whether the shards run
sequentially in process or on multiprocessing workers; per-client service
accounting survives partitioning client for client; seat-fairness keys
are namespaced per shard; and overlapping partitions are a hard error.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import SimulationError
from repro.secmodule.dispatch import DispatchConfig
from repro.workloads.shard import (
    SEAT_NAMESPACE,
    merge_outcomes,
    partition_clients,
    run_traffic_sharded,
    shard_runs,
)
from repro.workloads.traffic import TrafficEngine, TrafficSpec


def sharded_spec(**overrides) -> TrafficSpec:
    base = dict(clients=6, modules=2, calls_per_client=24, shards=2)
    base.update(overrides)
    return TrafficSpec(**base)


def merged_accounting(sharded):
    """Everything the worker-count identity must cover."""
    result = sharded.result
    return {
        "total_calls": result.total_calls,
        "denied": result.denied_calls,
        "elapsed_us": result.elapsed_us,
        "total_cycles": result.total_cycles,
        "machine_cycles": sharded.machine_cycles,
        "clock_events": sharded.clock_events,
        "op_counts": sharded.op_counts,
        "per_client_mean_us": result.per_client_mean_us,
        "latencies": result.latencies_us,
        "delays": result.queue_delays_us,
        "cache": result.cache_stats,
        "broker": result.broker_stats,
        "trace": sharded.trace_stats,
        "sessions": result.session_count,
        "handles": result.handle_count,
        "metrics": result.metrics,
        "fairness": result.seat_fairness,
    }


class TestPartition:
    def test_round_robin_assignment(self):
        assert partition_clients(7, 3) == [(0, 3, 6), (1, 4), (2, 5)]
        assert partition_clients(4, 1) == [(0, 1, 2, 3)]
        assert partition_clients(4, 4) == [(0,), (1,), (2,), (3,)]

    def test_rejects_invalid_shard_counts(self):
        with pytest.raises(SimulationError):
            partition_clients(4, 0)
        with pytest.raises(SimulationError):
            partition_clients(4, 5)

    def test_shard_runs_keep_global_client_ids(self):
        runs = shard_runs(sharded_spec(clients=5, shards=2))
        assert [r.client_ids for r in runs] == [(0, 2, 4), (1, 3)]
        for run in runs:
            assert run.spec.shards == 1
            assert run.spec.clients == len(run.client_ids)


class TestWorkerCountIndependence:
    def test_in_process_vs_worker_pool_merge_byte_identical(self):
        spec = sharded_spec(arrival="open", telemetry=True, shards=3)
        one = run_traffic_sharded(spec, workers=1)
        pooled = run_traffic_sharded(spec, workers=3)
        assert one.workers == 1 and pooled.workers == 3
        assert merged_accounting(one) == merged_accounting(pooled)

    def test_workers_clamped_to_shard_count(self):
        sharded = run_traffic_sharded(sharded_spec(shards=2), workers=16)
        assert sharded.workers == 2

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(SimulationError):
            run_traffic_sharded(sharded_spec(), workers=0)


class TestMergeContract:
    def test_per_client_service_accounting_survives_partitioning(self):
        """Closed-loop clients are independent: each client's issue/deny
        counters and latency vector must come out identical whether it ran
        in the serial engine or inside any shard."""
        spec = sharded_spec(arrival="closed", shards=3)
        serial_engine = TrafficEngine(replace(spec, shards=1))
        serial_engine.run()
        serial_clients = {s.index: s for s in serial_engine.clients}

        sharded = run_traffic_sharded(spec, workers=1)
        for outcome in sharded.outcomes:
            for cid in outcome.client_ids:
                serial = serial_clients[cid]
                assert outcome.calls_issued[cid] == serial.calls_issued
                assert outcome.calls_denied[cid] == serial.calls_denied
                assert outcome.latencies_us[cid] == serial.latencies_us

        # ... and the merge reassembles them in global client-id order
        expected = []
        for cid in sorted(serial_clients):
            expected.extend(serial_clients[cid].latencies_us)
        assert list(sharded.result.latencies_us) == expected

    def test_counters_sum_and_elapsed_is_max(self):
        sharded = run_traffic_sharded(sharded_spec(shards=2), workers=1)
        outcomes = sharded.outcomes
        result = sharded.result
        assert result.total_cycles == sum(o.total_cycles for o in outcomes)
        assert result.elapsed_us == max(o.elapsed_us for o in outcomes)
        assert result.session_count == sum(o.session_count
                                           for o in outcomes)
        assert result.total_calls == sum(
            sum(o.calls_issued.values()) for o in outcomes)

    def test_seat_fairness_keys_namespaced_per_shard(self):
        # open-loop + telemetry: the broker's per-seat delay report engages
        spec = sharded_spec(clients=6, shards=2, telemetry=True,
                            arrival="open", handle_policy="pooled",
                            pool_max_sessions=3)
        sharded = run_traffic_sharded(spec, workers=1)
        fairness = sharded.result.seat_fairness
        assert fairness
        shard_indices = {key // SEAT_NAMESPACE for key in fairness}
        assert shard_indices == {0, 1}

    def test_overlapping_client_ids_rejected(self):
        spec = sharded_spec(shards=2)
        sharded = run_traffic_sharded(spec, workers=1)
        clone = replace(sharded.outcomes[1],
                        client_ids=sharded.outcomes[0].client_ids)
        with pytest.raises(SimulationError):
            merge_outcomes(spec, [sharded.outcomes[0], clone])

    def test_fast_forward_active_inside_shards(self):
        """The sharded engine runs the same tiered dispatch: hot keys
        fast-forward inside each shard and the stats merge."""
        spec = sharded_spec(arrival="open", calls_per_client=40)
        sharded = run_traffic_sharded(
            spec, dispatch_config=DispatchConfig(), workers=1)
        stats = sharded.trace_stats
        assert stats["records"] > 0
        assert stats["fast_forward_calls"] > 0
