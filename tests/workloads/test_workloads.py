"""Tests for the microbenchmark drivers and policy workloads."""

import pytest

from repro.secmodule.policy import synthetic_chain
from repro.workloads.microbench import (
    PAPER_SPECS,
    run_native_getpid,
    run_rpc_testincr,
    run_smod_getpid,
    run_smod_testincr,
)
from repro.workloads.policies import deep_delegation_engine, run_keynote_policy


class TestSpecs:
    def test_paper_specs_match_figure8_counts(self):
        assert PAPER_SPECS["getpid"].calls_per_trial == 1_000_000
        assert PAPER_SPECS["smod_getpid"].calls_per_trial == 1_000_000
        assert PAPER_SPECS["smod_testincr"].calls_per_trial == 1_000_000
        assert PAPER_SPECS["rpc_testincr"].calls_per_trial == 100_000
        assert all(spec.trials == 10 for spec in PAPER_SPECS.values())

    def test_scaled_overrides_only_what_is_given(self):
        spec = PAPER_SPECS["getpid"].scaled(trials=2)
        assert spec.trials == 2
        assert spec.calls_per_trial == 1_000_000
        assert spec.sample_calls == PAPER_SPECS["getpid"].sample_calls


class TestDrivers:
    def test_native_getpid_summary(self):
        spec = PAPER_SPECS["getpid"].scaled(trials=2, sample_calls=8)
        summary = run_native_getpid(spec, seed=1)
        assert summary.num_trials == 2
        assert summary.mean_us_per_call == pytest.approx(0.658, abs=0.01)

    def test_smod_testincr_summary(self):
        spec = PAPER_SPECS["smod_testincr"].scaled(trials=2, sample_calls=8)
        summary = run_smod_testincr(spec=spec, seed=2)
        assert summary.mean_us_per_call == pytest.approx(6.407, abs=0.4)

    def test_smod_getpid_slightly_slower_than_testincr(self):
        getpid = run_smod_getpid(
            spec=PAPER_SPECS["smod_getpid"].scaled(trials=1, sample_calls=8), seed=3)
        testincr = run_smod_testincr(
            spec=PAPER_SPECS["smod_testincr"].scaled(trials=1, sample_calls=8), seed=3)
        assert getpid.mean_us_per_call > testincr.mean_us_per_call

    def test_rpc_summary(self):
        spec = PAPER_SPECS["rpc_testincr"].scaled(trials=2, sample_calls=8)
        summary = run_rpc_testincr(spec, seed=4)
        assert summary.mean_us_per_call == pytest.approx(63.2, rel=0.06)

    def test_determinism_same_seed(self):
        spec = PAPER_SPECS["smod_testincr"].scaled(trials=2, sample_calls=8)
        a = run_smod_testincr(spec=spec, seed=9)
        b = run_smod_testincr(spec=spec, seed=9)
        assert a.per_call_samples == b.per_call_samples

    def test_jitter_mean_preserving(self):
        spec = PAPER_SPECS["smod_getpid"].scaled(trials=4, sample_calls=8)
        summary = run_smod_getpid(spec=spec, seed=10)
        factors = [t.jitter_factor for t in summary.trials]
        assert sum(factors) / len(factors) == pytest.approx(1.0, abs=1e-9)

    def test_policy_argument_slows_calls(self):
        spec = PAPER_SPECS["smod_testincr"].scaled(trials=1, sample_calls=8)
        baseline = run_smod_testincr(spec=spec, seed=11)
        from repro.workloads.microbench import run_smod_function
        with_policy = run_smod_function("test_incr", args=(41,), spec=spec,
                                        seed=11, policy=synthetic_chain(16))
        assert with_policy.mean_us_per_call > baseline.mean_us_per_call


class TestKeyNoteWorkload:
    def test_deep_delegation_engine_grants_final_licensee(self):
        engine = deep_delegation_engine(3, licensee="alice")
        result = engine.query("alice", {"app_domain": "SecModule", "calls": 1})
        assert result.value == "_MAX_TRUST"

    def test_keynote_sweep_cost_grows_with_depth(self):
        sweep = run_keynote_policy(depths=(0, 6), trials=1, sample_calls=6)
        assert sweep.points[0].mean_us_per_call < sweep.points[1].mean_us_per_call
