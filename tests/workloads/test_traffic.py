"""Tests for the multi-client traffic engine."""

import pytest

from repro.secmodule.dispatch import DispatchConfig
from repro.workloads.traffic import (
    TrafficEngine,
    TrafficSpec,
    build_traffic_module,
    run_traffic,
    traffic_policy,
)


def small_spec(**overrides):
    defaults = dict(clients=4, modules=2, calls_per_client=6, seed=1234)
    defaults.update(overrides)
    return TrafficSpec(**defaults)


class TestTrafficDeterminism:
    def test_same_seed_replays_identically(self):
        a = run_traffic(small_spec())
        b = run_traffic(small_spec())
        assert a.total_cycles == b.total_cycles
        assert a.latencies_us == b.latencies_us
        assert a.denied_calls == b.denied_calls
        assert a.cache_stats == b.cache_stats

    def test_different_seed_differs(self):
        a = run_traffic(small_spec(seed=1))
        b = run_traffic(small_spec(seed=2))
        # the call mix and interleaving are seed-driven
        assert (a.total_cycles != b.total_cycles
                or a.latencies_us != b.latencies_us)

    def test_open_loop_deterministic_too(self):
        a = run_traffic(small_spec(arrival="open"))
        b = run_traffic(small_spec(arrival="open"))
        assert a.total_cycles == b.total_cycles
        assert a.latencies_us == b.latencies_us


class TestTrafficMechanics:
    def test_issues_full_schedule(self):
        spec = small_spec()
        result = run_traffic(spec)
        assert result.total_calls == spec.clients * spec.calls_per_client
        assert len(result.latencies_us) == result.total_calls
        assert result.calls_per_second > 0

    def test_denied_slice_of_the_mix(self):
        result = run_traffic(small_spec(calls_per_client=16))
        # the default mix sends ~10% of calls to the denied test_null
        assert 0 < result.denied_calls < result.total_calls

    def test_multi_session_table_population(self):
        spec = small_spec()
        engine = TrafficEngine(spec)
        engine.build()
        manager = engine.extension.sessions
        assert len(manager.active_sessions()) == spec.clients * spec.modules
        assert sum(manager.shard_sizes()) == spec.clients * spec.modules
        for state in engine.clients:
            assert len(manager.for_client(state.program.proc)) == spec.modules

    def test_single_session_mode(self):
        spec = small_spec(multi_session=False)
        result = run_traffic(spec)
        assert result.session_count == spec.clients
        assert result.total_calls == spec.clients * spec.calls_per_client

    def test_open_loop_records_queue_delays(self):
        spec = small_spec(arrival="open", mean_interval_us=1.0)
        result = run_traffic(spec)
        assert len(result.queue_delays_us) == \
            spec.clients * spec.calls_per_client
        # with arrivals faster than service some calls must queue
        assert any(d > 0 for d in result.queue_delays_us)
        assert result.queue_delay_percentile(99) >= \
            result.queue_delay_percentile(50)
        # closed-loop runs carry no queueing record
        assert len(run_traffic(small_spec()).queue_delays_us) == 0

    def test_decision_cache_reduces_cycles(self):
        spec = small_spec(calls_per_client=12)
        cached = run_traffic(spec, dispatch_config=DispatchConfig(
            use_decision_cache=True))
        uncached = run_traffic(spec, dispatch_config=DispatchConfig(
            use_decision_cache=False))
        assert cached.cache_stats["hits"] > 0
        assert uncached.cache_stats["hits"] == 0
        assert cached.cycles_per_call < uncached.cycles_per_call

    def test_quota_policy_chain_disables_caching(self):
        result = run_traffic(small_spec(policy_kind="quota"))
        assert result.cache_stats["hits"] == 0
        assert result.cache_stats["entries"] == 0


class TestBurstyArrivals:
    def test_mmpp_runs_full_schedule_deterministically(self):
        spec = small_spec(arrival="mmpp", calls_per_client=8)
        a = run_traffic(spec)
        b = run_traffic(spec)
        assert a.total_calls == spec.clients * spec.calls_per_client
        assert a.total_cycles == b.total_cycles
        assert a.latencies_us == b.latencies_us

    def test_mmpp_records_queue_delays(self):
        spec = small_spec(arrival="mmpp", calls_per_client=8,
                          burst_interval_us=1.0)
        result = run_traffic(spec)
        assert len(result.queue_delays_us) == \
            spec.clients * spec.calls_per_client

    def test_mmpp_burstier_than_open_poisson(self):
        """Same mean OFF interval: the MMPP trace's queueing delay tail
        must dominate the plain Poisson trace's."""
        common = dict(clients=8, calls_per_client=16, seed=77,
                      mean_interval_us=40.0)
        poisson = run_traffic(TrafficSpec(arrival="open", **common))
        bursty = run_traffic(TrafficSpec(arrival="mmpp",
                                         burst_interval_us=1.0,
                                         burst_on_us=200.0,
                                         burst_off_us=200.0, **common))
        assert bursty.queue_delay_percentile(99) > \
            poisson.queue_delay_percentile(99)


class TestBatchedTraffic:
    def test_batched_run_issues_full_schedule(self):
        spec = small_spec(batch_size=4, calls_per_client=10)
        result = run_traffic(spec)
        assert result.total_calls == spec.clients * spec.calls_per_client
        assert len(result.latencies_us) == result.total_calls

    def test_batching_reduces_cycles_per_call(self):
        base = small_spec(calls_per_client=16)
        batched = small_spec(calls_per_client=16, batch_size=8)
        a = run_traffic(base)
        b = run_traffic(batched)
        assert b.cycles_per_call < a.cycles_per_call

    def test_batched_run_deterministic(self):
        spec = small_spec(batch_size=4, calls_per_client=12)
        a = run_traffic(spec)
        b = run_traffic(spec)
        assert a.total_cycles == b.total_cycles
        assert a.denied_calls == b.denied_calls

    def test_batch_size_validation(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            TrafficSpec(batch_size=0)


class TestShardLockAccounting:
    def test_traffic_charges_shard_locks(self):
        from repro.sim import costs
        engine = TrafficEngine(small_spec())
        engine.run()
        manager = engine.extension.sessions
        assert manager.charge_shard_locks
        assert manager.shard_lock_acquisitions > 0
        assert engine.machine.meter.count(costs.SMOD_SHARD_LOCK) == \
            manager.shard_lock_acquisitions

    def test_uniprocessor_spec_compiles_locks_out(self):
        from repro.sim import costs
        engine = TrafficEngine(small_spec(smp_shard_locks=False))
        engine.run()
        assert engine.machine.meter.count(costs.SMOD_SHARD_LOCK) == 0

    def test_lock_charge_visible_in_cycle_accounting(self):
        spec_on = small_spec(calls_per_client=8)
        spec_off = small_spec(calls_per_client=8, smp_shard_locks=False)
        with_locks = run_traffic(spec_on)
        without = run_traffic(spec_off)
        assert with_locks.total_cycles > without.total_cycles


class TestTrafficTeardown:
    def test_teardown_leaves_no_dangling_state(self):
        spec = small_spec()
        engine = TrafficEngine(spec)
        engine.run()
        handles = [s.handle.proc
                   for s in engine.extension.sessions.active_sessions()]
        assert handles
        engine.teardown()
        manager = engine.extension.sessions
        assert len(manager.active_sessions()) == 0
        assert sum(manager.shard_sizes()) == 0
        # no dangling message queues, no live handle pids
        assert len(engine.kernel.msg) == 0
        assert all(not handle.alive for handle in handles)
        # clients survive and are fully detached
        for state in engine.clients:
            assert state.program.proc.alive
            assert not state.program.proc.is_smod_client
            assert state.program.proc.smod_session is None
        # every memoized decision for those sessions is gone
        assert len(engine.extension.decision_cache) == 0


class TestHeavyTailedThinkTimes:
    def test_think_models_run_full_schedule_deterministically(self):
        for think in ("lognormal", "pareto"):
            a = run_traffic(small_spec(think=think))
            b = run_traffic(small_spec(think=think))
            assert a.total_calls == 4 * 6
            assert a.total_cycles == b.total_cycles
            assert a.latencies_us == b.latencies_us

    def test_exponential_default_unchanged(self):
        """think='exponential' is the original engine draw for draw."""
        a = run_traffic(small_spec())
        b = run_traffic(small_spec(think="exponential"))
        assert a.total_cycles == b.total_cycles
        assert a.latencies_us == b.latencies_us

    def test_heavy_tail_changes_schedule_not_call_count(self):
        exp = run_traffic(small_spec())
        par = run_traffic(small_spec(think="pareto", think_alpha=1.5))
        assert par.total_calls == exp.total_calls
        assert par.elapsed_us != exp.elapsed_us

    def test_open_loop_ignores_think_knob(self):
        a = run_traffic(small_spec(arrival="open"))
        b = run_traffic(small_spec(arrival="open", think="pareto"))
        assert a.total_cycles == b.total_cycles

    def test_think_validation(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            TrafficSpec(think="weibull")
        with pytest.raises(SimulationError):
            TrafficSpec(think="pareto", think_alpha=1.0)


class TestPooledHandleTraffic:
    def test_32_clients_4_sessions_one_handle_per_module(self):
        """The acceptance-bar scenario: 32 clients x 4 modules (one session
        each per module) all served by one pooled handle per module."""
        spec = small_spec(clients=32, modules=4, calls_per_client=4,
                          handle_policy="per_module")
        engine = TrafficEngine(spec)
        result = engine.run()
        assert result.session_count == 32 * 4
        assert result.handle_count == 4            # one per module
        assert result.broker_stats["handles_forked"] == 4
        assert result.broker_stats["attachments"] == 32 * 4 - 4
        assert result.total_calls == 32 * 4
        engine.teardown()
        assert engine.extension.sessions.handle_count() == 0
        assert len(engine.kernel.msg) == 0

    def test_pooled_cap_respected_under_traffic(self):
        spec = small_spec(clients=8, modules=1, handle_policy="pooled",
                          pool_max_sessions=4)
        result = run_traffic(spec)
        assert result.session_count == 8
        assert result.handle_count == 2            # ceil(8 / 4)

    def test_per_session_traffic_unchanged_by_broker(self):
        a = run_traffic(small_spec())
        b = run_traffic(small_spec(handle_policy="per_session"))
        assert a.total_cycles == b.total_cycles
        assert a.handle_count == a.session_count   # the 1:1 shape

    def test_batched_traffic_through_pooled_handles(self):
        spec = small_spec(clients=6, modules=2, calls_per_client=8,
                          batch_size=4, handle_policy="per_module")
        result = run_traffic(spec)
        assert result.total_calls == 6 * 8
        assert result.handle_count == 2

    def test_handle_policy_validation(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            TrafficSpec(handle_policy="per_galaxy")
        with pytest.raises(SimulationError):
            TrafficSpec(handle_policy="pooled", pool_max_sessions=0)


class TestSpecValidation:
    def test_rejects_bad_dimensions(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            TrafficSpec(clients=0)
        with pytest.raises(SimulationError):
            TrafficSpec(arrival="bursty")

    def test_policy_kinds(self):
        for kind in ("static", "quota", "expiry", "deny-only"):
            assert traffic_policy(small_spec(policy_kind=kind)) is not None
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            traffic_policy(small_spec(policy_kind="nope"))

    def test_traffic_module_shape(self):
        module = build_traffic_module(3, policy=traffic_policy(small_spec()))
        assert module.name == "libtraffic3"
        assert set(module.function_names()) == {"getpid", "test_incr",
                                                "test_null"}


class TestIdleAccounting:
    """Idle time between arrivals flows through the meter, not the raw clock.

    Regression pin for the static-analysis sweep that replaced the
    engine's direct ``clock.advance`` with ``Machine.idle``: the charge
    must stay byte-identical (same cycles, one clock event per idle span)
    while leaving the per-operation histogram untouched.
    """

    def test_advance_clock_to_is_metered_and_exact(self):
        engine = TrafficEngine(small_spec()).build()
        machine = engine.machine
        snapshot = machine.meter.snapshot()
        cycles_before = machine.clock.cycles
        events_before = machine.clock.events
        target_us = machine.microseconds() + 100.0
        engine._advance_clock_to(target_us)
        # with fast-forward enabled idle spans are deferred into the
        # accumulator; settling must land the exact same charge
        engine._ff_flush()
        expected = int(round(100.0 * machine.spec.mhz))
        assert machine.clock.cycles - cycles_before == expected
        assert machine.clock.events - events_before == 1
        assert machine.meter.diff(snapshot) == {}

    def test_advance_to_past_time_is_a_noop(self):
        engine = TrafficEngine(small_spec()).build()
        machine = engine.machine
        cycles_before = machine.clock.cycles
        events_before = machine.clock.events
        engine._advance_clock_to(machine.microseconds() - 1.0)
        assert machine.clock.cycles == cycles_before
        assert machine.clock.events == events_before
