"""Overload protection across the service plane.

Deadline shedding at the attachment pool, its interaction with
``overflow="refuse"`` under bursty arrivals, per-backend circuit
breakers (including a half-open probe racing a still-down backend),
retry-budget exhaustion end to end through the RPC stubs, the
``serve status`` overload section, and the broker's seat-queue shedding
under MMPP traffic (which must force every call down the per-call path —
no analytic fast-forward).
"""

from __future__ import annotations

import json

import pytest

from repro.control.overload import (
    BREAKER_CLOSED,
    BREAKER_OPEN,
    OverloadConfig,
)
from repro.kernel.errno import Errno
from repro.secmodule.libc_conversion import build_test_module
from repro.secmodule.protection import ProtectionMode
from repro.serve.attachment_pool import PoolConfig
from repro.serve.frontend import ServiceConfig, ServiceFrontend
from repro.sim.rng import DeterministicRNG
from repro.userland.process import Program
from repro.workloads.traffic import TrafficSpec, run_traffic


def build_front(smod_kernel, *, overload=None, pool=None):
    kernel, ext = smod_kernel
    registered = ext.registry.register(build_test_module(), uid=0,
                                      protection=ProtectionMode.ENCRYPT)
    config = ServiceConfig(overload=overload,
                           pool=pool or PoolConfig(max_attachments=2))
    frontend = ServiceFrontend(kernel, ext, config=config)
    record = frontend.register_backend("libtest", [registered])
    return kernel, frontend, record


def breaker_config(**kwargs):
    base = dict(breaker_window_us=1000.0, breaker_failure_ratio=0.5,
                breaker_min_samples=4, breaker_open_us=50.0,
                breaker_half_open_probes=1)
    base.update(kwargs)
    return OverloadConfig(**base)


class TestDeadlineShed:
    def test_pool_sheds_when_projected_wait_blows_deadline(self, smod_kernel):
        _, frontend, record = build_front(
            smod_kernel,
            overload=OverloadConfig(deadline_us=10.0),
            pool=PoolConfig(max_attachments=1))
        pool = frontend.pool("libtest")
        # the overload deadline propagated into the backend's pool config
        assert pool.config.shed_deadline_us == 10.0
        first = pool.checkout(0.0)
        assert first.ok
        pool.checkin(first.attachment, 100.0)       # busy until t=100
        shed = pool.checkout(5.0)                   # projected wait 95 > 10
        assert shed.refused and shed.reason == "deadline shed"
        assert shed.wait_us == pytest.approx(95.0)
        assert pool.sheds == 1
        # at t=95 the projected wait (5us) is inside the deadline: queue it
        queued = pool.checkout(95.0)
        assert queued.ok and queued.wait_us == pytest.approx(5.0)
        assert pool.sheds == 1

    def test_shed_takes_priority_over_refuse_past_the_deadline(
            self, smod_kernel):
        """With both knobs on, the *reason* tells the caller what to do:
        waits inside the deadline refuse (retry-able backpressure), waits
        past it shed (the reply would be late anyway)."""
        _, frontend, _ = build_front(
            smod_kernel,
            pool=PoolConfig(max_attachments=1, overflow="refuse",
                            shed_deadline_us=20.0))
        pool = frontend.pool("libtest")
        first = pool.checkout(0.0)
        pool.checkin(first.attachment, 30.0)
        refused = pool.checkout(15.0)               # wait 15 <= 20: refuse
        assert refused.refused and refused.reason == "pool exhausted"
        shed = pool.checkout(5.0)                   # wait 25 > 20: shed
        assert shed.refused and shed.reason == "deadline shed"
        assert pool.sheds == 1 and pool.refusals == 1

    def test_bursty_arrivals_split_between_sheds_and_refusals(
            self, smod_kernel):
        """An MMPP-shaped burst against a refuse+deadline pool: on-burst
        arrivals shed (deep backlog), the stragglers right behind a
        service completion refuse; both leave the queue untouched."""
        _, frontend, record = build_front(
            smod_kernel,
            pool=PoolConfig(max_attachments=1, overflow="refuse",
                            shed_deadline_us=4.0))
        pool = frontend.pool("libtest")
        rng = DeterministicRNG(0xB0B)
        now, served, sheds, refusals = 0.0, 0, 0, 0
        for burst in range(6):
            # ON state: a tight burst of arrivals...
            for _ in range(5):
                now += rng.exponential(1.5)
                outcome, checkout = frontend.call_pooled(
                    record, "test_incr", 1, arrival_us=now)
                if outcome.ok:
                    served += 1
                elif checkout.reason == "deadline shed":
                    sheds += 1
                else:
                    assert checkout.reason == "pool exhausted"
                    refusals += 1
            # ...then an OFF lull long enough to drain the attachment
            now += 40.0
        # each burst drains at least one call through the single seat (a
        # long enough burst squeezes a second past the service horizon)
        assert served >= 6
        assert sheds > 0 and refusals > 0
        assert sheds + refusals + served == 30
        assert pool.sheds == sheds and pool.refusals == refusals
        assert pool.waits == 0              # nothing ever queued


class TestCircuitBreaker:
    def test_down_backend_failures_trip_the_breaker(self, smod_kernel):
        _, frontend, record = build_front(smod_kernel,
                                          overload=breaker_config())
        frontend.registry.mark_down(record)
        for t in range(4):
            outcome, checkout = frontend.call_pooled(
                record, "test_incr", 1, arrival_us=float(t))
            assert outcome.errno == Errno.EAGAIN
            assert "down" in checkout.reason
        assert record.breaker.state == BREAKER_OPEN
        assert frontend.down_refusals == 4
        # open breaker fast-fails before the down check is even reached
        outcome, checkout = frontend.call_pooled(
            record, "test_incr", 1, arrival_us=10.0)
        assert outcome.errno == Errno.EAGAIN
        assert "breaker open" in checkout.reason
        assert frontend.breaker_refusals == 1
        assert frontend.down_refusals == 4

    def test_half_open_probe_racing_a_down_backend_reopens(
            self, smod_kernel):
        """The probe admitted after the open period races the backend's
        recovery: still down, the probe fails and the breaker re-opens
        for a fresh open period; healed, the probe closes it."""
        _, frontend, record = build_front(smod_kernel,
                                          overload=breaker_config())
        frontend.registry.mark_down(record)
        for t in range(4):
            frontend.call_pooled(record, "test_incr", 1,
                                 arrival_us=float(t))
        breaker = record.breaker
        assert breaker.state == BREAKER_OPEN and breaker.trips == 1
        # past open_us: the probe goes through... straight into a wall
        outcome, checkout = frontend.call_pooled(
            record, "test_incr", 1, arrival_us=60.0)
        assert outcome.errno == Errno.EAGAIN and "down" in checkout.reason
        assert breaker.state == BREAKER_OPEN and breaker.trips == 2
        # the fresh open period starts at the failed probe, not the trip
        outcome, checkout = frontend.call_pooled(
            record, "test_incr", 1, arrival_us=80.0)
        assert "breaker open" in checkout.reason
        # backend heals; next probe succeeds and the breaker closes
        frontend.registry.mark_up(record)
        outcome, _ = frontend.call_pooled(record, "test_incr", 1,
                                          arrival_us=130.0)
        assert outcome.ok and outcome.value == 2
        assert breaker.state == BREAKER_CLOSED
        # and stays closed for ordinary traffic
        outcome, _ = frontend.call_pooled(record, "test_incr", 5,
                                          arrival_us=200.0)
        assert outcome.ok and outcome.value == 6

    def test_breaker_state_surfaces_in_status(self, smod_kernel):
        _, frontend, record = build_front(smod_kernel,
                                          overload=breaker_config())
        frontend.registry.mark_down(record)
        for t in range(4):
            frontend.call_pooled(record, "test_incr", 1,
                                 arrival_us=float(t))
        frontend.call_pooled(record, "test_incr", 1, arrival_us=10.0)
        status = frontend.status(probe=False)
        json.dumps(status)
        overload = status["overload"]
        snapshot = overload["breakers"]["libtest"]
        assert snapshot["state"] == BREAKER_OPEN
        assert snapshot["trips"] == 1 and snapshot["fast_fails"] == 1
        assert overload["breaker_refusals"] == 1
        assert overload["down_refusals"] == 4


class TestRetryBudget:
    def test_exhaustion_surfaces_as_eagain_through_rpc_stubs(
            self, smod_kernel):
        kernel, frontend, record = build_front(
            smod_kernel,
            overload=OverloadConfig(retry_budget=3, retry_backoff_us=8.0))
        frontend.start()
        caller = Program.spawn(kernel, "rpc-caller", uid=1000)
        stub = frontend.make_client(caller.proc)
        module = record.modules[0]
        incr = next(f.func_id for f in module.definition.functions()
                    if f.name == "test_incr")
        # healthy backend: the stub succeeds without touching the budget
        assert stub.call("serve_call_pooled",
                         record.backend_id, module.m_id, incr, 5) == 6
        budget = frontend.retry_budget("libtest")
        assert budget.consumed == 0
        # down backend: bounded retries burn the budget, then the EAGAIN
        # stands — and each retry idled the clock for its backoff
        frontend.registry.mark_down(record)
        before_us = kernel.machine.microseconds()
        result = stub.call("serve_call_pooled",
                           record.backend_id, module.m_id, incr, 5)
        assert result == -int(Errno.EAGAIN)
        assert budget.remaining == 0
        assert budget.consumed == 3 and budget.exhaustions == 1
        # exponential virtual-time backoff: 8 + 16 + 32 us at minimum
        assert kernel.machine.microseconds() - before_us >= 56.0
        snapshot = frontend.status(probe=False)["overload"]
        assert snapshot["retry_budgets"]["libtest"] == {
            "budget": 3, "remaining": 0, "consumed": 3, "exhaustions": 1}

    def test_budget_drained_means_no_backoff_on_later_calls(
            self, smod_kernel):
        kernel, frontend, record = build_front(
            smod_kernel,
            overload=OverloadConfig(retry_budget=1, retry_backoff_us=8.0))
        frontend.start()
        caller = Program.spawn(kernel, "rpc-caller", uid=1000)
        stub = frontend.make_client(caller.proc)
        module = record.modules[0]
        incr = next(f.func_id for f in module.definition.functions()
                    if f.name == "test_incr")
        frontend.registry.mark_down(record)
        mark = kernel.machine.microseconds()
        stub.call("serve_call_pooled",
                  record.backend_id, module.m_id, incr, 5)
        retried_us = kernel.machine.microseconds() - mark
        budget = frontend.retry_budget("libtest")
        assert budget.remaining == 0
        mark = kernel.machine.microseconds()
        assert stub.call("serve_call_pooled", record.backend_id,
                         module.m_id, incr, 5) == -int(Errno.EAGAIN)
        drained_us = kernel.machine.microseconds() - mark
        # a drained budget fails fast: the same refusal without the
        # retried attempt's >= 8us of idle backoff
        assert retried_us - drained_us >= 8.0
        assert budget.exhaustions == 2


class TestBrokerShedding:
    def _spec(self, **kwargs):
        base = dict(clients=4, modules=1, calls_per_client=32,
                    arrival="mmpp", mean_interval_us=30.0,
                    burst_interval_us=1.0, burst_on_us=80.0,
                    burst_off_us=240.0, shed_deadline_us=4.0,
                    seed=0x5EA7)
        base.update(kwargs)
        return TrafficSpec(**base)

    def test_mmpp_burst_sheds_at_the_seat_queue(self):
        from repro.workloads.traffic import TrafficEngine
        engine = TrafficEngine(self._spec())
        result = engine.run()
        sheds = result.broker_stats["seat_sheds"]
        assert sheds > 0
        # shed calls never reached the dispatcher: every service latency
        # in the result is a call that actually ran
        assert len(result.latencies_us) == result.total_calls
        # shedding consults per-call queueing delay, so the analytic
        # fast-forward tier must have stayed out of the way entirely
        cache = engine.extension.dispatcher.trace_cache.snapshot()
        assert cache["fast_forwards"] == 0
        assert cache["fast_forward_calls"] == 0

    def test_shed_runs_replay_deterministically(self):
        one = run_traffic(self._spec())
        two = run_traffic(self._spec())
        assert one.total_cycles == two.total_cycles
        assert one.total_calls == two.total_calls
        assert one.broker_stats == two.broker_stats
        assert list(one.latencies_us) == list(two.latencies_us)

    def test_deadline_shedding_requires_open_loop_arrivals(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="open-loop"):
            TrafficSpec(arrival="closed", shed_deadline_us=4.0)


class TestAdaptiveP95Feed:
    def test_tight_p95_target_forces_the_controller_down(self):
        """Closed loop through telemetry: an unreachable p95 target keeps
        the controller shrinking even though arrivals alone say grow."""
        spec = TrafficSpec(clients=2, modules=1, calls_per_client=48,
                           arrival="open", mean_interval_us=2.0,
                           adaptive_batch=True, telemetry=True,
                           service_p95_target_us=0.5, seed=0xF33D)
        result = run_traffic(spec)
        snapshots = result.adaptive["per_client"]
        assert sum(c["p95_shrinks"] for c in snapshots) > 0

    def test_loose_target_changes_nothing(self):
        base = dict(clients=2, modules=1, calls_per_client=48,
                    arrival="open", mean_interval_us=2.0,
                    adaptive_batch=True, telemetry=True, seed=0xF33D)
        plain = run_traffic(TrafficSpec(**base))
        loose = run_traffic(TrafficSpec(service_p95_target_us=10_000.0,
                                        **base))
        assert loose.total_cycles == plain.total_cycles
