"""Scaling regressions: session-table op counts must not grow with N."""

from __future__ import annotations

from repro.hw.machine import make_paper_machine
from repro.kernel.kernel import Kernel
from repro.secmodule.libc_conversion import build_test_module
from repro.secmodule.protection import ProtectionMode
from repro.secmodule.smod_syscalls import install_secmodule
from repro.serve.frontend import ServiceConfig, ServiceFrontend


def _populate(sessions, *, tenants=4, seed=311):
    """A front-end holding ``sessions`` live sessions across ``tenants``."""
    machine = make_paper_machine(seed=seed)
    kernel = Kernel(machine=machine).boot()
    ext = install_secmodule(kernel)
    ext.sessions.charge_shard_locks = True
    registered = ext.registry.register(build_test_module(), uid=0,
                                       protection=ProtectionMode.ENCRYPT)
    frontend = ServiceFrontend(
        kernel, ext, config=ServiceConfig(max_procs=sessions + 4096))
    record = frontend.register_backend("libtest", [registered])
    bindings = [frontend.attach(record, tenant=index % tenants)
                for index in range(sessions)]
    return kernel, ext, frontend, bindings


def _ops_per_lookup(kernel, ext, bindings, probes=64):
    """Index ops (tenant walks + shard locks) per keyed probe, exact."""
    manager = ext.sessions
    stride = max(1, len(bindings) // probes)
    sample = bindings[::stride][:probes]
    before_ops = manager.shard_lock_acquisitions + manager.tenant_lookups
    before_cycles = kernel.machine.clock.cycles
    for binding in sample:
        assert manager.lookup(binding.client.proc.pid,
                              binding.session.session_id) \
            is binding.session
    ops = (manager.shard_lock_acquisitions + manager.tenant_lookups
           - before_ops)
    cycles = kernel.machine.clock.cycles - before_cycles
    return ops / len(sample), cycles / len(sample)


class TestFlatLookup:
    def test_lookup_op_count_does_not_grow_with_session_count(self):
        """The tentpole's acceptance bar: per-lookup op counts (and cycle
        costs) are byte-identical at 64 and 4096 live sessions — the keyed
        probe walks tenant index -> shard -> key, never the table."""
        kernel_s, ext_s, _, bindings_s = _populate(64)
        kernel_l, ext_l, _, bindings_l = _populate(4096)
        small_ops, small_cycles = _ops_per_lookup(kernel_s, ext_s, bindings_s)
        large_ops, large_cycles = _ops_per_lookup(kernel_l, ext_l, bindings_l)
        assert small_ops == large_ops == 2.0   # one tenant walk + one lock
        assert small_cycles == large_cycles

    def test_attach_and_detach_cost_flat_across_table_sizes(self):
        """Establishment and teardown are index inserts/removals: the
        marginal cost of session N+1 must not depend on N."""
        costs = []
        for sessions in (64, 1024):
            kernel, ext, frontend, bindings = _populate(sessions)
            before = kernel.machine.clock.cycles
            extra = frontend.attach(bindings[0].backend, tenant=1)
            attach_cycles = kernel.machine.clock.cycles - before
            before = kernel.machine.clock.cycles
            frontend.detach(extra.binding_id, kill_handle=False)
            detach_cycles = kernel.machine.clock.cycles - before
            costs.append((attach_cycles, detach_cycles))
        assert costs[0] == costs[1]

    def test_teardown_leaves_no_stale_index_entries(self):
        kernel, ext, frontend, bindings = _populate(128)
        for binding in bindings[::2]:
            frontend.detach(binding.binding_id)
        assert len(ext.sessions) == 64
        for binding in bindings[::2]:
            assert ext.sessions.lookup(binding.client.proc.pid,
                                       binding.session.session_id) is None
        for binding in bindings[1::2]:
            assert ext.sessions.lookup(binding.client.proc.pid,
                                       binding.session.session_id) \
                is binding.session
