"""Traffic through the service plane, and the compiled-out contract."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.errors import SimulationError
from repro.workloads.traffic import TrafficSpec, run_traffic


class TestViaService:
    def test_closed_loop_traffic_through_the_front_end(self):
        spec = TrafficSpec(clients=3, modules=2, calls_per_client=6,
                           via_service=True, seed=0xFACE)
        result = run_traffic(spec)
        assert result.total_calls == 18
        assert 0 <= result.denied_calls < 18
        assert len(result.latencies_us) == 18
        # every call crossed the RPC boundary: latency includes the ~63us
        # round trip, far above the ~6.4us direct dispatch
        assert result.latency_percentile(50) > 50.0

    def test_open_loop_traffic_records_queue_delays(self):
        spec = TrafficSpec(clients=4, modules=1, calls_per_client=8,
                           arrival="open", mean_interval_us=25.0,
                           via_service=True, seed=0xBEEF)
        result = run_traffic(spec)
        assert result.total_calls == 32
        assert len(result.queue_delays_us) == 32

    def test_multi_tenant_traffic_spreads_sessions(self):
        spec = TrafficSpec(clients=4, modules=1, calls_per_client=4,
                           via_service=True, service_tenants=2, seed=7)
        result = run_traffic(spec)
        assert result.total_calls == 16

    def test_deterministic_across_runs(self):
        spec = TrafficSpec(clients=3, modules=2, calls_per_client=5,
                           via_service=True, seed=42)
        first = run_traffic(spec)
        second = run_traffic(spec)
        assert first.total_cycles == second.total_cycles
        assert first.denied_calls == second.denied_calls
        assert list(first.latencies_us) == list(second.latencies_us)

    def test_via_service_rejects_batched_dispatch(self):
        with pytest.raises(SimulationError, match="per-call"):
            TrafficSpec(clients=2, via_service=True, batch_size=4)
        with pytest.raises(SimulationError, match="mutually exclusive"):
            TrafficSpec(clients=2, via_service=True, adaptive_batch=True,
                        arrival="open")
        with pytest.raises(SimulationError, match="service_tenants"):
            TrafficSpec(clients=2, via_service=True, service_tenants=0)


class TestCompiledOut:
    def test_default_traffic_never_builds_a_front_end(self):
        spec = TrafficSpec(clients=2, modules=1, calls_per_client=4, seed=9)
        from repro.workloads.traffic import TrafficEngine
        engine = TrafficEngine(spec)
        engine.build()
        assert engine.frontend is None

    def test_paper_default_run_never_imports_the_service_plane(self):
        """The differential compiled-out assertion: a paper-default traffic
        run in a fresh interpreter must not even import ``repro.serve`` —
        the service plane cannot perturb what it never touches."""
        code = (
            "import sys\n"
            "from repro.workloads.traffic import TrafficSpec, run_traffic\n"
            "run_traffic(TrafficSpec(clients=2, modules=1,"
            " calls_per_client=4, seed=9))\n"
            "leaked = [m for m in sys.modules if m.startswith('repro.serve')]\n"
            "sys.exit(1 if leaked else 0)\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr

    def test_default_spec_cycles_unchanged_by_service_plane_activity(self):
        """Byte-identity: a default run's cycle total is the same whether or
        not a service plane was exercised earlier in the process."""
        spec = TrafficSpec(clients=2, modules=1, calls_per_client=4, seed=9)
        baseline = run_traffic(spec).total_cycles
        served = run_traffic(
            TrafficSpec(clients=2, modules=1, calls_per_client=4,
                        via_service=True, seed=9)).total_cycles
        again = run_traffic(spec).total_cycles
        assert baseline == again
        assert served != baseline      # the service plane is NOT free
