"""Attachment-pool edge cases: exhaustion, backend death, teardown races,
and the pool-of-1 cycle-identity contract."""

from __future__ import annotations

import pytest

from repro.hw.machine import make_paper_machine
from repro.kernel.kernel import Kernel
from repro.kernel.proc import ProcState
from repro.secmodule.libc_conversion import build_test_module
from repro.secmodule.protection import ProtectionMode
from repro.secmodule.session import SessionDescriptor, build_requirements
from repro.secmodule.smod_syscalls import install_secmodule
from repro.serve.attachment_pool import PoolConfig
from repro.serve.frontend import ServiceConfig, ServiceFrontend
from repro.sim.rng import DeterministicRNG, TwoStateMMPP
from repro.userland.process import Program


def _system(seed=101):
    kernel = Kernel(machine=make_paper_machine(seed=seed)).boot()
    ext = install_secmodule(kernel)
    registered = ext.registry.register(build_test_module(), uid=0,
                                       protection=ProtectionMode.ENCRYPT)
    return kernel, ext, registered


def _frontend(kernel, ext, registered, pool, *, charge_ops=True):
    frontend = ServiceFrontend(kernel, ext,
                               config=ServiceConfig(charge_ops=charge_ops))
    record = frontend.register_backend("libtest", [registered], pool=pool)
    return frontend, record


def _now(kernel):
    return kernel.machine.meter.profile.microseconds(
        kernel.machine.clock.cycles)


class TestExhaustionUnderBurst:
    def test_mmpp_burst_queues_deterministic_waits(self):
        """An MMPP ON-burst offers load far above a 2-attachment pool's
        capacity: the excess must wait, with deterministic wait totals."""
        kernel, ext, registered = _system()
        frontend, record = _frontend(kernel, ext, registered,
                                     PoolConfig(max_attachments=2))
        mmpp = TwoStateMMPP(DeterministicRNG(7),
                            on_interval=0.5, off_interval=400.0,
                            on_duration=200.0, off_duration=50.0)
        at = _now(kernel)
        waits = 0
        for index in range(64):
            at += mmpp.next_interarrival()
            outcome, checkout = frontend.call_pooled(
                record, "test_incr", index, arrival_us=at)
            assert outcome.ok and outcome.value == index + 1
            assert not checkout.refused
            if checkout.wait_us > 0:
                waits += 1
                # a queued checkout starts exactly wait_us after arrival,
                # and its attachment's next free horizon lies beyond that
                assert checkout.start_us == pytest.approx(
                    at + checkout.wait_us, abs=1e-9)
                assert checkout.attachment.free_at_us > checkout.start_us
        pool = frontend.pool("libtest")
        assert pool.size == 2
        assert waits == pool.waits > 0
        assert pool.total_wait_us > 0
        assert pool.max_wait_us >= pool.mean_wait_us()

    def test_refuse_mode_turns_burst_excess_away(self):
        kernel, ext, registered = _system()
        frontend, record = _frontend(
            kernel, ext, registered,
            PoolConfig(max_attachments=1, overflow="refuse"))
        at = _now(kernel)
        # back-to-back arrivals: the first grows the pool, the second hits
        # a busy pool of 1 and must be refused, never queued
        ok_outcome, first = frontend.call_pooled(record, "test_incr", 1,
                                                 arrival_us=at)
        assert ok_outcome.ok and not first.refused
        refused_outcome, second = frontend.call_pooled(
            record, "test_incr", 2, arrival_us=at + 0.001)
        assert not refused_outcome.ok
        assert second.refused and second.reason == "pool exhausted"
        assert frontend.pool("libtest").refusals == 1

    def test_bounded_queue_depth_refuses_past_the_cap(self):
        kernel, ext, registered = _system()
        frontend, record = _frontend(
            kernel, ext, registered,
            PoolConfig(max_attachments=1, max_queue_depth=2))
        at = _now(kernel)
        checkouts = [frontend.call_pooled(record, "test_incr", index,
                                          arrival_us=at + index * 0.01)[1]
                     for index in range(5)]
        # first claims, next two queue, the rest refuse on the depth cap
        assert [c.refused for c in checkouts] == [
            False, False, False, True, True]
        assert checkouts[3].reason == "pool wait queue full"


class TestBackendDeath:
    def test_checkout_after_backend_death_replaces_the_attachment(self):
        """A worker whose handle died unnoticed must never be handed out:
        checkout discards it and the factory builds a replacement."""
        kernel, ext, registered = _system()
        frontend, record = _frontend(kernel, ext, registered,
                                     PoolConfig(max_attachments=2))
        at = _now(kernel)
        _, checkout = frontend.call_pooled(record, "test_incr", 1,
                                           arrival_us=at)
        dead_session = checkout.attachment.session
        # the handle process crashes without the broker noticing
        dead_session.handle.proc.state = ProcState.ZOMBIE
        pool = frontend.pool("libtest")
        outcome, replacement = frontend.call_pooled(
            record, "test_incr", 2, arrival_us=_now(kernel) + 1000.0)
        assert outcome.ok and outcome.value == 3
        assert replacement.attachment.session is not dead_session
        assert pool.discarded == 1
        assert pool.size == 1            # dead seat released, one rebuilt

    def test_torn_down_session_is_discarded_at_checkout(self):
        kernel, ext, registered = _system()
        frontend, record = _frontend(kernel, ext, registered,
                                     PoolConfig(max_attachments=1))
        at = _now(kernel)
        _, checkout = frontend.call_pooled(record, "test_incr", 1,
                                           arrival_us=at)
        ext.sessions.teardown(checkout.attachment.session)
        outcome, fresh = frontend.call_pooled(
            record, "test_incr", 5, arrival_us=_now(kernel) + 1000.0)
        assert outcome.ok and outcome.value == 6
        assert fresh.attachment.session.established
        assert not fresh.attachment.session.torn_down
        assert frontend.pool("libtest").discarded == 1


class TestTeardownRace:
    def test_teardown_racing_a_queued_checkout(self):
        """A checkout granted for the future (queued on a busy attachment)
        whose session is torn down before its start time: the *next*
        checkout must not receive the dead attachment."""
        kernel, ext, registered = _system()
        frontend, record = _frontend(kernel, ext, registered,
                                     PoolConfig(max_attachments=1))
        at = _now(kernel)
        _, first = frontend.call_pooled(record, "test_incr", 1,
                                        arrival_us=at)
        attachment = first.attachment
        # second arrival lands while the attachment is busy -> queued grant
        outcome, queued = frontend.call_pooled(record, "test_incr", 2,
                                               arrival_us=at + 0.001)
        assert outcome.ok and queued.wait_us > 0
        assert frontend.pool("libtest").waits == 1
        # the race: the session is torn down after the queued call completed
        # its dispatch but while the attachment sits checked in
        ext.sessions.teardown(attachment.session)
        pool = frontend.pool("libtest")
        outcome, third = frontend.call_pooled(
            record, "test_incr", 3, arrival_us=_now(kernel) + 1000.0)
        assert outcome.ok and outcome.value == 4
        assert third.attachment is not attachment
        assert pool.discarded == 1
        assert pool.queue_depth(_now(kernel) + 1000.0) == 0


class TestPoolOfOneIdentity:
    """The compiled-out contract at the pool layer: a 1-attachment pool with
    charging off is cycle-identical to a directly-attached worker."""

    def _direct_cycles(self, seed, calls):
        kernel, ext, registered = _system(seed)
        worker = Program.spawn(kernel, "serve-worker[libtest]", uid=1000)
        ext.broker.register_policy(registered.name, "pooled:64")
        descriptor = SessionDescriptor(
            build_requirements([registered], principal="alice", uid=1000),
            allow_multiple=True)
        session = ext.sessions.get(
            worker.smod_crt0_startup(ext, descriptor))
        start = None
        for index in range(calls):
            if index == 1:
                # mirror the pooled measurement window: steady-state calls
                start = kernel.machine.clock.cycles
            outcome = ext.dispatcher.call(session, "test_incr", index)
            assert outcome.ok
        return kernel.machine.clock.cycles, start

    def _pooled_cycles(self, seed, calls, *, charge_ops):
        kernel, ext, registered = _system(seed)
        frontend, record = _frontend(
            kernel, ext, registered, PoolConfig(max_attachments=1),
            charge_ops=charge_ops)
        at = _now(kernel)
        start = None
        for index in range(calls):
            if index == 1:
                # attachment creation (worker spawn + establishment) happens
                # inside the first checkout; measure steady-state calls
                start = kernel.machine.clock.cycles
            outcome, checkout = frontend.call_pooled(
                record, "test_incr", index,
                arrival_us=at + index * 10_000.0)
            assert outcome.ok and not checkout.refused
        return kernel.machine.clock.cycles, start

    def test_uncharged_pool_of_one_is_cycle_identical(self):
        calls = 9
        direct_end, direct_start = self._direct_cycles(505, calls)
        pooled_end, pooled_start = self._pooled_cycles(505, calls,
                                                       charge_ops=False)
        assert (pooled_end - pooled_start) == (direct_end - direct_start)

    def test_charged_pool_adds_exactly_the_serve_ops(self):
        from repro.sim import costs
        calls = 9
        _, _ = self._direct_cycles(505, calls)      # sanity: direct path runs
        quiet_end, quiet_start = self._pooled_cycles(505, calls,
                                                     charge_ops=False)
        loud_end, loud_start = self._pooled_cycles(505, calls,
                                                   charge_ops=True)
        kernel, _, _ = _system(505)
        table = kernel.machine.meter.profile
        per_call = (table.cost(costs.SERVE_BACKEND_RESOLVE)
                    + table.cost(costs.SERVE_POOL_CHECKOUT)
                    + table.cost(costs.SERVE_POOL_CHECKIN))
        assert (loud_end - loud_start) - (quiet_end - quiet_start) == \
            per_call * (calls - 1)
