"""Service front-end: bindings, dispatch paths, status, RPC surface."""

from __future__ import annotations

import json

import pytest

from repro.errors import SimulationError
from repro.kernel.errno import Errno
from repro.secmodule.libc_conversion import build_test_module
from repro.secmodule.protection import ProtectionMode
from repro.serve.frontend import SERVE_PROG, ServiceConfig, ServiceFrontend
from repro.userland.process import Program


@pytest.fixture
def front(smod_kernel):
    kernel, ext = smod_kernel
    registered = ext.registry.register(build_test_module(), uid=0,
                                      protection=ProtectionMode.ENCRYPT)
    frontend = ServiceFrontend(kernel, ext)
    record = frontend.register_backend("libtest", [registered])
    return kernel, ext, frontend, record


class TestBindings:
    def test_attach_establishes_a_real_session(self, front):
        _, ext, frontend, record = front
        binding = frontend.attach(record, tenant=2)
        assert binding.session.established
        assert ext.sessions.tenant_for(binding.client.proc.pid) == 2
        assert ext.sessions.lookup(binding.client.proc.pid,
                                   binding.session.session_id) \
            is binding.session

    def test_call_bound_dispatches_via_keyed_probe(self, front):
        _, _, frontend, record = front
        binding = frontend.attach(record)
        outcome = frontend.call_bound(binding.binding_id, "test_incr", 41)
        assert outcome.ok and outcome.value == 42
        assert frontend.bound_calls == 1
        assert binding.calls == 1

    def test_detach_tears_down_and_invalidates_the_binding(self, front):
        _, ext, frontend, record = front
        binding = frontend.attach(record)
        frontend.detach(binding.binding_id)
        assert binding.session.torn_down
        assert ext.sessions.lookup(binding.client.proc.pid,
                                   binding.session.session_id) is None
        outcome = frontend.call_bound(binding.binding_id, "test_incr", 1)
        assert outcome.errno == Errno.EINVAL
        with pytest.raises(SimulationError, match="unknown binding"):
            frontend.detach(binding.binding_id)

    def test_draining_backend_rejects_new_bindings(self, front):
        _, _, frontend, record = front
        existing = frontend.attach(record)
        frontend.registry.mark_draining(record)
        with pytest.raises(SimulationError, match="draining"):
            frontend.attach(record)
        # existing bindings keep serving while draining
        assert frontend.call_bound(existing.binding_id, "test_incr", 1).ok

    def test_down_backend_refuses_pooled_calls_with_eagain(self, front):
        _, _, frontend, record = front
        frontend.registry.mark_down(record)
        outcome, checkout = frontend.call_pooled(record, "test_incr", 1)
        assert outcome.errno == Errno.EAGAIN
        assert checkout.refused and "down" in checkout.reason
        assert frontend.down_refusals == 1


class TestStatus:
    def test_status_is_json_serializable_and_complete(self, front):
        _, _, frontend, record = front
        frontend.attach(record, tenant=0)
        frontend.attach(record, tenant=3)
        frontend.call_pooled(record, "test_incr", 7)
        status = frontend.status()
        json.dumps(status)                    # JSON-serializable end to end
        assert status["bindings"] == 2
        assert status["attaches"] == 2
        assert status["pooled_calls"] == 1
        assert status["sessions_by_tenant"][3] == 1
        assert status["backends"]["libtest"]["state"] == "up"
        assert status["pools"]["libtest"]["checkouts"] == 1

    def test_unprobed_status_charges_no_health_probe(self, front):
        kernel, _, frontend, record = front
        frontend.attach(record)
        probes_before = frontend.registry.probes
        frontend.status(probe=False)
        assert frontend.registry.probes == probes_before


class TestRpcSurface:
    def test_full_rpc_round_trip(self, front):
        kernel, _, frontend, record = front
        service = frontend.start()
        assert service.interface.prog == SERVE_PROG
        assert frontend.start() is service              # idempotent
        caller = Program.spawn(kernel, "rpc-caller", uid=1000)
        stub = frontend.make_client(caller.proc)
        assert stub.call("serve_ping") == 0
        binding_id = stub.call("serve_attach", record.backend_id, 1)
        assert binding_id > 0
        m_id = record.modules[0].m_id
        incr = next(f.func_id for f in
                    record.modules[0].definition.functions()
                    if f.name == "test_incr")
        assert stub.call("serve_call", binding_id, m_id, incr, 99) == 100
        assert stub.call("serve_call_pooled",
                         record.backend_id, m_id, incr, 5) == 6
        assert stub.call("serve_probe", record.backend_id) == 0
        assert stub.call("serve_detach", binding_id) == 0
        # errors come back as negated errnos over the int-only wire
        assert stub.call("serve_call", binding_id, m_id, incr, 1) == \
            -int(Errno.EINVAL)
        assert stub.call("serve_attach", 999) == -int(Errno.EAGAIN)

    def test_serve_coexists_with_the_rpc_baseline(self, front):
        """smodserve and the paper's testincr service share one kernel's
        portmapper, like two programs under one rpcbind."""
        kernel, _, frontend, _ = front
        from repro.rpc.rpcgen import generate_service, testincr_interface
        frontend.start()
        baseline = generate_service(kernel, testincr_interface(), port=2049)
        assert baseline.portmap is frontend.service.portmap


class TestConfig:
    def test_max_procs_raises_the_process_table_cap(self, smod_kernel):
        kernel, ext = smod_kernel
        before = kernel.procs.max_procs
        ServiceFrontend(kernel, ext,
                        config=ServiceConfig(max_procs=before + 100))
        assert kernel.procs.max_procs == before + 100
        # a smaller request never shrinks the cap
        ServiceFrontend(kernel, ext, config=ServiceConfig(max_procs=10))
        assert kernel.procs.max_procs == before + 100
