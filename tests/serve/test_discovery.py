"""Backend discovery: registration, resolution, health, lifecycle."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.kernel.proc import ProcState
from repro.secmodule.libc_conversion import build_test_module
from repro.secmodule.protection import ProtectionMode
from repro.secmodule.session import SessionDescriptor, build_requirements
from repro.serve.discovery import (
    STATE_CODES,
    STATE_DOWN,
    STATE_DRAINING,
    STATE_UP,
    BackendRegistry,
)
from repro.userland.process import Program


@pytest.fixture
def served(smod_kernel):
    kernel, ext = smod_kernel
    registered = ext.registry.register(build_test_module(), uid=0,
                                      protection=ProtectionMode.ENCRYPT)
    registry = BackendRegistry(kernel, ext)
    return kernel, ext, registry, registered


def _establish(kernel, ext, registered, name="disc-client"):
    program = Program.spawn(kernel, name, uid=1000)
    descriptor = SessionDescriptor(build_requirements(
        [registered], principal="alice", uid=1000))
    session_id = program.smod_crt0_startup(ext, descriptor)
    return ext.sessions.get(session_id)


class TestRegistration:
    def test_register_names_a_backend_and_its_policy(self, served):
        kernel, ext, registry, registered = served
        record = registry.register("libtest", [registered],
                                   policy="pooled:4")
        assert record.backend_id == 1
        assert record.state == STATE_UP
        assert record.module_names == ("libtest",)
        # registration performed the module-owner act with the broker
        assert ext.broker.policy_for([registered]).kind == "pooled"

    def test_duplicate_name_rejected(self, served):
        _, _, registry, registered = served
        registry.register("libtest", [registered])
        with pytest.raises(SimulationError, match="already registered"):
            registry.register("libtest", [registered])

    def test_empty_module_set_rejected(self, served):
        _, _, registry, _ = served
        with pytest.raises(SimulationError, match="at least one module"):
            registry.register("empty", [])


class TestResolution:
    def test_resolves_by_name_id_and_record(self, served):
        _, _, registry, registered = served
        record = registry.register("libtest", [registered])
        assert registry.resolve("libtest") is record
        assert registry.resolve(record.backend_id) is record
        assert registry.resolve(record) is record
        assert registry.resolutions == 3

    def test_unknown_backend_raises(self, served):
        _, _, registry, _ = served
        with pytest.raises(SimulationError, match="unknown backend"):
            registry.resolve("nowhere")

    def test_resolution_is_charged(self, served):
        kernel, _, registry, registered = served
        record = registry.register("libtest", [registered])
        before = kernel.machine.clock.cycles
        registry.resolve(record)
        charged = kernel.machine.clock.cycles - before
        assert charged > 0
        # uncharged registry pays zero cycles for the same resolve
        quiet = BackendRegistry(kernel, registry.extension, charge_ops=False)
        quiet.register("libtest", [registered])
        before = kernel.machine.clock.cycles
        quiet.resolve("libtest")
        assert kernel.machine.clock.cycles == before


class TestHealth:
    def test_unpopulated_backend_probes_up(self, served):
        _, _, registry, registered = served
        registry.register("libtest", [registered])
        report = registry.health_check("libtest")
        assert report.state == STATE_UP
        assert report.handles == 0

    def test_probe_counts_live_handles_and_seats(self, served):
        kernel, ext, registry, registered = served
        registry.register("libtest", [registered], policy="pooled:2")
        _establish(kernel, ext, registered, "disc-a")
        _establish(kernel, ext, registered, "disc-b")
        _establish(kernel, ext, registered, "disc-c")
        report = registry.health_check("libtest")
        assert report.state == STATE_UP
        assert report.handles == 2          # 3 sessions, 2 seats/handle
        assert report.live_handles == 2
        assert report.seated_sessions == 3

    def test_all_handles_dead_probes_down_then_recovers(self, served):
        kernel, ext, registry, registered = served
        record = registry.register("libtest", [registered],
                                   policy="pooled:4")
        session = _establish(kernel, ext, registered, "disc-dead")
        # a crash the broker has not noticed: the handle stays pooled but
        # its process is gone (a clean kill() would self-evict from the pool)
        session.handle.proc.state = ProcState.ZOMBIE
        report = registry.health_check(record)
        assert report.state == STATE_DOWN
        assert report.live_handles == 0
        # a re-populated pool brings the backend back up on the next probe
        _establish(kernel, ext, registered, "disc-revive")
        assert registry.health_check(record).state == STATE_UP

    def test_draining_is_never_overridden_by_a_probe(self, served):
        kernel, ext, registry, registered = served
        record = registry.register("libtest", [registered])
        _establish(kernel, ext, registered, "disc-drain")
        registry.mark_draining(record)
        assert registry.health_check(record).state == STATE_DRAINING

    def test_state_codes_cover_all_states(self):
        assert STATE_CODES == {STATE_UP: 0, STATE_DRAINING: 1, STATE_DOWN: 2}


class TestSnapshot:
    def test_snapshot_is_charge_free_and_complete(self, served):
        kernel, _, registry, registered = served
        registry.register("libtest", [registered], policy="pooled:8")
        before = kernel.machine.clock.cycles
        snap = registry.snapshot()
        assert kernel.machine.clock.cycles == before
        assert snap["libtest"]["policy"] == "pooled:8"
        assert snap["libtest"]["state"] == STATE_UP
        assert snap["libtest"]["modules"] == ["libtest"]
