"""The abl-serve sweep: flat costs, deterministic export, harness wiring."""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import EXPERIMENTS
from repro.bench.serve import FAST_SESSIONS, run_serve_sweep


@pytest.fixture(scope="module")
def report():
    return run_serve_sweep(sessions=FAST_SESSIONS)


class TestServeSweep:
    def test_lookup_costs_flat_across_the_sweep(self, report):
        assert report.lookup_ops_flat()
        assert report.lookup_cost_flat()
        # tenant walk + shard lock, exactly, at every point
        assert all(p.lookup_ops_per_probe == 2.0 for p in report.points)

    def test_attach_and_detach_flat_across_the_sweep(self, report):
        # the attach MEAN carries a fixed per-point setup constant (first
        # handle fork) amortized over N; the marginal cost is exactly flat
        # (pinned in test_scaling.py), so the means converge within 0.1%
        attach = [p.attach_cycles_per_session for p in report.points]
        assert max(attach) / min(attach) < 1.001
        detach = {p.detach_cycles_per_op for p in report.points}
        assert len(detach) == 1

    def test_pool_leg_accumulates_deterministic_waits(self, report):
        for point in report.points:
            stats = point.pool_stats
            assert stats["checkouts"] == 128
            assert stats["waits"] > 0
            assert stats["refusals"] == 0
            assert stats["mean_wait_us"] > 0

    def test_report_export_is_deterministic_and_virtual_only(self, report):
        payload = report.as_dict()
        json.dumps(payload)
        # no host-side metric may leak into the byte-gated data section
        flat = json.dumps(payload)
        for banned in ("wall", "rss", "perf_counter"):
            assert banned not in flat
        again = run_serve_sweep(sessions=FAST_SESSIONS).as_dict()
        assert payload == again

    def test_render_reports_the_flatness_verdict(self, report):
        rendered = report.render()
        assert "lookup op count flat across table sizes: yes" in rendered
        assert "pool leg" in rendered

    def test_registered_in_the_harness(self):
        spec = EXPERIMENTS["abl-serve"]
        assert spec.kind == "ablation"
        assert spec.runner is run_serve_sweep.__globals__["run_abl_serve"]

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            run_serve_sweep(sessions=())
        with pytest.raises(ValueError):
            run_serve_sweep(sessions=(10,), tenants=0)
