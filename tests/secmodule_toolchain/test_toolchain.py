"""Tests for the SecModule toolchain: objdump front end, stubgen, packer,
registration tool and the custom link step."""

import pytest

from repro.errors import ConfigurationError, ToolchainError
from repro.kernel.kernel import make_booted_kernel
from repro.secmodule.libc_conversion import build_libc_archive, libc_behaviours
from repro.secmodule.module import simple_module
from repro.secmodule.protection import ProtectionMode
from repro.secmodule.smod_syscalls import install_secmodule
from repro.secmodule.toolchain.link import (
    link_secmodule_client,
    link_traditional_client,
)
from repro.secmodule.toolchain.objdump import (
    extract_function_symbols,
    objdump_pipeline_text,
)
from repro.secmodule.toolchain.packer import FunctionSpec, pack_library
from repro.secmodule.toolchain.register import RegistrationTool
from repro.secmodule.toolchain.stubgen import generate_stubs
from repro.obj.image import make_function_image


class TestObjdumpFrontEnd:
    def test_extraction_from_archive(self):
        archive = build_libc_archive()
        extraction = extract_function_symbols(archive,
                                              header_macros=("isdigit",))
        assert "malloc" in extraction.from_objdump
        assert "isdigit" in extraction.from_headers
        assert "isdigit" in extraction.all_symbols
        assert len(extraction) == len(extraction.all_symbols)

    def test_extraction_from_single_image(self):
        image = make_function_image("m.o", {"f": 32})
        extraction = extract_function_symbols(image)
        assert extraction.all_symbols == ["f"]

    def test_deduplication_preserves_order(self):
        image = make_function_image("m.o", {"f": 32})
        extraction = extract_function_symbols(image, header_macros=("f", "g"))
        assert extraction.all_symbols == ["f", "g"]

    def test_pipeline_text_rendering(self):
        archive = build_libc_archive()
        text = objdump_pipeline_text(archive)
        assert "SYMBOL TABLE:" in text and "malloc" in text


class TestStubGenerator:
    def test_stub_per_function(self):
        module = simple_module()
        stubs = generate_stubs(module)
        assert len(stubs) == len(module)
        descriptor = stubs.descriptor("test_incr")
        assert descriptor.client_symbol == "SMOD_client_test_incr"
        assert "sys_smod_call" in descriptor.assembly or "307" in descriptor.assembly

    def test_subset_generation_and_unknown_rejected(self):
        module = simple_module()
        stubs = generate_stubs(module, symbols=["test_incr"])
        assert len(stubs) == 1
        with pytest.raises(ToolchainError):
            generate_stubs(module, symbols=["nope"])
        with pytest.raises(ToolchainError):
            stubs.descriptor("missing")

    def test_override_header_defines_every_stub(self):
        module = simple_module()
        stubs = generate_stubs(module)
        header = stubs.override_header()
        assert "#define test_incr SMOD_client_test_incr" in header
        # one #define per protected function plus the include guard itself
        assert header.count("#define") == len(module) + 1

    def test_runtime_stub_instantiation(self):
        module = simple_module()
        stubs = generate_stubs(module)
        stub = stubs.client_stub("test_add", module_id=5)
        assert stub.module_id == 5
        assert stub.arg_words == 2


class TestPacker:
    def test_pack_libc_archive(self):
        archive = build_libc_archive()
        pack = pack_library(archive, module_name="libc",
                            behaviours=libc_behaviours())
        assert pack.module_name == "libc"
        assert "malloc" in pack.definition
        assert pack.definition.library_image.kind == "shared"
        # merged image keeps relocation holes for the encryption pass
        assert pack.definition.library_image.relocations
        assert "printf" in pack.skipped_symbols

    def test_pack_requires_some_behaviour(self):
        archive = build_libc_archive()
        with pytest.raises(ToolchainError):
            pack_library(archive, behaviours={})

    def test_pack_single_image(self):
        image = make_function_image("libwidget.a", {"widget_new": 48,
                                                    "widget_free": 48})
        pack = pack_library(image, behaviours={
            "widget_new": FunctionSpec(lambda env: 1),
            "widget_free": FunctionSpec(lambda env, h: 0),
        })
        assert len(pack.definition) == 2
        # a trailing ".a" is stripped from the derived module name
        assert pack.definition.name == "libwidget"

    def test_empty_library_rejected(self):
        from repro.obj.image import ObjectImage, Section
        empty = ObjectImage(name="empty.a")
        empty.add_section(Section(name=".text", executable=True))
        with pytest.raises(ToolchainError):
            pack_library(empty, behaviours={"x": FunctionSpec(lambda env: 0)})


class TestRegistrationTool:
    @pytest.fixture
    def tooling(self):
        kernel = make_booted_kernel()
        extension = install_secmodule(kernel)
        tool = RegistrationTool(kernel, extension, kernel.proc0)
        return kernel, extension, tool

    def test_register_and_find(self, tooling):
        kernel, extension, tool = tooling
        record = tool.register(simple_module(), protection=ProtectionMode.ENCRYPT)
        assert record.m_id == 1
        assert tool.find("libdemo", 1) == 1
        assert tool.find("libdemo", 9) is None
        assert tool.records

    def test_register_twice_fails(self, tooling):
        _, _, tool = tooling
        tool.register(simple_module())
        with pytest.raises(ConfigurationError):
            tool.register(simple_module())

    def test_unprivileged_operator_rejected(self, tooling):
        kernel, extension, _ = tooling
        from repro.kernel.cred import unprivileged
        user = kernel.create_process("user", cred=unprivileged(1000))
        tool = RegistrationTool(kernel, extension, user)
        with pytest.raises(ConfigurationError):
            tool.register(simple_module())

    def test_remove(self, tooling):
        _, extension, tool = tooling
        module = simple_module()
        record = tool.register(module)
        credential = module.issuer.issue("owner")
        assert tool.remove(record.m_id, credential)
        assert tool.find("libdemo", 1) is None


class TestSecModuleLink:
    def _client_objects(self):
        return [make_function_image("client.o",
                                    {"main": 64, "smod_client_main": 64},
                                    calls=[("main", "smod_client_main")])]

    def test_link_includes_crt0_and_descriptors(self):
        module = simple_module()
        credential = module.issuer.issue("alice", uid=1000)
        result = link_secmodule_client("client", self._client_objects(),
                                       [credential], [1])
        image = result.image
        assert image.kind == "executable"
        assert image.find_symbol("start") is not None
        assert image.find_symbol("__smod_requirements") is not None
        # the descriptor embedded in the binary round-trips the credential
        assert len(result.descriptor.requirements) == 1
        requirement = result.descriptor.requirements[0]
        assert requirement.module_name == "libdemo"
        assert module.issuer.verify(requirement.credential)

    def test_link_mismatched_credentials_versions(self):
        module = simple_module()
        credential = module.issuer.issue("alice")
        with pytest.raises(ValueError):
            link_secmodule_client("client", self._client_objects(),
                                  [credential], [1, 2])

    def test_traditional_link_baseline(self):
        objects = [make_function_image("prog.o", {"main": 64})]
        result = link_traditional_client("prog", objects)
        assert result.image.find_symbol("start") is not None
        assert result.image.find_symbol("__smod_requirements") is None
