"""Tests for the handle broker: pooled attachment, lifecycle, routing.

The contract of the handle-pool redesign:

* ``per_session`` (the paper default) stays op-for-op cycle-identical to
  the pre-broker kernel — one forked handle per session;
* ``per_module``/``pooled(max_sessions=N)`` seat several sessions on one
  handle; establishment attaches (no fork), teardown detaches, and only
  the *last* detachment kills the shared handle;
* frames carry the session id, so a shared handle routes each call to the
  right secret-stack segment and a stale frame from a detached session
  fails EINVAL instead of landing on someone else's stack.
"""

import pytest

from repro.errors import SimulationError
from repro.kernel.errno import Errno
from repro.secmodule.api import SecModuleSystem
from repro.secmodule.dispatch import DispatchConfig
from repro.secmodule.handle_pool import HandlePolicy
from repro.sim import costs


def make_pooled(clients=3, handle_policy="per_module", seed=777, **kwargs):
    return SecModuleSystem.create_multi(clients=clients,
                                        handle_policy=handle_policy,
                                        seed=seed, **kwargs)


class TestHandlePolicy:
    def test_parse_strings(self):
        assert HandlePolicy.parse("per_session").kind == "per_session"
        assert HandlePolicy.parse("per-module").kind == "per_module"
        assert HandlePolicy.parse("pooled:4").max_sessions == 4
        assert HandlePolicy.parse("pooled", max_sessions=9).max_sessions == 9
        assert HandlePolicy.parse(None).kind == "per_session"
        already = HandlePolicy.pooled(2)
        assert HandlePolicy.parse(already) is already

    def test_parse_rejects_garbage(self):
        with pytest.raises(SimulationError):
            HandlePolicy.parse("per_planet")
        with pytest.raises(SimulationError):
            HandlePolicy.parse("pooled")          # no cap given
        with pytest.raises(SimulationError):
            HandlePolicy.pooled(0)

    def test_combine_most_restrictive_wins(self):
        per_session = HandlePolicy.per_session()
        per_module = HandlePolicy.per_module()
        assert per_session.combine(per_module).kind == "per_session"
        assert per_module.combine(per_module).kind == "per_module"
        assert per_module.combine(HandlePolicy.pooled(4)).max_sessions == 4
        assert HandlePolicy.pooled(8).combine(
            HandlePolicy.pooled(2)).max_sessions == 2

    def test_seats_per_handle(self):
        assert HandlePolicy.per_session().seats_per_handle() == 1
        assert HandlePolicy.per_module().seats_per_handle() == 0
        assert HandlePolicy.pooled(6).seats_per_handle() == 6


class TestPooledAttachment:
    def test_per_module_shares_one_handle(self):
        system = make_pooled(clients=4)
        assert len(system.sessions) == 4
        assert system.handle_count == 1
        handle = system.session.handle
        assert all(s.handle is handle for s in system.sessions)
        assert handle.session_count == 4
        assert system.extension.broker.handles_forked == 1
        assert system.extension.broker.attachments == 3

    def test_pooled_cap_forces_new_fork(self):
        system = make_pooled(clients=5, handle_policy="pooled:2")
        # ceil(5 / 2) == 3 handles
        assert system.handle_count == 3
        seats = sorted(h.session_count for h in
                       {s.handle.proc.pid: s.handle
                        for s in system.sessions}.values())
        assert seats == [1, 2, 2]

    def test_per_session_policy_still_forks_one_each(self):
        system = make_pooled(clients=3, handle_policy="per_session")
        assert system.handle_count == 3
        assert system.extension.broker.attachments == 0
        assert system.extension.broker.handles_forked == 3

    def test_attach_charges_pool_attach_not_fork(self):
        system = make_pooled(clients=1)
        meter = system.machine.meter
        forks = meter.count(costs.FORK_BASE)
        attaches = meter.count(costs.SMOD_POOL_ATTACH)
        system.attach_client()
        assert meter.count(costs.FORK_BASE) == forks          # no new fork
        assert meter.count(costs.SMOD_POOL_ATTACH) == attaches + 1

    def test_pooled_calls_work_for_every_client(self):
        system = make_pooled(clients=4)
        for index, session in enumerate(system.sessions):
            outcome = system.extension.dispatcher.call(
                session, "test_incr", index)
            assert outcome.ok and outcome.value == index + 1

    def test_shared_handle_routes_to_per_session_secret_stacks(self):
        system = make_pooled(clients=3)
        handle = system.session.handle
        stacks = {handle.secret_stack_for(s.session_id).name
                  for s in system.sessions}
        assert len(stacks) == 3          # one secret segment per seat
        # the first seat keeps the original secret stack (the 1:1 shape)
        assert handle.secret_stack_for(
            system.session.session_id) is handle.secret_stack

    def test_shared_handle_charges_routing_walk(self):
        system = make_pooled(clients=2)
        meter = system.machine.meter
        before = meter.count(costs.SMOD_POOL_ROUTE)
        system.extension.dispatcher.call(system.sessions[1], "test_incr", 1)
        assert meter.count(costs.SMOD_POOL_ROUTE) == before + 1

    def test_sole_seat_routes_for_free(self):
        system = SecModuleSystem.create(seed=778, include_libc=False)
        system.call("test_incr", 1)
        assert system.machine.meter.count(costs.SMOD_POOL_ROUTE) == 0


class TestPooledLifecycle:
    def test_detach_keeps_handle_until_last_session(self):
        system = make_pooled(clients=3)
        handle_proc = system.session.handle.proc
        sessions = list(system.sessions)
        system.extension.sessions.teardown(sessions[0])
        assert handle_proc.alive
        assert system.extension.sessions.sessions_for_handle(handle_proc) \
            == sessions[1:]
        system.extension.sessions.teardown(sessions[1])
        assert handle_proc.alive
        system.extension.sessions.teardown(sessions[2])
        assert not handle_proc.alive          # last seat out kills the handle
        assert system.extension.broker.handles_killed == 1
        assert system.extension.sessions.handle_count() == 0

    def test_client_exit_with_shared_handle_spares_other_clients(self):
        system = make_pooled(clients=3)
        handle_proc = system.session.handle.proc
        first, second, third = system.sessions
        system.kernel.syscall(first.client, "exit", 0)
        assert first.torn_down
        assert handle_proc.alive              # two seats remain
        outcome = system.extension.dispatcher.call(second, "test_incr", 5)
        assert outcome.ok and outcome.value == 6
        system.kernel.syscall(second.client, "exit", 0)
        system.kernel.syscall(third.client, "exit", 0)
        assert not handle_proc.alive          # last client's exit kills it

    def test_client_execve_with_shared_handle(self):
        from repro.obj.image import make_function_image
        from repro.obj.linker import link
        from repro.obj.loader import build_load_plan
        system = make_pooled(clients=2)
        handle_proc = system.session.handle.proc
        obj = make_function_image("newprog.o", {"start": 32, "main": 32},
                                  calls=[("start", "main")])
        plan = build_load_plan(link("newprog", [obj]).image)
        system.kernel.syscall(system.sessions[0].client, "execve", plan,
                              "newprog")
        assert system.sessions[0].torn_down
        assert not system.sessions[0].client.is_smod_client
        assert handle_proc.alive              # the other client still attached
        assert not system.sessions[1].torn_down

    def test_handle_death_tears_down_every_seated_session(self):
        system = make_pooled(clients=3)
        handle_proc = system.session.handle.proc
        system.kernel.exit_process(handle_proc)
        assert all(s.torn_down for s in system.sessions)
        assert all(s.client.alive for s in system.sessions)
        assert system.extension.sessions.handle_count() == 0

    def test_pooled_clients_can_both_grow_their_heaps(self):
        """Regression: attaching must not re-peer the shared handle's one
        window — with serial re-peering, two seated clients growing their
        heaps collided in the handle's map (overlapping-mapping crash)."""
        system = make_pooled(clients=2)
        first, second = system.clients
        assert first.malloc(64) and second.malloc(64)
        assert first.malloc(8192) and second.malloc(8192)
        # vm-level obreak peering stays exclusive to the forked 1:1 pair
        handle_space = system.session.handle.proc.vmspace
        assert handle_space.smod_peer is first.proc.vmspace
        assert first.proc.vmspace.smod_peer is handle_space
        assert second.proc.vmspace.smod_peer is None

    def test_teardown_relink_never_steals_vm_peering(self):
        """A survivor session seated on someone else's pooled handle must
        not acquire that handle's obreak peer link at teardown."""
        system = make_pooled(clients=2)
        first, second = system.sessions
        extra = system.open_extra_session()     # second session for client 0
        # tear down client 0's primary; the survivor (extra) rides the same
        # pooled handle, which is still vm-peered with client 0 — relink ok
        system.extension.sessions.teardown(first)
        assert first.client.vmspace.smod_peer is extra.handle.proc.vmspace
        # client 1's session survives on a handle peered with client 0:
        # tearing down one of client 1's other attachments must not re-point
        # vm peering at a window that is not client 1's
        assert second.client.vmspace.smod_peer is None

    def test_stale_frame_from_detached_session_fails_einval(self):
        system = make_pooled(clients=2)
        victim = system.sessions[1]
        # capture a frame the stub pushed for the victim session, then tear
        # the session down and replay the frame through the raw syscall
        outcome = system.extension.dispatcher.call(victim, "test_incr", 1)
        frame = outcome.frame
        module = next(iter(victim.modules.values()))
        system.extension.sessions.teardown(victim)
        result = system.kernel.syscall(
            victim.client, "smod_call", frame, module.m_id, 1,
            DispatchConfig())
        assert result.failed and result.errno is Errno.EINVAL

    def test_batch_through_pooled_handle_preserves_fifo_order(self):
        from repro.secmodule.module import SecModuleDefinition
        order = []

        def recorder(tag):
            def impl(env, *args):
                order.append(tag)
                return tag
            return impl

        module = SecModuleDefinition("libseq", 1)
        for tag in ("first", "second", "third"):
            module.add_function(tag, recorder(tag),
                                cost_op=costs.FUNC_BODY_TESTINCR, arg_words=0)
        system = SecModuleSystem.create_multi(
            clients=2, handle_policy="per_module", seed=779,
            include_test_module=False, extra_modules=[module])
        assert system.handle_count == 1
        outcome = system.extension.dispatcher.call_batch(
            system.sessions[1],
            [("first", ()), ("second", ()), ("third", ())],
            config=DispatchConfig(batch_size=3))
        assert outcome.ok
        assert order == ["first", "second", "third"]
        assert outcome.values == ["first", "second", "third"]
        # the pooled batch drained on the *second* seat's secret segment
        handle = system.sessions[1].handle
        assert handle.secret_stack_for(
            system.sessions[1].session_id).depth() == 0
        assert system.sessions[1].shared_stack.depth() == 0


class TestTeardownAllSurfacesErrors:
    def test_raising_teardown_still_tears_down_later_sessions(self):
        """A teardown that raises mid-list must neither be swallowed nor
        strand the client's later sessions (the exit/execve path)."""
        system = SecModuleSystem.create(seed=780, include_libc=False)
        extra = system.open_extra_session()
        sessions = system.extension.sessions.for_client(system.client_proc)
        assert sessions == [system.session, extra]

        original_kill = system.session.handle.kill
        calls = {"n": 0}

        def raising_kill():
            calls["n"] += 1
            original_kill()
            raise RuntimeError("handle refused to die cleanly")

        system.session.handle.kill = raising_kill
        with pytest.raises(RuntimeError, match="refused to die"):
            system.extension.sessions.teardown_all_for_client(
                system.client_proc)
        # the raising session is torn down AND the later one was not skipped
        assert calls["n"] == 1
        assert system.session.torn_down and extra.torn_down
        assert not extra.handle.proc.alive
        assert system.extension.sessions.for_client(system.client_proc) == []


class TestPerSessionIdentity:
    def test_per_session_call_cycles_identical_to_default(self):
        """handle_policy='per_session' must be op-for-op what the 1:1 kernel
        did: same establishment and dispatch cycle totals."""
        plain = SecModuleSystem.create(seed=4242, include_libc=False)
        explicit = SecModuleSystem.create(seed=4242, include_libc=False,
                                          handle_policy="per_session")
        for system in (plain, explicit):
            system.call("test_incr", 0)
        marks = []
        for system in (plain, explicit):
            mark = system.machine.clock.checkpoint()
            for i in range(32):
                system.call("test_incr", i)
            marks.append(system.machine.clock.since(mark).cycles)
        assert marks[0] == marks[1]
        assert plain.machine.meter.snapshot() == \
            explicit.machine.meter.snapshot()

    def test_broker_defaults_to_per_session(self):
        system = SecModuleSystem.create(seed=4242, include_libc=False)
        assert system.extension.broker.default_policy.kind == "per_session"
        assert system.extension.sessions.broker is system.extension.broker
