"""Tests for text encryption and the client-side protection modes."""

import pytest

from repro.errors import ConfigurationError, ProtectionViolation
from repro.hw.machine import make_paper_machine
from repro.obj.image import make_function_image
from repro.secmodule.api import SecModuleSystem
from repro.secmodule.crypto import (
    BLOCK_BYTES,
    ModuleKey,
    decrypt_bytes,
    decrypt_module_text,
    encrypt_bytes,
    encrypt_module_text,
    encrypt_section_in_place,
    decrypt_section_in_place,
)
from repro.secmodule.protection import (
    ClientTextGuard,
    ProtectionMode,
    client_read_text,
    handle_plaintext_view,
)
from repro.sim import costs
from repro.sim.rng import DeterministicRNG


@pytest.fixture
def key():
    return ModuleKey.generate(DeterministicRNG(1))


class TestBlockCipher:
    def test_roundtrip_exact(self, key):
        data = bytes(range(256)) * 3
        assert decrypt_bytes(encrypt_bytes(data, key), key) == data

    def test_ciphertext_differs_from_plaintext(self, key):
        data = b"A" * 64
        assert encrypt_bytes(data, key) != data

    def test_partial_block_handled(self, key):
        data = b"12345"            # shorter than one block
        ciphertext = encrypt_bytes(data, key)
        assert len(ciphertext) == len(data)
        assert ciphertext != data
        assert decrypt_bytes(ciphertext, key) == data

    def test_different_keys_different_ciphertext(self):
        k1 = ModuleKey.generate(DeterministicRNG(1))
        k2 = ModuleKey.generate(DeterministicRNG(2))
        data = b"B" * 32
        assert encrypt_bytes(data, k1) != encrypt_bytes(data, k2)

    def test_key_length_enforced(self):
        with pytest.raises(ConfigurationError):
            ModuleKey(material=b"short")

    def test_cipher_charges_block_costs(self, key):
        machine = make_paper_machine()
        encrypt_bytes(b"x" * (BLOCK_BYTES * 10), key, machine)
        assert machine.meter.count(costs.CIPHER_BLOCK) == 10


class TestSectionEncryption:
    def test_relocation_holes_left_untouched(self, key):
        image = make_function_image("lib.o", {"f": 64, "g": 64},
                                    calls=[("f", "g"), ("g", "f")])
        text = image.get_section(".text")
        original = bytes(text.data)
        holes = image.relocation_offsets(".text")
        info = encrypt_section_in_place(text, holes, key)
        for offset in holes:
            assert text.data[offset] == original[offset]
        changed = [o for o in range(text.size)
                   if o not in holes and text.data[o] != original[o]]
        assert changed, "non-hole bytes should have been encrypted"
        assert info.bytes_skipped == len(holes)
        assert info.bytes_protected == text.size - len(holes)

    def test_section_roundtrip(self, key):
        image = make_function_image("lib.o", {"f": 64, "g": 64}, calls=[("f", "g")])
        text = image.get_section(".text")
        original = bytes(text.data)
        info = encrypt_section_in_place(text, image.relocation_offsets(".text"), key)
        decrypt_section_in_place(text, info, key)
        assert bytes(text.data) == original

    def test_module_text_roundtrip_and_flag(self, key):
        image = make_function_image("lib.so", {"f": 64}, kind="shared")
        original = bytes(image.get_section(".text").data)
        record = encrypt_module_text(image, key)
        assert image.encrypted
        assert bytes(image.get_section(".text").data) != original
        decrypt_module_text(image, record)
        assert not image.encrypted
        assert bytes(image.get_section(".text").data) == original
        assert record.total_protected_bytes > 0


class TestProtectionModes:
    def test_mode_predicates(self):
        assert ProtectionMode.ENCRYPT.uses_encryption
        assert not ProtectionMode.ENCRYPT.uses_unmap
        assert ProtectionMode.UNMAP.uses_unmap
        assert ProtectionMode.BOTH.uses_encryption and ProtectionMode.BOTH.uses_unmap

    def test_unmap_mode_removes_client_library_mapping(self):
        system = SecModuleSystem.create(protection=ProtectionMode.UNMAP, seed=11)
        names = [e.name for e in system.client_proc.vmspace.vm_map
                 if e.uobj is not None]
        assert names == ["client:.text"]
        guard = system.session.guards[next(iter(system.session.guards))]
        assert guard.unmapped_entries

    def test_unmap_mode_denies_later_loads(self):
        guard = ClientTextGuard(module_name="libc", mode=ProtectionMode.UNMAP)
        with pytest.raises(ProtectionViolation):
            guard.check_client_map_attempt("libc.so")
        assert guard.denied_load_attempts == 1
        guard.check_client_map_attempt("libother.so")     # unrelated is fine

    def test_encrypt_mode_leaves_only_ciphertext_with_client(self):
        system = SecModuleSystem.create(protection=ProtectionMode.ENCRYPT, seed=12)
        module = system.session.module_by_name("libtest")
        entry = system.client_proc.vmspace.vm_map.find_entry("libtest.so:.text")
        assert entry is not None
        client_view = client_read_text(system.kernel, system.client_proc,
                                       module, entry.start, 64)
        plaintext = handle_plaintext_view(module)
        assert client_view != plaintext[:64]

    def test_handle_sees_plaintext(self):
        system = SecModuleSystem.create(protection=ProtectionMode.ENCRYPT, seed=13)
        module = system.session.module_by_name("libtest")
        loaded = system.session.handle.loaded[module.m_id]
        handle_entry = system.handle_proc.vmspace.vm_map.find_entry(
            loaded.text_entry_name)
        assert handle_entry is not None
        assert bytes(handle_entry.uobj.data[:32]) == handle_plaintext_view(module)[:32]

    def test_client_read_of_unmapped_text_faults(self):
        system = SecModuleSystem.create(protection=ProtectionMode.UNMAP, seed=14)
        module = system.session.module_by_name("libtest")
        with pytest.raises(ProtectionViolation):
            client_read_text(system.kernel, system.client_proc, module,
                             0x0000_3000, 16)

    def test_both_mode_unmaps_and_encrypts(self):
        system = SecModuleSystem.create(protection=ProtectionMode.BOTH, seed=15)
        names = [e.name for e in system.client_proc.vmspace.vm_map
                 if e.uobj is not None]
        assert "libtest.so:.text" not in names
        module = system.session.module_by_name("libtest")
        assert module.definition.ensure_library_image().encrypted
        # dispatch still works
        assert system.call("test_incr", 1) == 2
