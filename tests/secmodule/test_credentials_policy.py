"""Tests for SecModule credentials and the policy engine."""

import pytest

from repro.errors import PolicyError
from repro.secmodule.credentials import (
    Credential,
    CredentialIssuer,
    validate_credential,
)
from repro.secmodule.policy import (
    AlwaysAllowPolicy,
    AttributePredicatePolicy,
    CallQuotaPolicy,
    CompositePolicy,
    DenyAllPolicy,
    FunctionDenyPolicy,
    PolicyContext,
    PrincipalAllowPolicy,
    TimeWindowPolicy,
    UidAllowPolicy,
    synthetic_chain,
)


@pytest.fixture
def issuer():
    return CredentialIssuer(module_name="libc", secret=b"very-secret")


def make_ctx(credential=None, *, uid=1000, function="test_incr", now_us=10.0,
             calls=0, attributes=None):
    credential = credential or Credential(principal="alice", module_name="libc")
    return PolicyContext(credential=credential, uid=uid, gid=uid,
                         principal=credential.principal, function_name=function,
                         now_us=now_us, calls_this_session=calls,
                         attributes=attributes or {})


class TestCredentials:
    def test_issue_and_verify(self, issuer):
        credential = issuer.issue("alice", uid=1000)
        assert issuer.verify(credential)
        assert credential.module_name == "libc"

    def test_tampered_credential_rejected(self, issuer):
        credential = issuer.issue("alice", uid=1000)
        forged = Credential(principal="mallory", module_name="libc",
                            issued_to_uid=1000, token=credential.token)
        assert not issuer.verify(forged)

    def test_wrong_issuer_secret_rejected(self, issuer):
        other = CredentialIssuer(module_name="libc", secret=b"different")
        credential = other.issue("alice")
        assert not issuer.verify(credential)

    def test_wrong_module_rejected(self, issuer):
        other = CredentialIssuer(module_name="libm", secret=b"very-secret")
        assert not issuer.verify(other.issue("alice"))

    def test_unsigned_credential_rejected(self, issuer):
        assert not issuer.verify(Credential(principal="alice", module_name="libc"))

    def test_validate_uid_binding(self, issuer):
        credential = issuer.issue("alice", uid=1000)
        good = validate_credential(issuer, credential, uid=1000, now_us=0.0)
        bad = validate_credential(issuer, credential, uid=2000, now_us=0.0)
        assert good.valid and not bad.valid
        assert "uid" in bad.reason

    def test_validate_expiry(self, issuer):
        credential = issuer.issue("alice", expires_at_us=100.0)
        assert validate_credential(issuer, credential, uid=1, now_us=50.0).valid
        assert not validate_credential(issuer, credential, uid=1, now_us=150.0).valid

    def test_validate_call_quota(self, issuer):
        credential = issuer.issue("alice", max_calls=5)
        assert validate_credential(issuer, credential, uid=1, now_us=0,
                                   calls_made=4).valid
        assert not validate_credential(issuer, credential, uid=1, now_us=0,
                                       calls_made=5).valid

    def test_encode_decode_roundtrip(self, issuer):
        credential = issuer.issue("alice", uid=1000, max_calls=7,
                                  expires_at_us=123.5)
        decoded = Credential.decode(credential.encode())
        assert decoded == credential
        assert issuer.verify(decoded)

    def test_decode_garbage_rejected(self):
        with pytest.raises(ValueError):
            Credential.decode(b"not|enough|fields")


class TestSimplePolicies:
    def test_always_allow_costs_nothing(self):
        decision = AlwaysAllowPolicy().evaluate(make_ctx())
        assert decision.allowed and decision.steps == 0

    def test_deny_all(self):
        decision = DenyAllPolicy().evaluate(make_ctx())
        assert not decision.allowed and decision.steps == 1

    def test_uid_allowlist(self):
        policy = UidAllowPolicy([1000, 1001])
        assert policy.evaluate(make_ctx(uid=1000)).allowed
        assert not policy.evaluate(make_ctx(uid=2000)).allowed
        with pytest.raises(PolicyError):
            UidAllowPolicy([])

    def test_principal_allowlist(self):
        policy = PrincipalAllowPolicy(["alice"])
        assert policy.evaluate(make_ctx()).allowed
        mallory = Credential(principal="mallory", module_name="libc")
        assert not policy.evaluate(make_ctx(mallory)).allowed

    def test_function_denylist(self):
        policy = FunctionDenyPolicy(["execve"])
        assert policy.evaluate(make_ctx(function="malloc")).allowed
        assert not policy.evaluate(make_ctx(function="execve")).allowed

    def test_call_quota(self):
        policy = CallQuotaPolicy(3)
        assert policy.evaluate(make_ctx(calls=2)).allowed
        assert not policy.evaluate(make_ctx(calls=3)).allowed
        with pytest.raises(PolicyError):
            CallQuotaPolicy(0)

    def test_time_window(self):
        policy = TimeWindowPolicy(10.0, 20.0)
        assert policy.evaluate(make_ctx(now_us=15.0)).allowed
        assert not policy.evaluate(make_ctx(now_us=25.0)).allowed
        with pytest.raises(PolicyError):
            TimeWindowPolicy(5.0, 5.0)

    def test_attribute_predicate_weight(self):
        policy = AttributePredicatePolicy("load-ok",
                                          lambda attrs: attrs.get("load", 0) < 5,
                                          weight=3)
        allowed = policy.evaluate(make_ctx(attributes={"load": 1}))
        denied = policy.evaluate(make_ctx(attributes={"load": 9}))
        assert allowed.allowed and allowed.steps == 3
        assert not denied.allowed
        with pytest.raises(PolicyError):
            AttributePredicatePolicy("x", lambda a: True, weight=0)


class TestCompositePolicy:
    def test_steps_accumulate(self):
        policy = CompositePolicy([UidAllowPolicy([1000]),
                                  CallQuotaPolicy(10),
                                  FunctionDenyPolicy(["execve"])])
        decision = policy.evaluate(make_ctx())
        assert decision.allowed and decision.steps == 3
        assert len(policy) == 3

    def test_short_circuit_on_denial(self):
        policy = CompositePolicy([UidAllowPolicy([42]), CallQuotaPolicy(10)])
        decision = policy.evaluate(make_ctx(uid=1000))
        assert not decision.allowed
        assert decision.steps == 1            # second clause never evaluated
        assert "uid" in decision.reason

    def test_empty_composite_rejected(self):
        with pytest.raises(PolicyError):
            CompositePolicy([])

    def test_synthetic_chain_length(self):
        assert isinstance(synthetic_chain(0), AlwaysAllowPolicy)
        chain = synthetic_chain(8)
        decision = chain.evaluate(make_ctx())
        assert decision.allowed and decision.steps == 8

    def test_describe_mentions_clauses(self):
        policy = CompositePolicy([UidAllowPolicy([1]), DenyAllPolicy()])
        assert "uid-allowlist" in policy.describe()
