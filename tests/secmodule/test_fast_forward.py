"""The analytic fast-forward tier: closed-form charges over hot traces.

Three layers of proof, mirroring docs/performance.md:

* ``CallTrace.scaled(n)`` is *exactly* the aggregate of ``n`` back-to-back
  charges — integer arithmetic, no rounding to diverge;
* ``fast_forward_probe`` x n + ``fast_forward_commit(n)`` applies the
  identical machine/session/cache state a loop of n per-call replays
  applies (only the trace cache's own mechanism counters may differ);
* admission fails closed: poisoned entries, stale decision-cache touches
  and mid-window epoch bumps all force the slow path, and a span that
  falls back is never also settled in a window (no double-charging).
"""

from __future__ import annotations

import pytest

from repro.secmodule.api import SecModuleSystem
from repro.secmodule.dispatch import (
    DispatchConfig,
    TRACE_HOT,
    TRACE_POISONED,
)
from repro.workloads.traffic import TrafficEngine, TrafficSpec
from test_trace_replay import accounting, normalized_metrics  # noqa: F401


def make_system(**kwargs):
    return SecModuleSystem.create(include_libc=False, **kwargs)


def warm_key(system, config):
    """Record + confirm ``test_incr`` and return its hot trace key."""
    for i in range(2):
        assert system.call("test_incr", i, config=config) == i + 1
    session = system.session
    module, function = session.find_function("test_incr")
    key = (session.session_id, (module.m_id, function.func_id), config)
    entry = system.extension.dispatcher.trace_cache.lookup(key)
    assert entry is not None and entry.state == TRACE_HOT
    return key, entry


def machine_state(system):
    """Everything a fast-forward settle must leave identical to n replays
    (the trace cache's own mechanism counters are accounting *of* the
    mechanism and excluded by design)."""
    dispatcher = system.extension.dispatcher
    cache = dispatcher.decision_cache
    return {
        "cycles": system.machine.clock.cycles,
        "events": system.machine.clock.events,
        "ops": dict(system.machine.meter.op_counts),
        "dispatched": dispatcher.calls_dispatched,
        "denied": dispatcher.calls_denied,
        "served": system.session.handle.calls_served,
        "session_calls": (system.session.calls_made,
                          dict(system.session.calls_per_module)),
        "cache": (cache.hits, cache.misses, cache.batch_epoch_checks,
                  cache.batch_served),
    }


class TestScaledTrace:
    def test_scaled_is_exact_integer_aggregation(self):
        system = make_system(seed=3)
        _, entry = warm_key(system, DispatchConfig())
        trace = entry.trace
        for n in (2, 5, 1000):
            scaled = trace.scaled(n)
            assert scaled.total_cycles == trace.total_cycles * n
            assert scaled.events == trace.events * n
            assert scaled.ops == tuple((op, count * n)
                                       for op, count in trace.ops)
            assert scaled.op_cycles == tuple(
                (op, count * n, cycles * n)
                for op, count, cycles in trace.op_cycles)

    def test_scaled_one_is_self_and_negative_raises(self):
        system = make_system(seed=3)
        _, entry = warm_key(system, DispatchConfig())
        assert entry.trace.scaled(1) is entry.trace
        with pytest.raises(ValueError):
            entry.trace.scaled(-1)


class TestProbeCommitEquivalence:
    def test_probe_n_commit_equals_n_replays(self):
        """One scaled commit must equal the per-call replay loop, state
        field for state field."""
        config = DispatchConfig()
        n = 7

        replay = make_system(seed=11)
        warm_key(replay, config)
        for i in range(n):
            replay.call("test_incr", 50 + i, config=config)
        assert replay.extension.dispatcher.trace_cache.replays == n

        forwarded = make_system(seed=11)
        key, entry = warm_key(forwarded, config)
        dispatcher = forwarded.extension.dispatcher
        for _ in range(n):
            assert dispatcher.fast_forward_probe(forwarded.session,
                                                 key) is entry
        dispatcher.fast_forward_commit(entry, forwarded.session, n)
        stats = dispatcher.trace_cache.snapshot()
        assert stats["fast_forwards"] == 1
        assert stats["fast_forward_calls"] == n

        assert machine_state(replay) == machine_state(forwarded)

    def test_commit_of_zero_spans_is_a_noop(self):
        system = make_system(seed=11)
        key, entry = warm_key(system, DispatchConfig())
        before = machine_state(system)
        system.extension.dispatcher.fast_forward_commit(
            entry, system.session, 0)
        assert machine_state(system) == before
        assert system.extension.dispatcher.trace_cache.fast_forwards == 0


class TestAdmission:
    def test_poisoned_entry_refuses_probe(self):
        system = make_system(seed=17)
        key, entry = warm_key(system, DispatchConfig())
        entry.state = TRACE_POISONED
        dispatcher = system.extension.dispatcher
        assert dispatcher.fast_forward_probe(system.session, key) is None
        # the call itself still works — op by op, never through the entry
        replays_before = dispatcher.trace_cache.replays
        assert system.call("test_incr", 9) == 10
        assert dispatcher.trace_cache.replays == replays_before

    def test_stale_decision_touch_fails_probe_and_counts_fallback(self):
        """A hot entry whose recorded decision-cache touches can no longer
        be replayed (evicted/invalidated decision) must fail the probe with
        the same ``fallbacks`` bump a failed replay takes."""
        system = make_system(seed=17)
        key, entry = warm_key(system, DispatchConfig())
        entry.cache_touch_keys = (("no-such-module", -1, -1),)
        dispatcher = system.extension.dispatcher
        fallbacks = dispatcher.trace_cache.fallbacks
        assert dispatcher.fast_forward_probe(system.session, key) is None
        assert dispatcher.trace_cache.fallbacks == fallbacks + 1

    def test_epoch_bump_forces_probe_failure(self):
        system = make_system(seed=17)
        key, _ = warm_key(system, DispatchConfig())
        session = system.session
        m_id = next(iter(session.credentials))
        session.replace_credential(m_id, session.credentials[m_id])
        assert system.extension.dispatcher.fast_forward_probe(
            session, key) is None

    def test_unknown_key_probe_returns_none_quietly(self):
        system = make_system(seed=17)
        dispatcher = system.extension.dispatcher
        fallbacks = dispatcher.trace_cache.fallbacks
        assert dispatcher.fast_forward_probe(
            system.session, ("bogus",)) is None
        assert dispatcher.trace_cache.fallbacks == fallbacks

    def test_armed_event_trace_refuses_probe(self):
        """A live TraceBuffer needs per-op emits fast-forward skips."""
        system = make_system(seed=17)
        key, _ = warm_key(system, DispatchConfig())
        system.machine.trace.enabled = True
        try:
            assert system.extension.dispatcher.fast_forward_probe(
                system.session, key) is None
        finally:
            system.machine.trace.enabled = False


class TestNoDoubleCharge:
    def test_epoch_bump_mid_window_settles_partial_then_falls_back(self):
        """The window-close contract: spans admitted before an epoch bump
        settle once via the scaled commit, the bumped call runs the slow
        path once — totals identical to never fast-forwarding at all."""
        config = DispatchConfig()

        def drive(fast_forward: bool):
            system = make_system(seed=23)
            dispatcher = system.extension.dispatcher
            session = system.session
            key, entry = warm_key(system, config)
            if fast_forward:
                for _ in range(3):
                    assert dispatcher.fast_forward_probe(session,
                                                         key) is entry
            else:
                for i in range(3):
                    system.call("test_incr", 10 + i, config=config)
            # the invalidating event lands mid-window
            m_id = next(iter(session.credentials))
            session.replace_credential(m_id, session.credentials[m_id])
            if fast_forward:
                # probe now refuses; settle the partial window exactly once
                assert dispatcher.fast_forward_probe(session, key) is None
                dispatcher.fast_forward_commit(entry, session, 3)
            # the refused span takes the slow path (re-records under the
            # new epoch), exactly as a failed replay would
            system.call("test_incr", 100, config=config)
            return machine_state(system)

        assert drive(fast_forward=True) == drive(fast_forward=False)


class TestEngineDifferential:
    def accounting_pair(self, spec: TrafficSpec):
        def run(fast_forward: bool):
            engine = TrafficEngine(spec, dispatch_config=DispatchConfig(
                use_fast_forward=fast_forward))
            result = engine.run()
            return engine, result
        off_engine, off_result = run(False)
        on_engine, on_result = run(True)
        assert accounting(off_engine, off_result) == \
            accounting(on_engine, on_result)
        return (off_engine.extension.dispatcher.trace_cache.snapshot(),
                on_engine.extension.dispatcher.trace_cache.snapshot())

    def test_open_loop_ff_off_vs_on(self):
        off, on = self.accounting_pair(
            TrafficSpec(clients=4, modules=2, calls_per_client=60,
                        arrival="open"))
        assert off["fast_forward_calls"] == 0 and off["replays"] > 0
        assert on["fast_forward_calls"] > 0

    def test_open_loop_with_telemetry(self):
        # the metrics snapshot (bulk vs per-call recording) is part of the
        # compared accounting, means normalized to 12 significant digits
        self.accounting_pair(
            TrafficSpec(clients=3, modules=2, calls_per_client=40,
                        arrival="open", telemetry=True))

    def test_mmpp_ff_off_vs_on(self):
        self.accounting_pair(
            TrafficSpec(clients=3, modules=2, calls_per_client=48,
                        arrival="mmpp"))
