"""Token-bucket admission at the dispatcher entry.

The load-bearing invariants:

* a refused call returns EAGAIN with a small, honest virtual cost
  (admission check + optional refill) and touches *nothing* else — no
  trace recording, no replay, no handle, no session counters;
* admitted calls are charged and traced exactly as unprotected calls
  are: a burst that sheds half its calls never poisons the HOT key and
  never double-charges a fast-forward window (the probe refuses to open
  windows while admission is active);
* batch admission charges one token per queued call in a single
  up-front decision; a refused queue is refused whole.
"""

from __future__ import annotations

from repro.kernel.errno import Errno
from repro.secmodule.api import SecModuleSystem
from repro.secmodule.dispatch import DispatchConfig, TRACE_HOT
from repro.control.overload import OverloadConfig, OverloadController
from repro.sim import costs


def make_system(**kwargs):
    return SecModuleSystem.create(include_libc=False, **kwargs)


def starving_controller(burst: float = 3.0) -> OverloadController:
    """Admission that grants ``burst`` tokens and essentially never
    refills (deterministic: the refill over any test run is < 1 token)."""
    return OverloadController(OverloadConfig(
        admission_rate_per_us=1e-12, admission_burst=burst))


def warm_key(system, config=DispatchConfig()):
    for i in range(2):
        assert system.call("test_incr", i, config=config) == i + 1
    session = system.session
    module, function = session.find_function("test_incr")
    key = (session.session_id, (module.m_id, function.func_id), config)
    entry = system.extension.dispatcher.trace_cache.lookup(key)
    assert entry is not None and entry.state == TRACE_HOT
    return key, entry


class TestAdmissionEntry:
    def test_refusal_is_eagain_and_cheap(self):
        system = make_system(seed=5)
        dispatcher = system.extension.dispatcher
        dispatcher.overload = starving_controller(burst=1.0)
        assert system.call("test_incr", 1) == 2
        before = system.machine.clock.cycles
        outcome = system.extension.dispatcher.call(system.session,
                                                   "test_incr", 2)
        assert not outcome.ok and outcome.errno == Errno.EAGAIN
        refusal_cycles = system.machine.clock.cycles - before
        # one admission check, at most one refill: far below a dispatch
        table = system.machine.meter.profile.cycles
        assert refusal_cycles <= (table[costs.SMOD_ADMIT_CHECK]
                                  + table[costs.SMOD_ADMIT_REFILL])
        assert dispatcher.calls_shed == 1

    def test_refused_calls_touch_no_dispatch_state(self):
        system = make_system(seed=5)
        dispatcher = system.extension.dispatcher
        warm_key(system)
        dispatcher.overload = starving_controller(burst=1.0)
        # drain the single token out-of-band so every call below refuses
        assert dispatcher.overload.admit(
            system.session.client.pid, system.machine.microseconds())[0]
        dispatcher.overload.admitted = 0
        dispatched = dispatcher.calls_dispatched
        served = system.session.handle.calls_served
        replays = dispatcher.trace_cache.replays
        for i in range(5):
            outcome = dispatcher.call(system.session, "test_incr", i)
            assert outcome.errno == Errno.EAGAIN
        assert dispatcher.calls_dispatched == dispatched
        assert system.session.handle.calls_served == served
        assert dispatcher.trace_cache.replays == replays
        assert dispatcher.calls_shed == 5

    def test_disabled_admission_costs_nothing(self):
        """The default path must not even charge the admission check."""
        plain = make_system(seed=6)
        controlled = make_system(seed=6)
        controlled.extension.dispatcher.overload = OverloadController(
            OverloadConfig())           # constructed but all-off
        for i in range(4):
            assert plain.call("test_incr", i) == i + 1
            assert controlled.call("test_incr", i) == i + 1
        assert plain.machine.clock.cycles == controlled.machine.clock.cycles
        assert dict(plain.machine.meter.op_counts) == \
            dict(controlled.machine.meter.op_counts)


class TestTraceCacheIsolation:
    """Satellite invariant: shed calls never enter trace machinery."""

    def test_burst_with_shedding_never_poisons_hot_key(self):
        system = make_system(seed=7)
        dispatcher = system.extension.dispatcher
        key, entry = warm_key(system)
        dispatcher.overload = starving_controller(burst=3.0)
        admitted = refused = 0
        for i in range(10):
            outcome = dispatcher.call(system.session, "test_incr", i)
            if outcome.ok:
                admitted += 1
            else:
                refused += 1
        assert admitted == 3 and refused == 7
        # the key is still HOT and still replaying — refusals left no mark
        assert dispatcher.trace_cache.lookup(key) is entry
        assert entry.state == TRACE_HOT
        dispatcher.overload = None
        replays = dispatcher.trace_cache.replays
        assert system.call("test_incr", 99) == 100
        assert dispatcher.trace_cache.replays == replays + 1

    def test_admitted_calls_charge_exactly_burst_plus_admission(self):
        """The admitted calls of a shedding burst cost exactly what the
        same calls cost unprotected, plus the admission ops — cycle for
        cycle, op for op (shed calls excluded from both sides)."""
        def drive(protect: bool):
            system = make_system(seed=8)
            dispatcher = system.extension.dispatcher
            warm_key(system)
            if protect:
                dispatcher.overload = starving_controller(burst=4.0)
            start = system.machine.clock.cycles
            served = []
            for i in range(10):
                outcome = dispatcher.call(system.session, "test_incr", i)
                if outcome.ok:
                    served.append(i)
                if not protect and len(served) == 4:
                    break
            return (system, served, system.machine.clock.cycles - start)

        protected, served_p, cycles_p = drive(True)
        plain, served_u, cycles_u = drive(False)
        assert served_p == served_u == [0, 1, 2, 3]
        table = protected.machine.meter.profile.cycles
        ops = protected.machine.meter.op_counts
        admission_cycles = (
            ops.get(costs.SMOD_ADMIT_CHECK, 0)
            * table[costs.SMOD_ADMIT_CHECK]
            + ops.get(costs.SMOD_ADMIT_REFILL, 0)
            * table[costs.SMOD_ADMIT_REFILL])
        assert cycles_p == cycles_u + admission_cycles

    def test_fast_forward_probe_refuses_under_admission(self):
        """FF folds n calls into one closed-form charge, which would
        bypass per-call admission — the probe must force per-call paths."""
        system = make_system(seed=9)
        dispatcher = system.extension.dispatcher
        key, entry = warm_key(system)
        assert dispatcher.fast_forward_probe(system.session, key) is entry
        dispatcher.overload = OverloadController(OverloadConfig(
            admission_rate_per_us=1000.0, admission_burst=1000.0))
        assert dispatcher.fast_forward_probe(system.session, key) is None
        # an all-off controller does not block the analytic tier
        dispatcher.overload = OverloadController(OverloadConfig())
        assert dispatcher.fast_forward_probe(system.session, key) is entry


class TestBatchAdmission:
    def test_queue_refused_whole(self):
        system = make_system(seed=10)
        dispatcher = system.extension.dispatcher
        dispatcher.overload = starving_controller(burst=3.0)
        calls = [("test_incr", (i,)) for i in range(4)]
        outcome = dispatcher.call_batch(system.session, calls,
                                        config=DispatchConfig(batch_size=4))
        assert outcome.errno == Errno.EAGAIN
        assert len(outcome.outcomes) == 4
        assert all(o.errno == Errno.EAGAIN for o in outcome.outcomes)
        assert dispatcher.calls_shed == 4
        # the refused queue did not drain the bucket: 3 tokens remain
        outcome = dispatcher.call_batch(system.session,
                                        calls[:3],
                                        config=DispatchConfig(batch_size=4))
        assert outcome.errno is None
        assert [o.value for o in outcome.outcomes] == [1, 2, 3]

    def test_admitted_batch_charges_one_check(self):
        system = make_system(seed=10)
        dispatcher = system.extension.dispatcher
        dispatcher.overload = OverloadController(OverloadConfig(
            admission_rate_per_us=1000.0, admission_burst=1000.0))
        calls = [("test_incr", (i,)) for i in range(6)]
        before = dict(system.machine.meter.op_counts)
        outcome = dispatcher.call_batch(system.session, calls,
                                        config=DispatchConfig(batch_size=3))
        assert outcome.errno is None
        checks = (system.machine.meter.op_counts.get(
            costs.SMOD_ADMIT_CHECK, 0)
            - before.get(costs.SMOD_ADMIT_CHECK, 0))
        assert checks == 1
