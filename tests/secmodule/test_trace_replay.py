"""Trace-replay dispatch fast path: differential identity and invalidation.

The acceptance bar for the fast path is *byte identity*: every cycle total,
clock event count, per-operation histogram and cache statistic must be the
same with ``use_trace_replay`` on and off — the knob may only change how
fast the simulator runs, never what it measures.  These tests run the same
deterministic workloads both ways and compare everything; the invalidation
tests then prove each precondition (policy epoch, pooled-handle seats,
hardening mode, stateful policy chains) forces the slow path without
breaking identity.
"""

from __future__ import annotations

import pytest

from repro.secmodule.api import SecModuleSystem
from repro.secmodule.dispatch import (
    DispatchConfig,
    HardeningMode,
    TRACE_HOT,
    TraceCache,
)
from repro.sim import costs
from repro.workloads.traffic import TrafficEngine, TrafficSpec


def run_engine(spec: TrafficSpec, *, use_trace_replay: bool):
    engine = TrafficEngine(
        spec,
        dispatch_config=DispatchConfig(use_trace_replay=use_trace_replay))
    result = engine.run()
    return engine, result


def normalized_metrics(metrics):
    """Round histogram means to 12 significant digits.

    Fast-forward charges a hot span's telemetry in bulk
    (``total += value * n``) where the slow path adds ``value`` n times;
    the sums agree to within float rounding but not bitwise.  Counts,
    buckets (hence quantiles), min/max, counters and gauges are integer-
    or order-independent and stay byte-exact; only the derived mean may
    differ in the last ulp, so it alone is compared through a rounding
    window.
    """
    if not isinstance(metrics, dict):
        return metrics
    out = {}
    for key, value in metrics.items():
        if key == "histograms" and isinstance(value, dict):
            out[key] = {
                name: {field: (float(f"{v:.12g}") if field == "mean"
                               else v)
                       for field, v in summary.items()}
                for name, summary in value.items()}
        else:
            out[key] = value
    return out


def accounting(engine, result):
    """Everything that must be identical between replay on and off."""
    return {
        "cycles": engine.machine.clock.cycles,
        "events": engine.machine.clock.events,
        "ops": dict(engine.machine.meter.op_counts),
        "cache": result.cache_stats,
        "total_calls": result.total_calls,
        "denied": result.denied_calls,
        "latencies": result.latencies_us,
        "dispatched": engine.extension.dispatcher.calls_dispatched,
        "session_calls": sorted(
            (s.session_id, s.calls_made)
            for s in engine.extension.sessions.active_sessions()),
        "metrics": normalized_metrics(result.metrics),
    }


def assert_differential_identity(spec: TrafficSpec, *,
                                 expect_replays: bool = True):
    off_engine, off_result = run_engine(spec, use_trace_replay=False)
    on_engine, on_result = run_engine(spec, use_trace_replay=True)
    assert accounting(off_engine, off_result) == \
        accounting(on_engine, on_result)
    stats = on_engine.extension.dispatcher.trace_cache.snapshot()
    if expect_replays:
        # hot spans take the fast path either as per-call replays or as
        # accumulated fast-forward windows; both count
        assert stats["replays"] + stats["fast_forward_calls"] > 0
    return stats


class TestDifferentialIdentity:
    def test_closed_loop_depth1(self):
        stats = assert_differential_identity(
            TrafficSpec(clients=4, modules=2, calls_per_client=60))
        assert stats["hot"] > 0

    def test_open_loop_depth1(self):
        assert_differential_identity(
            TrafficSpec(clients=4, modules=2, calls_per_client=60,
                        arrival="open"))

    def test_mmpp_batched(self):
        # random per-flush shapes repeat rarely at depth 4; identity must
        # hold regardless of how many flushes actually replay
        assert_differential_identity(
            TrafficSpec(clients=3, modules=2, calls_per_client=64,
                        arrival="mmpp", batch_size=4),
            expect_replays=False)

    def test_adaptive_controller(self):
        assert_differential_identity(
            TrafficSpec(clients=3, modules=2, calls_per_client=80,
                        arrival="open", adaptive_batch=True,
                        adaptive_max_depth=8))

    def test_pooled_handles(self):
        assert_differential_identity(
            TrafficSpec(clients=6, modules=2, calls_per_client=40,
                        handle_policy="pooled", pool_max_sessions=3))

    def test_telemetry_attached(self):
        # the metrics snapshot itself is part of the compared accounting
        assert_differential_identity(
            TrafficSpec(clients=3, modules=2, calls_per_client=40,
                        arrival="open", telemetry=True))

    def test_single_module_homogeneous_batches(self):
        # one module + one-function mix: batch shapes repeat, batches replay
        spec = TrafficSpec(clients=2, modules=1, calls_per_client=64,
                           batch_size=8,
                           call_mix=(("test_incr", 1.0),))
        stats = assert_differential_identity(spec)
        # hot batch traces take the fast path; with fast-forward enabled
        # whole repeat windows are charged analytically instead of being
        # replayed one flush at a time
        assert stats["hot"] > 0
        assert stats["replays"] + stats["fast_forward_calls"] > 0


def make_system(**kwargs):
    return SecModuleSystem.create(include_libc=False, **kwargs)


def hot_entries(system) -> int:
    cache = system.extension.dispatcher.trace_cache
    return sum(1 for e in cache._entries.values() if e.state == TRACE_HOT)


class TestStateMachine:
    def test_third_call_replays(self):
        system = make_system()
        cache = system.extension.dispatcher.trace_cache
        for i in range(5):
            assert system.call("test_incr", i) == i + 1
        # call 1 records, call 2 confirms, calls 3..5 replay
        assert cache.confirms >= 1
        assert cache.replays == 3
        assert hot_entries(system) == 1

    def test_replay_preserves_per_call_charges(self):
        """A replayed call charges exactly what a slow call charges."""
        system = make_system()
        meter = system.machine.meter
        system.call("test_incr", 0)
        before = meter.snapshot()
        clock_before = system.machine.clock.cycles
        system.call("test_incr", 1)          # confirm pass (slow)
        slow_diff = meter.diff(before)
        slow_cycles = system.machine.clock.cycles - clock_before
        before = meter.snapshot()
        clock_before = system.machine.clock.cycles
        system.call("test_incr", 2)          # replayed
        assert system.extension.dispatcher.trace_cache.replays == 1
        assert meter.diff(before) == slow_diff
        assert system.machine.clock.cycles - clock_before == slow_cycles

    def test_disabled_knob_never_records(self):
        system = make_system()
        config = DispatchConfig(use_trace_replay=False)
        for i in range(4):
            system.call("test_incr", i, config=config)
        cache = system.extension.dispatcher.trace_cache
        assert len(cache) == 0 and cache.replays == 0

    def test_return_values_follow_arguments_on_replay(self):
        system = make_system()
        values = [system.call("test_incr", i * 7) for i in range(6)]
        assert values == [i * 7 + 1 for i in range(6)]


class TestInvalidation:
    def test_policy_epoch_bump_forces_slow_path(self):
        """replace_credential must retire the hot trace (and identity holds)."""
        def run(replay: bool):
            system = make_system(seed=77)
            config = DispatchConfig(use_trace_replay=replay)
            for i in range(4):
                system.call("test_incr", i, config=config)
            session = system.session
            m_id = next(iter(session.credentials))
            session.replace_credential(m_id, session.credentials[m_id])
            for i in range(4):
                system.call("test_incr", 100 + i, config=config)
            return (system.machine.clock.cycles,
                    dict(system.machine.meter.op_counts),
                    system.extension.dispatcher.trace_cache.snapshot())
        slow_cycles, slow_ops, _ = run(False)
        fast_cycles, fast_ops, stats = run(True)
        assert (slow_cycles, slow_ops) == (fast_cycles, fast_ops)
        assert stats["replays"] > 0
        # after the bump the next call re-executes op by op (a second
        # confirmation under the new epoch) instead of replaying stale state
        assert stats["confirms"] >= 2

    def test_seat_attach_and_detach_invalidate_pooled_traces(self):
        def run(replay: bool):
            system = SecModuleSystem.create_multi(
                clients=2, include_libc=False, handle_policy="pooled:4",
                seed=99)
            config = DispatchConfig(use_trace_replay=replay)
            first, second = system.sessions[0], system.sessions[1]
            dispatcher = system.extension.dispatcher
            for i in range(4):
                dispatcher.call(first, "test_incr", i, config=config)
            # a third seat joins the shared handle: routing cost changes
            system.attach_client()
            third = system.sessions[2]
            for i in range(4):
                dispatcher.call(first, "test_incr", 10 + i, config=config)
            # ... and leaves again
            system.extension.sessions.teardown(third)
            for i in range(4):
                dispatcher.call(first, "test_incr", 20 + i, config=config)
                dispatcher.call(second, "test_incr", 20 + i, config=config)
            return (system.machine.clock.cycles,
                    dict(system.machine.meter.op_counts))
        assert run(False) == run(True)

    def test_seat_change_recorded_in_op_histogram(self):
        """Sanity: the routing charge really differs across seat counts, so
        a stale trace would be observably wrong."""
        system = SecModuleSystem.create_multi(
            clients=2, include_libc=False, handle_policy="pooled:4", seed=5)
        dispatcher = system.extension.dispatcher
        meter = system.machine.meter
        for i in range(4):
            dispatcher.call(system.sessions[0], "test_incr", i)
        routed_two_seats = meter.count(costs.SMOD_POOL_ROUTE)
        assert routed_two_seats > 0

    def test_hardening_mode_change_uses_distinct_traces(self):
        def run(replay: bool):
            system = make_system(seed=11)
            plain = DispatchConfig(use_trace_replay=replay)
            hardened = DispatchConfig(
                use_trace_replay=replay,
                hardening=HardeningMode.SUSPEND_CLIENT)
            for i in range(4):
                system.call("test_incr", i, config=plain)
            for i in range(4):
                system.call("test_incr", i, config=hardened)
            for i in range(4):
                system.call("test_incr", i, config=plain)
            return (system.machine.clock.cycles,
                    dict(system.machine.meter.op_counts))
        assert run(False) == run(True)

    def test_quota_policy_chain_stays_on_slow_path(self):
        spec = TrafficSpec(clients=2, modules=1, calls_per_client=40,
                           policy_kind="quota", quota_calls=10)
        off_engine, off_result = run_engine(spec, use_trace_replay=False)
        on_engine, on_result = run_engine(spec, use_trace_replay=True)
        assert accounting(off_engine, off_result) == \
            accounting(on_engine, on_result)
        stats = on_engine.extension.dispatcher.trace_cache.snapshot()
        # a dynamic (quota) clause in the chain disqualifies every call
        assert stats["replays"] == 0 and stats["records"] == 0
        # the quota actually bit: denials happened identically both ways
        assert on_result.denied_calls == off_result.denied_calls
        assert on_result.denied_calls > 0

    def test_variable_cost_function_never_replayed(self):
        """malloc's arena charges depend on its arguments: fixed_cost=False
        must keep it off the fast path forever."""
        system = SecModuleSystem.create(seed=3)       # include_libc=True
        for size in (64, 128, 4096, 64, 64, 64):
            assert system.call("malloc", size) != 0
        cache = system.extension.dispatcher.trace_cache
        assert cache.replays == 0

    def test_module_removal_drops_traces(self):
        system = make_system(seed=21)
        for i in range(4):
            system.call("test_incr", i)
        cache = system.extension.dispatcher.trace_cache
        assert len(cache) > 0
        m_id = next(iter(system.session.modules))
        system.extension.decision_cache.invalidate_module(m_id)
        assert len(cache) == 0

    def test_teardown_drops_traces(self):
        system = make_system(seed=23)
        for i in range(4):
            system.call("test_incr", i)
        cache = system.extension.dispatcher.trace_cache
        assert len(cache) > 0
        system.extension.sessions.teardown(system.session)
        assert len(cache) == 0


class _DummyEntry:
    state = 0
    m_ids = frozenset()


class TestTraceCacheBounds:
    def test_capacity_evicts_lru(self):
        cache = TraceCache(capacity=2)
        cache.store(("s", 1), _DummyEntry())
        cache.store(("s", 2), _DummyEntry())
        cache.store(("s", 3), _DummyEntry())
        assert len(cache) == 2 and cache.evictions == 1
        assert cache.lookup(("s", 1)) is None

    def test_rejects_nonpositive_capacity(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            TraceCache(capacity=0)
