"""Tests for §4.3 special-function handling and the SecModule libc conversion."""

import pytest

from repro.secmodule.api import SecModuleSystem
from repro.secmodule.libc_conversion import (
    LIBC_MEMBERS,
    build_libc_archive,
    build_test_module,
    convert_libc,
    libc_behaviours,
)
from repro.secmodule.special import (
    SPECIAL_FUNCTIONS,
    classify_symbols,
    needs_special_handling,
)
from repro.userland.libc.string import load_c_string, store_c_string


class TestSpecialClassifier:
    @pytest.mark.parametrize("symbol", ["execve", "fork", "getpid", "wait4",
                                        "sigaction", "kill", "sched_yield"])
    def test_known_special_symbols(self, symbol):
        assert needs_special_handling(symbol)

    @pytest.mark.parametrize("symbol", ["malloc", "memcpy", "strlen", "printf",
                                        "qsort", "atoi"])
    def test_ordinary_symbols(self, symbol):
        assert not needs_special_handling(symbol)

    def test_rule_of_thumb_catches_variants(self):
        """'if they involve scheduling, signals or processes...'"""
        assert needs_special_handling("pthread_sigmask")
        assert needs_special_handling("forkpty")
        assert needs_special_handling("getpid_cached")

    def test_classify_partition(self):
        special, ordinary = classify_symbols(["malloc", "fork", "memcpy", "kill"])
        assert special == ["fork", "kill"]
        assert ordinary == ["malloc", "memcpy"]
        assert SPECIAL_FUNCTIONS & set(special)


class TestExecveForkExitHooks:
    def test_execve_detaches_session_and_kills_handle(self):
        system = SecModuleSystem.create(seed=40)
        handle_proc = system.handle_proc
        from repro.obj.image import make_function_image
        from repro.obj.linker import link
        from repro.obj.loader import build_load_plan
        obj = make_function_image("newprog.o", {"start": 32, "main": 32},
                                  calls=[("start", "main")])
        plan = build_load_plan(link("newprog", [obj]).image)
        system.kernel.syscall(system.client_proc, "execve", plan, "newprog")
        assert system.session.torn_down
        assert not handle_proc.alive
        assert not system.client_proc.is_smod_client

    def test_client_exit_kills_handle(self):
        system = SecModuleSystem.create(seed=41)
        handle_proc = system.handle_proc
        system.kernel.syscall(system.client_proc, "exit", 0)
        assert not handle_proc.alive
        assert system.session.torn_down

    def test_handle_death_detaches_but_spares_client(self):
        system = SecModuleSystem.create(seed=42)
        system.kernel.exit_process(system.handle_proc)
        assert system.session.torn_down
        assert system.client_proc.alive
        outcome = system.call_outcome("test_incr", 1)
        assert not outcome.ok     # no more protected calls without a session

    def test_fork_child_has_no_session_until_reestablished(self):
        system = SecModuleSystem.create(seed=43)
        child_pid = system.kernel.syscall(system.client_proc, "fork").unwrap()
        child = system.kernel.procs.lookup(child_pid)
        assert not child.is_smod_client
        assert child.smod_session is None
        assert system.extension.sessions.for_client(child) == []
        # the parent keeps its session fully working
        assert system.call("test_incr", 1) == 2

    def test_fork_client_helper_gives_child_its_own_handle(self):
        system = SecModuleSystem.create(seed=44)
        child_system = system.fork_client()
        assert child_system.client_proc.pid != system.client_proc.pid
        assert child_system.handle_proc.pid != system.handle_proc.pid
        assert child_system.call("test_incr", 10) == 11
        assert system.call("test_incr", 20) == 21
        # handles are not shared (the paper's bottleneck warning)
        assert child_system.handle_proc is not system.handle_proc


class TestLibcArchive:
    def test_archive_contains_expected_members_and_symbols(self):
        archive = build_libc_archive()
        assert len(archive) == len(LIBC_MEMBERS)
        symbols = archive.global_symbols()
        for expected in ("malloc", "memcpy", "getpid", "printf", "socket"):
            assert expected in symbols

    def test_conversion_skips_unaudited_symbols(self):
        pack = convert_libc()
        assert "printf" in pack.skipped_symbols
        assert "malloc" not in pack.skipped_symbols
        assert "fork" in pack.special_symbols
        assert len(pack.stubs) == len(pack.definition)

    def test_conversion_can_exclude_special_functions(self):
        cautious = convert_libc(include_special=False)
        assert "getpid" not in cautious.definition
        assert "malloc" in cautious.definition

    def test_behaviour_table_covers_allocator_and_strings(self):
        behaviours = libc_behaviours()
        for name in ("malloc", "free", "calloc", "realloc", "memcpy", "memset",
                     "strlen", "strcpy", "getpid"):
            assert name in behaviours

    def test_test_module_functions(self):
        module = build_test_module()
        assert sorted(module.function_names()) == ["test_add", "test_incr",
                                                   "test_null"]


class TestProtectedLibcBehaviour:
    """The SecModule libc works 'identically to its man-page specification'."""

    def test_malloc_free_through_the_handle(self, shared_system):
        system = shared_system
        addr1 = system.call("malloc", 128)
        addr2 = system.call("malloc", 256)
        assert addr1 != addr2
        system.client.write_memory(addr1, b"written by the client")
        assert system.handle_proc.vmspace.read(addr1, 21) == b"written by the client"
        assert system.call("free", addr1) == 0

    def test_calloc_and_realloc(self, shared_system):
        system = shared_system
        addr = system.call("calloc", 4, 32)
        assert system.client.read_memory(addr, 16) == bytes(16)
        bigger = system.call("realloc", addr, 512)
        assert bigger != 0

    def test_memcpy_memset_strlen_strcpy(self, shared_system):
        system = shared_system
        src = system.call("malloc", 64)
        dst = system.call("malloc", 64)
        store_c_string(system.client_proc, src, "secmodule!")
        assert system.call("strlen", src) == 10
        system.call("strcpy", dst, src)
        assert load_c_string(system.client_proc, dst) == "secmodule!"
        system.call("memset", dst, 0x41, 4)
        assert system.client.read_memory(dst, 4) == b"AAAA"
        system.call("memcpy", dst, src, 8)
        assert system.client.read_memory(dst, 8) == b"secmodul"
        assert system.call("memcmp", dst, src, 8) == 0

    def test_heap_growth_is_shared_with_handle(self, shared_system):
        system = shared_system
        # allocate enough to force obreak growth beyond the initial data pages
        addr = system.call("malloc", 256 * 1024)
        system.client.write_memory(addr, b"deep heap")
        assert system.handle_proc.vmspace.read(addr, 9) == b"deep heap"

    def test_getppid_via_secmodule(self, shared_system):
        assert shared_system.call("getppid") == shared_system.client_proc.ppid
