"""Tests for the KeyNote-style trust-management engine."""

import pytest

from repro.errors import PolicyError
from repro.secmodule.credentials import Credential
from repro.secmodule.keynote import (
    Assertion,
    KeyNoteEngine,
    KeyNotePolicy,
    MAX_TRUST,
    MIN_TRUST,
    POLICY_AUTHORIZER,
    evaluate_condition,
    example_policy_set,
    tokenize_condition,
)
from repro.secmodule.policy import PolicyContext


def make_ctx(principal="alice", attributes=None, function="malloc", calls=0):
    credential = Credential(principal=principal, module_name="libc")
    return PolicyContext(credential=credential, uid=1000, gid=1000,
                         principal=principal, function_name=function,
                         now_us=0.0, calls_this_session=calls,
                         attributes=attributes or {})


class TestConditionLanguage:
    def test_tokenize_rejects_garbage(self):
        with pytest.raises(PolicyError):
            tokenize_condition('foo @ bar')

    @pytest.mark.parametrize("expr,attrs,expected", [
        ('app_domain == "SecModule"', {"app_domain": "SecModule"}, True),
        ('app_domain == "SecModule"', {"app_domain": "Other"}, False),
        ('calls < 10', {"calls": 3}, True),
        ('calls < 10', {"calls": 30}, False),
        ('calls <= 10 && uid >= 1000', {"calls": 10, "uid": 1000}, True),
        ('calls > 5 || uid == 0', {"calls": 1, "uid": 0}, True),
        ('!(uid == 0)', {"uid": 1000}, True),
        ('missing_attr == "x"', {}, False),
        ('flag', {"flag": True}, True),
        ('flag', {}, False),
        ('level != 3', {"level": 2}, True),
        ('(a == 1 && b == 2) || c == 3', {"a": 9, "b": 9, "c": 3}, True),
        ('true', {}, True),
        ('false || true', {}, True),
        ('count >= 2.5', {"count": "3.0"}, True),
    ])
    def test_expression_evaluation(self, expr, attrs, expected):
        result, steps = evaluate_condition(expr, attrs)
        assert result is expected
        assert steps >= 1

    def test_empty_condition_is_true(self):
        assert evaluate_condition("", {}) == (True, 1)

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(PolicyError):
            evaluate_condition("(a == 1", {"a": 1})

    def test_trailing_tokens_rejected(self):
        with pytest.raises(PolicyError):
            evaluate_condition('a == 1 b', {"a": 1})


class TestComplianceChecking:
    def test_direct_grant(self):
        engine = example_policy_set("alice")
        result = engine.query("alice", {"app_domain": "SecModule",
                                        "function": "malloc", "calls": 3})
        assert result.value == MAX_TRUST
        assert result.steps > 0

    def test_condition_failure_gives_min_trust(self):
        engine = example_policy_set("alice")
        result = engine.query("alice", {"app_domain": "SecModule",
                                        "function": "free", "calls": 3})
        assert result.value == MIN_TRUST

    def test_unknown_principal(self):
        engine = example_policy_set("alice")
        result = engine.query("mallory", {"app_domain": "SecModule",
                                          "function": "malloc", "calls": 0})
        assert result.value == MIN_TRUST

    def test_delegation_capped_at_intermediate_value(self):
        engine = example_policy_set("alice", delegate="bob")
        result = engine.query("bob", {"app_domain": "SecModule"})
        assert result.value == "approve_with_log"
        assert result.at_least(MIN_TRUST)
        assert not result.at_least(MAX_TRUST)

    def test_transitive_delegation(self):
        engine = KeyNoteEngine([
            Assertion(POLICY_AUTHORIZER, ("owner",)),
            Assertion("owner", ("reseller",)),
            Assertion("reseller", ("alice",), conditions="calls < 5"),
        ])
        assert engine.query("alice", {"calls": 1}).value == MAX_TRUST
        assert engine.query("alice", {"calls": 9}).value == MIN_TRUST

    def test_assertion_from_untrusted_authorizer_ignored(self):
        engine = KeyNoteEngine([
            Assertion(POLICY_AUTHORIZER, ("owner",)),
            Assertion("mallory", ("alice",)),       # mallory was never empowered
        ])
        assert engine.query("alice", {}).value == MIN_TRUST

    def test_empty_engine_rejected(self):
        with pytest.raises(PolicyError):
            KeyNoteEngine([])

    def test_unknown_compliance_value_rejected(self):
        with pytest.raises(PolicyError):
            KeyNoteEngine([Assertion(POLICY_AUTHORIZER, ("x",),
                                     compliance="not-a-value")])


class TestKeyNotePolicyAdapter:
    def test_allows_and_denies_based_on_context(self):
        policy = KeyNotePolicy(example_policy_set("alice"))
        allowed = policy.evaluate(make_ctx(function="malloc"))
        denied = policy.evaluate(make_ctx(function="free"))
        assert allowed.allowed and allowed.steps > 0
        assert not denied.allowed

    def test_call_count_feeds_conditions(self):
        policy = KeyNotePolicy(example_policy_set("alice"))
        assert policy.evaluate(make_ctx(calls=10)).allowed
        assert not policy.evaluate(make_ctx(calls=10_000)).allowed

    def test_required_value_threshold(self):
        engine = example_policy_set("alice", delegate="bob")
        strict = KeyNotePolicy(engine, required_value=MAX_TRUST)
        lenient = KeyNotePolicy(engine, required_value="approve_with_log")
        bob_ctx = make_ctx(principal="bob")
        assert not strict.evaluate(bob_ctx).allowed
        assert lenient.evaluate(bob_ctx).allowed

    def test_describe(self):
        policy = KeyNotePolicy(example_policy_set("alice"))
        assert "keynote" in policy.describe()
