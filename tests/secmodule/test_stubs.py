"""Tests for the shared-stack stubs (the Figure 3 discipline)."""

import pytest

from repro.errors import SimulationError
from repro.hw.machine import make_paper_machine
from repro.secmodule.module import CallEnvironment, SecModuleDefinition
from repro.secmodule.stubs import (
    ClientStub,
    SimStack,
    SlotKind,
    smod_stub_receive,
)


def make_function(name="test_incr"):
    module = SecModuleDefinition("libtest", 1)
    return module.add_function(name, lambda env, x: x + 1)


def make_env():
    class _FakeKernel:
        machine = make_paper_machine()
    return CallEnvironment(kernel=_FakeKernel(), session=None, client=None,
                           handle=None)


class TestSimStack:
    def test_push_pop_lifo(self):
        stack = SimStack()
        stack.push(SlotKind.ARG, 1)
        stack.push(SlotKind.ARG, 2)
        assert stack.pop(SlotKind.ARG).value == 2
        assert stack.pop(SlotKind.ARG).value == 1

    def test_underflow_and_overflow(self):
        stack = SimStack(capacity=1)
        with pytest.raises(SimulationError):
            stack.pop()
        stack.push(SlotKind.ARG, 1)
        with pytest.raises(SimulationError):
            stack.push(SlotKind.ARG, 2)

    def test_typed_pop_mismatch(self):
        stack = SimStack()
        stack.push(SlotKind.ARG, 1)
        with pytest.raises(SimulationError, match="discipline"):
            stack.pop(SlotKind.FRAME_POINTER)

    def test_peek_and_snapshot(self):
        stack = SimStack()
        stack.push(SlotKind.ARG, 1)
        stack.push(SlotKind.FRAME_POINTER, 2)
        assert stack.peek().kind is SlotKind.FRAME_POINTER
        assert stack.peek(1).value == 1
        snap = stack.snapshot()
        stack.pop()
        assert len(snap) == 2          # snapshot unaffected by later pops
        with pytest.raises(SimulationError):
            stack.peek(5)

    def test_describe(self):
        stack = SimStack(name="shared")
        assert "empty" in stack.describe()
        stack.push(SlotKind.ARG, 41)
        assert "arg=41" in stack.describe()

    def test_costs_charged_when_machine_attached(self):
        machine = make_paper_machine()
        stack = SimStack(machine=machine)
        before = machine.clock.cycles
        stack.push(SlotKind.ARG, 1)
        stack.pop()
        assert machine.clock.cycles > before


class TestClientStub:
    def test_push_call_builds_figure3_step2_frame(self):
        stack = SimStack()
        stub = ClientStub("malloc", module_id=3, func_id=7, arg_words=2)
        frame = stub.push_call(stack, (256, 1), record_checkpoints=True)
        kinds = [slot.kind for slot in stack.snapshot()]
        assert kinds == [SlotKind.ARG, SlotKind.ARG, SlotKind.RETURN_ADDRESS,
                         SlotKind.FRAME_POINTER, SlotKind.MODULE_ID,
                         SlotKind.FUNC_ID, SlotKind.RETURN_ADDRESS,
                         SlotKind.FRAME_POINTER]
        # args are pushed right-to-left so arg1 is deepest... the first arg
        # ends up closest to the ids, matching cdecl layout
        assert stack.snapshot()[0].value == 1
        assert stack.snapshot()[1].value == 256
        assert frame.module_id == 3 and frame.func_id == 7
        assert "step1" in frame.checkpoints and "step2" in frame.checkpoints
        assert len(frame.checkpoints["step1"]) == 4
        assert len(frame.checkpoints["step2"]) == 8

    def test_duplicated_words_match_originals(self):
        stack = SimStack()
        stub = ClientStub("f", 1, 1)
        frame = stub.push_call(stack, (9,), return_address=0x1234,
                               frame_pointer=0x5678)
        snapshot = stack.snapshot()
        assert snapshot[1].value == snapshot[5].value == 0x1234
        assert snapshot[2].value == snapshot[6].value == 0x5678

    def test_symbol_name(self):
        assert ClientStub("malloc", 1, 2).symbol == "SMOD_client_malloc"

    def test_pop_return_restores_empty_stack(self):
        stack = SimStack()
        stub = ClientStub("f", 1, 1)
        frame = stub.push_call(stack, (9,))
        function = make_function()
        smod_stub_receive(stack, frame, function, make_env())
        stub.pop_return(stack, frame)
        assert stack.depth() == 0


class TestStubReceive:
    def test_callee_sees_only_args(self):
        stack = SimStack()
        stub = ClientStub("test_incr", 1, 1)
        frame = stub.push_call(stack, (41,), record_checkpoints=True)
        result = smod_stub_receive(stack, frame, make_function(), make_env(),
                                   record_checkpoints=True)
        assert result == 42
        step3 = frame.checkpoints["step3"]
        assert [s.kind for s in step3] == [SlotKind.ARG]
        step4 = frame.checkpoints["step4"]
        assert [s.kind for s in step4] == [SlotKind.ARG, SlotKind.RETURN_ADDRESS,
                                           SlotKind.FRAME_POINTER]
        assert step4[1].value == frame.return_address
        assert step4[2].value == frame.frame_pointer

    def test_secret_stack_used_and_drained(self):
        stack = SimStack()
        secret = SimStack(name="secret")
        stub = ClientStub("test_incr", 1, 1)
        frame = stub.push_call(stack, (1,))
        smod_stub_receive(stack, frame, make_function(), make_env(),
                          secret_stack=secret)
        assert secret.depth() == 0     # all spills popped back off

    def test_corrupted_stack_detected(self):
        stack = SimStack()
        stub = ClientStub("test_incr", 1, 1)
        frame = stub.push_call(stack, (1,))
        stack.pop()                    # someone smashed the top of the frame
        with pytest.raises(SimulationError):
            smod_stub_receive(stack, frame, make_function(), make_env())
