"""Tests for the batched dispatch path (``sys_smod_call_batch``).

The batch contract: the session is validated once, the policy check runs
per entry, the two context switches are paid once per flush, per-entry
failures never abort the batch, and a queue of one is cycle-identical to
the paper's single-call path.
"""

import pytest

from repro.kernel.errno import Errno
from repro.secmodule.api import SecModuleSystem
from repro.secmodule.dispatch import DispatchConfig, HardeningMode
from repro.secmodule.policy import FunctionDenyPolicy
from repro.sim import costs


def incr_batch(n, start=0):
    return [("test_incr", (start + i,)) for i in range(n)]


def make_system(seed=4242, **kwargs):
    return SecModuleSystem.create(seed=seed, include_libc=False, **kwargs)


class TestBatchHappyPath:
    def test_values_in_submission_order(self):
        system = make_system()
        outcome = system.extension.dispatcher.call_batch(
            system.session, incr_batch(6), config=DispatchConfig(batch_size=6))
        assert outcome.ok
        assert outcome.values == [1, 2, 3, 4, 5, 6]
        assert len(outcome) == 6

    def test_stack_balanced_after_batch(self):
        system = make_system()
        system.extension.dispatcher.call_batch(
            system.session, incr_batch(8), config=DispatchConfig(batch_size=8))
        assert system.session.shared_stack.depth() == 0
        assert system.session.handle.secret_stack.depth() == 0

    def test_one_context_switch_pair_per_flush(self):
        system = make_system()
        meter = system.machine.meter
        before = meter.count(costs.CONTEXT_SWITCH)
        system.extension.dispatcher.call_batch(
            system.session, incr_batch(16),
            config=DispatchConfig(batch_size=16))
        assert meter.count(costs.CONTEXT_SWITCH) == before + 2

    def test_one_message_pair_per_flush(self):
        system = make_system()
        meter = system.machine.meter
        sends = meter.count(costs.MSGQ_SEND)
        recvs = meter.count(costs.MSGQ_RECV)
        system.extension.dispatcher.call_batch(
            system.session, incr_batch(16),
            config=DispatchConfig(batch_size=16))
        assert meter.count(costs.MSGQ_SEND) == sends + 2
        assert meter.count(costs.MSGQ_RECV) == recvs + 2

    def test_batching_amortizes_cycles(self):
        single = make_system()
        single.call("test_incr", 0)
        mark = single.machine.clock.checkpoint()
        for i in range(16):
            single.call("test_incr", i)
        per_call = single.machine.clock.since(mark).cycles / 16

        batched = make_system()
        batched.call("test_incr", 0)
        mark = batched.machine.clock.checkpoint()
        batched.extension.dispatcher.call_batch(
            batched.session, incr_batch(16),
            config=DispatchConfig(batch_size=16))
        batched_per_call = batched.machine.clock.since(mark).cycles / 16
        assert batched_per_call < per_call / 2

    def test_counters_and_quota_accounting(self):
        system = make_system()
        system.extension.dispatcher.call_batch(
            system.session, incr_batch(5), config=DispatchConfig(batch_size=5))
        assert system.extension.dispatcher.calls_dispatched == 5
        assert system.session.calls_made == 5
        assert system.session.handle.calls_served == 5

    def test_chunking_splits_long_queues(self):
        system = make_system()
        meter = system.machine.meter
        traps = meter.count(costs.TRAP_ENTRY)
        switches = meter.count(costs.CONTEXT_SWITCH)
        outcome = system.extension.dispatcher.call_batch(
            system.session, incr_batch(10), config=DispatchConfig(batch_size=4))
        # 4 + 4 + 2: three flushes, each one trap and one switch pair
        assert outcome.ok and len(outcome) == 10
        assert meter.count(costs.TRAP_ENTRY) == traps + 3
        assert meter.count(costs.CONTEXT_SWITCH) == switches + 6


class TestBatchEdgeCases:
    def test_empty_batch_charges_nothing(self):
        system = make_system()
        mark = system.machine.clock.checkpoint()
        outcome = system.extension.dispatcher.call_batch(
            system.session, [], config=DispatchConfig(batch_size=8))
        assert outcome.ok and len(outcome) == 0
        assert system.machine.clock.since(mark).cycles == 0

    def test_every_entry_denied_does_not_abort(self):
        system = make_system(policy=FunctionDenyPolicy(["test_incr"]))
        meter = system.machine.meter
        switches = meter.count(costs.CONTEXT_SWITCH)
        outcome = system.extension.dispatcher.call_batch(
            system.session, incr_batch(4), config=DispatchConfig(batch_size=4))
        assert outcome.errno is None            # the batch itself succeeded
        assert not outcome.ok                   # ... but every entry failed
        assert [o.errno for o in outcome.outcomes] == [Errno.EACCES] * 4
        assert outcome.denied == 4
        assert system.session.shared_stack.depth() == 0
        assert system.extension.dispatcher.calls_denied == 4
        assert system.extension.dispatcher.calls_dispatched == 0
        # a fully-denied queue never wakes the handle: no switches, like the
        # single path's denial
        assert meter.count(costs.CONTEXT_SWITCH) == switches

    def test_mixed_allow_deny_ordering_preserved(self):
        system = make_system(policy=FunctionDenyPolicy(["test_add"]))
        calls = [("test_incr", (1,)), ("test_add", (1, 2)),
                 ("test_incr", (10,)), ("test_add", (3, 4)),
                 ("test_incr", (20,))]
        outcome = system.extension.dispatcher.call_batch(
            system.session, calls, config=DispatchConfig(batch_size=5))
        assert outcome.errno is None
        assert [o.errno for o in outcome.outcomes] == [
            None, Errno.EACCES, None, Errno.EACCES, None]
        assert outcome.values == [2, None, 11, None, 21]
        assert system.session.shared_stack.depth() == 0
        assert system.extension.dispatcher.calls_dispatched == 3
        assert system.extension.dispatcher.calls_denied == 2

    def test_unknown_function_is_per_entry_enoent(self):
        system = make_system()
        calls = [("test_incr", (1,)), ("no_such_function", ()),
                 ("test_incr", (2,))]
        outcome = system.extension.dispatcher.call_batch(
            system.session, calls, config=DispatchConfig(batch_size=3))
        assert [o.errno for o in outcome.outcomes] == [None, Errno.ENOENT,
                                                       None]
        assert outcome.values == [2, None, 3]
        assert system.session.shared_stack.depth() == 0

    def test_torn_down_session_rejects_whole_batch(self):
        system = make_system()
        extra = system.open_extra_session()
        system.extension.sessions.teardown(extra)
        outcome = system.extension.dispatcher.call_batch(
            extra, incr_batch(3), config=DispatchConfig(batch_size=3))
        assert outcome.errno is Errno.EINVAL
        assert [o.errno for o in outcome.outcomes] == [Errno.EINVAL] * 3
        # the client stub unwound every frame of the rejected super-frame
        assert extra.shared_stack.depth() == 0
        # the surviving primary session still dispatches
        assert system.call("test_incr", 1) == 2

    def test_foreign_client_rejected_with_eperm(self):
        system_a = make_system(seed=31)
        system_b = make_system(seed=32)
        from repro.secmodule.stubs import BatchStub, ClientStub
        module, function = system_a.session.find_function("test_incr")
        stub = BatchStub()
        stub.enqueue(ClientStub("test_incr", module.m_id, function.func_id,
                                arg_words=function.arg_words), (1,))
        stub.enqueue(ClientStub("test_incr", module.m_id, function.func_id,
                                arg_words=function.arg_words), (2,))
        batch = stub.push_batch(system_a.session.shared_stack)
        outcome = system_a.extension.dispatcher.sys_smod_call_batch(
            system_b.client_proc, system_a.session, batch)
        assert outcome.errno is Errno.EPERM

    def test_raising_handle_mid_batch_resumes_suspended_client(self):
        """SUSPEND_CLIENT hardening must be undone even when the handle
        blows up halfway through draining the super-frame."""
        system = make_system()
        config = DispatchConfig(hardening=HardeningMode.SUSPEND_CLIENT,
                                batch_size=4)
        original = system.session.handle.receive_batch

        def exploding(*args, **kwargs):
            raise RuntimeError("handle crashed mid-batch")

        system.session.handle.receive_batch = exploding
        with pytest.raises(RuntimeError):
            system.extension.dispatcher.call_batch(
                system.session, incr_batch(4), config=config)
        assert not system.kernel.sched.is_suspended(system.client_proc)
        # restore and demonstrate the client can dispatch again
        system.session.handle.receive_batch = original
        system.kernel.msg.msgrcv(system.session.handle.proc,
                                 system.session.request_msqid, 1)
        while system.session.shared_stack.depth():
            system.session.shared_stack.pop()
        assert system.call("test_incr", 1) == 2


class TestBatchSizeOneParity:
    def test_batch_size_one_is_cycle_identical(self):
        """The acceptance bar: a queue flushed at depth 1 charges exactly
        the op sequence of the existing single-call path."""
        single = make_system(seed=99)
        single.call("test_incr", 0)              # warm lazy state
        before = single.machine.meter.snapshot()
        mark = single.machine.clock.checkpoint()
        for i in range(8):
            single.call("test_incr", i)
        single_cycles = single.machine.clock.since(mark).cycles
        single_ops = single.machine.meter.diff(before)

        batched = make_system(seed=99)
        batched.call("test_incr", 0)
        before = batched.machine.meter.snapshot()
        mark = batched.machine.clock.checkpoint()
        outcome = batched.extension.dispatcher.call_batch(
            batched.session, incr_batch(8), config=DispatchConfig(batch_size=1))
        batch_cycles = batched.machine.clock.since(mark).cycles
        batch_ops = batched.machine.meter.diff(before)

        assert outcome.ok and outcome.values == [1, 2, 3, 4, 5, 6, 7, 8]
        assert batch_cycles == single_cycles
        assert batch_ops == single_ops           # op-for-op identical

    def test_batch_size_one_denied_parity(self):
        deny = FunctionDenyPolicy(["test_incr"])
        single = make_system(seed=7, policy=deny)
        single.call_outcome("test_incr", 0)
        mark = single.machine.clock.checkpoint()
        single.call_outcome("test_incr", 1)
        single_cycles = single.machine.clock.since(mark).cycles

        batched = make_system(seed=7, policy=deny)
        batched.call_outcome("test_incr", 0)
        mark = batched.machine.clock.checkpoint()
        outcome = batched.extension.dispatcher.call_batch(
            batched.session, incr_batch(1, start=1),
            config=DispatchConfig(batch_size=1))
        assert outcome.outcomes[0].errno is Errno.EACCES
        assert batched.machine.clock.since(mark).cycles == single_cycles


class TestBatchOrderingAndQuota:
    def test_entries_execute_in_submission_order(self):
        """The stub pushes newest-first so the handle's LIFO drain runs the
        queue FIFO — side-effecting call sequences keep their meaning."""
        from repro.secmodule.module import SecModuleDefinition
        order = []

        def recorder(tag):
            def impl(env, *args):
                order.append(tag)
                return tag
            return impl

        module = SecModuleDefinition("libseq", 1)
        for tag in ("first", "second", "third"):
            module.add_function(tag, recorder(tag),
                                cost_op=costs.FUNC_BODY_TESTINCR, arg_words=0)
        system = SecModuleSystem.create(seed=4242, include_libc=False,
                                        include_test_module=False,
                                        extra_modules=[module])
        outcome = system.extension.dispatcher.call_batch(
            system.session, [("first", ()), ("second", ()), ("third", ())],
            config=DispatchConfig(batch_size=3))
        assert outcome.ok
        assert order == ["first", "second", "third"]
        assert outcome.values == ["first", "second", "third"]

    def test_quota_enforced_within_a_batch(self):
        """Validating the queue up front must not let a batch blow through a
        call quota: each entry sees the count including the entries granted
        before it in the same queue."""
        from repro.secmodule.policy import CallQuotaPolicy
        system = make_system(policy=CallQuotaPolicy(2))
        outcome = system.extension.dispatcher.call_batch(
            system.session, incr_batch(5), config=DispatchConfig(batch_size=5))
        assert [o.errno for o in outcome.outcomes] == [
            None, None, Errno.EACCES, Errno.EACCES, Errno.EACCES]
        assert system.session.calls_made == 2
        # the quota stays spent for later single calls too
        assert system.call_outcome("test_incr", 9).errno is Errno.EACCES

    def test_oversized_batch_fails_cleanly_before_pushing(self):
        """A queue that cannot fit on the shared stack must fail before the
        first push — not overflow halfway and strand a partial super-frame."""
        from repro.errors import SimulationError
        system = make_system()
        depth_before = system.session.shared_stack.depth()
        with pytest.raises(SimulationError):
            system.extension.dispatcher.call_batch(
                system.session, incr_batch(1400),
                config=DispatchConfig(batch_size=1400))
        assert system.session.shared_stack.depth() == depth_before
        assert system.call("test_incr", 1) == 2      # session still healthy

    def test_dead_session_aborts_remaining_chunks(self):
        """After a whole-queue rejection the remaining chunks are failed in
        place instead of paying a trap + push + unwind each."""
        system = make_system()
        extra = system.open_extra_session()
        system.extension.sessions.teardown(extra)
        meter = system.machine.meter
        traps = meter.count(costs.TRAP_ENTRY)
        outcome = system.extension.dispatcher.call_batch(
            extra, incr_batch(12), config=DispatchConfig(batch_size=4))
        assert outcome.errno is Errno.EINVAL
        assert len(outcome) == 12
        assert all(o.errno is Errno.EINVAL for o in outcome.outcomes)
        assert meter.count(costs.TRAP_ENTRY) == traps + 1   # one trap only
        assert extra.shared_stack.depth() == 0


def _static_chain_system(**kwargs):
    from repro.secmodule.policy import (
        CompositePolicy, FunctionDenyPolicy, UidAllowPolicy)
    chain = CompositePolicy([UidAllowPolicy([1000]),
                             FunctionDenyPolicy(["test_null"])])
    return make_system(policy=chain, **kwargs)


class TestBatchDecisionCacheInterplay:
    def test_policy_check_runs_per_entry_with_cache(self):
        system = _static_chain_system()
        cache = system.extension.decision_cache
        outcome = system.extension.dispatcher.call_batch(
            system.session, incr_batch(6), config=DispatchConfig(batch_size=6))
        assert outcome.ok
        # first entry misses and stores, the other five hit
        assert cache.misses == 1 and cache.hits == 5

    def test_warm_batch_validates_whole_queue_with_one_epoch_check(self):
        """A warm queue pays ONE cache-hit charge for the whole flush (the
        single epoch check) instead of one per entry; the saved charges are
        counted on the cache."""
        system = _static_chain_system()
        cache = system.extension.decision_cache
        meter = system.machine.meter
        config = DispatchConfig(batch_size=6)
        system.extension.dispatcher.call_batch(      # cold: stores the key
            system.session, incr_batch(6), config=config)
        charges = meter.count(costs.SMOD_POLICY_CACHE_HIT)
        hits = cache.hits
        outcome = system.extension.dispatcher.call_batch(
            system.session, incr_batch(6), config=config)
        assert outcome.ok
        assert meter.count(costs.SMOD_POLICY_CACHE_HIT) == charges + 1
        assert cache.hits == hits + 6                # per-entry stats intact
        assert cache.batch_epoch_checks == 1
        assert cache.batch_saved_charges == 5

    def test_warm_batch_cheaper_than_per_entry_hits(self):
        """The saved per-entry hit charges show up in cycle accounting."""
        def warm_flush_cycles(use_batch_path):
            system = _static_chain_system()
            config = DispatchConfig(batch_size=6)
            system.extension.dispatcher.call_batch(
                system.session, incr_batch(6), config=config)
            mark = system.machine.clock.checkpoint()
            if use_batch_path:
                system.extension.dispatcher.call_batch(
                    system.session, incr_batch(6), config=config)
            else:
                for name, args in incr_batch(6):
                    system.extension.dispatcher.call(system.session, name,
                                                     *args, config=config)
            return (system.machine.clock.since(mark).cycles,
                    system.machine.spec.profile.cost(
                        costs.SMOD_POLICY_CACHE_HIT))
        batched, hit_cost = warm_flush_cycles(True)
        per_call, _ = warm_flush_cycles(False)
        # the batch saves (at least) five per-entry epoch checks on top of
        # the amortized traps and switches
        assert batched <= per_call - 5 * hit_cost

    def test_epoch_bump_invalidates_batch_prefetch(self):
        """Re-credentialing between flushes must force re-evaluation — the
        one epoch check covers the queue only while the epoch stands."""
        system = _static_chain_system()
        cache = system.extension.decision_cache
        config = DispatchConfig(batch_size=4)
        system.extension.dispatcher.call_batch(
            system.session, incr_batch(4), config=config)
        module = next(iter(system.session.modules.values()))
        credential = module.definition.issuer.issue("alice", uid=1000)
        system.session.replace_credential(module.m_id, credential)
        checks = cache.batch_epoch_checks
        outcome = system.extension.dispatcher.call_batch(
            system.session, incr_batch(4), config=config)
        assert outcome.ok
        assert cache.batch_epoch_checks == checks    # stale: no prefetch hit

    def test_uncacheable_policy_never_prefetches(self):
        from repro.secmodule.policy import CallQuotaPolicy
        system = make_system(policy=CallQuotaPolicy(1000))
        cache = system.extension.decision_cache
        system.extension.dispatcher.call_batch(
            system.session, incr_batch(6), config=DispatchConfig(batch_size=6))
        system.extension.dispatcher.call_batch(
            system.session, incr_batch(6), config=DispatchConfig(batch_size=6))
        assert cache.batch_epoch_checks == 0
        assert cache.batch_served == 0
