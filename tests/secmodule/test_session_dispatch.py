"""Tests for session establishment (Figure 1) and the dispatch path."""

import pytest

from repro.kernel.errno import Errno
from repro.kernel.proc import ProcFlag
from repro.secmodule.api import SecModuleSystem
from repro.secmodule.dispatch import DispatchConfig, HardeningMode, MarshallingMode
from repro.secmodule.libc_conversion import build_test_module
from repro.secmodule.policy import (
    CallQuotaPolicy,
    DenyAllPolicy,
    FunctionDenyPolicy,
    UidAllowPolicy,
)
from repro.secmodule.session import SessionDescriptor, SessionRequirement
from repro.secmodule.smod_syscalls import install_secmodule
from repro.kernel.kernel import make_booted_kernel
from repro.userland.process import Program
from repro.sim import costs


def build_manual_system(*, policy=None, uid=1000, principal="alice"):
    """A hand-wired system (kernel + one test module + client) for tests that
    need to tamper with individual handshake steps."""
    kernel = make_booted_kernel()
    extension = install_secmodule(kernel)
    module = build_test_module(policy=policy)
    registered = extension.registry.register(module, uid=0)
    credential = registered.definition.issuer.issue(principal, uid=uid)
    descriptor = SessionDescriptor((SessionRequirement(
        module_name="libtest", version=1, credential=credential),))
    client = Program.spawn(kernel, "client", uid=uid)
    return kernel, extension, client, descriptor, registered


class TestSessionEstablishment:
    def test_handshake_creates_established_session(self):
        kernel, extension, client, descriptor, _ = build_manual_system()
        session_id = client.smod_crt0_startup(extension, descriptor)
        session = extension.sessions.get(session_id)
        assert session.established and not session.torn_down
        assert client.crt_record.handshake_complete
        assert client.crt_record.found_modules == [1]

    def test_handle_process_flags_and_pairing(self):
        kernel, extension, client, descriptor, _ = build_manual_system()
        session = extension.sessions.get(
            client.smod_crt0_startup(extension, descriptor))
        handle_proc = session.handle.proc
        assert handle_proc.has_flag(ProcFlag.SMOD_HANDLE)
        assert handle_proc.has_flag(ProcFlag.NOCORE)
        assert handle_proc.has_flag(ProcFlag.NOTRACE)
        assert handle_proc.smod_peer is client.proc
        assert client.proc.is_smod_client
        assert extension.sessions.for_handle(handle_proc) is session
        assert extension.sessions.for_client(client.proc) == [session]

    def test_handle_shares_client_memory_after_handshake(self):
        kernel, extension, client, descriptor, _ = build_manual_system()
        from repro.kernel.uvm.layout import DATA_BASE
        client.proc.vmspace.write(DATA_BASE, b"client secret state")
        session = extension.sessions.get(
            client.smod_crt0_startup(extension, descriptor))
        assert session.handle.proc.vmspace.read(DATA_BASE, 19) == b"client secret state"

    def test_secret_region_not_visible_to_client(self):
        kernel, extension, client, descriptor, _ = build_manual_system()
        session = extension.sessions.get(
            client.smod_crt0_startup(extension, descriptor))
        from repro.kernel.uvm.layout import SECRET_BASE
        assert session.handle.proc.vmspace.vm_map.lookup(SECRET_BASE) is not None
        assert client.proc.vmspace.vm_map.lookup(SECRET_BASE) is None

    def test_unregistered_module_fails_with_enoent(self):
        kernel, extension, client, _, registered = build_manual_system()
        credential = registered.definition.issuer.issue("alice", uid=1000)
        descriptor = SessionDescriptor((SessionRequirement(
            module_name="libmissing", version=1, credential=credential),))
        result = kernel.syscall(client.proc, "smod_start_session", descriptor)
        assert result.errno is Errno.ENOENT

    def test_bad_credential_rejected_with_eacces(self):
        kernel, extension, client, _, registered = build_manual_system()
        # credential bound to a different uid than the presenting client
        credential = registered.definition.issuer.issue("alice", uid=4242)
        descriptor = SessionDescriptor((SessionRequirement(
            module_name="libtest", version=1, credential=credential),))
        result = kernel.syscall(client.proc, "smod_start_session", descriptor)
        assert result.errno is Errno.EACCES
        assert extension.sessions.denied_establishments

    def test_policy_denial_blocks_session(self):
        kernel, extension, client, descriptor, _ = build_manual_system(
            policy=DenyAllPolicy())
        result = kernel.syscall(client.proc, "smod_start_session", descriptor)
        assert result.errno is Errno.EACCES

    def test_session_info_restricted_to_handle(self):
        kernel, extension, client, descriptor, _ = build_manual_system()
        assert kernel.syscall(client.proc, "smod_session_info", None).errno is Errno.EPERM

    def test_handle_info_restricted_to_client(self):
        kernel, extension, client, descriptor, _ = build_manual_system()
        session = extension.sessions.get(
            client.smod_crt0_startup(extension, descriptor))
        result = kernel.syscall(session.handle.proc, "smod_handle_info", None)
        assert result.errno is Errno.EPERM

    def test_handle_info_before_session_info_fails(self):
        kernel, extension, client, descriptor, _ = build_manual_system()
        kernel.syscall(client.proc, "smod_start_session", descriptor)
        result = kernel.syscall(client.proc, "smod_handle_info", None)
        assert result.errno is Errno.EINVAL

    def test_second_session_for_same_client_rejected(self):
        kernel, extension, client, descriptor, _ = build_manual_system()
        client.smod_crt0_startup(extension, descriptor)
        result = kernel.syscall(client.proc, "smod_start_session", descriptor)
        assert result.failed

    def test_teardown_kills_handle_and_clears_flags(self):
        kernel, extension, client, descriptor, _ = build_manual_system()
        session = extension.sessions.get(
            client.smod_crt0_startup(extension, descriptor))
        handle_proc = session.handle.proc
        extension.sessions.teardown(session)
        assert session.torn_down
        assert not handle_proc.alive
        assert not client.proc.is_smod_client
        assert extension.sessions.for_client(client.proc) == []
        assert len(extension.sessions) == 0


class TestDispatch:
    def test_call_returns_value_and_counts(self, system):
        assert system.call("test_incr", 41) == 42
        assert system.call("test_add", 2, 3) == 5
        assert system.session.calls_made == 2
        assert system.extension.dispatcher.calls_dispatched == 2

    def test_call_charges_two_context_switches(self, system):
        before = system.machine.meter.count(costs.CONTEXT_SWITCH)
        system.call("test_incr", 1)
        assert system.machine.meter.count(costs.CONTEXT_SWITCH) == before + 2

    def test_call_uses_message_queues(self, system):
        before_send = system.machine.meter.count(costs.MSGQ_SEND)
        before_recv = system.machine.meter.count(costs.MSGQ_RECV)
        system.call("test_incr", 1)
        assert system.machine.meter.count(costs.MSGQ_SEND) == before_send + 2
        assert system.machine.meter.count(costs.MSGQ_RECV) == before_recv + 2

    def test_unknown_function_is_enoent(self, system):
        outcome = system.call_outcome("not_a_function", 1)
        assert outcome.errno is Errno.ENOENT
        with pytest.raises(PermissionError):
            system.call("not_a_function", 1)

    def test_shared_stack_balanced_after_calls(self, system):
        for i in range(5):
            system.call("test_incr", i)
        assert system.session.shared_stack.depth() == 0

    def test_shared_stack_balanced_after_denied_call(self):
        system = SecModuleSystem.create(policy=CallQuotaPolicy(2), seed=20)
        assert system.call("test_incr", 1) == 2
        assert system.call("test_incr", 2) == 3
        outcome = system.call_outcome("test_incr", 3)
        assert outcome.errno is Errno.EACCES
        assert system.session.shared_stack.depth() == 0
        assert system.extension.dispatcher.calls_denied >= 1

    def test_uid_policy_allows_matching_uid(self):
        system = SecModuleSystem.create(policy=UidAllowPolicy([1000]), seed=21)
        assert system.call("test_incr", 1) == 2

    def test_policy_denied_session_creation_raises(self):
        with pytest.raises(PermissionError):
            SecModuleSystem.create(policy=UidAllowPolicy([7]), seed=23, uid=1000)

    def test_smod_getpid_returns_client_pid(self, system):
        assert system.call("getpid") == system.client_proc.pid
        assert system.call("getpid") != system.handle_proc.pid

    def test_dispatch_latency_matches_paper(self, system):
        system.call("test_incr", 0)
        mark = system.machine.clock.checkpoint()
        system.call("test_incr", 1)
        us = system.machine.clock.since(mark).microseconds(system.machine.spec.mhz)
        assert us == pytest.approx(6.407, abs=0.35)

    def test_hardening_modes_cost_more(self, system):
        def cost_of(config):
            system.call("test_incr", 0, config=config)
            mark = system.machine.clock.checkpoint()
            system.call("test_incr", 1, config=config)
            return system.machine.clock.since(mark).cycles

        base = cost_of(DispatchConfig())
        suspend = cost_of(DispatchConfig(hardening=HardeningMode.SUSPEND_CLIENT))
        unmap = cost_of(DispatchConfig(hardening=HardeningMode.UNMAP_CLIENT))
        assert base < suspend < unmap   # paper: unmapping has higher kernel overhead

    def test_explicit_copy_marshalling_costs_more(self, system):
        shared = DispatchConfig(marshalling=MarshallingMode.SHARED_VM)
        copied = DispatchConfig(marshalling=MarshallingMode.EXPLICIT_COPY)
        system.call("test_add", 1, 2, config=shared)
        mark = system.machine.clock.checkpoint()
        system.call("test_add", 1, 2, config=shared)
        shared_cycles = system.machine.clock.since(mark).cycles
        mark = system.machine.clock.checkpoint()
        system.call("test_add", 1, 2, config=copied)
        copied_cycles = system.machine.clock.since(mark).cycles
        assert copied_cycles > shared_cycles

    def test_call_against_foreign_session_rejected(self):
        """The handle answers only its own client (paper question 2)."""
        system_a = SecModuleSystem.create(seed=31)
        system_b = SecModuleSystem.create(seed=32)
        found = system_a.session.find_function("test_incr")
        module, function = found
        stub_frame_stack = system_a.session.shared_stack
        from repro.secmodule.stubs import ClientStub
        stub = ClientStub("test_incr", module.m_id, function.func_id)
        frame = stub.push_call(stub_frame_stack, (1,))
        # a different process presenting someone else's session
        outcome = system_a.extension.dispatcher.sys_smod_call(
            system_b.client_proc, system_a.session, frame, module.m_id,
            function.func_id)
        assert outcome.errno is Errno.EPERM

    def test_call_before_handshake_rejected(self):
        kernel, extension, client, descriptor, registered = build_manual_system()
        kernel.syscall(client.proc, "smod_start_session", descriptor)
        # skip steps 3 and 4 and try to call directly
        session = extension.sessions.for_client(client.proc)[0]
        outcome = extension.dispatcher.call(session, "test_incr", 1)
        assert outcome.errno is Errno.EINVAL

    def test_per_call_policy_can_be_disabled(self, system):
        config = DispatchConfig(per_call_policy_check=False)
        assert system.call("test_incr", 1, config=config) == 2


class TestMultiSession:
    """One client holding several concurrent sessions (the traffic engine)."""

    def test_open_extra_session_gives_second_handle(self):
        system = SecModuleSystem.create(seed=50)
        extra = system.open_extra_session()
        sessions = system.extension.sessions.for_client(system.client_proc)
        assert len(sessions) == 2
        assert extra in sessions
        assert extra.handle.proc.pid != system.session.handle.proc.pid
        # both sessions dispatch independently
        assert system.extension.dispatcher.call(extra, "test_incr", 5).value == 6
        assert system.call("test_incr", 7) == 8

    def test_second_session_without_allow_multiple_still_rejected(self):
        kernel, extension, client, descriptor, _ = build_manual_system()
        client.smod_crt0_startup(extension, descriptor)
        result = kernel.syscall(client.proc, "smod_start_session", descriptor)
        assert result.failed

    def test_sharded_table_keys_by_pid_and_session(self):
        system = SecModuleSystem.create(seed=51)
        system.open_extra_session()
        manager = system.extension.sessions
        pid = system.client_proc.pid
        shard = manager._shards[manager._shard_index(pid)]
        ids = {sid for (p, sid) in shard if p == pid}
        assert len(ids) == 2
        assert sum(manager.shard_sizes()) == len(manager.active_sessions())

    def test_session_for_call_resolves_by_module(self):
        system = SecModuleSystem.create(seed=52)
        extra = system.open_extra_session(["libtest"])
        manager = system.extension.sessions
        m_id = next(iter(extra.modules))
        resolved = manager.session_for_call(system.client_proc, m_id)
        assert resolved is not None and m_id in resolved.modules

    def test_teardown_one_session_keeps_the_other_working(self):
        system = SecModuleSystem.create(seed=53)
        extra = system.open_extra_session()
        system.extension.sessions.teardown(extra)
        assert system.client_proc.is_smod_client
        assert system.call("test_incr", 1) == 2
        sessions = system.extension.sessions.for_client(system.client_proc)
        assert sessions == [system.session]

    def test_teardown_last_session_clears_client_state(self):
        system = SecModuleSystem.create(seed=54)
        extra = system.open_extra_session()
        manager = system.extension.sessions
        manager.teardown(extra)
        manager.teardown(system.session)
        assert not system.client_proc.is_smod_client
        assert system.client_proc.smod_session is None
        assert manager.for_client(system.client_proc) == []
        assert sum(manager.shard_sizes()) == 0

    def test_call_against_torn_down_extra_session_is_einval(self):
        """A stale frame whose session died must not be dispatched onto a
        *different* live session's shared stack (regression)."""
        system = SecModuleSystem.create(seed=58)
        extra = system.open_extra_session()
        system.extension.sessions.teardown(extra)
        outcome = system.extension.dispatcher.call(extra, "test_incr", 1)
        assert outcome.errno is Errno.EINVAL
        # the surviving primary session is untouched and still balanced
        assert system.call("test_incr", 2) == 3
        assert system.session.shared_stack.depth() == 0

    def test_exit_tears_down_every_session(self):
        system = SecModuleSystem.create(seed=55)
        extra = system.open_extra_session()
        handles = [system.session.handle.proc, extra.handle.proc]
        system.kernel.syscall(system.client_proc, "exit", 0)
        assert system.session.torn_down and extra.torn_down
        assert all(not handle.alive for handle in handles)
        assert len(system.kernel.msg) == 0


class TestDispatchStateLeaks:
    """Regressions for the dispatch-path state leaks this PR fixes."""

    def test_raising_handle_leaves_client_resumable(self, system):
        """A SUSPEND_CLIENT-hardened client must not stay suspended when the
        handle's receive_call blows up mid-dispatch."""
        config = DispatchConfig(hardening=HardeningMode.SUSPEND_CLIENT)
        original = system.session.handle.receive_call

        def exploding(*args, **kwargs):
            raise RuntimeError("handle crashed mid-call")

        system.session.handle.receive_call = exploding
        with pytest.raises(RuntimeError):
            system.extension.dispatcher.sys_smod_call(
                system.client_proc, system.session,
                _push_frame(system), *_ids(system), config=config)
        assert not system.kernel.sched.is_suspended(system.client_proc)
        # the client dispatches again once the handle behaves
        system.session.handle.receive_call = original
        # drain the stale request left on the queue by the failed call
        system.kernel.msg.msgrcv(system.session.handle.proc,
                                 system.session.request_msqid, 1)
        # rebalance the shared stack from the aborted frame
        while system.session.shared_stack.depth():
            system.session.shared_stack.pop()
        assert system.call("test_incr", 1) == 2

    def test_denied_call_unwind_charged_uniformly(self):
        """The unwind pops every stub word at SMOD_STACK_FIXUP_WORD: 4 for
        the duplicated fp/ret + id pair, 2 for the original fp/ret, and one
        per argument — 7 for test_incr — plus the 4 the push charged."""
        system = SecModuleSystem.create(
            policy=FunctionDenyPolicy(["test_incr"]), seed=56,
            include_libc=False)
        meter = system.machine.meter
        before_fixup = meter.count(costs.SMOD_STACK_FIXUP_WORD)
        before_user = meter.count(costs.USER_STACK_WORD)
        outcome = system.call_outcome("test_incr", 1)
        assert outcome.errno is Errno.EACCES
        assert meter.count(costs.SMOD_STACK_FIXUP_WORD) - before_fixup == 11
        # the push path charged args+ret+fp (3 words) as ordinary user pushes
        assert meter.count(costs.USER_STACK_WORD) - before_user == 3
        assert system.session.shared_stack.depth() == 0

    def test_denied_call_cycle_total_is_analytic(self):
        """Denied-call cycles decompose into the exact op sequence."""
        system = SecModuleSystem.create(
            policy=FunctionDenyPolicy(["test_incr"]), seed=57,
            include_libc=False)
        system.call_outcome("test_incr", 1)      # warm any lazy state
        before = system.machine.meter.snapshot()
        mark = system.machine.clock.checkpoint()
        system.call_outcome("test_incr", 2)
        cycles = system.machine.clock.since(mark).cycles
        diff = system.machine.meter.diff(before)
        profile = system.machine.spec.profile
        assert cycles == sum(profile.cost(op) * count
                             for op, count in diff.items())
        assert diff[costs.SMOD_STACK_FIXUP_WORD] == 11


def _push_frame(system):
    """Push a test_incr stub frame on the shared stack (step 1-2)."""
    from repro.secmodule.stubs import ClientStub
    module, function = system.session.find_function("test_incr")
    stub = ClientStub("test_incr", module.m_id, function.func_id,
                      arg_words=function.arg_words)
    return stub.push_call(system.session.shared_stack, (1,))


def _ids(system):
    module, function = system.session.find_function("test_incr")
    return module.m_id, function.func_id
