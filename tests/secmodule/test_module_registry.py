"""Tests for SecModule definitions and the kernel registry."""

import pytest

from repro.errors import ConfigurationError
from repro.kernel.kernel import make_booted_kernel
from repro.secmodule.module import SecModuleDefinition, simple_module
from repro.secmodule.protection import ProtectionMode
from repro.secmodule.registry import ModuleRegistry
from repro.sim import costs


@pytest.fixture
def kernel():
    return make_booted_kernel()


@pytest.fixture
def registry(kernel):
    return ModuleRegistry(kernel)


class TestSecModuleDefinition:
    def test_add_and_lookup_functions(self):
        module = simple_module()
        assert "test_incr" in module
        assert len(module) == 2
        function = module.function("test_incr")
        assert module.function_by_id(function.func_id) is function
        assert module.function_by_id(999) is None

    def test_duplicate_function_rejected(self):
        module = SecModuleDefinition("m", 1)
        module.add_function("f", lambda env: 0)
        with pytest.raises(ConfigurationError):
            module.add_function("f", lambda env: 1)

    def test_missing_function_lookup_raises(self):
        with pytest.raises(ConfigurationError):
            simple_module().function("nope")

    def test_invalid_name_or_version_rejected(self):
        with pytest.raises(ConfigurationError):
            SecModuleDefinition("", 1)
        with pytest.raises(ConfigurationError):
            SecModuleDefinition("m", -1)

    def test_ensure_library_image_fabricates_backing(self):
        module = SecModuleDefinition("m", 1)
        module.add_function("f", lambda env: 0)
        module.add_function("g", lambda env: 0)
        image = module.ensure_library_image()
        assert image.kind == "shared"
        assert image.find_symbol("f") and image.find_symbol("g")
        assert module.ensure_library_image() is image    # cached
        assert image.relocations                         # call sites planted

    def test_ensure_library_image_needs_functions(self):
        with pytest.raises(ConfigurationError):
            SecModuleDefinition("m", 1).ensure_library_image()

    def test_describe(self):
        assert "libdemo" in simple_module().describe()


class TestModuleRegistry:
    def test_register_assigns_id_and_encrypts(self, registry):
        module = simple_module()
        registered = registry.register(module, uid=0)
        assert registered.m_id == 1
        assert registered.key is not None
        assert module.ensure_library_image().encrypted
        assert registry.get(1) is registered
        assert len(registry) == 1 and 1 in registry

    def test_register_requires_root(self, registry):
        with pytest.raises(PermissionError):
            registry.register(simple_module(), uid=1000)

    def test_register_charges_setup_cost(self, registry, kernel):
        before = kernel.machine.meter.count(costs.SMOD_REGISTER_BASE)
        registry.register(simple_module(), uid=0)
        assert kernel.machine.meter.count(costs.SMOD_REGISTER_BASE) == before + 1
        assert kernel.machine.meter.count(costs.KEY_SCHEDULE) >= 1

    def test_duplicate_registration_rejected(self, registry):
        registry.register(simple_module(), uid=0)
        with pytest.raises(ConfigurationError):
            registry.register(simple_module(), uid=0)

    def test_empty_module_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            registry.register(SecModuleDefinition("empty", 1), uid=0)

    def test_unmap_mode_skips_encryption(self, registry):
        registered = registry.register(simple_module(), uid=0,
                                       protection=ProtectionMode.UNMAP)
        assert registered.key is None
        assert not registered.definition.ensure_library_image().encrypted

    def test_find_by_name_and_version(self, registry):
        registry.register(simple_module(), uid=0)
        assert registry.find("libdemo", 1) is not None
        assert registry.find("libdemo", 2) is None
        assert registry.find("other", 1) is None

    def test_multiple_versions_coexist(self, registry):
        registry.register(simple_module(version=1), uid=0)
        registry.register(simple_module(version=2), uid=0)
        versions = registry.find_any_version("libdemo")
        assert [m.version for m in versions] == [1, 2]

    def test_remove_requires_valid_credential(self, registry):
        registered = registry.register(simple_module(), uid=0)
        good = registered.definition.issuer.issue("owner", uid=1000)
        bad_issuer = type(registered.definition.issuer)(
            module_name="libdemo", secret=b"wrong")
        bad = bad_issuer.issue("mallory", uid=1000)
        with pytest.raises(PermissionError):
            registry.remove(registered.m_id, bad, uid=1000)
        assert registry.remove(registered.m_id, good, uid=1000)
        assert registry.get(registered.m_id) is None
        assert registry.find("libdemo", 1) is None

    def test_remove_missing_module_returns_false(self, registry):
        module = simple_module()
        credential = module.issuer.issue("owner")
        assert not registry.remove(99, credential, uid=0)

    def test_root_can_remove_without_credential_check(self, registry):
        registered = registry.register(simple_module(), uid=0)
        other = simple_module(version=9)
        unrelated_credential = other.issuer.issue("anyone")
        assert registry.remove(registered.m_id, unrelated_credential, uid=0)

    def test_all_modules_sorted(self, registry):
        registry.register(simple_module(version=1), uid=0)
        registry.register(simple_module(version=2), uid=0)
        assert [m.m_id for m in registry.all_modules()] == [1, 2]
