"""Tests for the policy-decision cache on the dispatch hot path."""

import pytest

from repro.kernel.errno import Errno
from repro.secmodule.api import SecModuleSystem
from repro.secmodule.decision_cache import DecisionCache, policy_is_cacheable
from repro.secmodule.dispatch import DispatchConfig
from repro.secmodule.policy import (
    AlwaysAllowPolicy,
    AttributePredicatePolicy,
    CallQuotaPolicy,
    CompositePolicy,
    CredentialExpiryPolicy,
    FunctionDenyPolicy,
    PrincipalAllowPolicy,
    TimeWindowPolicy,
    UidAllowPolicy,
    synthetic_chain,
)
from repro.sim import costs

STATIC_CHAIN = lambda: CompositePolicy([            # noqa: E731
    UidAllowPolicy([1000]),
    PrincipalAllowPolicy(["alice"]),
    FunctionDenyPolicy(["test_null"]),
])


def make_system(policy, seed=60):
    return SecModuleSystem.create(policy=policy, seed=seed,
                                  include_libc=False)


class TestCacheability:
    def test_static_classification(self):
        assert policy_is_cacheable(AlwaysAllowPolicy())
        assert policy_is_cacheable(UidAllowPolicy([1]))
        assert policy_is_cacheable(PrincipalAllowPolicy(["a"]))
        assert policy_is_cacheable(FunctionDenyPolicy(["f"]))
        assert policy_is_cacheable(STATIC_CHAIN())

    def test_dynamic_classification(self):
        assert not policy_is_cacheable(CallQuotaPolicy(5))
        assert not policy_is_cacheable(TimeWindowPolicy(0, 1e9))
        assert not policy_is_cacheable(CredentialExpiryPolicy())
        assert not policy_is_cacheable(
            AttributePredicatePolicy("p", lambda a: True))
        # one dynamic clause poisons the whole chain
        assert not policy_is_cacheable(CompositePolicy(
            [UidAllowPolicy([1]), CallQuotaPolicy(5)]))

    def test_synthetic_chain_static_flag(self):
        assert not policy_is_cacheable(synthetic_chain(3))
        assert policy_is_cacheable(synthetic_chain(3, static=True))


class TestCacheHits:
    def test_static_chain_hits_after_first_call(self):
        system = make_system(STATIC_CHAIN())
        cache = system.extension.decision_cache
        system.call("test_incr", 1)
        assert cache.hits == 0 and cache.misses == 1 and len(cache) == 1
        system.call("test_incr", 2)
        system.call("test_incr", 3)
        assert cache.hits == 2

    def test_hit_charges_cache_hit_not_policy_steps(self):
        system = make_system(STATIC_CHAIN())
        meter = system.machine.meter
        system.call("test_incr", 1)              # miss: 3 policy steps
        steps_after_miss = meter.count(costs.SMOD_POLICY_STEP)
        system.call("test_incr", 2)              # hit
        assert meter.count(costs.SMOD_POLICY_STEP) == steps_after_miss
        assert meter.count(costs.SMOD_POLICY_CACHE_HIT) == 1

    def test_cached_calls_are_cheaper(self):
        system = make_system(STATIC_CHAIN())
        system.call("test_incr", 0)              # populate
        mark = system.machine.clock.checkpoint()
        system.call("test_incr", 1)
        hit_cycles = system.machine.clock.since(mark).cycles

        uncached = DispatchConfig(use_decision_cache=False)
        mark = system.machine.clock.checkpoint()
        system.call("test_incr", 2, config=uncached)
        eval_cycles = system.machine.clock.since(mark).cycles
        saved = (3 * system.machine.spec.profile.cost(costs.SMOD_POLICY_STEP)
                 - system.machine.spec.profile.cost(costs.SMOD_POLICY_CACHE_HIT))
        assert eval_cycles - hit_cycles == saved

    def test_denied_static_decision_is_cached(self):
        system = make_system(STATIC_CHAIN())
        cache = system.extension.decision_cache
        assert system.call_outcome("test_null").errno is Errno.EACCES
        assert system.call_outcome("test_null").errno is Errno.EACCES
        assert cache.hits == 1
        assert system.extension.dispatcher.calls_denied == 2

    def test_always_allow_never_cached(self):
        """The paper's zero-step baseline must not engage the cache — that
        keeps the default DispatchConfig cycle-identical to the seed."""
        system = make_system(None, seed=61)      # default AlwaysAllow
        meter = system.machine.meter
        for i in range(4):
            system.call("test_incr", i)
        cache = system.extension.decision_cache
        assert len(cache) == 0 and cache.hits == 0
        assert meter.count(costs.SMOD_POLICY_CACHE_HIT) == 0

    def test_knob_disables_cache(self):
        system = make_system(STATIC_CHAIN(), seed=62)
        config = DispatchConfig(use_decision_cache=False)
        for i in range(3):
            system.call("test_incr", i, config=config)
        cache = system.extension.decision_cache
        assert cache.hits == 0 and cache.misses == 0 and len(cache) == 0


class TestDynamicPoliciesNeverCached:
    def test_quota_policy_still_enforced(self):
        chain = CompositePolicy([UidAllowPolicy([1000]), CallQuotaPolicy(2)])
        system = make_system(chain, seed=63)
        assert system.call("test_incr", 1) == 2
        assert system.call("test_incr", 2) == 3
        outcome = system.call_outcome("test_incr", 3)
        assert outcome.errno is Errno.EACCES     # quota correctly re-evaluated
        assert len(system.extension.decision_cache) == 0

    def test_credential_expiry_still_enforced(self):
        chain = CompositePolicy([UidAllowPolicy([1000]),
                                 CredentialExpiryPolicy()])
        system = make_system(chain, seed=64)
        # re-issue the session credential with a short expiry
        session = system.session
        m_id = next(iter(session.modules))
        module = session.modules[m_id]
        deadline = system.machine.microseconds() + 200.0
        session.replace_credential(m_id, module.definition.issuer.issue(
            "alice", uid=1000, expires_at_us=deadline))
        assert system.call("test_incr", 1) == 2
        # burn virtual time past the expiry
        while system.machine.microseconds() <= deadline:
            system.machine.clock.advance(10_000)
        outcome = system.call_outcome("test_incr", 2)
        assert outcome.errno is Errno.EACCES
        assert len(system.extension.decision_cache) == 0


class TestInvalidation:
    def test_credential_replacement_invalidates(self):
        system = make_system(STATIC_CHAIN(), seed=65)
        cache = system.extension.decision_cache
        session = system.session
        system.call("test_incr", 1)
        system.call("test_incr", 2)
        assert cache.hits == 1
        m_id = next(iter(session.modules))
        module = session.modules[m_id]
        session.replace_credential(
            m_id, module.definition.issuer.issue("alice", uid=1000))
        misses_before = cache.misses
        system.call("test_incr", 3)              # stale epoch -> miss
        assert cache.misses == misses_before + 1
        system.call("test_incr", 4)              # re-memoized -> hit again
        assert cache.hits == 2

    def test_quota_reset_invalidates(self):
        system = make_system(STATIC_CHAIN(), seed=66)
        cache = system.extension.decision_cache
        system.call("test_incr", 1)
        system.call("test_incr", 2)
        system.session.reset_quota()
        misses_before = cache.misses
        system.call("test_incr", 3)
        assert cache.misses == misses_before + 1

    def test_teardown_drops_session_entries(self):
        system = make_system(STATIC_CHAIN(), seed=67)
        cache = system.extension.decision_cache
        system.call("test_incr", 1)
        assert len(cache) == 1
        system.teardown()
        assert len(cache) == 0
        assert cache.invalidations == 1

    def test_explicit_module_invalidation(self):
        cache = DecisionCache()

        class FakeSession:
            session_id = 1
            policy_epoch = 0

        from repro.secmodule.policy import PolicyDecision
        cache.store(FakeSession(), 7, 1, PolicyDecision(True, 1))
        cache.store(FakeSession(), 8, 1, PolicyDecision(True, 1))
        assert cache.invalidate_module(7) == 1
        assert len(cache) == 1
        assert cache.invalidate_all() == 1
        assert len(cache) == 0


class FakeSession:
    def __init__(self, session_id=1, policy_epoch=0):
        self.session_id = session_id
        self.policy_epoch = policy_epoch


def _decision():
    from repro.secmodule.policy import PolicyDecision
    return PolicyDecision(True, 1)


class TestCapacityAndEviction:
    def test_capacity_bounds_each_session(self):
        cache = DecisionCache(capacity_per_session=4)
        session = FakeSession()
        for func_id in range(10):
            cache.store(session, 1, func_id, _decision())
        assert cache.session_entry_count(1) == 4
        assert cache.evictions == 6
        assert cache.snapshot()["evictions"] == 6

    def test_eviction_is_least_recently_used(self):
        cache = DecisionCache(capacity_per_session=2)
        session = FakeSession()
        cache.store(session, 1, 0, _decision())
        cache.store(session, 1, 1, _decision())
        # touch func 0 so func 1 becomes the LRU victim
        assert cache.lookup(session, 1, 0) is not None
        cache.store(session, 1, 2, _decision())
        assert cache.lookup(session, 1, 0) is not None
        assert cache.lookup(session, 1, 2) is not None
        assert cache.lookup(session, 1, 1) is None      # evicted
        assert cache.evictions == 1

    def test_restoring_existing_key_never_evicts(self):
        cache = DecisionCache(capacity_per_session=2)
        session = FakeSession()
        cache.store(session, 1, 0, _decision())
        cache.store(session, 1, 1, _decision())
        cache.store(session, 1, 1, _decision())          # overwrite in place
        assert cache.evictions == 0
        assert cache.session_entry_count(1) == 2

    def test_sessions_have_independent_budgets(self):
        cache = DecisionCache(capacity_per_session=2)
        a, b = FakeSession(1), FakeSession(2)
        for func_id in range(2):
            cache.store(a, 1, func_id, _decision())
            cache.store(b, 1, func_id, _decision())
        cache.store(a, 1, 9, _decision())                # evicts only in a
        assert cache.evictions == 1
        assert cache.session_entry_count(1) == 2
        assert cache.session_entry_count(2) == 2
        assert cache.lookup(b, 1, 0) is not None

    def test_invalid_capacity_rejected(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            DecisionCache(capacity_per_session=0)

    def test_default_capacity_sees_no_evictions_in_traffic(self):
        """The acceptance bar: existing workloads never evict."""
        from repro.workloads.traffic import TrafficSpec, run_traffic
        result = run_traffic(TrafficSpec(clients=4, modules=2,
                                         calls_per_client=8, seed=5))
        assert result.cache_stats["evictions"] == 0
