"""Tests for UVM pages/amaps and the vm_map layer."""

import pytest

from repro.errors import SimulationError
from repro.hw.machine import make_paper_machine
from repro.kernel.uvm.layout import PAGE_SIZE
from repro.kernel.uvm.map import (
    EntryKind,
    Protection,
    VMMap,
    read_memory,
    uvm_force_share,
    uvm_map_shared_internal,
    write_memory,
)
from repro.kernel.uvm.page import AMap, Anon, PageAllocator, PhysicalPage, UVMObject


@pytest.fixture
def machine():
    return make_paper_machine()


@pytest.fixture
def allocator():
    return PageAllocator(total_pages=1024)


@pytest.fixture
def vmmap(machine, allocator):
    return VMMap(machine, allocator, name="test")


class TestPhysicalPage:
    def test_lazy_allocation_and_rw(self):
        page = PhysicalPage(frame_number=0)
        assert not page.touched
        assert page.read(0, 8) == bytes(8)
        page.write(4, b"abcd")
        assert page.touched
        assert page.read(4, 4) == b"abcd"

    def test_bounds_checked(self):
        page = PhysicalPage(frame_number=0)
        with pytest.raises(SimulationError):
            page.write(PAGE_SIZE - 2, b"abcd")
        with pytest.raises(SimulationError):
            page.read(-1, 4)


class TestPageAllocator:
    def test_budget_enforced(self):
        allocator = PageAllocator(total_pages=2)
        allocator.alloc()
        allocator.alloc()
        with pytest.raises(SimulationError):
            allocator.alloc()

    def test_free_returns_budget(self):
        allocator = PageAllocator(total_pages=1)
        page = allocator.alloc()
        allocator.free(page)
        assert allocator.free_pages == 1
        allocator.alloc()

    def test_overfree_rejected(self):
        allocator = PageAllocator(total_pages=1)
        page = allocator.alloc()
        allocator.free(page)
        with pytest.raises(SimulationError):
            allocator.free(page)


class TestAnonAndAMap:
    def test_refcounting_releases_pages(self, allocator):
        anon = Anon(page=allocator.alloc())
        anon.ref()
        anon.unref(allocator)
        assert allocator.allocated == 1
        anon.unref(allocator)
        assert allocator.allocated == 0
        with pytest.raises(SimulationError):
            anon.unref(allocator)

    def test_amap_ensure_and_lookup(self, allocator):
        amap = AMap()
        assert amap.lookup(0) is None
        anon = amap.ensure(0, allocator)
        assert amap.ensure(0, allocator) is anon
        assert len(amap) == 1

    def test_amap_shared_refcount(self, allocator):
        amap = AMap()
        amap.ensure(0, allocator)
        amap.ref()
        amap.unref(allocator)
        assert allocator.allocated == 1
        amap.unref(allocator)
        assert allocator.allocated == 0

    def test_amap_copy_is_deep(self, allocator):
        amap = AMap()
        anon = amap.ensure(0, allocator)
        anon.page.write(0, b"orig")
        clone = amap.copy(allocator)
        clone.lookup(0).page.write(0, b"copy")
        assert anon.page.read(0, 4) == b"orig"

    def test_duplicate_slot_rejected(self, allocator):
        amap = AMap()
        amap.add(0, Anon(page=allocator.alloc()))
        with pytest.raises(SimulationError):
            amap.add(0, Anon(page=allocator.alloc()))


class TestVMMap:
    def test_map_and_lookup(self, vmmap):
        entry = vmmap.uvm_map(0x1000, PAGE_SIZE * 2, Protection.rw(), name="data")
        assert vmmap.lookup(0x1000) is entry
        assert vmmap.lookup(0x1000 + 2 * PAGE_SIZE) is None
        assert entry.pages == 2

    def test_overlap_rejected(self, vmmap):
        vmmap.uvm_map(0x1000, PAGE_SIZE, Protection.rw())
        with pytest.raises(SimulationError, match="overlaps"):
            vmmap.uvm_map(0x1000, PAGE_SIZE, Protection.rw())

    def test_unaligned_entry_rejected(self, machine, allocator):
        with pytest.raises(SimulationError):
            from repro.kernel.uvm.map import VMMapEntry
            VMMapEntry(start=0x1001, end=0x2000, protection=Protection.rw(),
                       kind=EntryKind.ANON)

    def test_object_entry_requires_uobj(self):
        from repro.kernel.uvm.map import VMMapEntry
        with pytest.raises(SimulationError):
            VMMapEntry(start=0x1000, end=0x2000, protection=Protection.rx(),
                       kind=EntryKind.OBJECT)

    def test_unmap_removes_and_charges(self, vmmap, machine):
        vmmap.uvm_map(0x1000, PAGE_SIZE, Protection.rw(), name="a")
        vmmap.uvm_map(0x3000, PAGE_SIZE, Protection.rw(), name="b")
        before = machine.clock.cycles
        removed = vmmap.uvm_unmap(0x0, 0x2000)
        assert removed == 1
        assert vmmap.lookup(0x1000) is None
        assert vmmap.lookup(0x3000) is not None
        assert machine.clock.cycles > before

    def test_partial_unmap_rejected(self, vmmap):
        vmmap.uvm_map(0x1000, PAGE_SIZE * 4, Protection.rw())
        with pytest.raises(SimulationError, match="partial unmap"):
            vmmap.uvm_unmap(0x1000, 0x2000)

    def test_protect_changes_protection(self, vmmap):
        entry = vmmap.uvm_map(0x1000, PAGE_SIZE, Protection.rw())
        changed = vmmap.protect(0x1000, 0x2000, Protection.READ)
        assert changed == 1
        assert not entry.protection.allows(Protection.WRITE)

    def test_entries_iteration_sorted(self, vmmap):
        vmmap.uvm_map(0x5000, PAGE_SIZE, Protection.rw(), name="high")
        vmmap.uvm_map(0x1000, PAGE_SIZE, Protection.rw(), name="low")
        assert [e.name for e in vmmap] == ["low", "high"]
        assert vmmap.total_mapped_bytes() == 2 * PAGE_SIZE

    def test_read_write_memory_through_map(self, vmmap):
        vmmap.uvm_map(0x1000, PAGE_SIZE * 2, Protection.rw())
        write_memory(vmmap, 0x1ffc, b"spanning pages!!")
        assert read_memory(vmmap, 0x1ffc, 16) == b"spanning pages!!"

    def test_write_to_readonly_rejected(self, vmmap):
        vmmap.uvm_map(0x1000, PAGE_SIZE, Protection.READ)
        with pytest.raises(SimulationError, match="read-only"):
            write_memory(vmmap, 0x1000, b"x")

    def test_write_to_unmapped_rejected(self, vmmap):
        with pytest.raises(SimulationError, match="unmapped"):
            write_memory(vmmap, 0x9000, b"x")

    def test_read_object_backed_memory(self, vmmap):
        uobj = UVMObject(name="lib.text", data=b"\x90" * 64)
        vmmap.uvm_map(0x1000, PAGE_SIZE, Protection.rx(), kind=EntryKind.OBJECT,
                      uobj=uobj, name="text")
        assert read_memory(vmmap, 0x1000, 4) == b"\x90" * 4
        # past the object's data, zero fill
        assert read_memory(vmmap, 0x1000 + 100, 4) == bytes(4)


class TestSharedMappings:
    def test_uvm_map_shared_internal_shares_pages(self, machine, allocator):
        map1 = VMMap(machine, allocator, name="client")
        map2 = VMMap(machine, allocator, name="handle")
        uvm_map_shared_internal(map1, map2, 0x8000000, PAGE_SIZE, Protection.rw(),
                                name="heap")
        write_memory(map1, 0x8000000, b"shared-bytes")
        assert read_memory(map2, 0x8000000, 12) == b"shared-bytes"

    def test_uvm_force_share_replaces_handle_entries(self, machine, allocator):
        client = VMMap(machine, allocator, name="client")
        handle = VMMap(machine, allocator, name="handle")
        client.uvm_map(0x8000000, PAGE_SIZE, Protection.rw(), name="data")
        handle.uvm_map(0x8000000, PAGE_SIZE, Protection.rw(), name="old-data")
        write_memory(client, 0x8000000, b"client view")
        shared = uvm_force_share(handle, client, 0x8000000, 0x9000000)
        assert shared == 1
        assert read_memory(handle, 0x8000000, 11) == b"client view"
        # and writes made by the handle become visible to the client
        write_memory(handle, 0x8000000, b"HANDLE")
        assert read_memory(client, 0x8000000, 6) == b"HANDLE"

    def test_force_share_skips_object_entries(self, machine, allocator):
        client = VMMap(machine, allocator, name="client")
        handle = VMMap(machine, allocator, name="handle")
        uobj = UVMObject(name="libc.text", data=b"\xcc" * 32)
        client.uvm_map(0x8000000, PAGE_SIZE, Protection.rx(),
                       kind=EntryKind.OBJECT, uobj=uobj, name="text-in-window")
        shared = uvm_force_share(handle, client, 0x8000000, 0x9000000)
        assert shared == 0
        assert handle.lookup(0x8000000) is None
