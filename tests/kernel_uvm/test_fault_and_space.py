"""Tests for uvm_fault (including the forced-share path) and VMSpace."""

import pytest

from repro.errors import SimulatedFault, SimulationError
from repro.hw.machine import make_paper_machine
from repro.kernel.uvm.fault import FaultOutcome, FaultType, fault_or_die, uvm_fault
from repro.kernel.uvm.layout import (
    DATA_BASE,
    PAGE_SIZE,
    SECRET_BASE,
    SHARE_END,
    SHARE_START,
    STACK_TOP,
    in_secret_region,
    in_share_region,
    page_align_down,
    page_align_up,
    pages_in,
)
from repro.kernel.uvm.map import Protection
from repro.kernel.uvm.page import PageAllocator
from repro.kernel.uvm.space import VMSpace, uvmspace_fork, uvmspace_force_share


@pytest.fixture
def machine():
    return make_paper_machine()


@pytest.fixture
def allocator():
    return PageAllocator(total_pages=4096)


def make_space(machine, allocator, name="proc"):
    space = VMSpace(machine=machine, allocator=allocator, name=name)
    space.map_data("data", 4 * PAGE_SIZE, base=DATA_BASE)
    space.map_stack(pages=4)
    return space


class TestLayoutHelpers:
    def test_alignment_helpers(self):
        assert page_align_down(0x1234) == 0x1000
        assert page_align_up(0x1234) == 0x2000
        assert page_align_up(0x2000) == 0x2000
        assert pages_in(0x1000, 0x3000) == 2
        assert pages_in(0x3000, 0x1000) == 0

    def test_share_and_secret_regions_disjoint(self):
        assert in_share_region(DATA_BASE)
        assert in_share_region(STACK_TOP - 1)
        assert not in_share_region(STACK_TOP)
        assert not in_share_region(0x1000)
        assert in_secret_region(SECRET_BASE)
        assert not in_share_region(SECRET_BASE)

    def test_share_window_matches_figure2(self):
        """Shared range runs from the data segment to the stack top."""
        assert SHARE_START == DATA_BASE
        assert SHARE_END == STACK_TOP


class TestUvmFault:
    def test_fault_on_existing_anon_entry_zero_fills(self, machine, allocator):
        space = make_space(machine, allocator)
        result = uvm_fault(space.vm_map, DATA_BASE, FaultType.INVALID,
                           Protection.WRITE)
        assert result.outcome is FaultOutcome.RESOLVED_ZERO_FILL
        result2 = uvm_fault(space.vm_map, DATA_BASE, FaultType.INVALID,
                            Protection.WRITE)
        assert result2.outcome is FaultOutcome.RESOLVED_EXISTING

    def test_protection_fault_is_fatal(self, machine, allocator):
        space = VMSpace(machine=machine, allocator=allocator)
        space.vm_map.uvm_map(DATA_BASE, PAGE_SIZE, Protection.READ, name="ro")
        result = uvm_fault(space.vm_map, DATA_BASE, FaultType.PROTECTION,
                           Protection.WRITE)
        assert result.fatal

    def test_object_entry_fault_resolves(self, machine, allocator):
        space = VMSpace(machine=machine, allocator=allocator)
        space.map_text("lib.text", b"\x90" * 64, base=0x1000)
        result = uvm_fault(space.vm_map, 0x1000, FaultType.INVALID,
                           Protection.READ)
        assert result.outcome is FaultOutcome.RESOLVED_OBJECT

    def test_unmapped_without_peer_is_fatal(self, machine, allocator):
        space = make_space(machine, allocator)
        result = uvm_fault(space.vm_map, DATA_BASE + 0x100000, FaultType.INVALID,
                           Protection.READ)
        assert result.fatal

    def test_peer_share_resolution(self, machine, allocator):
        """The paper's modified uvm_fault: map the peer's entry as a share."""
        client = make_space(machine, allocator, "client")
        handle = make_space(machine, allocator, "handle")
        # the client grows a region the handle has never seen
        client.vm_map.uvm_map(DATA_BASE + 0x100000, PAGE_SIZE, Protection.rw(),
                              name="late-heap")
        client.write(DATA_BASE + 0x100000, b"late data")
        result = uvm_fault(handle.vm_map, DATA_BASE + 0x100000,
                           FaultType.INVALID, Protection.READ,
                           peer_map=client.vm_map)
        assert result.outcome is FaultOutcome.RESOLVED_PEER_SHARE
        assert handle.read(DATA_BASE + 0x100000, 9) == b"late data"

    def test_peer_share_only_inside_window(self, machine, allocator):
        client = make_space(machine, allocator, "client")
        handle = make_space(machine, allocator, "handle")
        client.map_text("client-text", b"\xcc" * 32, base=0x2000)
        result = uvm_fault(handle.vm_map, 0x2000, FaultType.INVALID,
                           Protection.READ, peer_map=client.vm_map)
        assert result.fatal

    def test_fault_or_die_raises(self, machine, allocator):
        space = make_space(machine, allocator)
        with pytest.raises(SimulatedFault):
            fault_or_die(space.vm_map, 0xB0000000, Protection.READ, pid=42)

    def test_fault_charges_cycles(self, machine, allocator):
        space = make_space(machine, allocator)
        before = machine.clock.cycles
        uvm_fault(space.vm_map, DATA_BASE, FaultType.INVALID, Protection.READ)
        assert machine.clock.cycles > before


class TestVMSpace:
    def test_layout_summary(self, machine, allocator):
        space = make_space(machine, allocator)
        layout = space.layout_summary()
        assert layout.data_start == DATA_BASE
        assert layout.stack_top == STACK_TOP
        assert not layout.has_secret_region
        text = space.map_secret_region()
        assert space.layout_summary().has_secret_region
        assert "secret" in space.layout_summary().describe()

    def test_obreak_grows_heap(self, machine, allocator):
        space = make_space(machine, allocator)
        old_break = space.brk
        new_break = space.sys_obreak(old_break + 3 * PAGE_SIZE)
        assert new_break == old_break + 3 * PAGE_SIZE
        space.write(old_break, b"heap bytes")
        assert space.read(old_break, 10) == b"heap bytes"

    def test_obreak_shrink_is_noop(self, machine, allocator):
        space = make_space(machine, allocator)
        grown = space.sys_obreak(space.brk + PAGE_SIZE)
        assert space.sys_obreak(grown - PAGE_SIZE) == grown

    def test_obreak_limit_enforced(self, machine, allocator):
        space = make_space(machine, allocator)
        with pytest.raises(SimulationError):
            space.sys_obreak(0x9000_0000)

    def test_obreak_smod_pair_shares_growth(self, machine, allocator):
        client = make_space(machine, allocator, "client")
        handle = make_space(machine, allocator, "handle")
        uvmspace_force_share(handle, client)
        old_break = client.brk
        client.sys_obreak(old_break + PAGE_SIZE, smod_pair=True)
        client.write(old_break, b"grown")
        assert handle.read(old_break, 5) == b"grown"
        assert handle.brk == client.brk

    def test_stack_growth_capped(self, machine, allocator):
        space = make_space(machine, allocator)
        space.grow_stack(pages=4)
        with pytest.raises(SimulationError):
            space.grow_stack(pages=10_000)

    def test_fork_copies_private_memory(self, machine, allocator):
        parent = make_space(machine, allocator, "parent")
        parent.write(DATA_BASE, b"parent data")
        child = uvmspace_fork(parent)
        child.write(DATA_BASE, b"child  data")
        assert parent.read(DATA_BASE, 11) == b"parent data"
        assert child.read(DATA_BASE, 11) == b"child  data"

    def test_fork_shares_text_objects(self, machine, allocator):
        parent = make_space(machine, allocator, "parent")
        entry = parent.map_text("lib.text", b"\x90" * 64, base=0x1000)
        child = uvmspace_fork(parent)
        child_entry = child.vm_map.lookup(0x1000)
        assert child_entry is not None and child_entry.uobj is entry.uobj

    def test_fork_preserves_shared_mappings(self, machine, allocator):
        parent = make_space(machine, allocator, "parent")
        shared = parent.vm_map.uvm_map(DATA_BASE + 0x200000, PAGE_SIZE,
                                       Protection.rw(), shared=True, name="shm")
        child = uvmspace_fork(parent)
        parent.write(DATA_BASE + 0x200000, b"both see")
        assert child.read(DATA_BASE + 0x200000, 8) == b"both see"

    def test_force_share_gives_handle_client_view(self, machine, allocator):
        client = make_space(machine, allocator, "client")
        handle = make_space(machine, allocator, "handle")
        client.write(DATA_BASE, b"precious client state")
        shared_count = uvmspace_force_share(handle, client)
        assert shared_count >= 2     # data + stack at minimum
        assert handle.read(DATA_BASE, 21) == b"precious client state"
        assert handle.smod_peer is client and client.smod_peer is handle

    def test_force_share_does_not_share_text(self, machine, allocator):
        client = make_space(machine, allocator, "client")
        client.map_text("client:.text", b"\xAA" * 64, base=0x1000)
        handle = make_space(machine, allocator, "handle")
        uvmspace_force_share(handle, client)
        assert handle.vm_map.lookup(0x1000) is None

    def test_force_share_empty_range_rejected(self, machine, allocator):
        client = make_space(machine, allocator, "client")
        handle = make_space(machine, allocator, "handle")
        with pytest.raises(SimulationError):
            uvmspace_force_share(handle, client, 0x2000, 0x2000)
