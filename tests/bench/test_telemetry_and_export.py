"""Harness JSON export, the abl-adaptive registration, the pool fairness
leg, the surfaced cache/broker stats, and the ``repro stats`` command."""

import json

import pytest

from repro.bench.harness import (
    EXPERIMENTS,
    experiment_payload,
    export_payload,
    run_experiment,
    to_jsonable,
)
from repro.bench.pool import run_pool_sweep
from repro.bench.throughput import run_throughput
from repro.cli import main as cli_main
from repro.workloads.traffic import TrafficSpec, run_traffic


class TestJsonExport:
    def test_run_experiment_writes_bench_json(self, tmp_path):
        run = run_experiment("fig7", export_dir=str(tmp_path))
        path = tmp_path / "BENCH_fig7.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "fig7"
        assert payload["rendered"] == run.rendered
        assert "OpenBSD" in payload["rendered"]

    def test_exports_carry_peak_rss(self, tmp_path):
        """Every payload records the process memory high-water mark at the
        top level — outside ``data``, so the byte-exact gate ignores it."""
        run = run_experiment("fig7", export_dir=str(tmp_path))
        payload = json.loads((tmp_path / "BENCH_fig7.json").read_text())
        assert "peak_rss_bytes" in payload
        # this host is POSIX: the value must be a plausible byte count
        assert isinstance(payload["peak_rss_bytes"], int)
        assert payload["peak_rss_bytes"] > 1024 * 1024
        assert "peak_rss_bytes" not in (payload["data"] or {})
        del run

    def test_run_experiment_without_export_dir_writes_nothing(self, tmp_path,
                                                              monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_experiment("fig7")
        assert not list(tmp_path.glob("BENCH_*.json"))

    def test_to_jsonable_handles_the_awkward_shapes(self):
        from enum import Enum

        class Kind(Enum):
            A = "a"

        value = {"t": (1, 2), "e": Kind.A, "s": {3}, "o": object()}
        out = to_jsonable(value)
        assert out["t"] == [1, 2] and out["e"] == "a" and out["s"] == [3]
        assert isinstance(out["o"], str)
        json.dumps(out)

    def test_payloads_of_every_experiment_kind_serialize(self, tmp_path):
        # a dataclass report (as_dict), a dataclass without one, and an
        # arbitrary object all must export without raising
        for experiment_id in ("fig7", "abl-pool"):
            spec = EXPERIMENTS[experiment_id]
            result = spec.runner() if experiment_id == "fig7" else \
                run_pool_sweep(seats=(1, 2), sessions=4, calls_per_session=1)
            payload = experiment_payload(experiment_id, spec.title, spec.kind,
                                         result, "rendered")
            export_payload(payload, str(tmp_path))
            json.loads((tmp_path /
                        f"BENCH_{experiment_id}.json").read_text())


class TestAdaptiveRegistration:
    def test_abl_adaptive_in_experiments_table(self):
        assert "abl-adaptive" in EXPERIMENTS
        assert EXPERIMENTS["abl-adaptive"].kind == "ablation"

    def test_cli_bench_adaptive_fast(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert cli_main(["bench", "adaptive", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "adaptive within 20% of best static depth: yes" in out
        assert "depth adapted up then back down across the mmpp cycle: yes" \
            in out
        payload = json.loads((tmp_path / "BENCH_abl-adaptive.json").read_text())
        assert payload["data"]["within_20_percent"] is True


class TestPoolFairnessLeg:
    @pytest.fixture(scope="class")
    def report(self):
        return run_pool_sweep(seats=(1, 8), sessions=16, calls_per_session=2)

    def test_fairness_leg_present_with_pooled_handles(self, report):
        fairness = report.fairness
        assert fairness is not None
        assert fairness.handles            # at least one shared handle
        for entry in fairness.handles.values():
            assert entry["clients"] > 1
            assert 0.0 < entry["jain_fairness"] <= 1.0
            for stats in entry["per_client"].values():
                assert stats["p95_us"] >= stats["mean_us"] * 0.0
                assert stats["count"] > 0

    def test_symmetric_offered_load_is_nearly_fair(self, report):
        assert report.fairness.worst_jain() > 0.8

    def test_render_reports_p95_and_jain(self, report):
        text = report.render()
        assert "Jain fairness" in text
        assert "per-client queueing-delay p95" in text
        assert "broker stats by seats/handle" in text
        assert "decision cache" in text

    def test_fairness_leg_can_be_skipped(self):
        report = run_pool_sweep(seats=(1,), sessions=2, calls_per_session=1,
                                fairness=False)
        assert report.fairness is None


class TestSurfacedStats:
    def test_throughput_render_shows_cache_and_broker_stats(self):
        report = run_throughput(clients=4, modules=2, calls_per_client=6,
                                include_open_loop=False)
        text = report.render()
        assert "cache_stats (cached run):" in text
        assert "evictions=0" in text
        assert "broker_stats (cached run):" in text
        assert "handles_forked=8" in text         # 4 clients x 2 modules

    def test_traffic_telemetry_snapshot_is_attached_and_free(self):
        spec = TrafficSpec(clients=2, modules=1, calls_per_client=8,
                           arrival="open", seed=3)
        plain = run_traffic(spec)
        observed = run_traffic(TrafficSpec(clients=2, modules=1,
                                           calls_per_client=8,
                                           arrival="open", seed=3,
                                           telemetry=True))
        assert observed.total_cycles == plain.total_cycles
        histograms = observed.metrics["histograms"]
        assert any(name.startswith("dispatch_latency_us")
                   for name in histograms)
        assert plain.metrics == {}


class TestStatsCommand:
    def test_stats_live(self, capsys):
        assert cli_main(["stats", "--live", "--clients", "2",
                         "--sample-calls", "4"]) == 0
        out = capsys.readouterr().out
        assert "live metrics" in out
        assert "dispatch_latency_us" in out
        assert "ops (top 12 by cycles):" in out

    def test_stats_reads_bench_files(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        run_experiment("fig7", export_dir=str(tmp_path))
        assert cli_main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "BENCH_fig7.json" in out and "[fig7]" in out

    def test_stats_falls_back_to_live_when_no_files(self, tmp_path,
                                                    monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert cli_main(["stats", "--clients", "2",
                         "--sample-calls", "4"]) == 0
        assert "live metrics" in capsys.readouterr().out
