"""The ``repro bench diff`` regression gate."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.diff import (
    BenchDiffError,
    compare_payloads,
    diff_files,
    load_payload,
)
from repro.bench.harness import experiment_payload, export_payload


def make_payload(**data_overrides):
    data = {
        "total_cycles": 1_000_000,
        "points": [
            {"batch_size": 1, "cycles": 400_000, "us_per_call": 6.4},
            {"batch_size": 8, "cycles": 100_000, "us_per_call": 0.8},
        ],
        "op_counts": {"context_switch": 400, "trap_entry": 200},
        "calls_per_second": 156_000.0,
        "wall_seconds": 3.21,           # machine-dependent: never compared
    }
    data.update(data_overrides)
    return {"experiment": "abl-test", "title": "t", "kind": "ablation",
            "params": {"calls": 192, "fast": False}, "data": data,
            "rendered": "", "wall_seconds": 1.0,
            "calls_per_wall_second": 123.0}


class TestCompare:
    def test_identical_payloads_pass(self):
        diff = compare_payloads(make_payload(), make_payload())
        assert diff.ok and not diff.items
        assert diff.compared > 0

    def test_cycle_increase_fails(self):
        new = make_payload(total_cycles=1_000_001)
        diff = compare_payloads(make_payload(), new)
        assert not diff.ok
        assert [i.path for i in diff.regressions] == ["data.total_cycles"]

    def test_nested_cycle_increase_fails(self):
        new = make_payload()
        new["data"]["points"][1]["cycles"] += 5
        diff = compare_payloads(make_payload(), new)
        assert not diff.ok

    def test_microsecond_increase_fails(self):
        new = make_payload()
        new["data"]["points"][0]["us_per_call"] = 6.5
        diff = compare_payloads(make_payload(), new)
        assert not diff.ok

    def test_cycle_decrease_is_an_improvement_not_a_failure(self):
        new = make_payload(total_cycles=900_000)
        diff = compare_payloads(make_payload(), new)
        assert diff.ok
        assert len(diff.items) == 1 and diff.items[0].guarded

    def test_unguarded_change_reported_but_passes(self):
        new = make_payload(calls_per_second=150_000.0)
        diff = compare_payloads(make_payload(), new)
        assert diff.ok and len(diff.items) == 1

    def test_wall_fields_ignored(self):
        new = make_payload(wall_seconds=99.0)
        new["wall_seconds"] = 42.0
        new["calls_per_wall_second"] = 7.0
        diff = compare_payloads(make_payload(), new)
        assert diff.ok and not diff.items

    def test_wall_rate_drop_warns_without_failing(self):
        """>10% calls_per_wall_second drop: non-fatal warning, printed."""
        new = make_payload()
        new["calls_per_wall_second"] = 100.0     # 123 -> 100 is ~18.7% down
        diff = compare_payloads(make_payload(), new)
        assert diff.ok and not diff.items
        assert len(diff.warnings) == 1
        assert "calls_per_wall_second" in diff.warnings[0]
        assert "WARNING" in diff.render()
        assert "PASS" in diff.render()

    def test_wall_rate_within_band_stays_silent(self):
        new = make_payload()
        new["calls_per_wall_second"] = 111.0     # 123 -> 111 is within 10%
        diff = compare_payloads(make_payload(), new)
        assert diff.ok and not diff.warnings
        # improvements never warn either
        faster = make_payload()
        faster["calls_per_wall_second"] = 500.0
        assert not compare_payloads(make_payload(), faster).warnings

    def test_wall_rate_band_tolerates_missing_fields(self):
        old = make_payload()
        new = make_payload()
        del old["calls_per_wall_second"]
        assert not compare_payloads(old, new).warnings
        del new["calls_per_wall_second"]
        assert not compare_payloads(make_payload(), new).warnings

    def test_rel_tol_loosens_the_gate(self):
        new = make_payload(total_cycles=1_000_001)
        assert compare_payloads(make_payload(), new, rel_tol=0.01).ok
        assert not compare_payloads(make_payload(), new, rel_tol=0.0).ok

    def test_different_experiments_rejected(self):
        other = make_payload()
        other["experiment"] = "abl-other"
        with pytest.raises(BenchDiffError):
            compare_payloads(make_payload(), other)

    def test_different_params_rejected(self):
        """A smoke run must never be diffed against a canonical baseline."""
        smoke = make_payload()
        smoke["params"] = {"calls": 16, "fast": True}
        with pytest.raises(BenchDiffError):
            compare_payloads(make_payload(), smoke)

    def test_harness_defaults_marker_compatible_with_resolved_defaults(self):
        """`repro <id>` exports record {"defaults": true}; they must remain
        diffable against a baseline that recorded resolved default params."""
        harness_run = make_payload()
        harness_run["params"] = {"defaults": True}
        diff = compare_payloads(make_payload(), harness_run)
        assert diff.ok
        # ... but not against a smoke run
        smoke = make_payload()
        smoke["params"] = {"calls": 16, "fast": True}
        with pytest.raises(BenchDiffError):
            compare_payloads(smoke, harness_run)

    def test_schema_drift_reported(self):
        new = make_payload()
        new["data"]["new_metric"] = 5
        del new["data"]["calls_per_second"]
        diff = compare_payloads(make_payload(), new)
        assert diff.ok
        assert diff.only_new == ["data.new_metric"]
        assert diff.only_old == ["data.calls_per_second"]


class TestCli:
    def test_cli_bench_simspeed_fast_exports(self, tmp_path, monkeypatch,
                                             capsys):
        from repro.cli import main as cli_main
        monkeypatch.chdir(tmp_path)
        assert cli_main(["bench", "simspeed", "--fast", "--calls",
                         "800"]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out
        payload = json.loads((tmp_path / "BENCH_abl-simspeed.json")
                             .read_text())
        assert payload["experiment"] == "abl-simspeed"
        assert payload["wall_seconds"] > 0
        assert payload["calls_per_wall_second"] > 0

    def test_cli_bench_diff_exit_codes(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        old = make_payload()
        ok = copy.deepcopy(old)
        bad = copy.deepcopy(old)
        bad["data"]["total_cycles"] += 1
        paths = {}
        for name, payload in (("old", old), ("ok", ok), ("bad", bad)):
            path = tmp_path / f"{name}.json"
            path.write_text(json.dumps(payload))
            paths[name] = str(path)
        assert cli_main(["bench", "diff", paths["old"], paths["ok"]]) == 0
        capsys.readouterr()
        assert cli_main(["bench", "diff", paths["old"], paths["bad"]]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert cli_main(["bench", "diff", paths["old"],
                         str(tmp_path / "missing.json")]) == 2

    def test_simspeed_registered_in_harness(self):
        from repro.bench.harness import EXPERIMENTS
        assert "abl-simspeed" in EXPERIMENTS
        assert EXPERIMENTS["abl-simspeed"].kind == "ablation"


class TestFiles:
    def test_roundtrip_through_files(self, tmp_path):
        old = make_payload()
        new = copy.deepcopy(old)
        new["data"]["total_cycles"] += 1
        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        old_path.write_text(json.dumps(old))
        new_path.write_text(json.dumps(new))
        diff = diff_files(str(old_path), str(new_path))
        assert not diff.ok
        assert "REGRESSION" in diff.render()

    def test_load_rejects_non_bench_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"no": "experiment"}))
        with pytest.raises(BenchDiffError):
            load_payload(str(path))

    def test_harness_export_is_diffable_against_itself(self, tmp_path):
        """A real export (with wall fields) must self-compare clean."""
        class Result:
            total_calls = 10
            def as_dict(self):
                return {"total_cycles": 5, "rate_us": 1.5}
        payload = experiment_payload("abl-x", "t", "ablation", Result(),
                                     "body", wall_seconds=0.25)
        path = export_payload(payload, str(tmp_path))
        diff = diff_files(path, path)
        assert diff.ok and not diff.items
        exported = json.loads(open(path).read())
        assert exported["wall_seconds"] == 0.25
        assert exported["calls_per_wall_second"] == pytest.approx(40.0)
