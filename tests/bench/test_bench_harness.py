"""Tests for the benchmark harness: figures 1-3, 7, 8, ablations, CLI, report."""

import pytest

from repro.bench.ablations import (
    run_argument_size_ablation,
    run_hardening_ablation,
    run_machine_sensitivity,
    run_marshalling_ablation,
    run_protection_ablation,
)
from repro.bench.figure7 import reproduce_figure7
from repro.bench.figure8 import PAPER_RESULTS, reproduce_figure8
from repro.bench.figures123 import (
    FIGURE1_EXPECTED_SEQUENCE,
    reproduce_figure1,
    reproduce_figure2,
    reproduce_figure3,
)
from repro.bench.harness import EXPERIMENTS, run_experiment
from repro.bench.report import format_ratio, format_us, render_table, section
from repro.cli import main as cli_main
from repro.secmodule.dispatch import HardeningMode, MarshallingMode
from repro.secmodule.protection import ProtectionMode
from repro.workloads.microbench import PAPER_SPECS
from repro.workloads.policies import run_policy_chain_sweep


class TestReportHelpers:
    def test_render_table_alignment(self):
        table = render_table(["a", "long header"], [[1, 2], ["xyz", 42]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "long header" in lines[2]
        assert len({len(line) for line in lines[2:4]}) >= 1

    def test_format_helpers(self):
        assert format_us(1.23456789) == "1.234568"
        assert format_ratio(9.87) == "9.87x"
        assert "Body" in section("Title", "Body")


class TestFigure7:
    def test_report_fields_and_rendering(self):
        report = reproduce_figure7()
        assert report.mhz == pytest.approx(599.0)
        assert report.hz == 100
        text = report.render()
        assert "OpenBSD 3.6" in text and "Pentium III" in text


class TestFigure8:
    @pytest.fixture(scope="class")
    def table(self):
        return reproduce_figure8(trials=3, sample_calls=16, seed=7)

    def test_has_all_four_rows_with_paper_call_counts(self, table):
        keys = [row.key for row in table.rows]
        assert keys == ["getpid", "smod_getpid", "smod_testincr", "rpc_testincr"]
        assert table.row("getpid").calls_per_trial == 1_000_000
        assert table.row("rpc_testincr").calls_per_trial == 100_000
        assert all(row.trials == 3 for row in table.rows)

    def test_ordering_matches_paper(self, table):
        assert table.ordering_matches_paper()

    def test_ratios_are_roughly_ten(self, table):
        assert 7 <= table.smod_vs_native_factor() <= 13
        assert 7 <= table.rpc_vs_smod_factor() <= 13

    def test_values_close_to_paper(self, table):
        for row in table.rows:
            assert row.relative_error() < 0.10, row.key

    def test_stdev_columns_nonzero_for_multi_trial(self, table):
        assert all(row.stdev_us >= 0 for row in table.rows)
        assert any(row.stdev_us > 0 for row in table.rows)

    def test_render_mentions_all_mechanisms(self, table):
        text = table.render()
        for name in ("getpid()", "SMOD(SMOD-getpid)", "SMOD(test-incr)",
                     "RPC(test-incr)"):
            assert name in text

    def test_paper_reference_table_complete(self):
        assert set(PAPER_RESULTS) == set(PAPER_SPECS)


class TestFigures123:
    def test_figure1_sequence_order(self):
        report = reproduce_figure1()
        assert report.follows_expected_order()
        assert set(FIGURE1_EXPECTED_SEQUENCE) <= set(report.labels)
        assert "smod_start_session" in report.render()

    def test_figure2_layouts(self):
        report = reproduce_figure2()
        assert report.shared_entry_names          # data/heap/stack shared
        assert "stack" in report.shared_entry_names
        assert report.handle_layout.has_secret_region
        assert not report.client_layout.has_secret_region
        assert any("smod:" in name for name in report.handle_text_entries)
        assert report.render().count("0x") > 4

    def test_figure3_checkpoints(self):
        report = reproduce_figure3(argument=41)
        assert report.result == 42
        assert report.slot_kinds("step1") == ["arg", "ret", "fp"]
        assert report.slot_kinds("step2") == ["arg", "ret", "fp", "m_id",
                                              "func_id", "ret", "fp"]
        assert report.slot_kinds("step3") == ["arg"]
        assert report.slot_kinds("step4") == ["arg", "ret", "fp"]
        assert "Stack Manipulations" in report.render()


class TestAblations:
    def test_policy_sweep_is_monotone_and_roughly_linear(self):
        sweep = run_policy_chain_sweep(lengths=(0, 4, 16), trials=1,
                                       sample_calls=8)
        values = [p.mean_us_per_call for p in sweep.points]
        assert values[0] < values[1] < values[2]
        slope = sweep.per_clause_cost_us()
        expected = 140 / 599.0          # SMOD_POLICY_STEP cycles at 599 MHz
        assert slope == pytest.approx(expected, rel=0.15)
        overhead = sweep.overhead_vs_baseline()
        assert overhead[0] == pytest.approx(0.0)

    def test_hardening_ablation_ordering(self):
        result = run_hardening_ablation(trials=1, sample_calls=8)
        none = result.point(HardeningMode.NONE).mean_us
        suspend = result.point(HardeningMode.SUSPEND_CLIENT).mean_us
        unmap = result.point(HardeningMode.UNMAP_CLIENT).mean_us
        assert none < suspend < unmap
        assert "hardening" in result.render()

    def test_marshalling_ablation_copy_costs_grow_with_args(self):
        result = run_marshalling_ablation(arg_word_counts=(1, 32), calls=6)
        shared_1 = result.mean_us(MarshallingMode.SHARED_VM, 1)
        shared_32 = result.mean_us(MarshallingMode.SHARED_VM, 32)
        copy_1 = result.mean_us(MarshallingMode.EXPLICIT_COPY, 1)
        copy_32 = result.mean_us(MarshallingMode.EXPLICIT_COPY, 32)
        assert copy_1 > shared_1
        assert (copy_32 - shared_32) > (copy_1 - shared_1)

    def test_protection_ablation_setup_costs(self):
        result = run_protection_ablation(calls=6)
        unmap = result.point(ProtectionMode.UNMAP)
        encrypt = result.point(ProtectionMode.ENCRYPT)
        both = result.point(ProtectionMode.BOTH)
        # encryption pays key schedule + per-block work at registration
        assert encrypt.registration_us > unmap.registration_us
        assert both.registration_us >= encrypt.registration_us
        # but the steady-state per-call cost is unaffected by the mode
        assert encrypt.per_call_us == pytest.approx(unmap.per_call_us, rel=0.02)

    def test_argument_size_ablation_no_crossover(self):
        result = run_argument_size_ablation(arg_word_counts=(1, 32), calls=4)
        assert result.crossover_absent()
        # RPC cost grows faster with argument count than SecModule's
        rpc_growth = result.mean_us("rpc", 32) - result.mean_us("rpc", 1)
        smod_growth = result.mean_us("secmodule", 32) - result.mean_us("secmodule", 1)
        assert rpc_growth > smod_growth

    def test_machine_sensitivity_keeps_ordering(self):
        result = run_machine_sensitivity(trials=1, sample_calls=8)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.native_us < row.smod_us < row.rpc_us
        assert "machine" in result.render()


class TestBatchSweep:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.bench.batch import run_batch_sweep
        return run_batch_sweep(sizes=(1, 2, 4, 8), calls=48)

    def test_batch1_cycle_identical_to_single_call(self, report):
        assert report.batch1_matches_single_call()

    def test_cycles_per_call_monotonically_decreasing(self, report):
        assert report.monotonically_decreasing()

    def test_switch_pair_amortized(self, report):
        assert report.point(1).switches_per_call == pytest.approx(2.0)
        assert report.point(8).switches_per_call == pytest.approx(0.25)

    def test_batch1_lands_on_paper_dispatch_latency(self, report):
        assert report.us_per_call(report.point(1)) == \
            pytest.approx(6.407, abs=0.35)

    def test_render_reports_the_checks(self, report):
        text = report.render()
        assert "identical" in text and "monotonically decreasing: yes" in text


class TestPoolSweep:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.bench.pool import run_pool_sweep
        return run_pool_sweep(seats=(1, 2, 8), sessions=16,
                              calls_per_session=2)

    def test_handle_count_is_ceil_sessions_over_seats(self, report):
        assert report.handle_counts_match()
        assert report.point(1).handle_count == 16
        assert report.point(8).handle_count == 2

    def test_us_per_call_monotone(self, report):
        assert report.monotone_us_per_call()

    def test_seat1_lands_on_paper_dispatch_latency(self, report):
        assert report.us_per_call(report.point(1)) == \
            pytest.approx(6.407, abs=0.01)

    def test_pooled_establishment_cheaper(self, report):
        assert report.establish_us(report.point(8)) < \
            report.establish_us(report.point(1))

    def test_render_reports_the_checks(self, report):
        text = report.render()
        assert "ceil(sessions/seats) at every point: yes" in text
        assert "monotone (non-decreasing) in seats/handle: yes" in text


class TestHarnessAndCli:
    def test_experiment_table_covers_design_doc(self):
        for experiment_id in ("fig1", "fig2", "fig3", "fig7", "fig8",
                              "abl-policy", "abl-hardening", "abl-marshalling",
                              "abl-protection", "abl-argsize", "abl-machine",
                              "abl-throughput", "abl-batch", "abl-pool"):
            assert experiment_id in EXPERIMENTS

    def test_run_experiment_fig7(self):
        run = run_experiment("fig7")
        assert "OpenBSD" in run.rendered

    def test_cli_list_and_fig7(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out
        assert cli_main(["fig7"]) == 0
        assert "Pentium III" in capsys.readouterr().out

    def test_cli_fig8_fast(self, capsys):
        assert cli_main(["fig8", "--trials", "1", "--sample-calls", "8"]) == 0
        out = capsys.readouterr().out
        assert "RPC(test-incr)" in out

    def test_cli_bench_batch_fast(self, capsys):
        assert cli_main(["bench", "batch", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "batch size" in out and "monotonically decreasing: yes" in out

    def test_cli_bench_pool_fast(self, capsys):
        assert cli_main(["bench", "pool", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "sessions/handle" in out
        assert "ceil(sessions/seats) at every point: yes" in out

    def test_cli_output_file(self, tmp_path, capsys):
        target = tmp_path / "fig7.txt"
        assert cli_main(["-o", str(target), "fig7"]) == 0
        assert "Pentium III" in target.read_text()

    def test_cli_describe(self, capsys):
        assert cli_main(["describe"]) == 0
        assert "SMOD test_incr(41) -> 42" in capsys.readouterr().out
