"""CostMeter trace recording / CallTrace replay and the charge_words fix."""

from __future__ import annotations

import pytest

from repro.hw.machine import make_paper_machine
from repro.sim import costs
from repro.sim.clock import VirtualClock
from repro.sim.costs import CallTrace, CostMeter, PENTIUM_III_599
from repro.telemetry import Telemetry


def fresh_meter():
    clock = VirtualClock()
    return CostMeter(PENTIUM_III_599, clock), clock


class TestAdvanceMany:
    def test_advances_cycles_and_events(self):
        clock = VirtualClock()
        clock.advance_many(500, 7)
        assert clock.cycles == 500 and clock.events == 7

    def test_rejects_negative(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance_many(-1, 0)
        with pytest.raises(ValueError):
            clock.advance_many(0, -1)

    def test_respects_freeze(self):
        clock = VirtualClock()
        clock.freeze()
        clock.advance_many(500, 7)
        assert clock.cycles == 0 and clock.events == 0


class TestChargeWords:
    def test_positive_words_charge(self):
        meter, clock = fresh_meter()
        meter.charge_words(costs.COPY_WORD, 8)
        assert meter.count(costs.COPY_WORD) == 8

    def test_zero_words_free(self):
        meter, clock = fresh_meter()
        assert meter.charge_words(costs.COPY_WORD, 0) == 0
        assert clock.cycles == 0 and clock.events == 0

    def test_negative_words_raise(self):
        """Silently clamping a negative size hid caller bugs; both charge
        entry points now reject negatives identically."""
        meter, _ = fresh_meter()
        with pytest.raises(ValueError):
            meter.charge_words(costs.COPY_WORD, -1)
        with pytest.raises(ValueError):
            meter.charge(costs.COPY_WORD, -1)


class TestTraceRecording:
    def test_recorder_captures_sequence(self):
        meter, _ = fresh_meter()
        recorder = meter.record_trace()
        assert recorder.start()
        meter.charge(costs.TRAP_ENTRY)
        meter.charge(costs.COPY_WORD, 4)
        meter.charge(costs.TRAP_ENTRY)
        raw = recorder.stop()
        assert raw == ((costs.TRAP_ENTRY, 1), (costs.COPY_WORD, 4),
                       (costs.TRAP_ENTRY, 1))

    def test_recording_does_not_nest(self):
        meter, _ = fresh_meter()
        outer = meter.record_trace()
        inner = meter.record_trace()
        assert outer.start()
        assert not inner.start()
        meter.charge(costs.TRAP_ENTRY)
        assert inner.stop() == ()        # inner never armed
        assert outer.stop() == ((costs.TRAP_ENTRY, 1),)

    def test_zero_count_charges_not_recorded(self):
        meter, _ = fresh_meter()
        recorder = meter.record_trace()
        recorder.start()
        meter.charge_words(costs.COPY_WORD, 0)
        assert recorder.stop() == ()

    def test_abort_discards(self):
        meter, _ = fresh_meter()
        recorder = meter.record_trace()
        recorder.start()
        meter.charge(costs.TRAP_ENTRY)
        recorder.abort()
        assert meter._trace_log is None
        # the meter is usable for a fresh recording afterwards
        again = meter.record_trace()
        assert again.start()
        again.stop()


class TestChargeTrace:
    def run_both(self, raw):
        """Execute a sequence op by op and as a replay; return both meters."""
        slow, slow_clock = fresh_meter()
        for operation, count in raw:
            slow.charge(operation, count)
        fast, fast_clock = fresh_meter()
        fast.charge_trace(CallTrace(raw, PENTIUM_III_599))
        return (slow, slow_clock), (fast, fast_clock)

    def test_replay_matches_op_by_op(self):
        raw = ((costs.TRAP_ENTRY, 1), (costs.COPY_WORD, 4),
               (costs.CONTEXT_SWITCH, 2), (costs.COPY_WORD, 3))
        (slow, slow_clock), (fast, fast_clock) = self.run_both(raw)
        assert slow_clock.cycles == fast_clock.cycles
        assert slow_clock.events == fast_clock.events
        assert dict(slow.op_counts) == dict(fast.op_counts)

    def test_replay_mirrors_telemetry(self):
        raw = ((costs.TRAP_ENTRY, 1), (costs.COPY_WORD, 4),
               (costs.TRAP_ENTRY, 1))
        slow, _ = fresh_meter()
        slow.telemetry = Telemetry()
        for operation, count in raw:
            slow.charge(operation, count)
        fast, _ = fresh_meter()
        fast.telemetry = Telemetry()
        fast.charge_trace(CallTrace(raw, PENTIUM_III_599))
        assert slow.telemetry.op_counts == fast.telemetry.op_counts
        assert slow.telemetry.op_cycles == fast.telemetry.op_cycles

    def test_replay_respects_frozen_clock(self):
        meter, clock = fresh_meter()
        trace = CallTrace(((costs.TRAP_ENTRY, 1),), PENTIUM_III_599)
        clock.freeze()
        meter.charge_trace(trace)
        assert clock.cycles == 0
        # op histogram still accumulates, exactly like charge() on a frozen
        # clock
        assert meter.count(costs.TRAP_ENTRY) == 1

    def test_calltrace_precomputes_totals(self):
        raw = ((costs.TRAP_ENTRY, 2), (costs.TRAP_ENTRY, 1),
               (costs.COPY_WORD, 5))
        trace = CallTrace(raw, PENTIUM_III_599)
        assert trace.events == 3
        assert dict(trace.ops) == {costs.TRAP_ENTRY: 3, costs.COPY_WORD: 5}
        expected = (3 * PENTIUM_III_599.cost(costs.TRAP_ENTRY)
                    + 5 * PENTIUM_III_599.cost(costs.COPY_WORD))
        assert trace.total_cycles == expected


class TestMachineIntegration:
    def test_machine_meter_records_and_replays(self):
        machine = make_paper_machine()
        recorder = machine.meter.record_trace()
        recorder.start()
        machine.charge(costs.TRAP_ENTRY)
        machine.charge_words(costs.COPY_WORD, 2)
        raw = recorder.stop()
        cycles_once = machine.clock.cycles
        machine.meter.charge_trace(machine.meter.build_trace(raw))
        assert machine.clock.cycles == 2 * cycles_once
        assert machine.meter.count(costs.TRAP_ENTRY) == 2
