"""Tests for the statistics helpers."""

import math

import pytest

from repro.sim.stats import (
    MeasurementSummary,
    RunningStats,
    TrialResult,
    coefficient_of_variation,
    mean,
    stdev,
)


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.n == 0
        assert stats.mean == 0.0
        assert stats.stdev == 0.0

    def test_single_sample(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0

    def test_known_values(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.stdev == pytest.approx(2.138, rel=1e-3)
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0

    def test_merge_equivalent_to_combined(self):
        left, right, combined = RunningStats(), RunningStats(), RunningStats()
        a = [1.0, 2.0, 3.0]
        b = [10.0, 20.0, 30.0, 40.0]
        left.extend(a)
        right.extend(b)
        combined.extend(a + b)
        merged = left.merge(right)
        assert merged.n == combined.n
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.stdev == pytest.approx(combined.stdev)

    def test_merge_with_empty(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0])
        merged = stats.merge(RunningStats())
        assert merged.mean == pytest.approx(1.5)
        merged2 = RunningStats().merge(stats)
        assert merged2.n == 2


class TestTrialResult:
    def test_per_call_conversion(self):
        trial = TrialResult(name="x", calls=1000, total_cycles=599_000, mhz=599.0)
        assert trial.total_microseconds == pytest.approx(1000.0)
        assert trial.microseconds_per_call == pytest.approx(1.0)
        assert trial.cycles_per_call == pytest.approx(599.0)

    def test_jitter_scales_time_not_cycles(self):
        trial = TrialResult(name="x", calls=100, total_cycles=59_900, mhz=599.0,
                            jitter_factor=1.1)
        assert trial.microseconds_per_call == pytest.approx(1.1)
        assert trial.cycles_per_call == pytest.approx(599.0)

    def test_zero_calls(self):
        trial = TrialResult(name="x", calls=0, total_cycles=0, mhz=599.0)
        assert trial.microseconds_per_call == 0.0


class TestMeasurementSummary:
    def _summary(self, per_call_us):
        summary = MeasurementSummary(name="bench", calls_per_trial=1000)
        for us in per_call_us:
            summary.add(TrialResult(name="bench", calls=1000,
                                    total_cycles=int(us * 599.0 * 1000),
                                    mhz=599.0))
        return summary

    def test_mean_and_stdev(self):
        summary = self._summary([1.0, 1.1, 0.9])
        assert summary.num_trials == 3
        assert summary.mean_us_per_call == pytest.approx(1.0, rel=1e-3)
        assert summary.stdev_us_per_call == pytest.approx(0.1, rel=1e-2)

    def test_mismatched_trial_rejected(self):
        summary = MeasurementSummary(name="bench", calls_per_trial=10)
        with pytest.raises(ValueError):
            summary.add(TrialResult(name="bench", calls=20, total_cycles=1,
                                    mhz=599.0))

    def test_ratio_to(self):
        fast = self._summary([1.0, 1.0])
        slow = self._summary([10.0, 10.0])
        assert slow.ratio_to(fast) == pytest.approx(10.0)

    def test_ratio_to_zero_is_inf(self):
        zero = MeasurementSummary(name="z", calls_per_trial=10)
        other = self._summary([1.0])
        assert other.ratio_to(zero) == math.inf


class TestModuleLevelHelpers:
    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_stdev_small(self):
        assert stdev([5.0]) == 0.0
        assert stdev([]) == 0.0

    def test_stdev_known(self):
        assert stdev([1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_cv(self):
        assert coefficient_of_variation([10.0, 10.0]) == 0.0
        assert coefficient_of_variation([]) == 0.0
        assert coefficient_of_variation([9.0, 11.0]) == pytest.approx(math.sqrt(2) / 10, rel=1e-6)
