"""Tests for the virtual cycle clock."""

import pytest

from repro.sim.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        clock = VirtualClock()
        assert clock.cycles == 0
        assert clock.events == 0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(100)
        clock.advance(250)
        assert clock.cycles == 350
        assert clock.events == 2

    def test_advance_zero_counts_as_event(self):
        clock = VirtualClock()
        clock.advance(0)
        assert clock.cycles == 0
        assert clock.events == 1

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_checkpoint_and_since(self):
        clock = VirtualClock()
        clock.advance(100)
        mark = clock.checkpoint()
        clock.advance(42)
        clock.advance(8)
        interval = clock.since(mark)
        assert interval.cycles == 50
        assert interval.events == 2

    def test_interval_microseconds_conversion(self):
        clock = VirtualClock()
        mark = clock.checkpoint()
        clock.advance(599)
        assert clock.since(mark).microseconds(599.0) == pytest.approx(1.0)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(1000)
        clock.reset()
        assert clock.cycles == 0
        assert clock.events == 0

    def test_freeze_suppresses_charges(self):
        clock = VirtualClock()
        clock.advance(10)
        clock.freeze()
        assert clock.frozen
        clock.advance(1000)
        assert clock.cycles == 10
        clock.unfreeze()
        clock.advance(5)
        assert clock.cycles == 15

    def test_microseconds_total(self):
        clock = VirtualClock()
        clock.advance(1198)
        assert clock.microseconds(599.0) == pytest.approx(2.0)
