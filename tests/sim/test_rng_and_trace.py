"""Tests for the deterministic RNG and the trace buffer."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRNG
from repro.sim.trace import TraceBuffer


class TestDeterministicRNG:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG(123)
        b = DeterministicRNG(123)
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_different_seed_different_stream(self):
        a = DeterministicRNG(1)
        b = DeterministicRNG(2)
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_child_streams_are_stable_and_independent(self):
        parent = DeterministicRNG(99)
        child1 = parent.child("alpha")
        child2 = parent.child("beta")
        again = DeterministicRNG(99).child("alpha")
        assert child1.uniform() == again.uniform()
        assert child1.seed != child2.seed

    def test_integer_bounds(self):
        rng = DeterministicRNG(7)
        values = [rng.integer(3, 5) for _ in range(200)]
        assert set(values) <= {3, 4, 5}
        assert {3, 5} <= set(values)

    def test_choice(self):
        rng = DeterministicRNG(7)
        assert rng.choice([42]) == 42
        with pytest.raises(ValueError):
            rng.choice([])

    def test_lognormal_factor_positive_and_near_one(self):
        rng = DeterministicRNG(7)
        values = [rng.lognormal_factor(0.01) for _ in range(100)]
        assert all(v > 0 for v in values)
        assert abs(sum(values) / len(values) - 1.0) < 0.05

    def test_bytes_length(self):
        rng = DeterministicRNG(7)
        assert len(rng.bytes(16)) == 16

    def test_permutation(self):
        rng = DeterministicRNG(7)
        perm = rng.permutation(10)
        assert sorted(perm.tolist()) == list(range(10))


class TestHeavyTailedThinkSamplers:
    def test_lognormal_deterministic_per_seed(self):
        a = DeterministicRNG(321)
        b = DeterministicRNG(321)
        assert [a.lognormal(25.0, 1.0) for _ in range(10)] == \
            [b.lognormal(25.0, 1.0) for _ in range(10)]
        assert DeterministicRNG(321).lognormal(25.0, 1.0) != \
            DeterministicRNG(322).lognormal(25.0, 1.0)

    def test_lognormal_mean_pinned(self):
        """The arithmetic mean stays at ``mean`` whatever sigma is, so the
        heavy-tail knob never changes the offered load."""
        rng = DeterministicRNG(5)
        for sigma in (0.25, 1.0):
            draws = [rng.lognormal(25.0, sigma) for _ in range(20000)]
            assert all(d > 0 for d in draws)
            assert abs(sum(draws) / len(draws) - 25.0) / 25.0 < 0.1

    def test_lognormal_validation(self):
        rng = DeterministicRNG(5)
        with pytest.raises(ValueError):
            rng.lognormal(0.0, 1.0)
        with pytest.raises(ValueError):
            rng.lognormal(1.0, -0.1)

    def test_pareto_deterministic_per_seed(self):
        a = DeterministicRNG(654)
        b = DeterministicRNG(654)
        assert [a.pareto(25.0, 2.5) for _ in range(10)] == \
            [b.pareto(25.0, 2.5) for _ in range(10)]

    def test_pareto_mean_and_scale_floor(self):
        rng = DeterministicRNG(6)
        draws = [rng.pareto(25.0, 2.5) for _ in range(20000)]
        x_m = 25.0 * 1.5 / 2.5
        assert all(d >= x_m for d in draws)        # the Pareto scale floor
        assert abs(sum(draws) / len(draws) - 25.0) / 25.0 < 0.1

    def test_pareto_heavier_tail_than_exponential(self):
        rng = DeterministicRNG(8)
        pareto = sorted(rng.pareto(25.0, 1.5) for _ in range(5000))
        exp = sorted(rng.exponential(25.0) for _ in range(5000))
        assert pareto[-1] > exp[-1]                # extreme draws reach further

    def test_pareto_validation(self):
        rng = DeterministicRNG(5)
        with pytest.raises(ValueError):
            rng.pareto(25.0, 1.0)                  # infinite-mean tail index
        with pytest.raises(ValueError):
            rng.pareto(-1.0, 2.0)


class TestTraceBuffer:
    def _buffer(self, enabled=True):
        clock = VirtualClock()
        return TraceBuffer(clock, enabled=enabled), clock

    def test_disabled_buffer_records_nothing(self):
        buffer, _ = self._buffer(enabled=False)
        assert buffer.emit("cat", "label") is None
        assert len(buffer) == 0

    def test_emit_records_clock_and_detail(self):
        buffer, clock = self._buffer()
        clock.advance(123)
        event = buffer.emit("smod.session", "smod_find", pid=7, detail_module="libc")
        assert event.cycles == 123
        assert event.pid == 7
        assert event.detail["detail_module"] == "libc"

    def test_filter_by_category_label_pid(self):
        buffer, _ = self._buffer()
        buffer.emit("a", "x", pid=1)
        buffer.emit("a", "y", pid=2)
        buffer.emit("b", "x", pid=1)
        assert len(buffer.filter(category="a")) == 2
        assert len(buffer.filter(label="x")) == 2
        assert len(buffer.filter(category="a", pid=1)) == 1
        assert len(buffer.filter(predicate=lambda e: e.pid == 2)) == 1

    def test_assert_order(self):
        buffer, _ = self._buffer()
        for label in ("one", "noise", "two", "three"):
            buffer.emit("seq", label)
        assert buffer.assert_order(["one", "two", "three"])
        assert not buffer.assert_order(["two", "one"])
        assert not buffer.assert_order(["one", "missing"])

    def test_capacity_limits_and_counts_drops(self):
        clock = VirtualClock()
        buffer = TraceBuffer(clock, enabled=True, capacity=2)
        buffer.emit("c", "1")
        buffer.emit("c", "2")
        buffer.emit("c", "3")
        assert len(buffer) == 2
        assert buffer.dropped == 1

    def test_first_and_labels_and_render(self):
        buffer, _ = self._buffer()
        buffer.emit("c", "alpha", pid=3)
        buffer.emit("c", "beta")
        assert buffer.first("alpha").pid == 3
        assert buffer.first("missing") is None
        assert buffer.labels() == ["alpha", "beta"]
        rendered = buffer.render()
        assert "alpha" in rendered and "beta" in rendered

    def test_clear(self):
        buffer, _ = self._buffer()
        buffer.emit("c", "alpha")
        buffer.clear()
        assert len(buffer) == 0


class TestTwoStateMMPP:
    def _source(self, seed=42, **overrides):
        from repro.sim.rng import TwoStateMMPP
        params = dict(on_interval=2.0, off_interval=50.0,
                      on_duration=100.0, off_duration=400.0)
        params.update(overrides)
        return TwoStateMMPP(DeterministicRNG(seed), **params)

    def test_deterministic_replay(self):
        a, b = self._source(7), self._source(7)
        assert [a.next_interarrival() for _ in range(50)] == \
            [b.next_interarrival() for _ in range(50)]

    def test_draws_are_positive(self):
        source = self._source()
        assert all(source.next_interarrival() > 0 for _ in range(200))

    def test_burstier_than_poisson(self):
        """With a fast ON state and a slow OFF state the interarrival
        distribution must be overdispersed relative to an exponential with
        the same mean (squared coefficient of variation > 1)."""
        source = self._source(on_interval=1.0, off_interval=200.0,
                              on_duration=50.0, off_duration=500.0)
        draws = [source.next_interarrival() for _ in range(4000)]
        mean = sum(draws) / len(draws)
        var = sum((d - mean) ** 2 for d in draws) / len(draws)
        assert var / (mean * mean) > 1.5

    def test_state_modulation_actually_flips(self):
        from repro.sim.rng import TwoStateMMPP
        source = self._source(on_duration=5.0, off_duration=5.0)
        seen = {source.state}
        for _ in range(500):
            source.next_interarrival()
            seen.add(source.state)
        assert seen == {TwoStateMMPP.ON, TwoStateMMPP.OFF}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            self._source(on_interval=0.0)
        with pytest.raises(ValueError):
            self._source(off_duration=-1.0)
        from repro.sim.rng import TwoStateMMPP
        with pytest.raises(ValueError):
            TwoStateMMPP(DeterministicRNG(1), on_interval=1, off_interval=1,
                         on_duration=1, off_duration=1, start_state="limbo")
