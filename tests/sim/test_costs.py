"""Tests for the cost model and calibration profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import costs
from repro.sim.clock import VirtualClock
from repro.sim.costs import (
    ALL_OPERATIONS,
    CostMeter,
    CostProfile,
    MODERN_X86_3GHZ,
    PENTIUM_III_599,
    get_profile,
    total_cycles,
)


class TestCostProfile:
    def test_paper_profile_defines_every_operation(self):
        for op in ALL_OPERATIONS:
            assert PENTIUM_III_599.cost(op) >= 0

    def test_paper_profile_frequency_matches_figure7(self):
        assert PENTIUM_III_599.mhz == pytest.approx(599.0)

    def test_native_getpid_calibration_anchor(self):
        """trap + demux + getpid body + return ~= the paper's 0.658 us."""
        cycles = total_cycles(PENTIUM_III_599, [
            costs.TRAP_ENTRY, costs.SYSCALL_DEMUX, costs.FUNC_BODY_GETPID,
            costs.TRAP_EXIT])
        us = PENTIUM_III_599.microseconds(cycles)
        assert abs(us - 0.658) < 0.05

    def test_missing_operation_rejected(self):
        with pytest.raises(ConfigurationError):
            CostProfile(name="broken", mhz=100.0, cycles={"trap_entry": 1})

    def test_unknown_operation_rejected(self):
        table = dict(PENTIUM_III_599.cycles)
        table["made_up_op"] = 5
        with pytest.raises(ConfigurationError):
            CostProfile(name="broken", mhz=100.0, cycles=table)

    def test_negative_cost_rejected(self):
        table = dict(PENTIUM_III_599.cycles)
        table[costs.TRAP_ENTRY] = -1
        with pytest.raises(ConfigurationError):
            CostProfile(name="broken", mhz=100.0, cycles=table)

    def test_scaled_profile(self):
        doubled = PENTIUM_III_599.scaled(2.0)
        assert doubled.cost(costs.TRAP_ENTRY) == 2 * PENTIUM_III_599.cost(costs.TRAP_ENTRY)
        assert doubled.name.startswith(PENTIUM_III_599.name)

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ConfigurationError):
            PENTIUM_III_599.scaled(0)

    def test_with_overrides(self):
        custom = PENTIUM_III_599.with_overrides({costs.TRAP_ENTRY: 999})
        assert custom.cost(costs.TRAP_ENTRY) == 999
        assert custom.cost(costs.TRAP_EXIT) == PENTIUM_III_599.cost(costs.TRAP_EXIT)

    def test_with_overrides_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            PENTIUM_III_599.with_overrides({"bogus": 1})

    def test_get_profile_by_name(self):
        assert get_profile("pentium3-599") is PENTIUM_III_599
        assert get_profile(MODERN_X86_3GHZ.name) is MODERN_X86_3GHZ

    def test_get_profile_unknown(self):
        with pytest.raises(ConfigurationError):
            get_profile("does-not-exist")

    def test_modern_profile_is_faster_in_wall_clock(self):
        """Same op table semantics, higher clock -> fewer microseconds."""
        cycles = 3000
        assert MODERN_X86_3GHZ.microseconds(cycles) < PENTIUM_III_599.microseconds(cycles)


class TestCostMeter:
    def test_charge_advances_clock(self):
        clock = VirtualClock()
        meter = CostMeter(PENTIUM_III_599, clock)
        meter.charge(costs.TRAP_ENTRY)
        assert clock.cycles == PENTIUM_III_599.cost(costs.TRAP_ENTRY)

    def test_charge_count(self):
        clock = VirtualClock()
        meter = CostMeter(PENTIUM_III_599, clock)
        meter.charge(costs.COPY_WORD, 10)
        assert clock.cycles == 10 * PENTIUM_III_599.cost(costs.COPY_WORD)
        assert meter.count(costs.COPY_WORD) == 10

    def test_charge_zero_is_noop(self):
        clock = VirtualClock()
        meter = CostMeter(PENTIUM_III_599, clock)
        assert meter.charge(costs.TRAP_ENTRY, 0) == 0
        assert clock.cycles == 0

    def test_charge_negative_rejected(self):
        meter = CostMeter(PENTIUM_III_599, VirtualClock())
        with pytest.raises(ValueError):
            meter.charge(costs.TRAP_ENTRY, -1)

    def test_snapshot_and_diff(self):
        meter = CostMeter(PENTIUM_III_599, VirtualClock())
        meter.charge(costs.TRAP_ENTRY)
        before = meter.snapshot()
        meter.charge(costs.TRAP_ENTRY)
        meter.charge(costs.MSGQ_SEND, 2)
        diff = meter.diff(before)
        assert diff == {costs.TRAP_ENTRY: 1, costs.MSGQ_SEND: 2}

    def test_reset_counts_keeps_clock(self):
        clock = VirtualClock()
        meter = CostMeter(PENTIUM_III_599, clock)
        meter.charge(costs.TRAP_ENTRY)
        meter.reset_counts()
        assert meter.count(costs.TRAP_ENTRY) == 0
        assert clock.cycles > 0

    def test_microseconds(self):
        clock = VirtualClock()
        meter = CostMeter(PENTIUM_III_599, clock)
        clock.advance(599)
        assert meter.microseconds() == pytest.approx(1.0)


class TestIdle:
    """``CostMeter.idle``: metered idle time that charges no operation.

    Added when the static-analysis sweep replaced the traffic engine's
    direct ``clock.advance`` with a meter-routed idle charge; these tests
    pin the equivalence (one event, exact cycles, no histogram entry).
    """

    def test_idle_advances_clock_one_event(self):
        clock = VirtualClock()
        meter = CostMeter(PENTIUM_III_599, clock)
        meter.idle(1234)
        assert clock.cycles == 1234
        assert clock.events == 1

    def test_idle_charges_no_operation(self):
        meter = CostMeter(PENTIUM_III_599, VirtualClock())
        before = meter.snapshot()
        meter.idle(500)
        assert meter.diff(before) == {}

    def test_idle_zero_is_still_one_event(self):
        """Matches ``clock.advance(0)``: the event counter ticks."""
        clock = VirtualClock()
        meter = CostMeter(PENTIUM_III_599, clock)
        meter.idle(0)
        assert clock.cycles == 0
        assert clock.events == 1

    def test_idle_negative_rejected(self):
        meter = CostMeter(PENTIUM_III_599, VirtualClock())
        with pytest.raises(ValueError):
            meter.idle(-1)

    def test_idle_respects_freeze(self):
        clock = VirtualClock()
        meter = CostMeter(PENTIUM_III_599, clock)
        clock.freeze()
        meter.idle(999)
        assert clock.cycles == 0
