"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. a fresh checkout on a machine without network access for pip).
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
