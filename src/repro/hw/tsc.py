"""Time-stamp counter.

The original measurements were taken with the Pentium III's RDTSC-style
cycle counter (the CPU feature list in Figure 7 includes ``TSC``).  The
simulated equivalent simply reads the virtual clock, but it lives behind the
same tiny interface a real harness would use (read, elapsed, convert), so the
benchmark drivers read like their C counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.clock import VirtualClock


@dataclass
class TimestampCounter:
    """Reads the virtual cycle clock like RDTSC reads the hardware TSC."""

    clock: VirtualClock
    mhz: float

    def read(self) -> int:
        """Current cycle count."""
        return self.clock.cycles

    def elapsed_cycles(self, start: int) -> int:
        """Cycles elapsed since a previous :meth:`read`."""
        return self.clock.cycles - start

    def elapsed_microseconds(self, start: int) -> float:
        return self.elapsed_cycles(start) / self.mhz

    def cycles_to_microseconds(self, cycles: int) -> float:
        return cycles / self.mhz

    def microseconds_to_cycles(self, us: float) -> int:
        return int(round(us * self.mhz))
