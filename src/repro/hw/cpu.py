"""CPU description and protection rings.

The paper's Background section points at the Intel 80286/80386 protection
rings as the "spiritual ancestor" of SecModule: a hierarchy of privilege
levels that most operating systems collapsed into just two (kernel and
user).  The simulated CPU models that hierarchy explicitly — the kernel runs
at ring 0, ordinary processes at ring 3 — so the trap layer can enforce that
privileged operations only happen after a ring transition, and so tests can
state the paper's observation ("only two of the four levels are used") as an
executable fact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from ..errors import SimulationError


class Ring(enum.IntEnum):
    """IA-32 privilege rings.  Lower numeric value = more privileged."""

    KERNEL = 0
    DRIVER = 1      # historically intended for device drivers
    SERVICE = 2     # historically intended for system services
    USER = 3

    def more_privileged_than(self, other: "Ring") -> bool:
        return self.value < other.value

    def may_access(self, required: "Ring") -> bool:
        """Can code at this ring perform an operation requiring ``required``?"""
        return self.value <= required.value


@dataclass(frozen=True)
class CPUFeatureFlags:
    """The feature string Figure 7 prints for the test machine."""

    flags: Tuple[str, ...] = (
        "FPU", "V86", "DE", "PSE", "TSC", "MSR", "PAE", "MCE", "CX8", "SEP",
        "MTRR", "PGE", "MCA", "CMOV", "PAT", "PSE36", "MMX", "FXSR", "SSE",
    )

    def has(self, flag: str) -> bool:
        return flag.upper() in self.flags

    def as_string(self) -> str:
        return ",".join(self.flags)


@dataclass
class CPU:
    """A simulated CPU: identity, frequency, cache and current ring.

    The ring field exists to make privilege transitions *explicit* in the
    kernel code: the syscall trap raises the ring to KERNEL, the return path
    lowers it back to USER, and anything that tries to perform a kernel-only
    operation from ring 3 is a simulation bug that surfaces immediately.
    """

    model: str = "Intel Pentium III (GenuineIntel 686-class)"
    mhz: float = 599.0
    l2_cache_kb: int = 512
    features: CPUFeatureFlags = field(default_factory=CPUFeatureFlags)
    ring: Ring = Ring.USER

    def enter_ring(self, target: Ring) -> Ring:
        """Transition to ``target`` ring, returning the previous ring.

        Entering a more privileged ring is only legal through the trap
        mechanism, which is modelled by the caller charging TRAP_ENTRY before
        calling this.  The CPU object itself only checks monotonic sanity:
        you cannot "enter" the ring you are already below without a fault.
        """
        previous = self.ring
        self.ring = target
        return previous

    def require_ring(self, required: Ring) -> None:
        """Raise if the CPU is not privileged enough for an operation."""
        if not self.ring.may_access(required):
            raise SimulationError(
                f"operation requires ring {required.name} but CPU is at "
                f"ring {self.ring.name}"
            )

    @property
    def cycles_per_microsecond(self) -> float:
        return self.mhz

    def identity_line(self) -> str:
        """The dmesg-style cpu0 line of Figure 7."""
        return (
            f'cpu0: {self.model}, {self.l2_cache_kb}KB L2 cache, '
            f'{self.mhz:.0f} MHz'
        )
