"""Machine descriptions.

Figure 7 of the paper is an abbreviated dmesg of the test system: OpenBSD
3.6 on a 599 MHz Pentium III with 512 KB of L2 cache, 512 MB of RAM, an IDE
disk and ``CLOCK_TICK_PER_SECOND`` (HZ) of 100.  This module captures that
machine as data, provides the dmesg-style report the Figure 7 benchmark
regenerates, and acts as the factory that wires a CPU, virtual clock, cost
profile and RNG together for the rest of the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..sim.clock import VirtualClock
from ..sim.costs import CostMeter, CostProfile, MODERN_X86_3GHZ, PENTIUM_III_599
from ..sim.rng import DeterministicRNG
from ..sim.trace import TraceBuffer
from ..telemetry import NULL_TELEMETRY, Telemetry
from .cpu import CPU, CPUFeatureFlags
from .tsc import TimestampCounter

#: Page size of the simulated i386 MMU, in bytes.
PAGE_SIZE = 4096


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a machine (the contents of Figure 7)."""

    name: str
    os_version: str
    cpu_model: str
    mhz: float
    l2_cache_kb: int
    real_mem_bytes: int
    hz: int                      # CLOCK_TICK_PER_SECOND
    disk_model: str
    disk_mb: int
    profile: CostProfile
    extra_dmesg: tuple = ()

    @property
    def real_mem_kb(self) -> int:
        return self.real_mem_bytes // 1024

    @property
    def num_physical_pages(self) -> int:
        return self.real_mem_bytes // PAGE_SIZE

    def dmesg(self) -> List[str]:
        """Render the abbreviated dmesg of Figure 7 for this machine."""
        lines = [
            f"{self.os_version}",
            f"cpu0: {self.cpu_model} {self.mhz:.0f} MHz",
            f"cpu0: {CPUFeatureFlags().as_string()}",
            f"real mem = {self.real_mem_bytes} ({self.real_mem_kb}K)",
            'pcib0 at pci0 dev 7 function 0 "Intel 82371AB PIIX4 ISA" rev 0x02',
            'pciide0 at pci0 dev 7 function 1 "Intel 82371AB IDE" rev 0x01: DMA',
            f"wd0 at pciide0 channel 0 drive 0: <{self.disk_model}>",
            f"wd0: 16-sector PIO, LBA, {self.disk_mb}MB",
            f"CLOCK_TICK_PER_SECOND is {self.hz}",
        ]
        lines.extend(self.extra_dmesg)
        return lines


#: The paper's test system (Figure 7).
OPENBSD36_PIII = MachineSpec(
    name="openbsd36-piii-599",
    os_version="OpenBSD 3.6 (sys) #69: Tue Jan 25 03:52:35 EST 2005",
    cpu_model='Intel Pentium III ("GenuineIntel" 686-class, 512KB L2 cache)',
    mhz=599.0,
    l2_cache_kb=512,
    real_mem_bytes=536_440_832,
    hz=100,
    disk_model="IBM-DPTA-372730",
    disk_mb=26_105,
    profile=PENTIUM_III_599,
)

#: A present-day point of comparison for the sensitivity benchmarks.
MODERN_WORKSTATION = MachineSpec(
    name="modern-x86-3000",
    os_version="SimOS 1.0 (sys) #1",
    cpu_model="Generic x86-64 (simulated)",
    mhz=3000.0,
    l2_cache_kb=8192,
    real_mem_bytes=8 * 1024 ** 3,
    hz=1000,
    disk_model="SIM-NVME",
    disk_mb=512_000,
    profile=MODERN_X86_3GHZ,
)

MACHINES = {
    OPENBSD36_PIII.name: OPENBSD36_PIII,
    MODERN_WORKSTATION.name: MODERN_WORKSTATION,
}


@dataclass
class Machine:
    """A live machine instance: spec + mutable simulation state.

    This is the object handed to :class:`~repro.kernel.kernel.Kernel`; it
    owns the clock, the cost meter, the trace buffer and the RNG streams so
    that a whole simulated system can be torn down and rebuilt per benchmark
    trial just by constructing a fresh ``Machine``.
    """

    spec: MachineSpec = field(default_factory=lambda: OPENBSD36_PIII)
    seed: int = 0x5EC_0DD5
    trace_enabled: bool = False

    def __post_init__(self) -> None:
        self.cpu = CPU(model=self.spec.cpu_model, mhz=self.spec.mhz,
                       l2_cache_kb=self.spec.l2_cache_kb)
        self.clock = VirtualClock()
        self.meter = CostMeter(self.spec.profile, self.clock)
        self.trace = TraceBuffer(self.clock, enabled=self.trace_enabled)
        self.rng = DeterministicRNG(self.seed)
        self.tsc = TimestampCounter(self.clock, self.spec.mhz)
        self.telemetry: Telemetry = NULL_TELEMETRY

    def attach_telemetry(self, telemetry: Telemetry) -> Telemetry:
        """Wire a telemetry plane into the machine's observation points.

        Recording never charges the clock, so attaching telemetry leaves
        every cycle total of a run unchanged (the paper figures stay
        byte-identical with it on or off).
        """
        self.telemetry = telemetry
        self.meter.telemetry = telemetry
        return telemetry

    # Convenience passthroughs used throughout the kernel --------------------
    def charge(self, operation: str, count: int = 1) -> int:
        """Charge ``count`` occurrences of ``operation`` to the clock."""
        # smod: allow(COST002)  forwarding wrapper; callers name the costs
        # constant and are checked at their own call sites
        return self.meter.charge(operation, count)

    def charge_words(self, operation: str, words: int) -> int:
        # smod: allow(COST002)  forwarding wrapper; callers name the costs
        # constant and are checked at their own call sites
        return self.meter.charge_words(operation, words)

    def idle(self, cycles: int) -> int:
        """Advance the clock for metered idle time (see CostMeter.idle)."""
        return self.meter.idle(cycles)

    def microseconds(self) -> float:
        return self.meter.microseconds()

    @property
    def page_size(self) -> int:
        return PAGE_SIZE

    def dmesg(self) -> List[str]:
        return self.spec.dmesg()


def make_paper_machine(*, seed: int = 0x5EC_0DD5,
                       trace_enabled: bool = False) -> Machine:
    """Construct the Figure 7 machine (the default for all benchmarks)."""
    return Machine(spec=OPENBSD36_PIII, seed=seed, trace_enabled=trace_enabled)


def make_modern_machine(*, seed: int = 0x5EC_0DD5,
                        trace_enabled: bool = False) -> Machine:
    """Construct the modern comparison machine used by sensitivity benches."""
    return Machine(spec=MODERN_WORKSTATION, seed=seed, trace_enabled=trace_enabled)
