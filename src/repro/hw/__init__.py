"""Hardware substrate: CPU, protection rings, TSC and machine descriptions."""

from .cpu import CPU, CPUFeatureFlags, Ring
from .machine import (
    MACHINES,
    Machine,
    MachineSpec,
    MODERN_WORKSTATION,
    OPENBSD36_PIII,
    PAGE_SIZE,
    make_modern_machine,
    make_paper_machine,
)
from .tsc import TimestampCounter

__all__ = [
    "CPU", "CPUFeatureFlags", "Ring",
    "MACHINES", "Machine", "MachineSpec", "MODERN_WORKSTATION",
    "OPENBSD36_PIII", "PAGE_SIZE", "make_modern_machine", "make_paper_machine",
    "TimestampCounter",
]
