"""Version information for the SecModule reproduction package."""

__version__ = "1.0.0"

#: The paper this package reproduces.
PAPER_TITLE = (
    "Base Line Performance Measurements of Access Controls for "
    "Libraries and Modules"
)
PAPER_AUTHORS = ("Jason W. Kim", "Vassilis Prevelakis")
PAPER_VENUE = "IPPS/IPDPS Workshops 2006"
