"""Span-tree analysis and Chrome-trace-event export.

Two consumers of the flight recorder (:mod:`repro.telemetry.tracing`):

* :func:`critical_path_report` — the per-request **critical-path /
  queue-wait breakdown**: each root span's duration is attributed to
  segments (queue vs resolve vs service vs rpc vs switch) by walking its
  tree and charging every span's *self time* (duration minus children) to
  the segment its kind maps to, so segments sum exactly to the request
  total.  Per-segment distributions come back as p50/p95 over streaming
  :class:`~repro.telemetry.metrics.LogHistogram` buckets.
* :func:`chrome_trace` / :func:`write_chrome_trace` — export spans as
  Chrome trace-event JSON (``ph``/``ts``/``dur``/``pid``/``tid``), the
  format Perfetto (https://ui.perfetto.dev) loads directly; ``ts`` is in
  microseconds, which is exactly the tracer's virtual-time unit.

Like the tracer itself this module is observation-only: it never imports
the cost model and never touches the virtual clock.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .metrics import LogHistogram
from .tracing import Span

#: Segment names, in render order.
SEGMENTS = ("queue", "resolve", "service", "rpc", "switch")

#: Span kinds whose self time counts as queueing delay.
_QUEUE_KINDS = ("broker.queue_wait", "pool.checkout", "pool.wait")


def segment_of(kind: str) -> str:
    """Map a span kind to its critical-path segment."""
    if kind in _QUEUE_KINDS or kind.endswith(".queue_wait"):
        return "queue"
    if kind.startswith("serve.resolve") or kind == "serve.health":
        return "resolve"
    if kind.startswith("dispatch."):
        return "service"
    if kind.startswith("rpc."):
        return "rpc"
    return "switch"


def _tree_index(spans: Sequence[Span]) -> Tuple[List[Span],
                                                Dict[int, List[Span]]]:
    """Roots and a children map.  A span whose parent was evicted from the
    ring (or never sampled) is treated as a root — the flight recorder is
    bounded, trees may arrive truncated."""
    by_id = {span.span_id: span for span in spans}
    children: Dict[int, List[Span]] = {}
    roots: List[Span] = []
    for span in spans:
        parent_id = span.parent_id
        if parent_id is not None and parent_id in by_id:
            children.setdefault(parent_id, []).append(span)
        else:
            roots.append(span)
    return roots, children


def request_breakdown(root: Span,
                      children: Dict[int, List[Span]]) -> Dict[str, float]:
    """One request's per-segment time.  Every span in the tree contributes
    its self time (duration minus direct children) to its kind's segment;
    a root *with children* charges its own self time to ``switch``
    (transport / context switching not covered by an inner span), while a
    childless root — a bare ``broker.queue_wait`` or ``dispatch.call``
    recorded outside any umbrella span — keeps its own segment.  Segments
    sum to the root duration up to float rounding."""
    totals = {segment: 0.0 for segment in SEGMENTS}
    stack = [(root, True)]
    while stack:
        span, is_root = stack.pop()
        kids = children.get(span.span_id, ())
        self_us = span.duration_us - sum(kid.duration_us for kid in kids)
        if self_us < 0.0:  # overlapping children (aggregates) — clamp
            self_us = 0.0
        segment = ("switch" if is_root and kids
                   else segment_of(span.kind))
        totals[segment] += self_us
        for kid in kids:
            stack.append((kid, False))
    return totals


def critical_path_report(spans: Sequence[Span]) -> Dict[str, object]:
    """Aggregate the per-request breakdown over every root span.

    Returns ``{"requests": N, "total_us": {...summary...},
    "segments": {segment: {...summary..., "share": fraction}}}`` where
    each summary is a :meth:`LogHistogram.summary` (count/mean/p50/p95).
    Aggregate fast-forward spans weigh in with their call count, so a
    traced fast-forward run reports per-call statistics, not per-window.
    """
    roots, children = _tree_index(spans)
    total_hist = LogHistogram()
    segment_hists = {segment: LogHistogram() for segment in SEGMENTS}
    grand_total = 0.0
    segment_totals = {segment: 0.0 for segment in SEGMENTS}
    for root in roots:
        n = root.count if root.count > 1 else 1
        per_call = root.duration_us / n
        total_hist.record(per_call, n=n)
        grand_total += root.duration_us
        breakdown = request_breakdown(root, children)
        for segment, segment_us in breakdown.items():
            if segment_us > 0.0:
                segment_hists[segment].record(segment_us / n, n=n)
            segment_totals[segment] += segment_us
    segments: Dict[str, object] = {}
    for segment in SEGMENTS:
        histogram = segment_hists[segment]
        if histogram.count == 0:
            continue
        summary = histogram.summary()
        summary["share"] = (segment_totals[segment] / grand_total
                            if grand_total > 0.0 else 0.0)
        segments[segment] = summary
    return {
        "requests": total_hist.count,
        "roots": len(roots),
        "total_us": total_hist.summary(),
        "segments": segments,
    }


def render_critical_path(report: Dict[str, object], *,
                         title: str = "critical-path breakdown") -> str:
    """Pretty-print :func:`critical_path_report` (the ``repro trace
    report`` body)."""
    lines: List[str] = [title, "=" * len(title)]
    requests = report.get("requests", 0)
    total = report.get("total_us") or {}
    lines.append(f"requests: {requests} (root spans: {report.get('roots')})")
    if requests:
        lines.append(
            f"request total   mean={total.get('mean', 0.0):9.3f}us "
            f"p50={total.get('p50', 0.0):9.3f}us "
            f"p95={total.get('p95', 0.0):9.3f}us")
    segments = report.get("segments") or {}
    for segment in SEGMENTS:
        summary = segments.get(segment)
        if not summary:
            continue
        lines.append(
            f"  {segment:<8s}      mean={summary.get('mean', 0.0):9.3f}us "
            f"p50={summary.get('p50', 0.0):9.3f}us "
            f"p95={summary.get('p95', 0.0):9.3f}us "
            f"share={summary.get('share', 0.0) * 100.0:5.1f}%")
    if not segments:
        lines.append("(no spans recorded — was tracing enabled?)")
    return "\n".join(lines)


# ---------------------------------------------------------------- Chrome JSON
def chrome_trace(spans: Iterable[Span], *, pid: int = 1,
                 process_name: str = "smod-sim") -> Dict[str, object]:
    """Spans as a Chrome trace-event JSON object (Perfetto-loadable).

    Each span becomes one complete event (``ph: "X"``) with ``ts``/``dur``
    in microseconds — virtual time maps one-to-one onto the trace
    timeline.  ``tid`` is the client id (system spans land on tid 0), and
    metadata events name the process and per-client tracks.
    """
    events: List[Dict[str, object]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": process_name},
    }]
    tids_seen: Dict[int, bool] = {}
    for span in spans:
        tid = span.client_id if span.client_id >= 0 else 0
        if tid not in tids_seen:
            tids_seen[tid] = True
            label = f"client {tid}" if span.client_id >= 0 else "system"
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": label}})
        args: Dict[str, object] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.session_id >= 0:
            args["session"] = span.session_id
        if span.count != 1:
            args["count"] = span.count
        if span.unclosed:
            args["unclosed"] = True
        events.append({
            "name": span.kind,
            "cat": span.tier or "span",
            "ph": "X",
            "ts": span.start_us,
            "dur": span.duration_us,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Iterable[Span], *,
                       pid: int = 1) -> int:
    """Write :func:`chrome_trace` JSON to ``path``; returns the event
    count (metadata included)."""
    payload = chrome_trace(spans, pid=pid)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    events = payload["traceEvents"]
    assert isinstance(events, list)
    return len(events)


def validate_chrome_trace(payload: Dict[str, object]) -> Optional[str]:
    """Check a payload against the Chrome trace-event schema subset we
    emit (the CI lint gate).  Returns ``None`` when valid, else a message
    naming the first offending event."""
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return "traceEvents missing or empty"
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            return f"event {index}: not an object"
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                return f"event {index}: missing required field {field!r}"
        ph = event["ph"]
        if ph == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)):
                    return (f"event {index}: complete event needs numeric "
                            f"{field!r}")
            if float(event["dur"]) < 0.0:
                return f"event {index}: negative dur"
        elif ph == "M":
            if "args" not in event:
                return f"event {index}: metadata event needs args"
        else:
            return f"event {index}: unsupported ph {ph!r}"
    return None
