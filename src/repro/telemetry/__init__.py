"""Telemetry: cheap always-on metrics for the simulated system.

The paper reports only end-of-run aggregates; every adaptive mechanism in
the roadmap (batch controllers, pool-aware scheduling, locality bonuses)
needs the system to observe itself *while it runs*.  This package provides
that observation plane:

* :class:`~repro.telemetry.metrics.Counter`,
  :class:`~repro.telemetry.metrics.Gauge` and the log-bucketed streaming
  :class:`~repro.telemetry.metrics.LogHistogram` (p50/p95/p99 without
  storing samples);
* :class:`~repro.telemetry.metrics.MetricsRegistry`, a labelled registry of
  the above;
* :class:`~repro.telemetry.metrics.Telemetry`, the facade the kernel layers
  record through, and :data:`~repro.telemetry.metrics.NULL_TELEMETRY`, the
  compiled-out default whose recording methods are no-ops.

Telemetry **never charges the virtual clock**: recording is observation
only, so a run with telemetry enabled produces cycle totals identical to
the same run with telemetry disabled, and the paper's figures stay
byte-identical either way.
"""

from .metrics import (
    NULL_TELEMETRY,
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    make_telemetry,
    merge_telemetry_states,
    render_snapshot,
)
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    make_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Telemetry",
    "Tracer",
    "make_telemetry",
    "make_tracer",
    "merge_telemetry_states",
    "render_snapshot",
]
