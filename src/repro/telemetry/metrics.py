"""Counters, gauges and log-bucketed streaming histograms.

The design constraints, in order:

1. **Non-perturbing.**  Metrics never touch the virtual clock or the cost
   meter; recording a sample is pure Python-side bookkeeping, so cycle
   totals are identical with telemetry on or off (the LSM-overhead
   literature's "measure without perturbing the measured path").
2. **Compiled out by default.**  The shared :data:`NULL_TELEMETRY`
   singleton answers every recording call with a no-op and allocates
   nothing, so the paper-default benchmarks pay one attribute load and a
   predictable branch per tap point.
3. **Streaming.**  :class:`LogHistogram` keeps geometric buckets, not
   samples: quantiles come with a bounded relative error
   (:attr:`LogHistogram.relative_error_bound`) at O(buckets) memory,
   however many million calls a run records.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

#: Label set rendered into a stable key: ``(("client", 3), ("handle", 9))``.
LabelItems = Tuple[Tuple[str, object], ...]


def _label_key(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted(labels.items()))


def _render_labels(labels: LabelItems) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}{_render_labels(self.labels)}={self.value})"


class Gauge:
    """A point-in-time value; remembers the maximum it ever held."""

    __slots__ = ("name", "labels", "value", "maximum")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.maximum = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.maximum:
            self.maximum = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}{_render_labels(self.labels)}={self.value})"


class LogHistogram:
    """A streaming histogram over geometric (log-spaced) buckets.

    A positive sample ``x`` lands in bucket ``floor(log_base(x))``; the
    bucket spans ``[base**i, base**(i+1))`` and its representative value is
    the geometric midpoint ``base**(i + 0.5)``.  Quantile estimates are the
    representative of the bucket holding the requested rank, clamped to the
    observed min/max, so both the estimate and the true rank statistic lie
    in the same bucket and the relative error is bounded by ``base - 1``
    (:attr:`relative_error_bound`).  Non-positive samples are counted in a
    dedicated zero bucket whose representative is 0.0.

    With the default base ``2**(1/4)`` the bound is ~19% and the typical
    error (geometric-midpoint vs uniform-in-bucket) is under half that;
    memory is one dict slot per occupied bucket — ~100 buckets span nine
    orders of magnitude.
    """

    DEFAULT_BASE = 2.0 ** 0.25

    __slots__ = ("base", "_log_base", "_buckets", "count", "total",
                 "zeros", "_min", "_max")

    def __init__(self, base: float = DEFAULT_BASE) -> None:
        if base <= 1.0:
            raise ValueError("log histogram base must exceed 1")
        self.base = base
        self._log_base = math.log(base)
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.zeros = 0
        self._min = math.inf
        self._max = -math.inf

    @property
    def relative_error_bound(self) -> float:
        """Worst-case relative error of :meth:`quantile` (same-bucket bound)."""
        return self.base - 1.0

    # ------------------------------------------------------------------ record
    def record(self, value: float, n: int = 1) -> None:
        """Fold ``n`` occurrences of ``value`` into the histogram."""
        if n <= 0:
            return
        self.count += n
        self.total += value * n
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= 0.0:
            self.zeros += n
            return
        index = int(math.floor(math.log(value) / self._log_base))
        self._buckets[index] = self._buckets.get(index, 0) + n

    # ----------------------------------------------------------------- queries
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.count else 0.0

    @property
    def bucket_count(self) -> int:
        """Occupied buckets (memory footprint, not sample count)."""
        return len(self._buckets) + (1 if self.zeros else 0)

    def quantile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (0-100) from the buckets.

        Rank semantics are the classic "smallest value with cumulative
        count >= ceil(p/100 * n)", matching a rank lookup in the sorted
        sample list; the estimate differs from that list's entry only by
        the bucketing error.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * self.count))
        seen = self.zeros
        if rank <= seen:
            return 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                representative = self.base ** (index + 0.5)
                if representative > self._max:
                    representative = self._max
                if self._min > 0.0 and representative < self._min:
                    representative = self._min
                return representative
        return self._max

    # ------------------------------------------------------------- shard state
    def export_state(self) -> Dict[str, object]:
        """Full (lossless) state for cross-process merging.

        Unlike :meth:`summary` this keeps the raw buckets, so a parent
        process can reconstruct the histogram with :meth:`from_state` and
        :meth:`merge` it exactly — the sharded traffic engine's metric
        planes combine this way at the sync barrier.
        """
        return {
            "base": self.base,
            "buckets": dict(self._buckets),
            "count": self.count,
            "total": self.total,
            "zeros": self.zeros,
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "LogHistogram":
        """Reconstruct a histogram exported by :meth:`export_state`."""
        out = cls(base=float(state["base"]))  # type: ignore[arg-type]
        out._buckets = dict(state["buckets"])  # type: ignore[arg-type]
        out.count = int(state["count"])  # type: ignore[arg-type]
        out.total = float(state["total"])  # type: ignore[arg-type]
        out.zeros = int(state["zeros"])  # type: ignore[arg-type]
        out._min = float(state["min"])  # type: ignore[arg-type]
        out._max = float(state["max"])  # type: ignore[arg-type]
        return out

    # ------------------------------------------------------------------- merge
    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into this histogram in place (same base required).

        Merging the per-session histograms of one module yields exactly the
        histogram that would have been recorded into a single per-module
        instance — bucket counts are additive.
        """
        if not math.isclose(self.base, other.base):
            raise ValueError(
                f"cannot merge histograms with bases {self.base} and "
                f"{other.base}")
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        self.zeros += other.zeros
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        return self

    @classmethod
    def merged(cls, histograms: Iterable["LogHistogram"]) -> "LogHistogram":
        """A fresh histogram equivalent to recording every input's samples."""
        out: Optional[LogHistogram] = None
        for histogram in histograms:
            if out is None:
                out = cls(base=histogram.base)
            out.merge(histogram)
        return out if out is not None else cls()

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.quantile(50),
            "p95": self.quantile(95),
            "p99": self.quantile(99),
        }

    def __repr__(self) -> str:
        return (f"LogHistogram(count={self.count}, mean={self.mean:.3f}, "
                f"p95={self.quantile(95):.3f})")


class MetricsRegistry:
    """A labelled registry of counters, gauges and histograms.

    Metrics are created on first touch and keyed by ``(name, labels)``;
    labels are plain keyword arguments (``registry.histogram(
    "dispatch_latency_us", session=3)``).
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], LogHistogram] = {}

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges) +
                len(self._histograms))

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, key[1])
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, key[1])
        return metric

    def histogram(self, name: str, **labels: object) -> LogHistogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = LogHistogram()
        return metric

    # ------------------------------------------------------------------- views
    def histograms_named(self, name: str, **match: object
                         ) -> List[Tuple[Dict[str, object], LogHistogram]]:
        """Every histogram of family ``name`` whose labels include ``match``."""
        wanted = _label_key(match)
        out: List[Tuple[Dict[str, object], LogHistogram]] = []
        for (metric_name, labels), histogram in sorted(
                self._histograms.items(),
                key=lambda item: (item[0][0], repr(item[0][1]))):
            if metric_name != name:
                continue
            label_map = dict(labels)
            if all(label_map.get(k) == v for k, v in wanted):
                out.append((label_map, histogram))
        return out

    def merged_histogram(self, name: str, **match: object) -> LogHistogram:
        """Merge a histogram family into one view (e.g. the per-module view
        of per-session dispatch-latency histograms)."""
        return LogHistogram.merged(
            histogram for _, histogram in self.histograms_named(name, **match))

    # ------------------------------------------------------------- shard state
    def export_state(self) -> Dict[str, Dict[str, object]]:
        """Lossless, picklable registry state for cross-process merging.

        Metrics are keyed by their rendered ``name{labels}`` string;
        histograms export raw buckets (:meth:`LogHistogram.export_state`)
        so the parent-side merge is exact, not a summary-of-summaries.
        """
        def rendered(items):
            return sorted(items, key=lambda item: (item[0][0], repr(item[0][1])))

        counters = {
            f"{name}{_render_labels(labels)}": metric.value
            for (name, labels), metric in rendered(self._counters.items())}
        gauges = {
            f"{name}{_render_labels(labels)}":
                {"value": metric.value, "max": metric.maximum}
            for (name, labels), metric in rendered(self._gauges.items())}
        histograms = {
            f"{name}{_render_labels(labels)}": histogram.export_state()
            for (name, labels), histogram in rendered(self._histograms.items())}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    # ---------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-serializable view of every metric."""
        counters = {
            f"{name}{_render_labels(labels)}": metric.value
            for (name, labels), metric in sorted(
                self._counters.items(),
                key=lambda item: (item[0][0], repr(item[0][1])))}
        gauges = {
            f"{name}{_render_labels(labels)}":
                {"value": metric.value, "max": metric.maximum}
            for (name, labels), metric in sorted(
                self._gauges.items(),
                key=lambda item: (item[0][0], repr(item[0][1])))}
        histograms = {
            f"{name}{_render_labels(labels)}": histogram.summary()
            for (name, labels), histogram in sorted(
                self._histograms.items(),
                key=lambda item: (item[0][0], repr(item[0][1])))}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


class Telemetry:
    """The facade the simulated layers record through.

    Each ``record_*`` method names one tap point in the system; the layers
    guard every call with ``if telemetry.enabled:`` so the disabled default
    costs one attribute load per tap.  Recording never charges the virtual
    clock — see the package docstring.
    """

    #: class attribute so the null subclass can flip it without instance state
    enabled: bool = True

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        #: per-operation mirror of the cost meter (the costs.py tap point)
        self.op_counts: Dict[str, int] = {}
        self.op_cycles: Dict[str, int] = {}

    # ------------------------------------------------------- sim-layer taps
    def op_charge(self, operation: str, count: int, cycles: int) -> None:
        """Mirror one :class:`~repro.sim.costs.CostMeter` charge."""
        self.op_counts[operation] = self.op_counts.get(operation, 0) + count
        self.op_cycles[operation] = self.op_cycles.get(operation, 0) + cycles

    def op_charge_bulk(self, items) -> None:
        """Mirror a replayed :class:`~repro.sim.costs.CallTrace` in one call.

        ``items`` is the trace's ``(operation, count, cycles)`` triples; the
        resulting per-operation counters are exactly what the op-by-op
        execution would have recorded.
        """
        counts = self.op_counts
        cycles_map = self.op_cycles
        for operation, count, cycles in items:
            counts[operation] = counts.get(operation, 0) + count
            cycles_map[operation] = cycles_map.get(operation, 0) + cycles

    # --------------------------------------------------- dispatch-layer taps
    def record_dispatch(self, session_id: int, module_name: str,
                        latency_us: float, n: int = 1) -> None:
        """Per-session (and per-module) protected-call dispatch latency.

        ``n`` is the fast-forward tier's bulk mirror: ``n`` identical
        replays fold in as one bucket update with the same counts the
        per-call loop would have produced.
        """
        self.registry.histogram("dispatch_latency_us", session=session_id,
                                module=module_name).record(latency_us, n=n)

    def record_batch(self, session_id: int, depth: int,
                     service_us: float, n: int = 1) -> None:
        """One batched flush (or ``n`` identical fast-forwarded flushes):
        its depth, its service time, and the amortized per-entry latency
        folded into the session's dispatch histogram."""
        registry = self.registry
        registry.histogram("batch_flush_depth",
                           session=session_id).record(depth, n=n)
        registry.histogram("flush_service_us",
                           session=session_id).record(service_us, n=n)
        if depth > 0:
            registry.histogram(
                "dispatch_latency_us", session=session_id,
                module="(batched)").record(service_us / depth, n=depth * n)

    # ----------------------------------------------------- handle-layer taps
    def record_handle_queue(self, handle_pid: int, depth: int,
                            n: int = 1) -> None:
        """Frames drained by one handle receive (its request-queue depth)."""
        self.registry.histogram("handle_queue_depth",
                                handle=handle_pid).record(depth, n=n)

    def record_queue_delay(self, handle_pid: int, client_pid: int,
                           delay_us: float) -> None:
        """Queueing delay of one call, per (handle, client) seat."""
        self.registry.histogram("pool_queue_delay_us", handle=handle_pid,
                                client=client_pid).record(delay_us)

    # ----------------------------------------------------- service-plane taps
    def record_pool_wait(self, backend: str, wait_us: float,
                         n: int = 1) -> None:
        """Virtual time one checkout waited for a pooled attachment."""
        self.registry.histogram("serve_pool_wait_us",
                                backend=backend).record(wait_us, n=n)

    def record_pool_refusal(self, backend: str) -> None:
        """One checkout refused because the attachment pool was exhausted."""
        self.registry.counter("serve_pool_refusals", backend=backend).inc()

    def record_backend_state(self, backend: str, state: str) -> None:
        """A discovery-registry backend state transition (up/draining/down)."""
        self.registry.counter(f"serve_backend_state.{state}",
                              backend=backend).inc()

    # ------------------------------------------------- overload-control taps
    def record_admission(self, client_pid: int, admitted: bool,
                         n: int = 1) -> None:
        """Token-bucket admission decisions at the dispatcher entry."""
        verdict = "admitted" if admitted else "refused"
        self.registry.counter(f"smod_admission.{verdict}",
                              client=client_pid).inc(n)

    def record_shed(self, scope: str, reason: str, n: int = 1) -> None:
        """Calls shed at admission (deadline or queue-depth protection)."""
        self.registry.counter(f"serve_sheds.{reason}", scope=scope).inc(n)

    def record_breaker_state(self, backend: str, state: str) -> None:
        """A circuit-breaker transition (closed/open/half_open)."""
        self.registry.counter(f"serve_breaker_state.{state}",
                              backend=backend).inc()

    def record_retry(self, backend: str, outcome: str, n: int = 1) -> None:
        """RPC-stub retry-budget events: ``retried`` / ``exhausted``."""
        self.registry.counter(f"serve_retries.{outcome}",
                              backend=backend).inc(n)

    # ------------------------------------------------------ cache-layer taps
    def cache_event(self, kind: str, n: int = 1) -> None:
        """One decision-cache event: ``hits``/``misses``/``evictions``/..."""
        self.registry.counter(f"decision_cache.{kind}").inc(n)

    # -------------------------------------------------- controller-layer taps
    def record_depth(self, client: object, depth: int) -> None:
        """An adaptive controller's current batch depth."""
        self.registry.gauge("adaptive_batch_depth", client=client).set(depth)

    # ------------------------------------------------------------------ views
    def module_latency(self, module_name: str) -> LogHistogram:
        """Per-module dispatch latency: per-session histograms, merged."""
        return self.registry.merged_histogram("dispatch_latency_us",
                                              module=module_name)

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = dict(self.registry.snapshot())
        if self.op_counts:
            out["ops"] = {
                op: {"count": self.op_counts[op],
                     "cycles": self.op_cycles.get(op, 0)}
                for op in sorted(self.op_counts)}
        return out

    def export_state(self) -> Optional[Dict[str, object]]:
        """Lossless picklable state (registry + op mirror) for shard merge."""
        return {
            "registry": self.registry.export_state(),
            "ops": {op: {"count": self.op_counts[op],
                         "cycles": self.op_cycles.get(op, 0)}
                    for op in sorted(self.op_counts)},
        }


class NullTelemetry(Telemetry):
    """The compiled-out default: every tap is a no-op, nothing accumulates.

    The registry exists (so accidental unguarded reads don't crash) but the
    overridden recording methods never touch it, keeping the disabled path
    allocation-free.
    """

    enabled = False

    def op_charge(self, operation: str, count: int, cycles: int) -> None:
        pass

    def op_charge_bulk(self, items) -> None:
        pass

    def record_dispatch(self, session_id: int, module_name: str,
                        latency_us: float, n: int = 1) -> None:
        pass

    def record_batch(self, session_id: int, depth: int,
                     service_us: float, n: int = 1) -> None:
        pass

    def record_handle_queue(self, handle_pid: int, depth: int,
                            n: int = 1) -> None:
        pass

    def record_queue_delay(self, handle_pid: int, client_pid: int,
                           delay_us: float) -> None:
        pass

    def record_pool_wait(self, backend: str, wait_us: float,
                         n: int = 1) -> None:
        pass

    def record_pool_refusal(self, backend: str) -> None:
        pass

    def record_backend_state(self, backend: str, state: str) -> None:
        pass

    def record_admission(self, client_pid: int, admitted: bool,
                         n: int = 1) -> None:
        pass

    def record_shed(self, scope: str, reason: str, n: int = 1) -> None:
        pass

    def record_breaker_state(self, backend: str, state: str) -> None:
        pass

    def record_retry(self, backend: str, outcome: str, n: int = 1) -> None:
        pass

    def cache_event(self, kind: str, n: int = 1) -> None:
        pass

    def record_depth(self, client: object, depth: int) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {}

    def export_state(self) -> Optional[Dict[str, object]]:
        return None


#: The shared disabled instance every component starts wired to.
NULL_TELEMETRY = NullTelemetry()


def merge_telemetry_states(
        states: Iterable[Optional[Dict[str, object]]]) -> Dict[str, object]:
    """Combine per-shard :meth:`Telemetry.export_state` payloads exactly.

    The deterministic shard-merge contract: counters and the op mirror sum;
    gauges keep the maximum (of both the point value and the recorded max —
    a cross-shard "high-water" view); histograms with the same rendered
    ``name{labels}`` key merge at bucket level (exact, since bucket counts
    are additive) and are then summarized.  States are folded in the order
    given — shard-index order — so float accumulation (histogram totals) is
    independent of worker count.  ``None`` entries (telemetry-disabled
    shards) are skipped; the result has :meth:`Telemetry.snapshot` shape.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, Dict[str, float]] = {}
    histograms: Dict[str, LogHistogram] = {}
    ops: Dict[str, Dict[str, int]] = {}
    for state in states:
        if state is None:
            continue
        registry = state.get("registry") or {}
        for key, value in (registry.get("counters") or {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, data in (registry.get("gauges") or {}).items():
            merged = gauges.setdefault(key, {"value": 0.0, "max": 0.0})
            merged["value"] = max(merged["value"], data["value"])
            merged["max"] = max(merged["max"], data["max"])
        for key, hist_state in (registry.get("histograms") or {}).items():
            incoming = LogHistogram.from_state(hist_state)
            if key in histograms:
                histograms[key].merge(incoming)
            else:
                histograms[key] = incoming
        for op, data in (state.get("ops") or {}).items():
            merged_op = ops.setdefault(op, {"count": 0, "cycles": 0})
            merged_op["count"] += data["count"]
            merged_op["cycles"] += data["cycles"]
    out: Dict[str, object] = {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {key: histogram.summary()
                       for key, histogram in sorted(histograms.items())},
    }
    if ops:
        out["ops"] = dict(sorted(ops.items()))
    return out


def make_telemetry(enabled: bool) -> Telemetry:
    """A live :class:`Telemetry` when enabled, the shared null otherwise."""
    return Telemetry() if enabled else NULL_TELEMETRY


def render_snapshot(snapshot: Dict[str, object], *,
                    title: str = "metrics snapshot") -> str:
    """Pretty-print a :meth:`Telemetry.snapshot` (the ``repro stats`` body)."""
    lines: List[str] = [title, "=" * len(title)]
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}
    ops = snapshot.get("ops") or {}
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name} = {value}")
    if gauges:
        lines.append("gauges:")
        for name, data in gauges.items():
            lines.append(f"  {name} = {data.get('value')} "
                         f"(max {data.get('max')})")
    if histograms:
        lines.append("histograms:")
        for name, s in histograms.items():
            lines.append(
                f"  {name}  count={s.get('count')} mean={s.get('mean'):.3f} "
                f"p50={s.get('p50'):.3f} p95={s.get('p95'):.3f} "
                f"p99={s.get('p99'):.3f} max={s.get('max'):.3f}")
    if ops:
        lines.append("ops (top 12 by cycles):")
        ranked = sorted(ops.items(),
                        key=lambda item: -item[1].get("cycles", 0))[:12]
        for op, data in ranked:
            lines.append(f"  {op:<28s} count={data.get('count'):>10} "
                         f"cycles={data.get('cycles'):>12}")
    if len(lines) == 2:
        lines.append("(empty — telemetry was disabled for this run)")
    return "\n".join(lines)
