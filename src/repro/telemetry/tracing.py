"""Virtual-time causal tracing: span trees over the simulated stack.

The metrics plane (:mod:`repro.telemetry.metrics`) answers *how long*;
this plane answers *where* and *why*: every protected call becomes an
attributed span tree (``rpc.attach`` → ``serve.resolve`` →
``pool.checkout`` → ``dispatch.call`` → ``broker.queue_wait``) with
start/end stamped in **virtual microseconds**, the same move the Dapper /
Pivot-Tracing lineage made for production RPC stacks.

Design constraints, in order — the same contract the metrics plane keeps:

1. **Non-perturbing.**  The tracer never charges the virtual clock or the
   cost meter; a span timestamp is a pure read of ``clock.cycles``
   (the :class:`~repro.sim.clock.Stopwatch` idiom), so cycle totals are
   byte-identical with tracing on or off.
2. **Compiled out by default.**  The shared :data:`NULL_TRACER` singleton
   answers every tap with an allocation-free no-op; instrumented sites
   guard with ``if tracer.enabled:`` and pay one attribute load.
3. **Bounded.**  Finished spans land in a fixed-capacity ring buffer (the
   **flight recorder**): the last N spans are always available, older
   spans are overwritten and counted in ``dropped`` — always-on tracing
   of a 10^7-call run stays O(capacity) memory.
4. **Deterministic.**  Head sampling keeps whole request trees for 1-in-K
   clients, decided per client id through a
   :class:`~repro.sim.rng.DeterministicRNG` child stream — no ambient
   entropy, so two runs of the same seed sample the same clients and the
   flight recorder's contents are reproducible.
5. **Fast-forward aware.**  The analytic tier commits N identical calls in
   one clock charge; :meth:`Tracer.aggregate` mirrors that with one
   synthesized span carrying ``count=N``, so a traced fast-forward run
   stays tractable *and* cycle-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.rng import DeterministicRNG

#: Default flight-recorder capacity (spans kept).
DEFAULT_CAPACITY = 65536

#: Dispatch-tier annotations spans carry in :attr:`Span.tier`.
TIER_OP_BY_OP = "op-by-op"
TIER_REPLAY = "replay"
TIER_FAST_FORWARD = "fast-forward"


class Span:
    """One attributed interval of virtual time.

    ``start_us``/``end_us`` are virtual microseconds (cycles / MHz);
    ``parent_id`` links the causal tree; ``kind`` names the tap point
    (``dispatch.call``, ``pool.checkout``, ...); ``tier`` annotates which
    dispatch tier served it; ``count`` > 1 marks a synthesized aggregate
    span standing in for that many identical calls (the fast-forward
    tier); ``unclosed`` marks a span force-closed at run end.
    """

    __slots__ = ("span_id", "parent_id", "kind", "start_us", "end_us",
                 "client_id", "session_id", "tier", "count", "sampled",
                 "unclosed")

    def __init__(self, span_id: int, parent_id: Optional[int], kind: str,
                 start_us: float, *, client_id: int = -1,
                 session_id: int = -1, tier: str = "", count: int = 1,
                 sampled: bool = True) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.start_us = start_us
        self.end_us = start_us
        self.client_id = client_id
        self.session_id = session_id
        self.tier = tier
        self.count = count
        self.sampled = sampled
        self.unclosed = False

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "client_id": self.client_id,
            "session_id": self.session_id,
            "tier": self.tier,
            "count": self.count,
        }
        if self.unclosed:
            out["unclosed"] = True
        return out

    def __repr__(self) -> str:
        extra = f" x{self.count}" if self.count != 1 else ""
        return (f"Span({self.kind}{extra} [{self.start_us:.3f}, "
                f"{self.end_us:.3f}]us client={self.client_id})")


class Tracer:
    """The facade the simulated layers open spans through.

    Sites guard every tap with ``if tracer.enabled:`` (the metrics-plane
    idiom), then call :meth:`start` / :meth:`finish` around live work,
    :meth:`interval` for a wait whose bounds are already known (queue
    delays), and :meth:`aggregate` for a fast-forward window.  Spans nest
    through an explicit stack — virtual time is single-threaded, so the
    innermost open span is always the causal parent.
    """

    #: class attribute so the null subclass can flip it without state
    enabled: bool = True

    def __init__(self, clock, mhz: float, *,
                 capacity: int = DEFAULT_CAPACITY,
                 sample_every: int = 1, seed: int = 0x51A9) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        if sample_every <= 0:
            raise ValueError("sample_every must be >= 1 (1 = keep all)")
        self._clock = clock
        self._inv_mhz = 1.0 / mhz
        self.capacity = capacity
        self.sample_every = sample_every
        self._rng = DeterministicRNG(seed)
        self._sample_cache: Dict[int, bool] = {}
        self._ring: List[Span] = []
        self._next = 0
        self._stack: List[Span] = []
        self._span_seq = 0
        self.started = 0
        self.finished = 0
        self.dropped = 0
        self.sampled_out = 0

    # ------------------------------------------------------------------ clock
    def now_us(self) -> float:
        """Current virtual time — a pure observation of the clock."""
        return self._clock.cycles * self._inv_mhz

    # --------------------------------------------------------------- sampling
    def client_sampled(self, client_id: int) -> bool:
        """Deterministic head-sampling decision for one client id.

        1-in-K (``sample_every``) on average, decided once per client from
        a :class:`DeterministicRNG` child stream keyed by the id — stable
        across runs, independent of call order, no ambient entropy.
        Negative ids (system work: health probes, drains) are always kept.
        """
        if self.sample_every <= 1 or client_id < 0:
            return True
        cached = self._sample_cache.get(client_id)
        if cached is None:
            draw = self._rng.child(f"trace-head-{client_id}")
            cached = draw.integer(0, self.sample_every - 1) == 0
            self._sample_cache[client_id] = cached
        return cached

    # ------------------------------------------------------------- span taps
    def start(self, kind: str, *, client_id: int = -1, session_id: int = -1,
              tier: str = "") -> Span:
        """Open a span at the current virtual time and push it on the
        causal stack.  Children inherit the head-sampling decision of the
        innermost open span; a root span decides from its client id."""
        stack = self._stack
        if stack:
            parent = stack[-1]
            parent_id: Optional[int] = parent.span_id
            sampled = parent.sampled
            if client_id < 0:
                client_id = parent.client_id
            if session_id < 0:
                session_id = parent.session_id
        else:
            parent_id = None
            sampled = self.client_sampled(client_id)
        self._span_seq += 1
        span = Span(self._span_seq, parent_id, kind, self.now_us(),
                    client_id=client_id, session_id=session_id, tier=tier,
                    sampled=sampled)
        self.started += 1
        stack.append(span)
        return span

    def finish(self, span: Optional[Span], *,
               tier: Optional[str] = None) -> None:
        """Close ``span`` at the current virtual time and record it.

        ``tier`` set here overrides the one given at :meth:`start` — the
        dispatch tier is often only known once the call has been served.
        Tolerates ``None`` (a site that started nothing) and out-of-order
        closes (the span is removed wherever it sits on the stack)."""
        if span is None:
            return
        span.end_us = self.now_us()
        if tier is not None:
            span.tier = tier
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        else:  # defensive: unwind a mismatched close
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] is span:
                    del stack[index]
                    break
        self.finished += 1
        if span.sampled:
            self._record(span)
        else:
            self.sampled_out += 1

    def interval(self, kind: str, start_us: float, end_us: float, *,
                 client_id: int = -1, session_id: int = -1, tier: str = "",
                 count: int = 1) -> Optional[Span]:
        """Record a completed span whose bounds are already known — queue
        waits measured by the layer itself, or synthesized aggregates.
        Attached under the innermost open span, if any."""
        stack = self._stack
        if stack:
            parent = stack[-1]
            parent_id: Optional[int] = parent.span_id
            sampled = parent.sampled
            if client_id < 0:
                client_id = parent.client_id
            if session_id < 0:
                session_id = parent.session_id
        else:
            parent_id = None
            sampled = self.client_sampled(client_id)
        self._span_seq += 1
        self.started += 1
        self.finished += 1
        if not sampled:
            self.sampled_out += 1
            return None
        span = Span(self._span_seq, parent_id, kind, start_us,
                    client_id=client_id, session_id=session_id, tier=tier,
                    count=count, sampled=True)
        span.end_us = end_us
        self._record(span)
        return span

    def aggregate(self, kind: str, *, span_us: float, n: int,
                  client_id: int = -1, session_id: int = -1,
                  tier: str = TIER_FAST_FORWARD) -> Optional[Span]:
        """Synthesize one span standing in for ``n`` identical calls of
        ``span_us`` each — the fast-forward window mirror.  The span ends
        at the current virtual time and covers the whole window, so a
        traced 10^7-call run records O(windows) spans, not O(calls)."""
        end_us = self.now_us()
        return self.interval(kind, end_us - span_us * n, end_us,
                             client_id=client_id, session_id=session_id,
                             tier=tier, count=n)

    # --------------------------------------------------------- flight recorder
    def _record(self, span: Span) -> None:
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(span)
        else:
            ring[self._next] = span
            self._next += 1
            if self._next == self.capacity:
                self._next = 0
            self.dropped += 1

    def spans(self) -> List[Span]:
        """Recorded spans, oldest first (the ring, unwound)."""
        ring = self._ring
        if self._next == 0:
            return list(ring)
        return ring[self._next:] + ring[:self._next]

    def open_spans(self) -> List[Span]:
        """Spans started but not yet finished (outermost first)."""
        return list(self._stack)

    def drain(self) -> int:
        """Force-close every open span at the current virtual time (run
        end, abandoned requests).  Closed spans are flagged ``unclosed``
        and recorded; returns how many were drained."""
        drained = 0
        while self._stack:
            span = self._stack[-1]
            span.unclosed = True
            self.finish(span)
            drained += 1
        return drained

    # ------------------------------------------------------------------ views
    def stats(self) -> Dict[str, int]:
        return {
            "started": self.started,
            "finished": self.finished,
            "recorded": len(self._ring),
            "dropped": self.dropped,
            "sampled_out": self.sampled_out,
            "open": len(self._stack),
            "capacity": self.capacity,
            "sample_every": self.sample_every,
        }

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable flight-recorder contents plus counters."""
        return {
            "stats": self.stats(),
            "spans": [span.to_dict() for span in self.spans()],
        }


class NullTracer(Tracer):
    """The compiled-out default: every tap is an allocation-free no-op.

    No clock, no ring, no RNG — construction takes nothing and the
    overridden taps touch no instance state, so the disabled path is a
    branch on the ``enabled`` class attribute and an early return.
    """

    enabled = False

    def __init__(self) -> None:  # noqa: D401 - deliberately not calling super
        pass

    def now_us(self) -> float:
        return 0.0

    def client_sampled(self, client_id: int) -> bool:
        return False

    def start(self, kind: str, *, client_id: int = -1, session_id: int = -1,
              tier: str = "") -> Optional[Span]:  # type: ignore[override]
        return None

    def finish(self, span: Optional[Span], *,
               tier: Optional[str] = None) -> None:
        pass

    def interval(self, kind: str, start_us: float, end_us: float, *,
                 client_id: int = -1, session_id: int = -1, tier: str = "",
                 count: int = 1) -> Optional[Span]:
        return None

    def aggregate(self, kind: str, *, span_us: float, n: int,
                  client_id: int = -1, session_id: int = -1,
                  tier: str = TIER_FAST_FORWARD) -> Optional[Span]:
        return None

    def spans(self) -> List[Span]:
        return []

    def open_spans(self) -> List[Span]:
        return []

    def drain(self) -> int:
        return 0

    def stats(self) -> Dict[str, int]:
        return {}

    def snapshot(self) -> Dict[str, object]:
        return {}


#: The shared disabled instance every component starts wired to.
NULL_TRACER = NullTracer()


def make_tracer(enabled: bool, clock=None, mhz: float = 0.0, *,
                capacity: int = DEFAULT_CAPACITY, sample_every: int = 1,
                seed: int = 0x51A9) -> Tracer:
    """A live :class:`Tracer` when enabled, the shared null otherwise."""
    if not enabled:
        return NULL_TRACER
    if clock is None or mhz <= 0.0:
        raise ValueError("a live tracer needs the virtual clock and MHz")
    return Tracer(clock, mhz, capacity=capacity, sample_every=sample_every,
                  seed=seed)
