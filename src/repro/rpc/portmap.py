"""Portmapper (rpcbind).

ONC RPC clients do not know which UDP port a service listens on; they ask
the portmapper, which maps (program, version, protocol) to a port.  The
lookup happens once per client binding — not per call — so it contributes
to RPC *setup* cost, mirroring how SecModule's session establishment is
likewise excluded from the per-call numbers of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import SimulationError

#: The portmapper's own well-known program number and port.
PMAP_PROG = 100000
PMAP_PORT = 111

#: Protocol identifiers (only UDP is modelled).
IPPROTO_UDP = 17


@dataclass(frozen=True)
class PortmapEntry:
    prog: int
    vers: int
    protocol: int
    port: int


class Portmapper:
    """The (program, version, protocol) -> port registry."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, int, int], PortmapEntry] = {}
        self.lookups = 0

    def set(self, prog: int, vers: int, port: int,
            protocol: int = IPPROTO_UDP) -> PortmapEntry:
        """pmap_set: register a service mapping."""
        if port <= 0 or port > 65535:
            raise SimulationError(f"invalid port {port}")
        key = (prog, vers, protocol)
        if key in self._entries:
            raise SimulationError(
                f"program {prog} version {vers} already registered on port "
                f"{self._entries[key].port}")
        entry = PortmapEntry(prog=prog, vers=vers, protocol=protocol, port=port)
        self._entries[key] = entry
        return entry

    def unset(self, prog: int, vers: int, protocol: int = IPPROTO_UDP) -> bool:
        """pmap_unset: remove a mapping."""
        return self._entries.pop((prog, vers, protocol), None) is not None

    def getport(self, prog: int, vers: int,
                protocol: int = IPPROTO_UDP) -> Optional[int]:
        """pmap_getport: the per-binding lookup clients perform."""
        self.lookups += 1
        entry = self._entries.get((prog, vers, protocol))
        return entry.port if entry else None

    def dump(self) -> list:
        """pmap_dump: every registered mapping (rpcinfo -p)."""
        return sorted(self._entries.values(), key=lambda e: (e.prog, e.vers))

    def __len__(self) -> int:
        return len(self._entries)
