"""The RPC client (clnt) side.

``clnt_call`` performs one complete remote procedure call against a locally
running server: build the call message, XDR-encode it, send it through the
UDP loopback, hand the CPU to the server, collect and decode the reply.
The per-call cost that emerges — four protocol-stack traversals, two
scheduler hand-offs, XDR encode/decode on both ends, authentication and
dispatch — is the paper's 63 µs baseline that SecModule beats by roughly
a factor of ten.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import SimulationError
from ..kernel.proc import Proc
from ..sim import costs
from .message import AcceptStat, CallMessage, OpaqueAuth, ReplyMessage, ReplyStat
from .portmap import IPPROTO_UDP, Portmapper
from .server import RpcServer
from .transport import LoopbackNetwork, UdpSocket


class RpcError(RuntimeError):
    """A call failed at the RPC layer (timeout, denial, bad program...)."""


@dataclass
class ClientStats:
    calls: int = 0
    retransmissions: int = 0
    failures: int = 0


class RpcClient:
    """A client handle bound to one (program, version) on the local host."""

    def __init__(self, kernel, proc: Proc, network: LoopbackNetwork,
                 portmap: Portmapper, server: RpcServer, *,
                 prog: int, vers: int) -> None:
        self.kernel = kernel
        self.proc = proc
        self.network = network
        self.portmap = portmap
        self.server = server
        self.prog = prog
        self.vers = vers
        self.socket: Optional[UdpSocket] = None
        self.server_port: Optional[int] = None
        self.next_xid = 0x10_0000
        self.stats = ClientStats()

    # -- binding (clnt_create) -----------------------------------------------------
    def bind(self) -> None:
        """clnt_create: open a socket and resolve the server's port."""
        if self.socket is not None:
            return
        sockfd = self.kernel.syscall(self.proc, "socket").unwrap()
        self.socket = self.network.lookup_fd(sockfd)
        port = self.portmap.getport(self.prog, self.vers, IPPROTO_UDP)
        if port is None:
            raise RpcError(
                f"portmapper has no entry for program {self.prog} v{self.vers}")
        self.server_port = port

    # -- the call itself -------------------------------------------------------------
    def clnt_call(self, proc_num: int, args: List[int]) -> int:
        """One synchronous remote procedure call; returns the integer result."""
        if self.socket is None or self.server_port is None:
            raise SimulationError("client not bound; call bind() first")
        machine = self.kernel.machine
        machine.charge(costs.RPC_CLNT_CALL_OVERHEAD)

        self.next_xid += 1
        call = CallMessage(xid=self.next_xid, prog=self.prog, vers=self.vers,
                           proc=proc_num, args=list(args),
                           cred=OpaqueAuth(), verf=OpaqueAuth())
        payload = call.encode(machine)

        sent = self.kernel.syscall(self.proc, "sendto", self.socket.sockfd,
                                   payload, self.server_port)
        if sent.failed:
            self.stats.failures += 1
            raise RpcError(f"sendto failed: {sent.errno.name}")

        # The datagram woke the server; give it the CPU so it can run one
        # iteration of svc_run, then park itself in recvfrom again.
        self.kernel.sched.switch_to(self.server.proc)
        reply_msg = self.server.serve_one()
        if reply_msg is None:
            self.stats.failures += 1
            raise RpcError("server had no request queued (lost datagram?)")
        self.server.block_in_svc_run()

        # Back to the client, which was about to block in recvfrom.
        self.kernel.sched.switch_to(self.proc)
        received = self.kernel.syscall(self.proc, "recvfrom", self.socket.sockfd)
        if received.failed:
            self.stats.failures += 1
            raise RpcError("reply datagram missing")
        reply = ReplyMessage.decode(received.value.payload, machine)

        if reply.xid != call.xid:
            self.stats.failures += 1
            raise RpcError(f"xid mismatch: sent {call.xid}, got {reply.xid}")
        if reply.reply_stat is not ReplyStat.MSG_ACCEPTED:
            self.stats.failures += 1
            raise RpcError("call denied by server")
        if reply.accept_stat is not AcceptStat.SUCCESS:
            self.stats.failures += 1
            raise RpcError(f"call not successful: {reply.accept_stat.name}")
        self.stats.calls += 1
        return reply.result if reply.result is not None else 0

    def null_call(self) -> int:
        """Call NULLPROC (procedure 0) — the classic RPC ping."""
        return self.clnt_call(0, [])
