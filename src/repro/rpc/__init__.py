"""The local ONC-RPC baseline the paper compares SecModule against.

XDR marshalling, RPC call/reply messages, a loopback UDP transport on the
simulated kernel, a portmapper, server/client implementations, and an
rpcgen-like interface compiler.
"""

from .client import ClientStats, RpcClient, RpcError
from .message import (
    AcceptStat,
    AuthFlavor,
    CallMessage,
    MsgType,
    OpaqueAuth,
    ReplyMessage,
    ReplyStat,
    RPC_VERSION,
)
from .portmap import IPPROTO_UDP, PMAP_PORT, PMAP_PROG, PortmapEntry, Portmapper
from .rpcgen import (
    BoundClient,
    GeneratedService,
    InterfaceDefinition,
    ProcedureSpec,
    generate_service,
    testincr_interface,
)
from .server import ProcedureHandler, RpcProgram, RpcServer
from .transport import Datagram, LoopbackNetwork, UdpSocket, install_network
from .xdr import XDR_UNIT, XdrDecoder, XdrEncoder

__all__ = [
    "ClientStats", "RpcClient", "RpcError",
    "AcceptStat", "AuthFlavor", "CallMessage", "MsgType", "OpaqueAuth",
    "ReplyMessage", "ReplyStat", "RPC_VERSION",
    "IPPROTO_UDP", "PMAP_PORT", "PMAP_PROG", "PortmapEntry", "Portmapper",
    "BoundClient", "GeneratedService", "InterfaceDefinition", "ProcedureSpec",
    "generate_service", "testincr_interface",
    "ProcedureHandler", "RpcProgram", "RpcServer",
    "Datagram", "LoopbackNetwork", "UdpSocket", "install_network",
    "XDR_UNIT", "XdrDecoder", "XdrEncoder",
]
