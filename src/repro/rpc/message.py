"""ONC RPC message formats (RFC 1831).

Call and reply messages with the standard header fields (xid, RPC version,
program, version, procedure, credential and verifier), serialized through
the XDR layer so that every header field costs an XDR item on both sides of
the wire — the overhead that makes local RPC an order of magnitude slower
than SecModule dispatch in Figure 8.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SimulationError
from .xdr import XdrDecoder, XdrEncoder

#: The RPC protocol version this implementation speaks (RFC 1831 = 2).
RPC_VERSION = 2


class MsgType(enum.IntEnum):
    CALL = 0
    REPLY = 1


class ReplyStat(enum.IntEnum):
    MSG_ACCEPTED = 0
    MSG_DENIED = 1


class AcceptStat(enum.IntEnum):
    SUCCESS = 0
    PROG_UNAVAIL = 1
    PROG_MISMATCH = 2
    PROC_UNAVAIL = 3
    GARBAGE_ARGS = 4
    SYSTEM_ERR = 5


class AuthFlavor(enum.IntEnum):
    AUTH_NONE = 0
    AUTH_SYS = 1


@dataclass
class OpaqueAuth:
    """Credential / verifier blob."""

    flavor: AuthFlavor = AuthFlavor.AUTH_NONE
    body: bytes = b""

    def encode(self, encoder: XdrEncoder) -> None:
        encoder.put_uint(int(self.flavor))
        encoder.put_opaque(self.body)

    @classmethod
    def decode(cls, decoder: XdrDecoder) -> "OpaqueAuth":
        flavor = AuthFlavor(decoder.get_uint())
        body = decoder.get_opaque()
        return cls(flavor=flavor, body=body)


@dataclass
class CallMessage:
    """An RPC call: header + XDR-encoded argument payload."""

    xid: int
    prog: int
    vers: int
    proc: int
    args: List[int] = field(default_factory=list)
    cred: OpaqueAuth = field(default_factory=OpaqueAuth)
    verf: OpaqueAuth = field(default_factory=OpaqueAuth)

    def encode(self, machine=None) -> bytes:
        encoder = XdrEncoder(machine)
        encoder.put_uint(self.xid)
        encoder.put_uint(int(MsgType.CALL))
        encoder.put_uint(RPC_VERSION)
        encoder.put_uint(self.prog)
        encoder.put_uint(self.vers)
        encoder.put_uint(self.proc)
        self.cred.encode(encoder)
        self.verf.encode(encoder)
        encoder.put_int_array(self.args)
        return encoder.getvalue()

    @classmethod
    def decode(cls, data: bytes, machine=None) -> "CallMessage":
        decoder = XdrDecoder(data, machine)
        xid = decoder.get_uint()
        msg_type = decoder.get_uint()
        if msg_type != MsgType.CALL:
            raise SimulationError("not an RPC call message")
        rpcvers = decoder.get_uint()
        if rpcvers != RPC_VERSION:
            raise SimulationError(f"unsupported RPC version {rpcvers}")
        prog = decoder.get_uint()
        vers = decoder.get_uint()
        proc = decoder.get_uint()
        cred = OpaqueAuth.decode(decoder)
        verf = OpaqueAuth.decode(decoder)
        args = decoder.get_int_array()
        return cls(xid=xid, prog=prog, vers=vers, proc=proc, args=args,
                   cred=cred, verf=verf)


@dataclass
class ReplyMessage:
    """An RPC reply: accepted/denied status + XDR-encoded result."""

    xid: int
    reply_stat: ReplyStat = ReplyStat.MSG_ACCEPTED
    accept_stat: AcceptStat = AcceptStat.SUCCESS
    result: Optional[int] = None
    verf: OpaqueAuth = field(default_factory=OpaqueAuth)

    def encode(self, machine=None) -> bytes:
        encoder = XdrEncoder(machine)
        encoder.put_uint(self.xid)
        encoder.put_uint(int(MsgType.REPLY))
        encoder.put_uint(int(self.reply_stat))
        if self.reply_stat == ReplyStat.MSG_ACCEPTED:
            self.verf.encode(encoder)
            encoder.put_uint(int(self.accept_stat))
            if self.accept_stat == AcceptStat.SUCCESS:
                encoder.put_int(self.result if self.result is not None else 0)
        return encoder.getvalue()

    @classmethod
    def decode(cls, data: bytes, machine=None) -> "ReplyMessage":
        decoder = XdrDecoder(data, machine)
        xid = decoder.get_uint()
        msg_type = decoder.get_uint()
        if msg_type != MsgType.REPLY:
            raise SimulationError("not an RPC reply message")
        reply_stat = ReplyStat(decoder.get_uint())
        if reply_stat == ReplyStat.MSG_DENIED:
            return cls(xid=xid, reply_stat=reply_stat)
        verf = OpaqueAuth.decode(decoder)
        accept_stat = AcceptStat(decoder.get_uint())
        result = None
        if accept_stat == AcceptStat.SUCCESS:
            result = decoder.get_int()
        return cls(xid=xid, reply_stat=reply_stat, accept_stat=accept_stat,
                   result=result, verf=verf)
