"""Loopback UDP transport.

The paper's comparison point is a *locally running* RPC service, so the
datagrams never leave the machine — but they still traverse the socket
layer, the UDP/IP input and output paths and the loopback interface on both
send and receive, four protocol-stack traversals per remote procedure call.
Those traversals, plus two scheduler hand-offs, are where RPC's ~63 µs go,
and they are what this transport charges for.

The endpoints live on the simulated kernel: a :class:`UdpSocket` is owned by
a process, ``sendto`` and ``recvfrom`` are issued through the syscall trap
layer (so they pay the same trap costs every other syscall pays), and a
receiver with an empty queue blocks through the scheduler just as the
SecModule handle blocks on its message queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SimulationError
from ..kernel.errno import Errno, SyscallResult, fail, ok
from ..kernel.proc import Proc
from ..sim import costs

#: Address family constant (only loopback is modelled).
LOOPBACK_ADDR = "127.0.0.1"


@dataclass
class Datagram:
    """One UDP datagram queued on a socket."""

    source_port: int
    dest_port: int
    payload: bytes


@dataclass
class UdpSocket:
    """A bound UDP socket owned by one simulated process."""

    sockfd: int
    owner_pid: int
    port: int
    receive_queue: List[Datagram] = field(default_factory=list)

    def queue_length(self) -> int:
        return len(self.receive_queue)


class LoopbackNetwork:
    """The machine-local UDP fabric: sockets, ports, and the two data paths."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self._sockets: Dict[int, UdpSocket] = {}
        self._by_port: Dict[int, int] = {}
        self._next_fd = 3           # 0-2 are the traditional stdio fds
        self._next_ephemeral_port = 49152
        self.datagrams_sent = 0
        self.datagrams_dropped = 0

    # -- socket management -------------------------------------------------------
    def socket(self, proc: Proc) -> UdpSocket:
        fd = self._next_fd
        self._next_fd += 1
        port = self._next_ephemeral_port
        self._next_ephemeral_port += 1
        sock = UdpSocket(sockfd=fd, owner_pid=proc.pid, port=port)
        self._sockets[fd] = sock
        self._by_port[port] = fd
        self.kernel.machine.charge(costs.KMALLOC)
        return sock

    def bind(self, sock: UdpSocket, port: int) -> None:
        if port in self._by_port and self._by_port[port] != sock.sockfd:
            raise SimulationError(f"port {port} already bound")
        self._by_port.pop(sock.port, None)
        sock.port = port
        self._by_port[port] = sock.sockfd

    def close(self, sock: UdpSocket) -> None:
        self._sockets.pop(sock.sockfd, None)
        self._by_port.pop(sock.port, None)
        self.kernel.machine.charge(costs.KFREE)

    def lookup_fd(self, fd: int) -> Optional[UdpSocket]:
        return self._sockets.get(fd)

    def lookup_port(self, port: int) -> Optional[UdpSocket]:
        fd = self._by_port.get(port)
        return self._sockets.get(fd) if fd is not None else None

    # -- data path -----------------------------------------------------------------
    def send_path(self, payload_words: int) -> None:
        """Charge one traversal of the socket send + UDP output + loopback."""
        machine = self.kernel.machine
        machine.charge(costs.SOCKET_ALLOC)
        machine.charge_words(costs.COPY_WORD, payload_words)
        machine.charge(costs.UDP_SEND_PATH)

    def recv_path(self, payload_words: int) -> None:
        """Charge one traversal of loopback input + UDP input + soreceive."""
        machine = self.kernel.machine
        machine.charge(costs.UDP_RECV_PATH)
        machine.charge_words(costs.COPY_WORD, payload_words)
        machine.charge(costs.KFREE)

    def deliver(self, source: UdpSocket, dest_port: int, payload: bytes) -> bool:
        dest = self.lookup_port(dest_port)
        if dest is None:
            self.datagrams_dropped += 1
            return False
        dest.receive_queue.append(Datagram(source_port=source.port,
                                           dest_port=dest_port,
                                           payload=payload))
        self.datagrams_sent += 1
        # wake a receiver blocked on this socket
        self.kernel.sched.wakeup(f"udprecv:{dest.sockfd}")
        return True

    def block_receiver(self, proc: Proc, sock: UdpSocket) -> None:
        self.kernel.sched.sleep(proc, f"udprecv:{sock.sockfd}")


# ---------------------------------------------------------------------------
# The socket system calls (registered on demand by install_network)
# ---------------------------------------------------------------------------

def _sys_socket(kernel, proc: Proc) -> SyscallResult:
    sock = kernel.network.socket(proc)
    return ok(sock.sockfd)


def _sys_bind(kernel, proc: Proc, sockfd: int, port: int) -> SyscallResult:
    sock = kernel.network.lookup_fd(sockfd)
    if sock is None or sock.owner_pid != proc.pid:
        return fail(Errno.EINVAL)
    try:
        kernel.network.bind(sock, port)
    except SimulationError:
        return fail(Errno.EBUSY)
    return ok(0)


def _sys_sendto(kernel, proc: Proc, sockfd: int, payload: bytes,
                dest_port: int) -> SyscallResult:
    network = kernel.network
    sock = network.lookup_fd(sockfd)
    if sock is None or sock.owner_pid != proc.pid:
        return fail(Errno.EINVAL)
    words = max(1, len(payload) // 4)
    network.send_path(words)
    delivered = network.deliver(sock, dest_port, payload)
    if not delivered:
        return fail(Errno.ENOENT)
    return ok(len(payload))


def _sys_recvfrom(kernel, proc: Proc, sockfd: int) -> SyscallResult:
    network = kernel.network
    sock = network.lookup_fd(sockfd)
    if sock is None or sock.owner_pid != proc.pid:
        return fail(Errno.EINVAL)
    if not sock.receive_queue:
        network.block_receiver(proc, sock)
        return fail(Errno.EAGAIN)
    datagram = sock.receive_queue.pop(0)
    words = max(1, len(datagram.payload) // 4)
    network.recv_path(words)
    return ok(datagram)


#: Syscall numbers follow repro.kernel.syscall's table.
NETWORK_SYSCALLS = (
    (97, "socket", _sys_socket, 3),
    (104, "bind", _sys_bind, 3),
    (133, "sendto", _sys_sendto, 6),
    (29, "recvfrom", _sys_recvfrom, 6),
)


def install_network(kernel) -> LoopbackNetwork:
    """Attach the loopback network and its syscalls to a booted kernel."""
    if getattr(kernel, "network", None) is not None:
        return kernel.network
    network = LoopbackNetwork(kernel)
    kernel.network = network
    for number, name, handler, arg_words in NETWORK_SYSCALLS:
        if kernel.syscalls.lookup(name) is None:
            kernel.syscalls.register(number, name, handler, arg_words=arg_words)
    return network
