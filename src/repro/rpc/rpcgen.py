"""An rpcgen-like interface compiler.

The paper mentions that the explicit-shared-memory design it rejected would
have required "the generation of tools akin to rpcgen for SecModule".  The
reproduction supplies the rpcgen side for the baseline: given an interface
definition (program number, version, list of procedures), it produces the
client stub callables and the server skeleton in one step — the same
convenience the real tool gives C programmers — plus the ``.x``-style
definition text for documentation.

It also doubles as the way benchmark and example code builds the "testincr"
service: define the interface once, instantiate the server and a bound
client from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..kernel.errno import Errno
from ..kernel.proc import Proc
from ..telemetry import NULL_TRACER, Tracer
from .client import RpcClient
from .portmap import Portmapper
from .server import ProcedureHandler, RpcProgram, RpcServer
from .transport import LoopbackNetwork, install_network


@dataclass(frozen=True)
class ProcedureSpec:
    """One procedure in an interface definition."""

    number: int
    name: str
    arg_names: Tuple[str, ...]
    handler: ProcedureHandler
    doc: str = ""


@dataclass
class InterfaceDefinition:
    """The ``.x`` file equivalent: a named program with typed procedures."""

    name: str
    prog: int
    vers: int
    procedures: List[ProcedureSpec] = field(default_factory=list)

    def add_procedure(self, number: int, name: str, handler: ProcedureHandler,
                      *, arg_names: Tuple[str, ...] = ("arg",),
                      doc: str = "") -> ProcedureSpec:
        if any(p.number == number for p in self.procedures):
            raise SimulationError(f"procedure number {number} already defined")
        if number == 0:
            raise SimulationError("procedure 0 is reserved for NULLPROC")
        spec = ProcedureSpec(number=number, name=name, arg_names=arg_names,
                             handler=handler, doc=doc)
        self.procedures.append(spec)
        return spec

    def definition_text(self) -> str:
        """Render the interface as rpcgen ``.x`` style text."""
        lines = [f"program {self.name.upper()} {{",
                 f"    version VERS_{self.vers} {{"]
        for spec in sorted(self.procedures, key=lambda p: p.number):
            args = ", ".join(f"int {a}" for a in spec.arg_names) or "void"
            lines.append(f"        int {spec.name.upper()}({args}) = {spec.number};")
        lines.append(f"    }} = {self.vers};")
        lines.append(f"}} = {self.prog:#x};")
        return "\n".join(lines)


@dataclass
class GeneratedService:
    """Everything rpcgen produced for one interface: server + client factory."""

    interface: InterfaceDefinition
    server: RpcServer
    network: LoopbackNetwork
    portmap: Portmapper
    client_stub_names: Dict[str, int] = field(default_factory=dict)

    def make_client(self, kernel, proc: Proc) -> "BoundClient":
        rpc_client = RpcClient(kernel, proc, self.network, self.portmap,
                               self.server, prog=self.interface.prog,
                               vers=self.interface.vers)
        rpc_client.bind()
        return BoundClient(rpc_client, dict(self.client_stub_names))


class BoundClient:
    """A client with per-procedure stub methods (what rpcgen's *_clnt.c gives)."""

    def __init__(self, rpc_client: RpcClient, stubs: Dict[str, int]) -> None:
        self.rpc = rpc_client
        self._stubs = stubs
        #: span tracing (pure observation; drivers wire a live tracer)
        self.tracer: Tracer = NULL_TRACER
        #: overload protection: ``retry_policy(procedure_name, args)``
        #: returns the :class:`~repro.control.overload.RetryBudget` (or
        #: None) guarding an EAGAIN reply's retries.  None = never retry,
        #: the pre-protection behavior.
        self.retry_policy = None
        #: observation hook: ``retry_observer(name, args, outcome)`` with
        #: outcome ``"retried"`` / ``"exhausted"``
        self.retry_observer = None

    def _backoff(self, backoff_us: float) -> None:
        """Deterministic virtual-time retry backoff: idle cycles on the
        meter, exactly like any other priced wait."""
        machine = self.rpc.kernel.machine
        cycles = int(round(backoff_us * machine.spec.mhz))
        if cycles > 0:
            machine.meter.idle(cycles)

    def call(self, procedure_name: str, *args: int) -> int:
        try:
            number = self._stubs[procedure_name]
        except KeyError:
            raise SimulationError(
                f"interface defines no procedure {procedure_name!r}") from None
        tracer = self.tracer
        span = (tracer.start(f"rpc.{procedure_name}",
                             client_id=self.rpc.proc.pid)
                if tracer.enabled else None)
        result = self.rpc.clnt_call(number, list(args))
        policy = self.retry_policy
        if policy is not None and result == -int(Errno.EAGAIN):
            budget = policy(procedure_name, args)
            attempt = 0
            while (budget is not None and result == -int(Errno.EAGAIN)
                   and budget.try_consume()):
                # bounded retries with exponential virtual-time backoff;
                # a drained budget stops the loop and the EAGAIN stands
                attempt += 1
                self._backoff(budget.backoff_us(attempt))
                if self.retry_observer is not None:
                    self.retry_observer(procedure_name, args, "retried")
                result = self.rpc.clnt_call(number, list(args))
            if (budget is not None and result == -int(Errno.EAGAIN)
                    and budget.remaining <= 0
                    and self.retry_observer is not None):
                self.retry_observer(procedure_name, args, "exhausted")
        if span is not None:
            tracer.finish(span)
        return result

    def __getattr__(self, item: str):
        if item.startswith("_") or item == "rpc":
            raise AttributeError(item)
        if item in self._stubs:
            return lambda *args: self.call(item, *args)
        raise AttributeError(item)


def generate_service(kernel, interface: InterfaceDefinition, *,
                     server_uid: int = 0, port: int = 2049,
                     portmap: Optional[Portmapper] = None) -> GeneratedService:
    """Instantiate the server side of ``interface`` on ``kernel``.

    Creates the server process, installs the network stack if needed, binds
    the service socket, registers with the portmapper, and parks the server
    in its receive loop, ready for clients.
    """
    from ..kernel.cred import ROOT, unprivileged

    network = install_network(kernel)
    if portmap is None:
        # One portmapper per kernel, like the real rpcbind: every service
        # generated on this kernel registers in (and resolves through) the
        # same table, so two services can coexist and share clients.  An
        # explicitly passed portmapper still wins (tests isolate with it).
        portmap = getattr(kernel, "rpc_portmap", None)
        if portmap is None:
            portmap = Portmapper()
            kernel.rpc_portmap = portmap
    cred = ROOT if server_uid == 0 else unprivileged(server_uid)
    server_proc = kernel.create_process(f"rpc.{interface.name}d", cred=cred)
    server = RpcServer(kernel, server_proc, network, portmap, port=port)

    program = RpcProgram(prog=interface.prog, vers=interface.vers,
                         name=interface.name)
    stub_names: Dict[str, int] = {}
    for spec in interface.procedures:
        program.add_procedure(spec.number, spec.handler, name=spec.name)
        stub_names[spec.name] = spec.number
    server.register_program(program)
    server.start()
    server.block_in_svc_run()

    return GeneratedService(interface=interface, server=server,
                            network=network, portmap=portmap,
                            client_stub_names=stub_names)


def testincr_interface() -> InterfaceDefinition:
    """The paper's benchmark service: test_incr(x) returns x + 1."""
    interface = InterfaceDefinition(name="testincr", prog=0x20000101, vers=1)
    interface.add_procedure(1, "test_incr", lambda args: (args[0] if args else 0) + 1,
                            arg_names=("x",),
                            doc="return the argument incremented by one")
    interface.add_procedure(2, "test_add",
                            lambda args: sum(args),
                            arg_names=("a", "b"), doc="return a + b")
    return interface
