"""XDR (External Data Representation) marshalling.

The paper's baseline is "an identical no-op function implemented as a
locally running RPC service" — classic ONC RPC, whose argument and result
marshalling uses XDR (RFC 1832 style).  The paper even notes that the
explicit-shared-memory design it rejected "develops the same flavor as that
of the XDR protocol used in RPC", which is precisely the overhead the
shared-VM design avoids.

The encoder/decoder below implements the standard XDR wire rules (4-byte
alignment, big-endian integers, length-prefixed opaque/string data) and
charges :data:`~repro.sim.costs.XDR_ITEM` per item marshalled, so argument
size sweeps show XDR's per-item cost against SecModule's zero-copy stack.
"""

from __future__ import annotations

import struct
from typing import List

from ..errors import SimulationError
from ..sim import costs

#: XDR pads everything to 4-byte boundaries.
XDR_UNIT = 4


def _pad(length: int) -> int:
    return (XDR_UNIT - length % XDR_UNIT) % XDR_UNIT


class XdrEncoder:
    """Serializes values into an XDR byte stream."""

    def __init__(self, machine=None) -> None:
        self.machine = machine
        self._chunks: List[bytes] = []
        self.items_encoded = 0

    def _charge(self) -> None:
        self.items_encoded += 1
        if self.machine is not None:
            self.machine.charge(costs.XDR_ITEM)

    # -- scalar types -------------------------------------------------------------
    def put_uint(self, value: int) -> "XdrEncoder":
        if value < 0 or value > 0xFFFFFFFF:
            raise SimulationError(f"uint out of range: {value}")
        self._chunks.append(struct.pack(">I", value))
        self._charge()
        return self

    def put_int(self, value: int) -> "XdrEncoder":
        if value < -0x80000000 or value > 0x7FFFFFFF:
            raise SimulationError(f"int out of range: {value}")
        self._chunks.append(struct.pack(">i", value))
        self._charge()
        return self

    def put_hyper(self, value: int) -> "XdrEncoder":
        self._chunks.append(struct.pack(">q", value))
        self._charge()
        return self

    def put_bool(self, value: bool) -> "XdrEncoder":
        return self.put_uint(1 if value else 0)

    # -- variable-length types -------------------------------------------------------
    def put_opaque(self, data: bytes) -> "XdrEncoder":
        self._chunks.append(struct.pack(">I", len(data)))
        self._chunks.append(data)
        self._chunks.append(b"\0" * _pad(len(data)))
        # one item for the length plus one per unit of payload
        self._charge()
        for _ in range(max(1, len(data) // XDR_UNIT)):
            self._charge()
        return self

    def put_string(self, text: str) -> "XdrEncoder":
        return self.put_opaque(text.encode("utf-8"))

    def put_int_array(self, values: List[int]) -> "XdrEncoder":
        self.put_uint(len(values))
        for value in values:
            self.put_int(value)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    @property
    def size(self) -> int:
        return sum(len(c) for c in self._chunks)


class XdrDecoder:
    """Deserializes values from an XDR byte stream."""

    def __init__(self, data: bytes, machine=None) -> None:
        self.data = data
        self.machine = machine
        self.offset = 0
        self.items_decoded = 0

    def _charge(self) -> None:
        self.items_decoded += 1
        if self.machine is not None:
            self.machine.charge(costs.XDR_ITEM)

    def _take(self, length: int) -> bytes:
        if self.offset + length > len(self.data):
            raise SimulationError("XDR decode past end of buffer")
        chunk = self.data[self.offset:self.offset + length]
        self.offset += length
        return chunk

    def get_uint(self) -> int:
        value = struct.unpack(">I", self._take(4))[0]
        self._charge()
        return value

    def get_int(self) -> int:
        value = struct.unpack(">i", self._take(4))[0]
        self._charge()
        return value

    def get_hyper(self) -> int:
        value = struct.unpack(">q", self._take(8))[0]
        self._charge()
        return value

    def get_bool(self) -> bool:
        return bool(self.get_uint())

    def get_opaque(self) -> bytes:
        length = struct.unpack(">I", self._take(4))[0]
        data = self._take(length)
        self._take(_pad(length))
        self._charge()
        for _ in range(max(1, length // XDR_UNIT)):
            self._charge()
        return data

    def get_string(self) -> str:
        return self.get_opaque().decode("utf-8")

    def get_int_array(self) -> List[int]:
        count = self.get_uint()
        return [self.get_int() for _ in range(count)]

    @property
    def remaining(self) -> int:
        return len(self.data) - self.offset

    def done(self) -> bool:
        return self.remaining == 0
