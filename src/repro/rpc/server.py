"""The RPC server (svc) side.

A :class:`RpcServer` is an ordinary simulated process that binds a UDP
socket, registers its program with the portmapper, and then loops in
``svc_run`` — receive a datagram, decode the call, check authentication,
dispatch to the registered procedure, encode the reply, send it back.  Every
step charges the same costs a real OpenBSD svc_udp implementation would pay,
which is what makes the RPC row of Figure 8 land an order of magnitude above
SecModule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..kernel.proc import Proc
from ..sim import costs
from .message import AcceptStat, CallMessage, ReplyMessage
from .portmap import IPPROTO_UDP, Portmapper
from .transport import LoopbackNetwork, UdpSocket

#: Procedure handler signature: (args list) -> int result
ProcedureHandler = Callable[[List[int]], int]


@dataclass
class RpcProgram:
    """One registered RPC program: number, version and its procedures."""

    prog: int
    vers: int
    name: str = ""
    procedures: Dict[int, ProcedureHandler] = field(default_factory=dict)
    procedure_names: Dict[int, str] = field(default_factory=dict)

    def add_procedure(self, proc_num: int, handler: ProcedureHandler, *,
                      name: str = "") -> None:
        if proc_num == 0:
            raise SimulationError("procedure 0 is reserved for NULLPROC")
        if proc_num in self.procedures:
            raise SimulationError(f"procedure {proc_num} already registered")
        self.procedures[proc_num] = handler
        self.procedure_names[proc_num] = name or f"proc{proc_num}"

    def lookup(self, proc_num: int) -> Optional[ProcedureHandler]:
        if proc_num == 0:
            return lambda args: 0      # NULLPROC always exists
        return self.procedures.get(proc_num)


class RpcServer:
    """A UDP RPC service bound to one simulated process."""

    def __init__(self, kernel, proc: Proc, network: LoopbackNetwork,
                 portmap: Portmapper, *, port: int = 2049) -> None:
        self.kernel = kernel
        self.proc = proc
        self.network = network
        self.portmap = portmap
        self.port = port
        self.programs: Dict[Tuple[int, int], RpcProgram] = {}
        self.socket: Optional[UdpSocket] = None
        self.calls_served = 0
        self.garbage_calls = 0

    # -- setup ----------------------------------------------------------------
    def register_program(self, program: RpcProgram) -> RpcProgram:
        key = (program.prog, program.vers)
        if key in self.programs:
            raise SimulationError(
                f"program {program.prog} v{program.vers} already served")
        self.programs[key] = program
        self.portmap.set(program.prog, program.vers, self.port,
                         protocol=IPPROTO_UDP)
        return program

    def start(self) -> None:
        """svc_create: open and bind the service socket."""
        if self.socket is not None:
            return
        result = self.kernel.syscall(self.proc, "socket")
        sockfd = result.unwrap()
        self.socket = self.network.lookup_fd(sockfd)
        self.kernel.syscall(self.proc, "bind", sockfd, self.port).unwrap()

    # -- the dispatch loop body ---------------------------------------------------
    def serve_one(self) -> Optional[ReplyMessage]:
        """Handle exactly one queued request (one iteration of svc_run).

        Returns the reply that was sent, or ``None`` when no request was
        queued (in which case the server blocked in recvfrom).
        """
        if self.socket is None:
            raise SimulationError("server not started")
        machine = self.kernel.machine

        received = self.kernel.syscall(self.proc, "recvfrom", self.socket.sockfd)
        if received.failed:
            return None
        datagram = received.value

        machine.charge(costs.RPC_SVC_DISPATCH)
        call = CallMessage.decode(datagram.payload, machine)
        machine.charge(costs.RPC_AUTH_CHECK)

        program = self.programs.get((call.prog, call.vers))
        if program is None:
            reply = ReplyMessage(xid=call.xid,
                                 accept_stat=AcceptStat.PROG_UNAVAIL)
            self.garbage_calls += 1
        else:
            handler = program.lookup(call.proc)
            if handler is None:
                reply = ReplyMessage(xid=call.xid,
                                     accept_stat=AcceptStat.PROC_UNAVAIL)
                self.garbage_calls += 1
            else:
                try:
                    result = handler(call.args)
                except Exception:
                    reply = ReplyMessage(xid=call.xid,
                                         accept_stat=AcceptStat.SYSTEM_ERR)
                    self.garbage_calls += 1
                else:
                    reply = ReplyMessage(xid=call.xid, result=result)
                    self.calls_served += 1

        payload = reply.encode(machine)
        self.kernel.syscall(self.proc, "sendto", self.socket.sockfd, payload,
                            datagram.source_port)
        return reply

    def block_in_svc_run(self) -> None:
        """Park the server in recvfrom waiting for the next request."""
        if self.socket is None:
            raise SimulationError("server not started")
        result = self.kernel.syscall(self.proc, "recvfrom", self.socket.sockfd)
        if result.ok:
            raise SimulationError(
                "server expected to block but a datagram was already queued")
