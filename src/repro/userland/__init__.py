"""User-level runtime: programs, the synthetic libc and syscall stubs."""

from .libc import MallocArena
from .process import CrtStartupRecord, Program

__all__ = ["MallocArena", "CrtStartupRecord", "Program"]
