"""User-level program runtime.

A :class:`Program` wraps a kernel process together with the user-level
resources a C program would have: a malloc arena, convenience memory
accessors, and — when the program is SecModule-enabled — the crt0 handshake
driver that performs Figure 1 steps 1–4 through the real syscall interface
before handing control to ``smod_client_main``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import SimulationError
from ..kernel.cred import Ucred, unprivileged
from ..kernel.proc import Proc
from .libc.malloc import MallocArena
from .libc.syscall_stubs import getpid as _getpid


@dataclass
class CrtStartupRecord:
    """What the crt0 did during startup (used by the Figure 1 tests)."""

    found_modules: List[int] = field(default_factory=list)
    session_id: Optional[int] = None
    handshake_complete: bool = False


class Program:
    """One running user-level program on the simulated system."""

    def __init__(self, kernel, proc: Proc) -> None:
        self.kernel = kernel
        self.proc = proc
        self.heap = MallocArena(kernel, proc)
        self.crt_record = CrtStartupRecord()

    # ----------------------------------------------------------------- factory
    @classmethod
    def spawn(cls, kernel, name: str, *, uid: int = 1000,
              cred: Optional[Ucred] = None) -> "Program":
        """Create a fresh process and wrap it as a Program."""
        credential = cred if cred is not None else (
            unprivileged(uid) if uid else None)
        proc = kernel.create_process(name, cred=credential) if credential \
            else kernel.create_process(name)
        return cls(kernel, proc)

    # ------------------------------------------------------------ plain libc API
    def getpid(self) -> int:
        return _getpid(self.kernel, self.proc)

    def malloc(self, size: int) -> int:
        return self.heap.malloc(size)

    def free(self, address: int) -> None:
        self.heap.free(address)

    def write_memory(self, address: int, data: bytes) -> None:
        self.proc.vmspace.write(address, data)

    def read_memory(self, address: int, length: int) -> bytes:
        return self.proc.vmspace.read(address, length)

    # --------------------------------------------------- SecModule crt0 handshake
    def smod_crt0_startup(self, extension, descriptor) -> int:
        """Run the SecModule crt0 handshake (Figure 1 steps 1–4).

        Returns the established session id.  The sequence below issues the
        same syscalls, in the same order, as the paper's crt0:

        1. ``smod_find`` for each required module;
        2. ``smod_start_session`` (the kernel forks the handle);
        3. ``smod_session_info`` issued *by the handle*;
        4. ``smod_handle_info`` issued by the client, after which the crt0
           would jump to ``smod_client_main``.
        """
        kernel = self.kernel
        # Step 1: open access to the modules we need.
        for requirement in descriptor.requirements:
            result = kernel.syscall(self.proc, "smod_find",
                                    requirement.module_name, requirement.version)
            if result.failed:
                raise SimulationError(
                    f"crt0: required module {requirement.module_name!r} "
                    f"v{requirement.version} is not registered")
            self.crt_record.found_modules.append(result.value)

        # Step 2: formal request; the kernel forcibly forks the handle.
        result = kernel.syscall(self.proc, "smod_start_session", descriptor)
        if result.failed:
            raise PermissionError(
                f"crt0: smod_start_session rejected ({result.errno.name})")
        session_id = result.value
        self.crt_record.session_id = session_id
        session = extension.sessions.get(session_id)

        # Step 3: the handle's half of the handshake.  The kernel scheduled
        # the handle; the simulation context-switches to it explicitly so the
        # cost is charged where it belongs.
        kernel.sched.switch_to(session.handle.proc)
        result = kernel.syscall(session.handle.proc, "smod_session_info", None)
        if result.failed:
            raise SimulationError(
                f"crt0: smod_session_info failed ({result.errno.name})")

        # Step 4: back to the client, which completes the synchronization.
        kernel.sched.switch_to(self.proc)
        result = kernel.syscall(self.proc, "smod_handle_info", None)
        if result.failed:
            raise SimulationError(
                f"crt0: smod_handle_info failed ({result.errno.name})")
        self.crt_record.handshake_complete = True
        return session_id

    def run_client_main(self, main: Callable[["Program"], int]) -> int:
        """Invoke the program's ``smod_client_main`` equivalent."""
        return main(self)
