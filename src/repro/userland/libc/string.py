"""String/memory routines of the synthetic libc.

These exist so that the SecModule conversion protects a libc with a
realistic mix of entry points: pure-computation routines (strlen, memcmp),
routines that read and write *client* memory through the shared mapping
(memcpy, memset, strcpy), and the allocator family in
:mod:`repro.userland.libc.malloc`.  Each routine charges a cost proportional
to the bytes it touches, so argument-size sweeps show the expected scaling.
"""

from __future__ import annotations

from ...errors import SimulationError
from ...sim import costs

#: Longest string the simulated routines will scan before declaring the
#: buffer unterminated (protects the tests from runaway loops).
MAX_SCAN = 64 * 1024


def _charge_bytes(kernel, nbytes: int) -> None:
    kernel.machine.charge_words(costs.COPY_WORD, max(1, nbytes // 4))


def memset(kernel, proc, address: int, value: int, length: int) -> int:
    """Fill ``length`` bytes at ``address`` with ``value``; returns address."""
    if length < 0:
        raise SimulationError("memset with negative length")
    proc.vmspace.write(address, bytes([value & 0xFF]) * length)
    _charge_bytes(kernel, length)
    return address


def memcpy(kernel, proc, dest: int, src: int, length: int) -> int:
    """Copy ``length`` bytes from ``src`` to ``dest``; returns dest."""
    if length < 0:
        raise SimulationError("memcpy with negative length")
    data = proc.vmspace.read(src, length)
    proc.vmspace.write(dest, data)
    _charge_bytes(kernel, 2 * length)
    return dest


def memcmp(kernel, proc, a: int, b: int, length: int) -> int:
    """Compare ``length`` bytes; returns <0, 0 or >0 like the C routine."""
    left = proc.vmspace.read(a, length)
    right = proc.vmspace.read(b, length)
    _charge_bytes(kernel, 2 * length)
    if left == right:
        return 0
    return -1 if left < right else 1


def strlen(kernel, proc, address: int) -> int:
    """Length of the NUL-terminated string at ``address``."""
    length = 0
    cursor = address
    while length < MAX_SCAN:
        chunk = proc.vmspace.read(cursor, 64)
        nul = chunk.find(b"\0")
        if nul >= 0:
            length += nul
            _charge_bytes(kernel, length + 1)
            return length
        length += len(chunk)
        cursor += len(chunk)
    raise SimulationError("unterminated string passed to strlen")


def strcpy(kernel, proc, dest: int, src: int) -> int:
    """Copy the NUL-terminated string at ``src`` to ``dest``."""
    length = strlen(kernel, proc, src)
    data = proc.vmspace.read(src, length + 1)
    proc.vmspace.write(dest, data)
    _charge_bytes(kernel, length + 1)
    return dest


def store_c_string(proc, address: int, text: str) -> int:
    """Test/example helper: place a NUL-terminated string in client memory."""
    encoded = text.encode("utf-8") + b"\0"
    proc.vmspace.write(address, encoded)
    return len(encoded)


def load_c_string(proc, address: int, max_length: int = 4096) -> str:
    """Test/example helper: read a NUL-terminated string from client memory."""
    raw = proc.vmspace.read(address, max_length)
    nul = raw.find(b"\0")
    if nul < 0:
        raise SimulationError("unterminated string in load_c_string")
    return raw[:nul].decode("utf-8")
