"""The synthetic user-level C library (malloc, string routines, syscall stubs)."""

from . import string, syscall_stubs
from .malloc import ALIGNMENT, Block, GROWTH_QUANTUM, MallocArena
from .string import (
    load_c_string,
    memcmp,
    memcpy,
    memset,
    store_c_string,
    strcpy,
    strlen,
)

__all__ = [
    "string", "syscall_stubs",
    "ALIGNMENT", "Block", "GROWTH_QUANTUM", "MallocArena",
    "load_c_string", "memcmp", "memcpy", "memset", "store_c_string",
    "strcpy", "strlen",
]
