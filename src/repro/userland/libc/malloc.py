"""A user-level ``malloc`` built on ``obreak``.

The paper's headline retrofit example is ``malloc()``: because the handle
shares the client's entire data/heap/stack, even the allocator — whose whole
job is handing out addresses *inside the client's heap* — can be moved into
a SecModule and keep "working identically to its man-page specification".

This allocator is a simple first-fit free-list arena over the process break:
it grows the heap through the ``obreak`` syscall (so heap growth triggers
the modified ``sys_obreak``/``uvm_map`` shared-mapping path when the caller
is half of a SecModule pair), carves blocks out of the grown region, and
coalesces neighbours on free.  It is used three ways:

* directly by ordinary simulated programs (the baseline);
* as the *implementation* behind the SecModule libc's protected ``malloc``;
* by the property-based tests, which hammer it with allocate/free sequences
  and check the structural invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...errors import SimulationError
from ...sim import costs

#: Allocation granularity (bytes); mirrors the 16-byte alignment of phkmalloc.
ALIGNMENT = 16
#: How much extra heap to request from obreak per growth, minimum.
GROWTH_QUANTUM = 16 * 4096


def _align(size: int) -> int:
    return (size + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass
class Block:
    """One block in the arena (allocated or free)."""

    address: int
    size: int
    free: bool = True

    @property
    def end(self) -> int:
        return self.address + self.size


class MallocArena:
    """First-fit allocator over a process's heap."""

    def __init__(self, kernel, proc) -> None:
        self.kernel = kernel
        self.proc = proc
        self.blocks: List[Block] = []
        self.heap_start: Optional[int] = None
        self.heap_end: Optional[int] = None
        self.allocations = 0
        self.frees = 0
        self.failed_allocations = 0

    # ------------------------------------------------------------------ helpers
    def _grow(self, at_least: int) -> None:
        """Extend the heap through obreak by at least ``at_least`` bytes."""
        want = max(at_least, GROWTH_QUANTUM)
        current_break = self.proc.vmspace.brk
        result = self.kernel.syscall(self.proc, "obreak", current_break + want)
        if result.failed:
            raise MemoryError("simulated obreak failed")
        new_break = result.value
        if self.heap_start is None:
            self.heap_start = current_break
        start = current_break if self.heap_end is None else self.heap_end
        self.blocks.append(Block(address=start, size=new_break - start, free=True))
        self.heap_end = new_break

    def _find_free(self, size: int) -> Optional[Block]:
        for block in self.blocks:
            if block.free and block.size >= size:
                return block
        return None

    def _coalesce(self) -> None:
        self.blocks.sort(key=lambda b: b.address)
        merged: List[Block] = []
        for block in self.blocks:
            if merged and merged[-1].free and block.free and merged[-1].end == block.address:
                merged[-1].size += block.size
            else:
                merged.append(block)
        self.blocks = merged

    # ------------------------------------------------------------------ API
    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the simulated address.

        Raises :class:`MemoryError` when the heap cannot grow.
        """
        if size <= 0:
            raise SimulationError("malloc of non-positive size")
        self.kernel.machine.charge(costs.MALLOC_BODY)
        size = _align(size)
        block = self._find_free(size)
        if block is None:
            try:
                self._grow(size)
            except MemoryError:
                self.failed_allocations += 1
                raise
            self._coalesce()
            block = self._find_free(size)
            if block is None:
                self.failed_allocations += 1
                raise MemoryError("arena could not satisfy allocation after growth")
        if block.size > size:
            remainder = Block(address=block.address + size,
                              size=block.size - size, free=True)
            block.size = size
            self.blocks.append(remainder)
            self.blocks.sort(key=lambda b: b.address)
        block.free = False
        self.allocations += 1
        return block.address

    def free(self, address: int) -> None:
        """Release a previously allocated block; double free raises."""
        self.kernel.machine.charge(costs.MALLOC_BODY)
        for block in self.blocks:
            if block.address == address:
                if block.free:
                    raise SimulationError(f"double free at {address:#x}")
                block.free = True
                self.frees += 1
                self._coalesce()
                return
        raise SimulationError(f"free of unknown address {address:#x}")

    def calloc(self, count: int, size: int) -> int:
        """Allocate and zero ``count * size`` bytes."""
        total = count * size
        address = self.malloc(total)
        self.proc.vmspace.write(address, bytes(min(total, 4096)))
        return address

    def realloc(self, address: int, new_size: int) -> int:
        """Grow/shrink an allocation, copying the old contents."""
        old = self.block_at(address)
        if old is None or old.free:
            raise SimulationError(f"realloc of unallocated address {address:#x}")
        new_address = self.malloc(new_size)
        copy_len = min(old.size, _align(new_size), 4096)
        data = self.proc.vmspace.read(address, copy_len)
        self.proc.vmspace.write(new_address, data)
        self.kernel.machine.charge_words(costs.COPY_WORD, copy_len // 4)
        self.free(address)
        return new_address

    # ------------------------------------------------------------------ queries
    def block_at(self, address: int) -> Optional[Block]:
        for block in self.blocks:
            if block.address == address:
                return block
        return None

    def allocated_bytes(self) -> int:
        return sum(b.size for b in self.blocks if not b.free)

    def free_bytes(self) -> int:
        return sum(b.size for b in self.blocks if b.free)

    def check_invariants(self) -> None:
        """Structural invariants the property tests assert after every step."""
        ordered = sorted(self.blocks, key=lambda b: b.address)
        for first, second in zip(ordered, ordered[1:]):
            if first.end > second.address:
                raise SimulationError(
                    f"overlapping heap blocks at {first.address:#x} and "
                    f"{second.address:#x}")
        if self.heap_start is not None and self.heap_end is not None:
            total = sum(b.size for b in self.blocks)
            if total != self.heap_end - self.heap_start:
                raise SimulationError(
                    "heap blocks do not tile the grown region exactly")
