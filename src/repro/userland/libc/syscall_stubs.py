"""Thin user-level wrappers over the simulated system calls.

These play the role of the libc syscall stubs (``getpid()``, ``fork()``,
``brk()``...) that a C program calls without thinking about trap mechanics.
Keeping them as functions (rather than methods on Proc) mirrors the layering
of the real system and gives the SecModule libc conversion its "native"
implementations to wrap.
"""

from __future__ import annotations

from ...kernel.errno import SyscallResult


def getpid(kernel, proc) -> int:
    """Return the calling process's pid (the paper's baseline benchmark)."""
    return kernel.syscall(proc, "getpid").unwrap()


def getppid(kernel, proc) -> int:
    return kernel.syscall(proc, "getppid").unwrap()


def fork(kernel, proc) -> int:
    """Fork; returns the child pid (the simulation has no 'return twice')."""
    return kernel.syscall(proc, "fork").unwrap()


def brk(kernel, proc, new_break: int) -> int:
    return kernel.syscall(proc, "obreak", new_break).unwrap()


def kill(kernel, proc, pid: int, signo: int) -> SyscallResult:
    return kernel.syscall(proc, "kill", pid, signo)


def wait4(kernel, proc, pid: int) -> SyscallResult:
    return kernel.syscall(proc, "wait4", pid)


def msgget(kernel, proc, key: int, flags: int = 0) -> int:
    return kernel.syscall(proc, "msgget", key, flags).unwrap()


def msgsnd(kernel, proc, msqid: int, mtype: int, payload=()) -> SyscallResult:
    return kernel.syscall(proc, "msgsnd", msqid, mtype, tuple(payload))


def msgrcv(kernel, proc, msqid: int, mtype: int = 0) -> SyscallResult:
    return kernel.syscall(proc, "msgrcv", msqid, mtype)
