"""Overload-protection benchmark: the ``abl-overload`` knee figure.

The paper measures protected-call cost under well-behaved load; this
experiment measures what the served deployment does to load it did not
ask for.  Open-loop arrivals are offered to a pooled backend at a sweep
of load ratios (offered rate / pool capacity) through and past
saturation, twice:

* **unprotected** — the pool queues everything (``overflow="queue"``,
  unbounded).  Past saturation the backlog, and with it the tail
  latency, grows without bound; almost nothing completes inside the
  deadline, so *goodput* (on-time completions per virtual millisecond)
  collapses even though raw throughput stays at capacity.
* **protected** — the same arrivals with deadline shedding on
  (:class:`~repro.control.overload.OverloadConfig` ``deadline_us``): a
  call whose projected virtual wait already blows the deadline is shed
  at admission, before it queues.  The queue can never hold more than a
  deadline's worth of work, so every served call is on time and goodput
  holds at capacity through 2x overload — the knee the figure shows.

On-time means the pool wait stayed within the deadline — exactly the
predicate the shedder enforces, so the protected leg is on time by
construction and the unprotected leg shows what the same predicate
measures when nothing enforces it.

A second, smaller leg demonstrates token-bucket **admission control** at
the dispatcher entry: a client hammering bound calls against a bucket
refilling slower than it offers sees deterministic refusals, and the
mean cost of a refusal (resolve + keyed probe + admission check) is a
small fraction of a served call — refusing is honest but cheap.

Everything here is virtual-clock-deterministic; host wall time lives at
the payload top level where the byte-exact regression gate never looks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..control.overload import OverloadConfig, OverloadController
from ..hw.machine import make_paper_machine
from ..kernel.kernel import Kernel
from ..secmodule.libc_conversion import build_test_module
from ..secmodule.protection import ProtectionMode
from ..secmodule.smod_syscalls import install_secmodule
from ..serve.attachment_pool import PoolConfig
from ..serve.frontend import ServiceFrontend, ServiceConfig
from .report import render_table

#: Offered-load ratios (offered rate / pool capacity) the knee sweeps.
DEFAULT_RATIOS: Tuple[float, ...] = (0.5, 0.8, 1.0, 1.2, 1.5, 2.0)
FAST_RATIOS: Tuple[float, ...] = (0.5, 1.0, 2.0)
#: Open-loop arrivals offered per (leg, ratio) point.
DEFAULT_CALLS = 600
FAST_CALLS = 320
#: Pool workers: capacity = attachments / service time.
POOL_ATTACHMENTS = 4
#: The latency deadline (virtual us) both legs are judged against and
#: the protected leg sheds to — about six service times.
DEADLINE_US = 40.0
#: Calibration calls (spaced far apart: no waits) sizing the sweep.
CALIBRATION_CALLS = 32
CALIBRATION_SPACING_US = 100.0
#: Admission leg: offered bound calls and the bucket starving them.
DEFAULT_ADMIT_CALLS = 200
FAST_ADMIT_CALLS = 64
ADMIT_RATE_PER_US = 0.07          # ~1 token per 14us vs ~7us per call
ADMIT_BURST = 8.0


@dataclass
class OverloadPoint:
    """One (leg, offered-load ratio) measurement."""

    protected: bool
    ratio: float
    interval_us: float
    offered: int
    served: int
    on_time: int
    shed: int
    #: latency (arrival -> completion, virtual us) stats over served calls
    p50_us: float
    p95_us: float
    max_us: float
    #: on-time completions per virtual millisecond of the offered window
    goodput_per_ms: float

    @property
    def leg(self) -> str:
        return "protected" if self.protected else "unprotected"


@dataclass
class AdmissionReport:
    """The token-bucket mini-leg: refusals are deterministic and cheap."""

    offered: int
    admitted: int
    refused: int
    rate_per_us: float
    burst: float
    mean_admitted_us: float
    mean_refused_us: float

    @property
    def refusal_cost_ratio(self) -> float:
        if self.mean_admitted_us <= 0.0:
            return 0.0
        return self.mean_refused_us / self.mean_admitted_us


@dataclass
class OverloadReport:
    """Both knee legs, the admission leg, and the acceptance checks."""

    ratios: Tuple[float, ...]
    calls: int
    attachments: int
    deadline_us: float
    service_us: float
    mhz: float
    points: List[OverloadPoint] = field(default_factory=list)
    admission: AdmissionReport = None  # type: ignore[assignment]

    # -- views ---------------------------------------------------------------
    def leg(self, protected: bool) -> List[OverloadPoint]:
        return [p for p in self.points if p.protected == protected]

    def _at_max_ratio(self, protected: bool) -> OverloadPoint:
        return max(self.leg(protected), key=lambda p: p.ratio)

    # -- the acceptance-bar checks ------------------------------------------
    def protected_goodput_holds(self) -> bool:
        """Protected goodput at the deepest overload must stay within 20%
        of the leg's peak — the knee flattens instead of collapsing."""
        leg = self.leg(True)
        if not leg:
            return False
        peak = max(p.goodput_per_ms for p in leg)
        return self._at_max_ratio(True).goodput_per_ms >= 0.8 * peak

    def protected_tail_bounded(self) -> bool:
        """Protected p95 latency stays within deadline + service slack."""
        bound = self.deadline_us + 2.0 * self.service_us
        return self._at_max_ratio(True).p95_us <= bound

    def unprotected_tail_blows(self) -> bool:
        """Unprotected p95 at the deepest overload dwarfs the deadline."""
        return self._at_max_ratio(False).p95_us > 4.0 * self.deadline_us

    def unprotected_goodput_collapses(self) -> bool:
        """Without protection, on-time goodput at the deepest overload
        falls below half of what shedding preserves."""
        return (self._at_max_ratio(False).goodput_per_ms
                < 0.5 * self._at_max_ratio(True).goodput_per_ms)

    def admission_refusal_cheap(self) -> bool:
        """A refused call costs a small fraction of a served one."""
        return (self.admission.refused > 0
                and self.admission.refusal_cost_ratio < 0.25)

    @property
    def bench_total_calls(self) -> int:
        return (sum(p.offered for p in self.points)
                + CALIBRATION_CALLS + self.admission.offered)

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        rows = []
        for p in self.points:
            rows.append([
                p.leg,
                f"{p.ratio:.1f}x",
                f"{p.offered}",
                f"{p.served}",
                f"{p.on_time}",
                f"{p.shed}",
                f"{p.goodput_per_ms:,.0f}",
                f"{p.p50_us:.1f}",
                f"{p.p95_us:.1f}",
                f"{p.max_us:.1f}",
            ])
        table = render_table(
            ["leg", "load", "offered", "served", "on time", "shed",
             "goodput/ms", "p50 us", "p95 us", "max us"],
            rows,
            title=(f"Overload knee: {self.attachments} workers @ "
                   f"{self.service_us:.2f}us/call, deadline "
                   f"{self.deadline_us:.0f}us, offered "
                   f"{min(self.ratios):.1f}x -> {max(self.ratios):.1f}x "
                   f"capacity"))
        adm = self.admission
        summary = (
            f"\nadmission leg: {adm.offered} offered, {adm.admitted} "
            f"admitted, {adm.refused} refused (bucket "
            f"{adm.rate_per_us:.3f} tokens/us, burst {adm.burst:.0f}); "
            f"served call {adm.mean_admitted_us:.2f}us vs refusal "
            f"{adm.mean_refused_us:.2f}us "
            f"({adm.refusal_cost_ratio:.1%} of a served call)"
            f"\nprotected goodput holds within 20% of peak at "
            f"{max(self.ratios):.1f}x: "
            f"{'yes' if self.protected_goodput_holds() else 'NO'}"
            f"\nprotected p95 bounded by deadline + 2x service: "
            f"{'yes' if self.protected_tail_bounded() else 'NO'}"
            f"\nunprotected p95 exceeds 4x deadline at "
            f"{max(self.ratios):.1f}x: "
            f"{'yes' if self.unprotected_tail_blows() else 'NO'}"
            f"\nunprotected goodput collapses below half of protected: "
            f"{'yes' if self.unprotected_goodput_collapses() else 'NO'}"
            f"\nadmission refusals cheap (<25% of a served call): "
            f"{'yes' if self.admission_refusal_cheap() else 'NO'}")
        return table + summary

    def as_dict(self) -> Dict[str, object]:
        """Deterministic (virtual-clock) metrics only: this block sits
        inside the byte-exact ``repro bench diff`` gate."""
        return {
            "ratios": list(self.ratios),
            "calls": self.calls,
            "attachments": self.attachments,
            "deadline_us": self.deadline_us,
            "service_us": self.service_us,
            "mhz": self.mhz,
            "points": [
                {"leg": p.leg, "ratio": p.ratio,
                 "interval_us": p.interval_us, "offered": p.offered,
                 "served": p.served, "on_time": p.on_time, "shed": p.shed,
                 "p50_us": p.p50_us, "p95_us": p.p95_us,
                 "max_us": p.max_us, "goodput_per_ms": p.goodput_per_ms}
                for p in self.points],
            "admission": {
                "offered": self.admission.offered,
                "admitted": self.admission.admitted,
                "refused": self.admission.refused,
                "rate_per_us": self.admission.rate_per_us,
                "burst": self.admission.burst,
                "mean_admitted_us": self.admission.mean_admitted_us,
                "mean_refused_us": self.admission.mean_refused_us,
                "refusal_cost_ratio": self.admission.refusal_cost_ratio},
            "protected_goodput_holds": self.protected_goodput_holds(),
            "protected_tail_bounded": self.protected_tail_bounded(),
            "unprotected_tail_blows": self.unprotected_tail_blows(),
            "unprotected_goodput_collapses":
                self.unprotected_goodput_collapses(),
            "admission_refusal_cheap": self.admission_refusal_cheap(),
        }


def _build_frontend(seed: int, *, deadline_us: float = 0.0
                    ) -> Tuple[object, ServiceFrontend, object]:
    """One fresh system with a pooled secmodule backend."""
    machine = make_paper_machine(seed=seed)
    kernel = Kernel(machine=machine).boot()
    extension = install_secmodule(kernel)
    registered = extension.registry.register(
        build_test_module(), uid=0, protection=ProtectionMode.ENCRYPT)
    overload = (OverloadConfig(deadline_us=deadline_us)
                if deadline_us > 0.0 else None)
    frontend = ServiceFrontend(
        kernel, extension,
        config=ServiceConfig(
            pool=PoolConfig(max_attachments=POOL_ATTACHMENTS),
            overload=overload))
    record = frontend.register_backend("secmodule", [registered],
                                       policy="pooled:64")
    return machine, frontend, record


def _calibrate_service_us(seed: int) -> float:
    """Mean pooled service time, measured with arrivals spaced so far
    apart that no call ever waits (its own fresh system, discarded)."""
    machine, frontend, record = _build_frontend(seed)
    base_us = machine.meter.profile.microseconds(machine.clock.cycles)
    total = 0.0
    for index in range(CALIBRATION_CALLS):
        arrival = base_us + index * CALIBRATION_SPACING_US
        outcome, checkout = frontend.call_pooled(
            record, "test_incr", index, arrival_us=arrival)
        if not outcome.ok or checkout.wait_us:
            raise RuntimeError("overload calibration call waited or failed")
        total += checkout.attachment.free_at_us - arrival
    return total / CALIBRATION_CALLS


def _percentile(sorted_values: List[float], pct: float) -> float:
    if not sorted_values:
        return 0.0
    index = max(0, int(len(sorted_values) * pct + 0.999999) - 1)
    return sorted_values[min(index, len(sorted_values) - 1)]


def _measure_point(ratio: float, *, protected: bool, calls: int,
                   service_us: float, seed: int) -> OverloadPoint:
    """One fresh system per point: offer ``calls`` open-loop arrivals at
    ``ratio`` times pool capacity and account every completion."""
    machine, frontend, record = _build_frontend(
        seed, deadline_us=DEADLINE_US if protected else 0.0)
    capacity_per_us = POOL_ATTACHMENTS / service_us
    interval_us = 1.0 / (capacity_per_us * ratio)
    base_us = machine.meter.profile.microseconds(machine.clock.cycles)
    latencies: List[float] = []
    on_time = 0
    shed = 0
    for index in range(calls):
        arrival = base_us + index * interval_us
        outcome, checkout = frontend.call_pooled(
            record, "test_incr", index, arrival_us=arrival)
        if checkout.refused:
            shed += 1
            continue
        if not outcome.ok:
            raise RuntimeError(f"pooled call failed at ratio {ratio}")
        # the checkin horizon is this call's completion time
        latencies.append(checkout.attachment.free_at_us - arrival)
        if checkout.wait_us <= DEADLINE_US:
            on_time += 1
    latencies.sort()
    offered_window_us = calls * interval_us
    return OverloadPoint(
        protected=protected, ratio=ratio, interval_us=interval_us,
        offered=calls, served=len(latencies), on_time=on_time, shed=shed,
        p50_us=_percentile(latencies, 0.50),
        p95_us=_percentile(latencies, 0.95),
        max_us=latencies[-1] if latencies else 0.0,
        goodput_per_ms=on_time * 1000.0 / offered_window_us)


def _measure_admission(calls: int, seed: int) -> AdmissionReport:
    """Token-bucket admission at the dispatcher entry: a hammering
    client sees deterministic refusals, each far cheaper than service."""
    machine, frontend, record = _build_frontend(seed)
    binding = frontend.attach(record)
    dispatcher = frontend.extension.dispatcher
    dispatcher.overload = OverloadController(OverloadConfig(
        admission_rate_per_us=ADMIT_RATE_PER_US,
        admission_burst=ADMIT_BURST))
    admitted = refused = 0
    admitted_cycles = refused_cycles = 0
    for index in range(calls):
        mark = machine.clock.checkpoint()
        outcome = frontend.call_bound(binding.binding_id,
                                      "test_incr", index)
        cycles = machine.clock.since(mark).cycles
        if outcome.ok:
            admitted += 1
            admitted_cycles += cycles
        else:
            refused += 1
            refused_cycles += cycles
    mhz = machine.spec.mhz
    return AdmissionReport(
        offered=calls, admitted=admitted, refused=refused,
        rate_per_us=ADMIT_RATE_PER_US, burst=ADMIT_BURST,
        mean_admitted_us=(admitted_cycles / admitted / mhz
                          if admitted else 0.0),
        mean_refused_us=(refused_cycles / refused / mhz
                         if refused else 0.0))


def run_overload_sweep(*, ratios: Sequence[float] = DEFAULT_RATIOS,
                       calls: int = DEFAULT_CALLS,
                       admit_calls: int = DEFAULT_ADMIT_CALLS,
                       seed: int = 0x0AD_10) -> OverloadReport:
    """Measure both knee legs plus the admission leg."""
    if not ratios or min(ratios) <= 0.0:
        raise ValueError("load ratios must be positive")
    if calls < 10 or admit_calls < 10:
        raise ValueError("calls and admit_calls must be >= 10")
    service_us = _calibrate_service_us(seed)
    report = OverloadReport(
        ratios=tuple(ratios), calls=calls, attachments=POOL_ATTACHMENTS,
        deadline_us=DEADLINE_US, service_us=service_us,
        mhz=make_paper_machine(seed=seed).spec.mhz)
    for protected in (False, True):
        for ratio in ratios:
            report.points.append(_measure_point(
                ratio, protected=protected, calls=calls,
                service_us=service_us, seed=seed))
    report.admission = _measure_admission(admit_calls, seed)
    return report


def run_abl_overload() -> OverloadReport:
    """Harness entry point (the ``abl-overload`` experiment id)."""
    return run_overload_sweep()
