"""Benchmark harness: regeneration of every table and figure of the paper."""

from .ablations import (
    run_argument_size_ablation,
    run_hardening_ablation,
    run_machine_sensitivity,
    run_marshalling_ablation,
    run_protection_ablation,
)
from .figure7 import Figure7Report, reproduce_figure7
from .figure8 import Figure8Row, Figure8Table, PAPER_RESULTS, reproduce_figure8
from .figures123 import (
    FIGURE1_EXPECTED_SEQUENCE,
    Figure1Report,
    Figure2Report,
    Figure3Report,
    reproduce_figure1,
    reproduce_figure2,
    reproduce_figure3,
)
from .harness import EXPERIMENTS, ExperimentRun, full_report, run_all, run_experiment
from .report import format_ratio, format_us, render_table, section

__all__ = [
    "run_argument_size_ablation", "run_hardening_ablation",
    "run_machine_sensitivity", "run_marshalling_ablation",
    "run_protection_ablation",
    "Figure7Report", "reproduce_figure7",
    "Figure8Row", "Figure8Table", "PAPER_RESULTS", "reproduce_figure8",
    "FIGURE1_EXPECTED_SEQUENCE", "Figure1Report", "Figure2Report",
    "Figure3Report", "reproduce_figure1", "reproduce_figure2",
    "reproduce_figure3",
    "EXPERIMENTS", "ExperimentRun", "full_report", "run_all", "run_experiment",
    "format_ratio", "format_us", "render_table", "section",
]
