"""Batched-dispatch benchmark: the ``abl-batch`` experiment.

The paper's Figure 8 breakdown shows the two context switches per protected
call dominating dispatch latency.  The batched call path amortizes them — a
client-side queue flushes N calls through one ``sys_smod_call_batch`` trap,
paying one trap, one request/reply message pair and one context-switch pair
for the whole queue.  This benchmark sweeps the queue depth from 1 to 64
over the paper-default configuration and reports latency-per-call and
calls/sec at each point.

Two invariants anchor the sweep:

* batch size 1 flushes on the ordinary single-call path, so its cycles/call
  equals the Figure 8 dispatch cost **exactly** (the report cross-checks it
  against a plain single-call loop over the same workload);
* cycles/call decreases monotonically with batch size — each doubling
  spreads the fixed trap + switch + message cost over twice the calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..secmodule.api import SecModuleSystem
from ..secmodule.dispatch import DispatchConfig
from ..sim import costs
from .report import render_table

#: Queue depths the headline sweep measures.
DEFAULT_SIZES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
#: Total protected calls per point — divisible by every default size.
DEFAULT_CALLS = 192


@dataclass
class BatchPoint:
    """One measured queue depth."""

    batch_size: int
    total_calls: int
    cycles: int
    context_switches: int
    traps: int

    @property
    def cycles_per_call(self) -> float:
        return self.cycles / self.total_calls

    @property
    def switches_per_call(self) -> float:
        return self.context_switches / self.total_calls


@dataclass
class BatchReport:
    """The full sweep plus the single-call cross-check."""

    sizes: Tuple[int, ...]
    total_calls: int
    mhz: float
    points: List[BatchPoint] = field(default_factory=list)
    #: cycles of a plain ``dispatcher.call`` loop over the same workload
    single_call_cycles: int = 0

    def point(self, batch_size: int) -> BatchPoint:
        for point in self.points:
            if point.batch_size == batch_size:
                return point
        raise KeyError(batch_size)

    @property
    def baseline_cycles_per_call(self) -> float:
        """The single-call reference loop's cycles/call (always measured)."""
        return self.single_call_cycles / self.total_calls

    # -- the acceptance-bar checks ------------------------------------------
    def batch1_matches_single_call(self) -> bool:
        """Queue depth 1 must be cycle-identical to per-call dispatch
        (vacuously true when the sweep skips depth 1)."""
        if 1 not in self.sizes:
            return True
        return self.point(1).cycles == self.single_call_cycles

    def monotonically_decreasing(self) -> bool:
        """cycles/call must fall as the queue deepens."""
        per_call = [p.cycles_per_call for p in self.points]
        return all(a > b for a, b in zip(per_call, per_call[1:]))

    def speedup(self, batch_size: int) -> float:
        return self.baseline_cycles_per_call / self.point(batch_size).cycles_per_call

    def us_per_call(self, point: BatchPoint) -> float:
        return point.cycles_per_call / self.mhz

    def calls_per_second(self, point: BatchPoint) -> float:
        return 1e6 / self.us_per_call(point)

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        rows = []
        for point in self.points:
            rows.append([
                point.batch_size,
                f"{point.cycles_per_call:,.1f}",
                f"{self.us_per_call(point):.3f}",
                f"{self.calls_per_second(point):,.0f}",
                f"{point.switches_per_call:.3f}",
                f"{self.speedup(point.batch_size):.2f}x",
            ])
        table = render_table(
            ["batch size", "cycles/call", "us/call", "calls/sec",
             "switches/call", "speedup"],
            rows,
            title=(f"Batched dispatch: {self.total_calls} calls/point, "
                   f"paper-default config"))
        if 1 in self.sizes:
            check = ("identical" if self.batch1_matches_single_call()
                     else "MISMATCH")
            reference = (
                f"\nbatch size 1 vs single-call dispatch: {check} "
                f"({self.point(1).cycles:,} vs "
                f"{self.single_call_cycles:,} cycles)")
        else:
            reference = (
                f"\nsingle-call reference: "
                f"{self.baseline_cycles_per_call:,.1f} cycles/call")
        summary = (
            f"{reference}"
            f"\ncycles/call monotonically decreasing: "
            f"{'yes' if self.monotonically_decreasing() else 'NO'}")
        return table + summary


def _fresh_session(seed: int):
    """A paper-default system warmed by one call (lazy state populated)."""
    system = SecModuleSystem.create(seed=seed, include_libc=False)
    system.call("test_incr", 0)
    return system


def _workload(calls: int) -> List[Tuple[str, Tuple[int, ...]]]:
    return [("test_incr", (i,)) for i in range(calls)]


def run_batch_sweep(*, sizes: Sequence[int] = DEFAULT_SIZES,
                    calls: int = DEFAULT_CALLS,
                    seed: int = 0xBA7C_4) -> BatchReport:
    """Measure the sweep: one fresh system per queue depth, same workload."""
    if not sizes or min(sizes) < 1:
        raise ValueError("batch sizes must be positive")

    # the single-call cross-check: a plain per-call loop, same warmup
    reference = _fresh_session(seed)
    mark = reference.machine.clock.checkpoint()
    for name, args in _workload(calls):
        reference.extension.dispatcher.call(reference.session, name, *args)
    single_cycles = reference.machine.clock.since(mark).cycles

    report = BatchReport(sizes=tuple(sizes), total_calls=calls,
                         mhz=reference.machine.spec.mhz,
                         single_call_cycles=single_cycles)
    for batch_size in sizes:
        system = _fresh_session(seed)
        meter = system.machine.meter
        switches_before = meter.count(costs.CONTEXT_SWITCH)
        traps_before = meter.count(costs.TRAP_ENTRY)
        mark = system.machine.clock.checkpoint()
        outcome = system.extension.dispatcher.call_batch(
            system.session, _workload(calls),
            config=DispatchConfig(batch_size=batch_size))
        cycles = system.machine.clock.since(mark).cycles
        if not outcome.ok:
            raise RuntimeError(
                f"batch sweep at size {batch_size} had denied calls")
        report.points.append(BatchPoint(
            batch_size=batch_size,
            total_calls=calls,
            cycles=cycles,
            context_switches=meter.count(costs.CONTEXT_SWITCH) - switches_before,
            traps=meter.count(costs.TRAP_ENTRY) - traps_before,
        ))
    return report


def run_abl_batch() -> BatchReport:
    """Harness entry point (the ``abl-batch`` experiment id)."""
    return run_batch_sweep()
