"""Figure 7 reproduction: the test-system description.

The paper's Figure 7 is an abbreviated dmesg of the measurement machine.
The reproduction's equivalent is the machine model every benchmark runs on;
this module renders it in the same style and exposes the fields tests check
(OpenBSD 3.6, Pentium III at 599 MHz, 512 KB L2, ~512 MB RAM, HZ = 100).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..hw.machine import MachineSpec, OPENBSD36_PIII


@dataclass
class Figure7Report:
    """Structured + rendered form of the test-system description."""

    spec: MachineSpec
    lines: List[str]

    @property
    def mhz(self) -> float:
        return self.spec.mhz

    @property
    def hz(self) -> int:
        return self.spec.hz

    def render(self) -> str:
        header = "Figure 7: Abbreviated Test System Information (reproduced)"
        return "\n".join([header, "-" * len(header), *self.lines])


def reproduce_figure7(spec: MachineSpec = OPENBSD36_PIII) -> Figure7Report:
    """Build the Figure 7 report for the (default: paper) machine."""
    return Figure7Report(spec=spec, lines=spec.dmesg())
