"""The experiment harness: every table and figure, one entry point each.

``EXPERIMENTS`` maps experiment ids (as used in DESIGN.md's per-experiment
index and EXPERIMENTS.md) to runner callables that return an object with a
``render()`` method.  The CLI and the "regenerate everything" helper iterate
over this table, so adding an experiment is one new entry here plus its
benchmark file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..workloads.policies import run_keynote_policy, run_policy_chain_sweep
from .ablations import (
    run_argument_size_ablation,
    run_hardening_ablation,
    run_machine_sensitivity,
    run_marshalling_ablation,
    run_protection_ablation,
)
from .batch import run_abl_batch
from .figure7 import reproduce_figure7
from .pool import run_abl_pool
from .figure8 import reproduce_figure8
from .figures123 import reproduce_figure1, reproduce_figure2, reproduce_figure3
from .report import render_table, section
from .throughput import run_abl_throughput


@dataclass(frozen=True)
class ExperimentSpec:
    """One regenerable experiment."""

    experiment_id: str
    title: str
    runner: Callable[[], object]
    kind: str = "figure"          # "figure" | "table" | "ablation"


def _policy_sweep_report():
    sweep = run_policy_chain_sweep()
    keynote = run_keynote_policy()
    rows = [[p.label, p.complexity, f"{p.mean_us_per_call:.3f}"]
            for p in sweep.points + keynote.points]
    text = render_table(["policy", "complexity", "microsec/CALL"], rows,
                        title="Policy complexity sweep (synthetic chains + KeyNote)")
    text += (f"\n\nper-clause cost (synthetic chain slope): "
             f"{sweep.per_clause_cost_us():.4f} us/clause")

    class _Report:
        def __init__(self, rendered: str) -> None:
            self._rendered = rendered
            self.sweep = sweep
            self.keynote = keynote

        def render(self) -> str:
            return self._rendered

    return _Report(text)


#: Every experiment the harness can regenerate, keyed by experiment id.
EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "fig1": ExperimentSpec("fig1", "SecModule initialization sequence",
                           reproduce_figure1),
    "fig2": ExperimentSpec("fig2", "Address space layout", reproduce_figure2),
    "fig3": ExperimentSpec("fig3", "Stack manipulations", reproduce_figure3),
    "fig7": ExperimentSpec("fig7", "Test system information", reproduce_figure7),
    "fig8": ExperimentSpec("fig8", "Performance comparisons", reproduce_figure8,
                           kind="table"),
    "abl-policy": ExperimentSpec("abl-policy", "Policy complexity sweep",
                                 _policy_sweep_report, kind="ablation"),
    "abl-hardening": ExperimentSpec("abl-hardening", "§4.4 hardening modes",
                                    run_hardening_ablation, kind="ablation"),
    "abl-marshalling": ExperimentSpec("abl-marshalling",
                                      "Shared-VM vs explicit-copy marshalling",
                                      run_marshalling_ablation, kind="ablation"),
    "abl-protection": ExperimentSpec("abl-protection", "Text protection modes",
                                     run_protection_ablation, kind="ablation"),
    "abl-argsize": ExperimentSpec("abl-argsize", "Argument-size scaling",
                                  run_argument_size_ablation, kind="ablation"),
    "abl-machine": ExperimentSpec("abl-machine", "Machine sensitivity",
                                  run_machine_sensitivity, kind="ablation"),
    "abl-throughput": ExperimentSpec(
        "abl-throughput",
        "Multi-client throughput and the policy-decision cache",
        run_abl_throughput, kind="ablation"),
    "abl-batch": ExperimentSpec(
        "abl-batch",
        "Batched dispatch: amortizing the two context switches",
        run_abl_batch, kind="ablation"),
    "abl-pool": ExperimentSpec(
        "abl-pool",
        "Handle pooling: one handle co-process serving many sessions",
        run_abl_pool, kind="ablation"),
}


@dataclass
class ExperimentRun:
    """An executed experiment: the spec, its result object and rendering."""

    spec: ExperimentSpec
    result: object
    rendered: str


def run_experiment(experiment_id: str) -> ExperimentRun:
    """Run one experiment by id."""
    spec = EXPERIMENTS[experiment_id]
    result = spec.runner()
    rendered = result.render() if hasattr(result, "render") else str(result)
    return ExperimentRun(spec=spec, result=result, rendered=rendered)


def run_all(experiment_ids: Optional[List[str]] = None) -> List[ExperimentRun]:
    """Run several (default: all) experiments in DESIGN.md order."""
    ids = experiment_ids or list(EXPERIMENTS)
    return [run_experiment(experiment_id) for experiment_id in ids]


def full_report(runs: List[ExperimentRun]) -> str:
    """Concatenate experiment renderings into one report document."""
    parts = []
    for run in runs:
        parts.append(section(f"[{run.spec.experiment_id}] {run.spec.title}",
                             run.rendered))
    return "\n".join(parts)
