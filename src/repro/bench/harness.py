"""The experiment harness: every table and figure, one entry point each.

``EXPERIMENTS`` maps experiment ids (as used in DESIGN.md's per-experiment
index and EXPERIMENTS.md) to runner callables that return an object with a
``render()`` method.  The CLI and the "regenerate everything" helper iterate
over this table, so adding an experiment is one new entry here plus its
benchmark file.

The harness also exports every run machine-readably: ``run_experiment``
with an ``export_dir`` (the CLI passes the working directory, i.e. the repo
root) writes ``BENCH_<experiment id>.json`` next to the printed report, so
the perf trajectory of a checkout is diffable across commits and CI can
upload the files as build artifacts.
"""

from __future__ import annotations

import enum
import json
import os
import time
from array import array

try:
    import resource
except ImportError:                       # pragma: no cover - non-POSIX host
    resource = None  # type: ignore[assignment]
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Callable, Dict, List, Optional

from ..workloads.policies import run_keynote_policy, run_policy_chain_sweep
from .ablations import (
    run_argument_size_ablation,
    run_hardening_ablation,
    run_machine_sensitivity,
    run_marshalling_ablation,
    run_protection_ablation,
)
from .adaptive import run_abl_adaptive
from .batch import run_abl_batch
from .figure7 import reproduce_figure7
from .overload import run_abl_overload
from .pool import run_abl_pool
from .serve import run_abl_serve
from .simspeed import run_abl_simspeed
from .figure8 import reproduce_figure8
from .figures123 import reproduce_figure1, reproduce_figure2, reproduce_figure3
from .report import render_table, section
from .throughput import run_abl_throughput


@dataclass(frozen=True)
class ExperimentSpec:
    """One regenerable experiment."""

    experiment_id: str
    title: str
    runner: Callable[[], object]
    kind: str = "figure"          # "figure" | "table" | "ablation"


def _policy_sweep_report():
    sweep = run_policy_chain_sweep()
    keynote = run_keynote_policy()
    rows = [[p.label, p.complexity, f"{p.mean_us_per_call:.3f}"]
            for p in sweep.points + keynote.points]
    text = render_table(["policy", "complexity", "microsec/CALL"], rows,
                        title="Policy complexity sweep (synthetic chains + KeyNote)")
    text += (f"\n\nper-clause cost (synthetic chain slope): "
             f"{sweep.per_clause_cost_us():.4f} us/clause")

    class _Report:
        def __init__(self, rendered: str) -> None:
            self._rendered = rendered
            self.sweep = sweep
            self.keynote = keynote

        def render(self) -> str:
            return self._rendered

    return _Report(text)


#: Every experiment the harness can regenerate, keyed by experiment id.
EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "fig1": ExperimentSpec("fig1", "SecModule initialization sequence",
                           reproduce_figure1),
    "fig2": ExperimentSpec("fig2", "Address space layout", reproduce_figure2),
    "fig3": ExperimentSpec("fig3", "Stack manipulations", reproduce_figure3),
    "fig7": ExperimentSpec("fig7", "Test system information", reproduce_figure7),
    "fig8": ExperimentSpec("fig8", "Performance comparisons", reproduce_figure8,
                           kind="table"),
    "abl-policy": ExperimentSpec("abl-policy", "Policy complexity sweep",
                                 _policy_sweep_report, kind="ablation"),
    "abl-hardening": ExperimentSpec("abl-hardening", "§4.4 hardening modes",
                                    run_hardening_ablation, kind="ablation"),
    "abl-marshalling": ExperimentSpec("abl-marshalling",
                                      "Shared-VM vs explicit-copy marshalling",
                                      run_marshalling_ablation, kind="ablation"),
    "abl-protection": ExperimentSpec("abl-protection", "Text protection modes",
                                     run_protection_ablation, kind="ablation"),
    "abl-argsize": ExperimentSpec("abl-argsize", "Argument-size scaling",
                                  run_argument_size_ablation, kind="ablation"),
    "abl-machine": ExperimentSpec("abl-machine", "Machine sensitivity",
                                  run_machine_sensitivity, kind="ablation"),
    "abl-throughput": ExperimentSpec(
        "abl-throughput",
        "Multi-client throughput and the policy-decision cache",
        run_abl_throughput, kind="ablation"),
    "abl-batch": ExperimentSpec(
        "abl-batch",
        "Batched dispatch: amortizing the two context switches",
        run_abl_batch, kind="ablation"),
    "abl-pool": ExperimentSpec(
        "abl-pool",
        "Handle pooling: one handle co-process serving many sessions",
        run_abl_pool, kind="ablation"),
    "abl-serve": ExperimentSpec(
        "abl-serve",
        "Service plane: attach/lookup/pool costs vs live-session count",
        run_abl_serve, kind="ablation"),
    "abl-adaptive": ExperimentSpec(
        "abl-adaptive",
        "Adaptive batching: AIMD queue depth from the arrival-rate EWMA",
        run_abl_adaptive, kind="ablation"),
    "abl-simspeed": ExperimentSpec(
        "abl-simspeed",
        "Simulator speed: trace-replay dispatch off vs on (wall clock)",
        run_abl_simspeed, kind="ablation"),
    "abl-overload": ExperimentSpec(
        "abl-overload",
        "Overload protection: the goodput/tail-latency knee past saturation",
        run_abl_overload, kind="ablation"),
}


@dataclass
class ExperimentRun:
    """An executed experiment: the spec, its result object and rendering."""

    spec: ExperimentSpec
    result: object
    rendered: str
    #: host wall-clock seconds the runner took (None when not measured)
    wall_seconds: Optional[float] = None


# ------------------------------------------------------------ JSON export
def to_jsonable(value: object) -> object:
    """Coerce a result object into something ``json.dump`` accepts.

    Dataclasses become dicts field by field (without ``asdict``'s deep-copy
    surprises on non-dataclass members), enums their values, and anything
    else unrecognized its ``str()`` — an export must never fail just
    because a report grew an exotic field.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, enum.Enum):
        return to_jsonable(value.value)
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, array):
        # latency vectors are array('d'); export exactly as a list would
        return value.tolist()
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: to_jsonable(getattr(value, f.name))
                for f in fields(value)}
    return str(value)


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, in bytes (None off-POSIX).

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS; normalize to
    bytes.  A high-water mark, not a per-experiment delta: runs later in a
    ``repro all`` sweep inherit earlier peaks.  Machine-dependent, so it
    lives at the payload top level (outside ``data``) where the byte-exact
    regression gate never looks.
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if os.uname().sysname == "Darwin":    # pragma: no cover - mac only
        return int(peak)
    return int(peak) * 1024


def result_total_calls(result: object) -> Optional[int]:
    """Simulated protected calls a result covers (for the wall-rate field).

    Reports may define ``bench_total_calls`` explicitly; otherwise a plain
    integer ``total_calls`` attribute is used.  None when the result has no
    meaningful call count (layout figures, dmesg tables).
    """
    for attribute in ("bench_total_calls", "total_calls"):
        value = getattr(result, attribute, None)
        if isinstance(value, int) and value > 0:
            return value
    return None


def experiment_payload(experiment_id: str, title: str, kind: str,
                       result: object, rendered: str, *,
                       params: Optional[Dict[str, object]] = None,
                       wall_seconds: Optional[float] = None
                       ) -> Dict[str, object]:
    """The machine-readable record written to ``BENCH_<id>.json``.

    ``params`` records the resolved run parameters (client counts, call
    counts, ``--fast``, ...) so a cross-commit diff of the files can tell a
    smoke run from the canonical experiment instead of silently comparing
    runs of different sizes; the harness's default runs record
    ``{"defaults": True}``.

    ``wall_seconds`` is the host wall-clock time the run took; together
    with the result's call count it yields ``calls_per_wall_second`` — the
    simulator-throughput trajectory of a checkout.  Both are machine-
    dependent and excluded from the ``repro bench diff`` regression gate,
    as is ``peak_rss_bytes`` — the process's memory high-water mark, the
    other half of the scaling story at 10^7+-call runs.
    """
    if hasattr(result, "as_dict"):
        data = to_jsonable(result.as_dict())
    elif is_dataclass(result) and not isinstance(result, type):
        data = to_jsonable(result)
    else:
        data = None
    total_calls = result_total_calls(result)
    return {
        "experiment": experiment_id,
        "title": title,
        "kind": kind,
        "params": to_jsonable(params if params is not None
                              else {"defaults": True}),
        "data": data,
        "rendered": rendered,
        "wall_seconds": wall_seconds,
        "calls_per_wall_second": (
            total_calls / wall_seconds
            if wall_seconds and total_calls else None),
        "peak_rss_bytes": peak_rss_bytes(),
    }


def export_payload(payload: Dict[str, object],
                   directory: str = ".") -> str:
    """Write one experiment payload to ``<directory>/BENCH_<id>.json``."""
    path = os.path.join(directory, f"BENCH_{payload['experiment']}.json")
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return path


def export_run(run: ExperimentRun, directory: str = ".") -> str:
    """Export one executed experiment as ``BENCH_<id>.json``."""
    return export_payload(
        experiment_payload(run.spec.experiment_id, run.spec.title,
                           run.spec.kind, run.result, run.rendered,
                           wall_seconds=run.wall_seconds),
        directory)


def run_experiment(experiment_id: str, *,
                   export_dir: Optional[str] = None) -> ExperimentRun:
    """Run one experiment by id; ``export_dir`` also writes its JSON record."""
    spec = EXPERIMENTS[experiment_id]
    start = time.perf_counter()
    result = spec.runner()
    wall_seconds = time.perf_counter() - start
    rendered = result.render() if hasattr(result, "render") else str(result)
    run = ExperimentRun(spec=spec, result=result, rendered=rendered,
                        wall_seconds=wall_seconds)
    if export_dir is not None:
        export_run(run, export_dir)
    return run


def run_all(experiment_ids: Optional[List[str]] = None, *,
            export_dir: Optional[str] = None) -> List[ExperimentRun]:
    """Run several (default: all) experiments in DESIGN.md order."""
    ids = experiment_ids or list(EXPERIMENTS)
    return [run_experiment(experiment_id, export_dir=export_dir)
            for experiment_id in ids]


def full_report(runs: List[ExperimentRun]) -> str:
    """Concatenate experiment renderings into one report document."""
    parts = []
    for run in runs:
        parts.append(section(f"[{run.spec.experiment_id}] {run.spec.title}",
                             run.rendered))
    return "\n".join(parts)
