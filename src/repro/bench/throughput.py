"""Aggregate-throughput benchmark: the ``abl-throughput`` experiment.

Drives the multi-client traffic engine (``repro.workloads.traffic``) at a
configurable client count and reports the numbers a capacity planner would
ask for — aggregate calls/sec of virtual time, per-client latency
percentiles — plus the decision-cache ablation: the same workload with the
static-chain policy evaluated on every call (the paper's design point) vs
memoized in the decision cache, so the cycles/call reduction is visible in
the same cycle accounting the Figure 8 rows use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..secmodule.dispatch import DispatchConfig
from ..workloads.traffic import TrafficResult, TrafficSpec, run_traffic
from .report import render_table

#: Default scale of the headline run (the acceptance bar is >= 32 clients).
DEFAULT_CLIENTS = 32
DEFAULT_MODULES = 2
DEFAULT_CALLS_PER_CLIENT = 24


@dataclass
class ThroughputReport:
    """Cached vs uncached traffic runs plus the derived ablation numbers."""

    spec: TrafficSpec
    cached: TrafficResult
    uncached: TrafficResult
    open_loop: Optional[TrafficResult] = None

    @property
    def cycles_saved_per_call(self) -> float:
        return self.uncached.cycles_per_call - self.cached.cycles_per_call

    @property
    def speedup(self) -> float:
        if self.cached.cycles_per_call == 0:
            return 0.0
        return self.uncached.cycles_per_call / self.cached.cycles_per_call

    def _row(self, label: str, result: TrafficResult) -> List[object]:
        return [
            label,
            f"{result.calls_per_second:,.0f}",
            f"{result.cycles_per_call:,.0f}",
            f"{result.latency_percentile(50):.3f}",
            f"{result.latency_percentile(95):.3f}",
            f"{result.latency_percentile(99):.3f}",
            result.denied_calls,
            result.cache_stats["hits"],
        ]

    def render(self) -> str:
        spec = self.spec
        rows = [
            self._row("per-call policy check (paper)", self.uncached),
            self._row("decision cache", self.cached),
        ]
        if self.open_loop is not None:
            rows.append(self._row("decision cache, open-loop arrivals",
                                  self.open_loop))
        table = render_table(
            ["configuration", "calls/sec", "cycles/call", "p50 us",
             "p95 us", "p99 us", "denied", "cache hits"],
            rows,
            title=(f"Aggregate throughput: {spec.clients} clients x "
                   f"{spec.modules} modules, {spec.calls_per_client} "
                   f"calls/client, {spec.policy_kind!r} policy chain"))
        summary = (
            f"\ndecision cache saves {self.cycles_saved_per_call:,.0f} "
            f"cycles/call ({self.speedup:.2f}x) vs per-call policy "
            f"evaluation; cache hit rate "
            f"{self.cached.cache_stats['hits']}/"
            f"{self.cached.cache_stats['hits'] + self.cached.cache_stats['misses']}"
            f"; session table shards: {self.cached.shard_sizes}")
        if self.open_loop is not None and self.open_loop.queue_delays_us:
            summary += (
                f"\nopen-loop queueing delay: "
                f"p50={self.open_loop.queue_delay_percentile(50):.3f}us "
                f"p99={self.open_loop.queue_delay_percentile(99):.3f}us")
        # the full counter sets (previously measured but never shown)
        summary += (
            "\ncache_stats (cached run): "
            + " ".join(f"{k}={v}" for k, v in
                       sorted(self.cached.cache_stats.items()))
            + f"\nbroker_stats (cached run): "
            + " ".join(f"{k}={v}" for k, v in
                       sorted(self.cached.broker_stats.items()))
            + f" handle_count={self.cached.handle_count}")
        return table + summary

    def as_dict(self) -> Dict[str, object]:
        def result_dict(result: TrafficResult) -> Dict[str, object]:
            return {
                "total_calls": result.total_calls,
                "denied_calls": result.denied_calls,
                "elapsed_us": result.elapsed_us,
                "total_cycles": result.total_cycles,
                "cycles_per_call": result.cycles_per_call,
                "calls_per_second": result.calls_per_second,
                "latency_us": {
                    "p50": result.latency_percentile(50),
                    "p95": result.latency_percentile(95),
                    "p99": result.latency_percentile(99),
                },
                "queue_delay_p99_us": result.queue_delay_percentile(99),
                "cache_stats": dict(result.cache_stats),
                "broker_stats": dict(result.broker_stats),
                "handle_count": result.handle_count,
                "session_count": result.session_count,
            }

        payload: Dict[str, object] = {
            "clients": self.spec.clients,
            "modules": self.spec.modules,
            "calls_per_client": self.spec.calls_per_client,
            "policy_kind": self.spec.policy_kind,
            "cached": result_dict(self.cached),
            "uncached": result_dict(self.uncached),
            "cycles_saved_per_call": self.cycles_saved_per_call,
            "speedup": self.speedup,
        }
        if self.open_loop is not None:
            payload["open_loop"] = result_dict(self.open_loop)
        return payload


def run_throughput(*, clients: int = DEFAULT_CLIENTS,
                   modules: int = DEFAULT_MODULES,
                   calls_per_client: int = DEFAULT_CALLS_PER_CLIENT,
                   policy_kind: str = "static",
                   seed: int = 0xB07_7E57,
                   include_open_loop: bool = True,
                   fast: bool = False) -> ThroughputReport:
    """Run the cached/uncached pair (and optionally an open-loop run).

    ``fast`` shrinks the run to a CI smoke: closed-loop only, no open-loop
    leg, same client count so the multi-session path is still exercised.
    """
    if fast:
        include_open_loop = False
    spec = TrafficSpec(clients=clients, modules=modules,
                       calls_per_client=calls_per_client,
                       policy_kind=policy_kind, seed=seed)
    cached = run_traffic(spec, dispatch_config=DispatchConfig(
        use_decision_cache=True))
    uncached = run_traffic(spec, dispatch_config=DispatchConfig(
        use_decision_cache=False))
    open_loop = None
    if include_open_loop:
        open_spec = TrafficSpec(clients=clients, modules=modules,
                                calls_per_client=calls_per_client,
                                policy_kind=policy_kind, seed=seed,
                                arrival="open")
        open_loop = run_traffic(open_spec, dispatch_config=DispatchConfig(
            use_decision_cache=True))
    return ThroughputReport(spec=spec, cached=cached, uncached=uncached,
                            open_loop=open_loop)


def run_abl_throughput() -> ThroughputReport:
    """Harness entry point (the ``abl-throughput`` experiment id)."""
    return run_throughput()
