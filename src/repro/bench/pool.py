"""Handle-pool benchmark: the ``abl-pool`` experiment.

The paper's prototype forks one handle co-process per session, so N
connected sessions cost N forks, N module-text decryptions and N resident
processes.  The handle broker decouples that: under a
``pooled(max_sessions=k)`` policy one handle serves up to ``k`` sessions,
and the 64-session sweep below shows the resident handle count dropping
from 64 to ``ceil(64 / k)`` while each attach pays a routing-table insert
instead of a fork.

Two invariants anchor the sweep:

* seats-per-handle 1 is the paper's 1:1 shape: handle count equals the
  session count and dispatch is cycle-identical to the per-session build
  (shared handles add a routing-table walk; a sole seat routes for free);
* per-call latency is monotone (non-decreasing) in the seat count — the
  logarithmic routing walk is the only per-call price of pooling — and
  stays within a few percent of the 1:1 dispatch cost, while session
  establishment gets dramatically cheaper (no fork, no decryption).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..hw.machine import make_paper_machine
from ..kernel.kernel import Kernel
from ..secmodule.handle_pool import HandlePolicy
from ..secmodule.libc_conversion import build_test_module
from ..secmodule.protection import ProtectionMode
from ..secmodule.session import SessionDescriptor, build_requirements
from ..secmodule.smod_syscalls import install_secmodule
from ..userland.process import Program
from ..workloads.traffic import TrafficSpec, run_traffic
from .report import render_table

#: Seats-per-handle values the headline sweep measures.
DEFAULT_SEATS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
#: Sessions established per point (one client process each).
DEFAULT_SESSIONS = 64
#: Protected calls issued per session during the measurement phase.
DEFAULT_CALLS_PER_SESSION = 4
#: Fairness leg: seats per handle and sessions of the contended phase.
FAIRNESS_SEATS = 8
FAIRNESS_SESSIONS = 16
FAIRNESS_CALLS_PER_SESSION = 8
#: Fairness leg mean interarrival — well below the ~6.4 us dispatch
#: latency, so arrivals queue behind the busy handle and per-seat
#: queueing delay is non-trivial.
FAIRNESS_MEAN_INTERVAL_US = 3.0


@dataclass
class PoolPoint:
    """One measured seats-per-handle configuration."""

    max_sessions: int
    sessions: int
    handle_count: int
    establish_cycles: int
    call_cycles: int
    total_calls: int

    broker_stats: Dict[str, int] = field(default_factory=dict)
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def cycles_per_call(self) -> float:
        return self.call_cycles / self.total_calls

    @property
    def establish_cycles_per_session(self) -> float:
        return self.establish_cycles / self.sessions


@dataclass
class PoolFairness:
    """The telemetry leg: per-seat queueing delay under contention.

    One pooled system, open-loop Poisson arrivals across every session;
    the broker's per-seat histograms yield each client's queueing-delay
    p95 and a Jain fairness index per shared handle.
    """

    seats: int
    sessions: int
    total_calls: int
    #: handle pid -> {"clients", "per_client": {pid: {p95_us, mean_us}},
    #: "jain_fairness"} — the broker's seat_delay_report
    handles: Dict[int, Dict[str, object]] = field(default_factory=dict)

    def worst_jain(self) -> float:
        if not self.handles:
            return 1.0
        return min(entry["jain_fairness"] for entry in self.handles.values())

    def render(self) -> str:
        rows = []
        for handle_pid, entry in sorted(self.handles.items()):
            per_client = entry["per_client"]
            p95s = [stats["p95_us"] for stats in per_client.values()]
            rows.append([
                handle_pid,
                entry["clients"],
                f"{min(p95s):.2f}" if p95s else "-",
                f"{max(p95s):.2f}" if p95s else "-",
                f"{entry['jain_fairness']:.4f}",
            ])
        table = render_table(
            ["handle pid", "clients", "min client p95 us",
             "max client p95 us", "Jain fairness"],
            rows,
            title=(f"Pooled-handle queueing fairness: {self.sessions} "
                   f"sessions on pooled({self.seats}) handles, "
                   f"{self.total_calls} open-loop calls"))
        detail_lines = []
        for handle_pid, entry in sorted(self.handles.items()):
            p95_list = ", ".join(
                f"pid {client}: {stats['p95_us']:.2f}"
                for client, stats in sorted(entry["per_client"].items()))
            detail_lines.append(
                f"handle {handle_pid} per-client queueing-delay p95 (us): "
                f"{p95_list}")
        summary = (f"\nworst Jain fairness index across pooled handles: "
                   f"{self.worst_jain():.4f}")
        return table + "\n" + "\n".join(detail_lines) + summary


@dataclass
class PoolReport:
    """The full sweep plus the structural checks the acceptance bar names."""

    seats: Tuple[int, ...]
    sessions: int
    mhz: float
    points: List[PoolPoint] = field(default_factory=list)
    #: the telemetry-driven fairness leg (None when skipped)
    fairness: Optional[PoolFairness] = None

    def point(self, max_sessions: int) -> PoolPoint:
        for point in self.points:
            if point.max_sessions == max_sessions:
                return point
        raise KeyError(max_sessions)

    # -- the acceptance-bar checks ------------------------------------------
    def handle_counts_match(self) -> bool:
        """Every point must hold exactly ceil(sessions / seats) handles."""
        return all(p.handle_count == math.ceil(self.sessions / p.max_sessions)
                   for p in self.points)

    def monotone_us_per_call(self) -> bool:
        """us/call must be non-decreasing as handles get more crowded."""
        per_call = [p.cycles_per_call for p in self.points]
        return all(a <= b for a, b in zip(per_call, per_call[1:]))

    def us_per_call(self, point: PoolPoint) -> float:
        return point.cycles_per_call / self.mhz

    def establish_us(self, point: PoolPoint) -> float:
        return point.establish_cycles_per_session / self.mhz

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        rows = []
        for point in self.points:
            rows.append([
                point.max_sessions,
                point.handle_count,
                f"{self.establish_us(point):,.1f}",
                f"{point.cycles_per_call:,.1f}",
                f"{self.us_per_call(point):.3f}",
            ])
        table = render_table(
            ["sessions/handle", "handle procs", "establish us/session",
             "cycles/call", "us/call"],
            rows,
            title=(f"Handle pool: {self.sessions} sessions, one pooled "
                   f"module, seats swept 1 -> {max(self.seats)}"))
        summary = (
            f"\nhandle procs == ceil(sessions/seats) at every point: "
            f"{'yes' if self.handle_counts_match() else 'NO'}"
            f"\nus/call monotone (non-decreasing) in seats/handle: "
            f"{'yes' if self.monotone_us_per_call() else 'NO'}")
        # per-point broker counters (previously measured but never shown)
        broker_bits = "; ".join(
            f"{p.max_sessions}: forked={p.broker_stats.get('handles_forked', 0)} "
            f"attached={p.broker_stats.get('attachments', 0)}"
            for p in self.points if p.broker_stats)
        if broker_bits:
            summary += f"\nbroker stats by seats/handle: {broker_bits}"
        last = self.points[-1] if self.points else None
        if last is not None and last.cache_stats:
            summary += (
                f"\ndecision cache (seats={last.max_sessions} point): "
                + " ".join(f"{k}={v}" for k, v in
                           sorted(last.cache_stats.items())))
        text = table + summary
        if self.fairness is not None:
            text += "\n\n" + self.fairness.render()
        return text

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "seats": list(self.seats),
            "sessions": self.sessions,
            "mhz": self.mhz,
            "points": [
                {"max_sessions": p.max_sessions,
                 "handle_count": p.handle_count,
                 "establish_us_per_session": self.establish_us(p),
                 "cycles_per_call": p.cycles_per_call,
                 "us_per_call": self.us_per_call(p),
                 "broker_stats": dict(p.broker_stats),
                 "cache_stats": dict(p.cache_stats)}
                for p in self.points],
            "handle_counts_match": self.handle_counts_match(),
            "monotone_us_per_call": self.monotone_us_per_call(),
        }
        if self.fairness is not None:
            payload["fairness"] = {
                "seats": self.fairness.seats,
                "sessions": self.fairness.sessions,
                "total_calls": self.fairness.total_calls,
                "worst_jain": self.fairness.worst_jain(),
                "handles": {str(pid): entry for pid, entry
                            in self.fairness.handles.items()},
            }
        return payload


def _measure_point(max_sessions: int, sessions: int,
                   calls_per_session: int, seed: int) -> PoolPoint:
    """One fresh kernel: establish N sessions under pooled(k), then call."""
    machine = make_paper_machine(seed=seed)
    kernel = Kernel(machine=machine).boot()
    extension = install_secmodule(kernel)
    definition = build_test_module()
    registered = extension.registry.register(definition, uid=0,
                                             protection=ProtectionMode.ENCRYPT)
    extension.broker.register_policy(
        registered.name, HandlePolicy.pooled(max_sessions))

    # -- establishment phase: N clients, one session each -------------------
    mark = machine.clock.checkpoint()
    session_objects = []
    for index in range(sessions):
        program = Program.spawn(kernel, f"pool-client{index}", uid=1000)
        descriptor = SessionDescriptor(build_requirements(
            [registered], principal="alice", uid=1000))
        session_id = program.smod_crt0_startup(extension, descriptor)
        session_objects.append(extension.sessions.get(session_id))
    establish_cycles = machine.clock.since(mark).cycles
    handle_count = extension.sessions.handle_count()

    # -- call phase: round-robin across sessions -----------------------------
    mark = machine.clock.checkpoint()
    total_calls = 0
    for round_index in range(calls_per_session):
        for session in session_objects:
            outcome = extension.dispatcher.call(session, "test_incr",
                                                round_index)
            if not outcome.ok:
                raise RuntimeError(
                    f"pool sweep call denied at seats={max_sessions}")
            total_calls += 1
    call_cycles = machine.clock.since(mark).cycles

    return PoolPoint(max_sessions=max_sessions, sessions=sessions,
                     handle_count=handle_count,
                     establish_cycles=establish_cycles,
                     call_cycles=call_cycles, total_calls=total_calls,
                     broker_stats=extension.broker.snapshot(),
                     cache_stats=extension.decision_cache.snapshot())


def _measure_fairness(*, seats: int = FAIRNESS_SEATS,
                      sessions: int = FAIRNESS_SESSIONS,
                      calls_per_session: int = FAIRNESS_CALLS_PER_SESSION,
                      mean_interval_us: float = FAIRNESS_MEAN_INTERVAL_US,
                      seed: int = 0x900_1) -> PoolFairness:
    """The telemetry leg: open-loop contention over pooled handles.

    A telemetry-enabled traffic run (recording never charges the clock, so
    this leg cannot perturb the sweep's numbers): one client per session on
    ``pooled(seats)`` handles, each offering a pre-drawn Poisson arrival
    schedule.  Arrivals landing while the virtual clock is still inside an
    earlier call wait, and that wait is the per-seat queueing delay the
    broker's histograms capture and its ``seat_delay_report`` scores.
    """
    spec = TrafficSpec(clients=sessions, modules=1,
                       calls_per_client=calls_per_session, arrival="open",
                       mean_interval_us=mean_interval_us,
                       handle_policy="pooled", pool_max_sessions=seats,
                       telemetry=True, seed=seed)
    result = run_traffic(spec)
    return PoolFairness(seats=seats, sessions=sessions,
                        total_calls=result.total_calls,
                        handles=result.seat_fairness)


def run_pool_sweep(*, seats: Sequence[int] = DEFAULT_SEATS,
                   sessions: int = DEFAULT_SESSIONS,
                   calls_per_session: int = DEFAULT_CALLS_PER_SESSION,
                   seed: int = 0x900_1,
                   fairness: bool = True) -> PoolReport:
    """Measure the sweep (one fresh system per seats-per-handle point) and,
    unless disabled, the telemetry-driven queueing-fairness leg."""
    if not seats or min(seats) < 1:
        raise ValueError("seats per handle must be positive")
    if sessions < 1 or calls_per_session < 1:
        raise ValueError("pool sweep needs sessions and calls >= 1")
    mhz = make_paper_machine(seed=seed).spec.mhz
    report = PoolReport(seats=tuple(seats), sessions=sessions, mhz=mhz)
    for max_sessions in seats:
        report.points.append(_measure_point(max_sessions, sessions,
                                            calls_per_session, seed))
    if fairness:
        report.fairness = _measure_fairness(seed=seed)
    return report


def run_abl_pool() -> PoolReport:
    """Harness entry point (the ``abl-pool`` experiment id)."""
    return run_pool_sweep()
