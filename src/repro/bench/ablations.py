"""Ablation studies over the design choices DESIGN.md calls out.

The paper measures only one configuration (always-allow policy, shared-VM
marshalling, no per-call hardening, encryption protection).  It *discusses*
several alternatives without measuring them; these ablations fill that gap:

* policy complexity (§5's "slowdown in proportion to the complexity");
* §4.4 hardenings against multithreaded argument rewriting;
* shared-VM vs explicit-copy argument marshalling (§3's rejected design);
* protection mode (encrypt vs unmap vs both) — a *setup-time* cost;
* argument-size scaling of SecModule vs RPC (XDR pays per item);
* machine sensitivity (how the ratios move on a faster machine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from ..hw.machine import Machine, make_modern_machine, make_paper_machine
from ..kernel.cred import unprivileged
from ..kernel.kernel import Kernel
from ..rpc.rpcgen import InterfaceDefinition, generate_service
from ..secmodule.api import SecModuleSystem
from ..secmodule.dispatch import DispatchConfig, HardeningMode, MarshallingMode
from ..secmodule.libc_conversion import build_test_module
from ..secmodule.protection import ProtectionMode
from ..secmodule.registry import ModuleRegistry
from ..secmodule.smod_syscalls import install_secmodule
from ..sim.stats import MeasurementSummary
from ..workloads.microbench import (
    PAPER_SPECS,
    run_native_getpid,
    run_rpc_testincr,
    run_smod_function,
    run_smod_testincr,
)
from .report import render_table


# ---------------------------------------------------------------------------
# Hardening modes (§4.4)
# ---------------------------------------------------------------------------

@dataclass
class HardeningPoint:
    mode: HardeningMode
    summary: MeasurementSummary

    @property
    def mean_us(self) -> float:
        return self.summary.mean_us_per_call


@dataclass
class HardeningResult:
    points: List[HardeningPoint] = field(default_factory=list)

    def point(self, mode: HardeningMode) -> HardeningPoint:
        for point in self.points:
            if point.mode is mode:
                return point
        raise KeyError(mode)

    def render(self) -> str:
        rows = [[p.mode.value, f"{p.mean_us:.3f}"] for p in self.points]
        return render_table(["hardening mode", "microsec/CALL"], rows,
                            title="Ablation: §4.4 hardening modes, SMOD(test-incr)")


def run_hardening_ablation(*, trials: int = 3, sample_calls: int = 24,
                           seed: int = 6000) -> HardeningResult:
    result = HardeningResult()
    spec = PAPER_SPECS["smod_testincr"].scaled(trials=trials,
                                               sample_calls=sample_calls)
    for mode in (HardeningMode.NONE, HardeningMode.SUSPEND_CLIENT,
                 HardeningMode.UNMAP_CLIENT):
        config = DispatchConfig(hardening=mode)
        summary = run_smod_function("test_incr", args=(41,), spec=spec,
                                    seed=seed + hash(mode.value) % 97,
                                    dispatch_config=config)
        result.points.append(HardeningPoint(mode=mode, summary=summary))
    return result


# ---------------------------------------------------------------------------
# Marshalling modes (§3's rejected explicit-copy design)
# ---------------------------------------------------------------------------

@dataclass
class MarshallingPoint:
    mode: MarshallingMode
    arg_words: int
    mean_us: float


@dataclass
class MarshallingResult:
    points: List[MarshallingPoint] = field(default_factory=list)

    def mean_us(self, mode: MarshallingMode, arg_words: int) -> float:
        for point in self.points:
            if point.mode is mode and point.arg_words == arg_words:
                return point.mean_us
        raise KeyError((mode, arg_words))

    def render(self) -> str:
        rows = [[p.mode.value, p.arg_words, f"{p.mean_us:.3f}"]
                for p in self.points]
        return render_table(["marshalling", "arg words", "microsec/CALL"], rows,
                            title="Ablation: shared-VM vs explicit-copy marshalling")


def _wide_arg_module(arg_words: int):
    """A module exposing a function that takes ``arg_words`` integer args."""
    from ..sim import costs
    module = build_test_module()
    module.add_function(
        f"wide_{arg_words}",
        lambda env, *args: sum(args) & 0xFFFFFFFF,
        cost_op=costs.FUNC_BODY_TESTINCR,
        arg_words=arg_words,
        doc=f"sum of {arg_words} integer arguments")
    return module


def run_marshalling_ablation(arg_word_counts: Sequence[int] = (1, 4, 16, 64), *,
                             calls: int = 24, seed: int = 6100) -> MarshallingResult:
    """Compare per-call cost of both marshalling modes across argument sizes."""
    result = MarshallingResult()
    for arg_words in arg_word_counts:
        for mode in (MarshallingMode.SHARED_VM, MarshallingMode.EXPLICIT_COPY):
            module = _wide_arg_module(arg_words)
            system = SecModuleSystem.create(include_libc=False,
                                            include_test_module=False,
                                            extra_modules=[module],
                                            seed=seed + arg_words)
            config = DispatchConfig(marshalling=mode)
            args = tuple(range(arg_words))
            system.call(f"wide_{arg_words}", *args, config=config)   # warm
            mark = system.machine.clock.checkpoint()
            for _ in range(calls):
                system.call(f"wide_{arg_words}", *args, config=config)
            interval = system.machine.clock.since(mark)
            mean_us = interval.microseconds(system.machine.spec.mhz) / calls
            result.points.append(MarshallingPoint(mode=mode,
                                                  arg_words=arg_words,
                                                  mean_us=mean_us))
    return result


# ---------------------------------------------------------------------------
# Protection modes (registration/setup cost; §4.1's two approaches)
# ---------------------------------------------------------------------------

@dataclass
class ProtectionPoint:
    mode: ProtectionMode
    registration_us: float
    session_setup_us: float
    per_call_us: float


@dataclass
class ProtectionResult:
    points: List[ProtectionPoint] = field(default_factory=list)

    def point(self, mode: ProtectionMode) -> ProtectionPoint:
        for point in self.points:
            if point.mode is mode:
                return point
        raise KeyError(mode)

    def render(self) -> str:
        rows = [[p.mode.value, f"{p.registration_us:.1f}",
                 f"{p.session_setup_us:.1f}", f"{p.per_call_us:.3f}"]
                for p in self.points]
        return render_table(
            ["protection", "registration (us)", "session setup (us)",
             "per call (us)"],
            rows, title="Ablation: text-protection modes")


def run_protection_ablation(*, calls: int = 24,
                            seed: int = 6200) -> ProtectionResult:
    """Compare registration, session-setup and per-call cost across modes."""
    result = ProtectionResult()
    for mode in (ProtectionMode.UNMAP, ProtectionMode.ENCRYPT, ProtectionMode.BOTH):
        machine = make_paper_machine(seed=seed)
        kernel = Kernel(machine=machine).boot()
        extension = install_secmodule(kernel)
        registry: ModuleRegistry = extension.registry

        module_def = build_test_module()
        mark = machine.clock.checkpoint()
        registered = registry.register(module_def, protection=mode, uid=0)
        registration_us = machine.clock.since(mark).microseconds(machine.spec.mhz)

        # Build the rest of the system around the registered module.
        from ..secmodule.session import SessionDescriptor, SessionRequirement
        from ..userland.process import Program
        credential = registered.definition.issuer.issue("alice", uid=1000)
        descriptor = SessionDescriptor((SessionRequirement(
            module_name=registered.name, version=registered.version,
            credential=credential),))
        client = Program.spawn(kernel, "client", uid=1000)
        mark = machine.clock.checkpoint()
        session_id = client.smod_crt0_startup(extension, descriptor)
        session_setup_us = machine.clock.since(mark).microseconds(machine.spec.mhz)
        session = extension.sessions.get(session_id)

        extension.dispatcher.call(session, "test_incr", 41)   # warm
        mark = machine.clock.checkpoint()
        for _ in range(calls):
            extension.dispatcher.call(session, "test_incr", 41)
        per_call_us = machine.clock.since(mark).microseconds(machine.spec.mhz) / calls

        result.points.append(ProtectionPoint(
            mode=mode, registration_us=registration_us,
            session_setup_us=session_setup_us, per_call_us=per_call_us))
    return result


# ---------------------------------------------------------------------------
# Argument-size scaling: SecModule (shared stack) vs RPC (XDR per item)
# ---------------------------------------------------------------------------

@dataclass
class ArgSizePoint:
    mechanism: str
    arg_words: int
    mean_us: float


@dataclass
class ArgSizeResult:
    points: List[ArgSizePoint] = field(default_factory=list)

    def mean_us(self, mechanism: str, arg_words: int) -> float:
        for point in self.points:
            if point.mechanism == mechanism and point.arg_words == arg_words:
                return point.mean_us
        raise KeyError((mechanism, arg_words))

    def crossover_absent(self) -> bool:
        """SecModule stays cheaper than RPC at every measured size."""
        sizes = sorted({p.arg_words for p in self.points})
        return all(self.mean_us("secmodule", s) < self.mean_us("rpc", s)
                   for s in sizes)

    def render(self) -> str:
        rows = [[p.mechanism, p.arg_words, f"{p.mean_us:.3f}"]
                for p in self.points]
        return render_table(["mechanism", "arg words", "microsec/CALL"], rows,
                            title="Ablation: argument-size scaling")


def run_argument_size_ablation(arg_word_counts: Sequence[int] = (1, 8, 32, 128), *,
                               calls: int = 16, seed: int = 6300) -> ArgSizeResult:
    result = ArgSizeResult()
    for arg_words in arg_word_counts:
        # --- SecModule: arguments live on the shared stack, no copying -------
        module = _wide_arg_module(arg_words)
        system = SecModuleSystem.create(include_libc=False,
                                        include_test_module=False,
                                        extra_modules=[module],
                                        seed=seed + arg_words)
        args = tuple(range(arg_words))
        system.call(f"wide_{arg_words}", *args)
        mark = system.machine.clock.checkpoint()
        for _ in range(calls):
            system.call(f"wide_{arg_words}", *args)
        smod_us = (system.machine.clock.since(mark)
                   .microseconds(system.machine.spec.mhz) / calls)
        result.points.append(ArgSizePoint("secmodule", arg_words, smod_us))

        # --- RPC: every argument is an XDR item on both sides -----------------
        machine = make_paper_machine(seed=seed + arg_words)
        kernel = Kernel(machine=machine).boot()
        interface = InterfaceDefinition(name="wide", prog=0x20000200, vers=1)
        interface.add_procedure(1, "wide",
                                lambda a: sum(a) & 0xFFFFFFFF,
                                arg_names=tuple(f"a{i}" for i in range(arg_words)))
        service = generate_service(kernel, interface)
        client_proc = kernel.create_process("rpc-wide", cred=unprivileged(1000))
        client = service.make_client(kernel, client_proc)
        client.call("wide", *range(arg_words))
        mark = machine.clock.checkpoint()
        for _ in range(calls):
            client.call("wide", *range(arg_words))
        rpc_us = machine.clock.since(mark).microseconds(machine.spec.mhz) / calls
        result.points.append(ArgSizePoint("rpc", arg_words, rpc_us))
    return result


# ---------------------------------------------------------------------------
# Machine sensitivity: the paper machine vs a modern one
# ---------------------------------------------------------------------------

@dataclass
class MachineSensitivityRow:
    machine_name: str
    native_us: float
    smod_us: float
    rpc_us: float

    @property
    def smod_vs_native(self) -> float:
        return self.smod_us / self.native_us

    @property
    def rpc_vs_smod(self) -> float:
        return self.rpc_us / self.smod_us


@dataclass
class MachineSensitivityResult:
    rows: List[MachineSensitivityRow] = field(default_factory=list)

    def render(self) -> str:
        rows = [[r.machine_name, f"{r.native_us:.3f}", f"{r.smod_us:.3f}",
                 f"{r.rpc_us:.3f}", f"{r.smod_vs_native:.1f}x",
                 f"{r.rpc_vs_smod:.1f}x"] for r in self.rows]
        return render_table(
            ["machine", "getpid (us)", "SMOD (us)", "RPC (us)",
             "SMOD/getpid", "RPC/SMOD"],
            rows, title="Ablation: machine sensitivity of the Figure 8 ratios")


def run_machine_sensitivity(*, trials: int = 2, sample_calls: int = 16,
                            seed: int = 6400) -> MachineSensitivityResult:
    result = MachineSensitivityResult()
    factories: List[Tuple[str, Callable[[], Machine]]] = [
        ("pentium3-599 (paper)", make_paper_machine),
        ("modern-x86-3000", make_modern_machine),
    ]
    for name, factory in factories:
        native = run_native_getpid(
            PAPER_SPECS["getpid"].scaled(trials=trials, sample_calls=sample_calls),
            seed=seed, machine_factory=factory)
        smod = run_smod_testincr(
            spec=PAPER_SPECS["smod_testincr"].scaled(trials=trials,
                                                     sample_calls=sample_calls),
            seed=seed + 1, machine_factory=factory)
        rpc = run_rpc_testincr(
            PAPER_SPECS["rpc_testincr"].scaled(trials=trials,
                                               sample_calls=sample_calls),
            seed=seed + 2, machine_factory=factory)
        result.rows.append(MachineSensitivityRow(
            machine_name=name,
            native_us=native.mean_us_per_call,
            smod_us=smod.mean_us_per_call,
            rpc_us=rpc.mean_us_per_call))
    return result
