"""The telemetry-driven regression gate: diff two ``BENCH_<id>.json`` files.

Every experiment run exports a machine-readable payload; because the whole
simulation is deterministic (virtual clock, seeded RNG), two runs of the
same experiment with the same parameters must agree on every *virtual*
number — cycle totals, op counts, microsecond conversions.  ``repro bench
diff old.json new.json`` walks both payloads' ``data`` trees and:

* **fails** (non-zero exit) when any cycle-bearing metric regressed — a
  leaf whose key names cycles or microseconds grew beyond the tolerance;
* reports every other numeric difference informationally;
* refuses to compare runs of different experiments or parameters (a smoke
  run against a canonical baseline is not a regression signal, it is a
  category error).

Wall-clock fields (``wall_seconds``, ``calls_per_wall_second`` and any
other key naming "wall") are machine-dependent and never *fail* the gate.
The two payloads' top-level ``calls_per_wall_second`` do get one
tolerance-band check: a drop past ``WALL_TOLERANCE`` (10%) prints a
non-fatal warning, so CI logs surface a simulator slowdown without the
noise of gating on a shared runner's wall clock.

CI keeps canonical baselines under ``benchmarks/baselines/`` and runs this
gate against freshly regenerated exports, so a commit that silently makes
dispatch more expensive fails its build.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

#: path segments naming machine-dependent values — never compared
WALL_MARKER = "wall"
#: key fragments marking a metric as cycle-bearing: growth is a regression
CYCLE_MARKERS = ("cycles", "_us", "us_per_call", "microsec")
#: tolerated fractional drop in calls_per_wall_second before warning
WALL_TOLERANCE = 0.10


class BenchDiffError(ValueError):
    """The two payloads are not comparable (different experiment/params)."""


@dataclass
class DiffItem:
    """One numeric leaf that differs between the payloads."""

    path: str
    old: float
    new: float
    #: cycle-bearing metrics fail the gate when they grow
    guarded: bool = False
    regression: bool = False

    def describe(self) -> str:
        tag = ("REGRESSION" if self.regression
               else "improved" if self.guarded and self.new < self.old
               else "changed")
        return f"{self.path}: {self.old} -> {self.new}  [{tag}]"


@dataclass
class BenchDiff:
    """Outcome of comparing two exports of one experiment."""

    experiment: str
    old_path: str
    new_path: str
    items: List[DiffItem] = field(default_factory=list)
    #: leaves present in exactly one payload (schema drift, reported only)
    only_old: List[str] = field(default_factory=list)
    only_new: List[str] = field(default_factory=list)
    compared: int = 0
    #: non-fatal notices (wall-clock tolerance band) — printed, never gated
    warnings: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[DiffItem]:
        return [item for item in self.items if item.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        head = (f"bench diff [{self.experiment}]: "
                f"{self.old_path} -> {self.new_path}")
        lines = [head, "-" * len(head),
                 f"compared {self.compared} numeric metrics "
                 f"({len(self.items)} differ, "
                 f"{len(self.regressions)} cycle regressions)"]
        for item in self.items:
            lines.append("  " + item.describe())
        for path in self.only_old:
            lines.append(f"  {path}: only in old export")
        for path in self.only_new:
            lines.append(f"  {path}: only in new export")
        for warning in self.warnings:
            lines.append(f"  WARNING: {warning}")
        lines.append("PASS: no cycle regressions" if self.ok
                     else "FAIL: cycle totals regressed")
        return "\n".join(lines)


def load_payload(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as stream:
        payload = json.load(stream)
    if not isinstance(payload, dict) or "experiment" not in payload:
        raise BenchDiffError(f"{path} is not a BENCH_<id>.json export")
    return payload


def _collect_leaves(value, prefix: str,
                    out: Dict[str, float]) -> None:
    """Flatten numeric leaves into ``path -> value`` (wall keys skipped)."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = value
        return
    if isinstance(value, dict):
        for key in sorted(value, key=str):
            key_text = str(key)
            if WALL_MARKER in key_text.lower():
                continue
            child = f"{prefix}.{key_text}" if prefix else key_text
            _collect_leaves(value[key], child, out)
        return
    if isinstance(value, list):
        for index, item in enumerate(value):
            _collect_leaves(item, f"{prefix}[{index}]", out)


def _is_guarded(path: str) -> bool:
    lowered = path.lower()
    return any(marker in lowered for marker in CYCLE_MARKERS)


def _is_canonical_defaults(params) -> bool:
    """True for the harness marker ``{"defaults": true}``.

    ``run_experiment`` (the ``repro all`` / ``repro <experiment-id>``
    spellings) always runs an experiment's canonical defaults and records
    this marker instead of resolved values, so it is comparable with any
    non-smoke export of the same experiment.
    """
    return params == {"defaults": True}


def _params_compatible(old_params, new_params) -> bool:
    """May these two runs be meaningfully compared?

    Resolved parameter trees must match exactly.  The harness's canonical
    ``{"defaults": true}`` marker is compatible with any run whose resolved
    params do not carry a truthy ``fast`` flag — a smoke run against a
    canonical baseline is still refused.
    """
    for mine, theirs in ((old_params, new_params),
                         (new_params, old_params)):
        if _is_canonical_defaults(mine):
            return not (isinstance(theirs, dict) and theirs.get("fast"))
    return to_text(old_params) == to_text(new_params)


def compare_payloads(old: Dict, new: Dict, *,
                     old_path: str = "<old>", new_path: str = "<new>",
                     rel_tol: float = 0.0) -> BenchDiff:
    """Compare two exports of the same experiment run the same way.

    ``rel_tol`` loosens the cycle gate: a guarded metric only counts as a
    regression when ``new > old * (1 + rel_tol)``.  The default of 0 means
    byte-exact — the right setting for this fully deterministic simulator.
    """
    if old.get("experiment") != new.get("experiment"):
        raise BenchDiffError(
            f"cannot diff different experiments: "
            f"{old.get('experiment')!r} vs {new.get('experiment')!r}")
    if not _params_compatible(old.get("params"), new.get("params")):
        raise BenchDiffError(
            f"run parameters differ ({old.get('params')} vs "
            f"{new.get('params')}): comparing differently-sized runs is "
            f"meaningless — regenerate with the baseline's parameters")

    old_leaves: Dict[str, float] = {}
    new_leaves: Dict[str, float] = {}
    _collect_leaves(old.get("data"), "data", old_leaves)
    _collect_leaves(new.get("data"), "data", new_leaves)

    diff = BenchDiff(experiment=str(old.get("experiment")),
                     old_path=old_path, new_path=new_path)
    diff.only_old = sorted(set(old_leaves) - set(new_leaves))
    diff.only_new = sorted(set(new_leaves) - set(old_leaves))
    shared = sorted(set(old_leaves) & set(new_leaves))
    diff.compared = len(shared)
    for path in shared:
        old_value, new_value = old_leaves[path], new_leaves[path]
        if old_value == new_value:
            continue
        guarded = _is_guarded(path)
        regression = guarded and new_value > old_value * (1.0 + rel_tol)
        diff.items.append(DiffItem(path=path, old=old_value, new=new_value,
                                   guarded=guarded, regression=regression))

    _check_wall_band(old, new, diff)
    return diff


def _check_wall_band(old: Dict, new: Dict, diff: BenchDiff) -> None:
    """Warn when the new run's wall-clock rate dropped past the band.

    ``calls_per_wall_second`` lives at the payload top level (outside
    ``data``) precisely so the byte-exact gate never sees it; this is the
    one comparison it does get.  Non-fatal by design: shared CI runners
    make a hard wall-clock gate a flake machine, but a >10% drop is still
    worth a line in the log.
    """
    old_rate = old.get("calls_per_wall_second")
    new_rate = new.get("calls_per_wall_second")
    if not isinstance(old_rate, (int, float)) or isinstance(old_rate, bool):
        return
    if not isinstance(new_rate, (int, float)) or isinstance(new_rate, bool):
        return
    if old_rate <= 0:
        return
    if new_rate < old_rate * (1.0 - WALL_TOLERANCE):
        drop = 100.0 * (1.0 - new_rate / old_rate)
        diff.warnings.append(
            f"calls_per_wall_second dropped {drop:.1f}% "
            f"({old_rate:,.0f} -> {new_rate:,.0f}); machine-dependent, "
            f"non-fatal — investigate if it persists across runs")


def to_text(value) -> str:
    """Canonical text form of a params tree (string-level equality check)."""
    return json.dumps(value, sort_keys=True, default=str)


def diff_files(old_path: str, new_path: str, *,
               rel_tol: float = 0.0) -> BenchDiff:
    """Load and compare two export files (the CLI body)."""
    return compare_payloads(load_payload(old_path), load_payload(new_path),
                            old_path=old_path, new_path=new_path,
                            rel_tol=rel_tol)
