"""Adaptive-batching benchmark: the ``abl-adaptive`` experiment.

Two legs, both driven through the multi-client traffic engine so the
controller sees exactly the arrival process the workload offers:

* **steady** — a Poisson stream arriving much faster than the single-call
  dispatch latency.  A static sweep measures the service cost per call at
  each fixed queue depth; the adaptive run starts at depth 1 and must ramp
  to within 20% of the *best* static depth's us/call once converged (the
  tail of the run, after the AIMD ramp).
* **mmpp** — bursty two-state on/off arrivals.  The controller must adapt
  both ways: grow the depth during ON bursts and shrink it back during OFF
  lulls (the depth trajectory shows a rise followed by a fall to half the
  peak or less).

Both legs run with telemetry enabled — the controller is *fed by* the
telemetry plane, and the exported ``BENCH_abl-adaptive.json`` carries the
metrics snapshot — which changes no cycle totals (recording is pure
observation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..workloads.traffic import TrafficResult, TrafficSpec, run_traffic
from .report import render_table

#: Static queue depths the baseline sweep measures.
DEFAULT_DEPTHS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
#: Calls per static point (per-call service cost is depth-, not length-,
#: dependent, so fewer calls than the adaptive leg suffice).
DEFAULT_STATIC_CALLS = 256
#: Calls in the adaptive steady leg: enough for the AIMD ramp plus a
#: converged tail twice its size.
DEFAULT_ADAPTIVE_CALLS = 1024
#: Calls in the MMPP leg (covers several ON/OFF cycles).
DEFAULT_MMPP_CALLS = 600
#: Steady-leg mean interarrival: far below the ~6.4 us single-call
#: dispatch latency, so batching pays and the controller must grow.
DEFAULT_MEAN_INTERVAL_US = 2.0


@dataclass
class StaticPoint:
    """One fixed queue depth measured on the steady arrival stream."""

    batch_size: int
    total_calls: int
    mean_service_us: float


@dataclass
class AdaptiveReport:
    """Static sweep + adaptive steady leg + MMPP adapt-both-ways leg."""

    depths: Tuple[int, ...]
    mean_interval_us: float
    static_points: List[StaticPoint] = field(default_factory=list)
    #: steady adaptive leg
    adaptive_calls: int = 0
    adaptive_mean_us: float = 0.0
    adaptive_tail_us: float = 0.0
    adaptive_controller: Dict[str, object] = field(default_factory=dict)
    #: bursty leg
    mmpp_controller: Dict[str, object] = field(default_factory=dict)
    #: telemetry snapshot of the steady adaptive run
    metrics: Dict[str, object] = field(default_factory=dict)

    # -- the acceptance-bar checks ------------------------------------------
    def best_static(self) -> StaticPoint:
        return min(self.static_points, key=lambda p: p.mean_service_us)

    def within_20_percent(self) -> bool:
        """Converged adaptive us/call within 20% of the best static depth."""
        return self.adaptive_tail_us <= self.best_static().mean_service_us * 1.2

    def adapted_up_and_down(self, *, peak_at_least: int = 8) -> bool:
        """The MMPP trajectory rose to a peak and later fell to <= half it."""
        trajectory = self.mmpp_controller.get("trajectory") or []
        peak = 0
        for _, depth in trajectory:
            if depth > peak:
                peak = depth
            elif peak >= peak_at_least and depth <= peak // 2:
                return True
        return False

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        rows = [[point.batch_size, point.total_calls,
                 f"{point.mean_service_us:.3f}"]
                for point in self.static_points]
        table = render_table(
            ["static depth", "calls", "us/call (service)"], rows,
            title=(f"Adaptive batching: steady Poisson arrivals, mean "
                   f"interarrival {self.mean_interval_us:g} us"))
        best = self.best_static()
        controller = self.adaptive_controller
        mmpp = self.mmpp_controller
        summary = (
            f"\nadaptive (AIMD, depth 1 -> {controller.get('depth')}, "
            f"max reached {controller.get('max_depth_reached')}): "
            f"{self.adaptive_mean_us:.3f} us/call overall, "
            f"{self.adaptive_tail_us:.3f} us/call converged tail "
            f"over {self.adaptive_calls} calls"
            f"\nbest static depth {best.batch_size}: "
            f"{best.mean_service_us:.3f} us/call; adaptive tail is "
            f"{self.adaptive_tail_us / best.mean_service_us:.2f}x of best"
            f"\nadaptive within 20% of best static depth: "
            f"{'yes' if self.within_20_percent() else 'NO'}"
            f"\nmmpp leg: max depth {mmpp.get('max_depth_reached')}, "
            f"final depth {mmpp.get('depth')}, "
            f"{mmpp.get('grows')} grows / {mmpp.get('shrinks')} shrinks "
            f"across the on/off cycles"
            f"\ndepth adapted up then back down across the mmpp cycle: "
            f"{'yes' if self.adapted_up_and_down() else 'NO'}")
        return table + summary

    def as_dict(self) -> Dict[str, object]:
        return {
            "depths": list(self.depths),
            "mean_interval_us": self.mean_interval_us,
            "static_points": [
                {"batch_size": p.batch_size, "total_calls": p.total_calls,
                 "mean_service_us": p.mean_service_us}
                for p in self.static_points],
            "adaptive": {
                "calls": self.adaptive_calls,
                "mean_us": self.adaptive_mean_us,
                "tail_us": self.adaptive_tail_us,
                "controller": self.adaptive_controller,
            },
            "mmpp_controller": self.mmpp_controller,
            "best_static": {
                "batch_size": self.best_static().batch_size,
                "mean_service_us": self.best_static().mean_service_us,
            },
            "within_20_percent": self.within_20_percent(),
            "adapted_up_and_down": self.adapted_up_and_down(),
            "metrics": self.metrics,
        }


def _steady_spec(*, calls: int, mean_interval_us: float, seed: int,
                 **overrides) -> TrafficSpec:
    return TrafficSpec(clients=1, modules=1, calls_per_client=calls,
                       arrival="open", mean_interval_us=mean_interval_us,
                       seed=seed, **overrides)


def run_adaptive_bench(*, depths: Sequence[int] = DEFAULT_DEPTHS,
                       static_calls: int = DEFAULT_STATIC_CALLS,
                       adaptive_calls: int = DEFAULT_ADAPTIVE_CALLS,
                       mmpp_calls: int = DEFAULT_MMPP_CALLS,
                       mean_interval_us: float = DEFAULT_MEAN_INTERVAL_US,
                       max_depth: Optional[int] = None,
                       tail_fraction: float = 0.5,
                       seed: int = 0xADA_57) -> AdaptiveReport:
    """Measure the static sweep, the adaptive steady leg and the MMPP leg."""
    if not depths or min(depths) < 1:
        raise ValueError("static depths must be positive")
    if max_depth is None:
        max_depth = max(depths)

    report = AdaptiveReport(depths=tuple(depths),
                            mean_interval_us=mean_interval_us)
    for depth in depths:
        result = run_traffic(_steady_spec(calls=static_calls,
                                          mean_interval_us=mean_interval_us,
                                          seed=seed, batch_size=depth))
        report.static_points.append(StaticPoint(
            batch_size=depth, total_calls=result.total_calls,
            mean_service_us=result.mean_service_us))

    steady: TrafficResult = run_traffic(_steady_spec(
        calls=adaptive_calls, mean_interval_us=mean_interval_us, seed=seed,
        adaptive_batch=True, adaptive_max_depth=max_depth, telemetry=True))
    report.adaptive_calls = steady.total_calls
    report.adaptive_mean_us = steady.mean_service_us
    report.adaptive_tail_us = steady.tail_mean_service_us(tail_fraction)
    report.adaptive_controller = steady.adaptive["per_client"][0]
    report.metrics = steady.metrics

    mmpp = run_traffic(TrafficSpec(
        clients=1, modules=1, calls_per_client=mmpp_calls, arrival="mmpp",
        mean_interval_us=48.0, burst_interval_us=1.5, burst_on_us=400.0,
        burst_off_us=1200.0, adaptive_batch=True,
        adaptive_max_depth=max_depth, seed=seed))
    report.mmpp_controller = mmpp.adaptive["per_client"][0]
    return report


def run_abl_adaptive() -> AdaptiveReport:
    """Harness entry point (the ``abl-adaptive`` experiment id)."""
    return run_adaptive_bench()
