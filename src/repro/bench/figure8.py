"""Figure 8 reproduction: the performance-comparison table.

The paper's Figure 8 has two parts — the trial counts and the measured
latencies::

    Test Function         microsec/CALL   stdev(microsec)
    getpid()              0.658000        0.00918937
    SMOD(SMOD-getpid)     6.532000        0.29850740
    SMOD(test-incr)       6.407000        0.07513691
    RPC(test-incr)        63.230000       0.13482911

:func:`reproduce_figure8` regenerates both parts from the simulation and
also computes the two ratios the paper's text highlights: SecModule dispatch
is roughly 10× a bare kernel call, and roughly 10× *faster* than the same
function over local RPC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.stats import MeasurementSummary
from ..workloads.microbench import (
    PAPER_SPECS,
    run_native_getpid,
    run_rpc_testincr,
    run_smod_getpid,
    run_smod_testincr,
)
from .report import format_us, render_table

#: The paper's published numbers, used for the paper-vs-measured comparison
#: in EXPERIMENTS.md and by the shape checks below (values in microseconds).
PAPER_RESULTS: Dict[str, Dict[str, float]] = {
    "getpid": {"mean_us": 0.658000, "stdev_us": 0.00918937},
    "smod_getpid": {"mean_us": 6.532000, "stdev_us": 0.29850740},
    "smod_testincr": {"mean_us": 6.407000, "stdev_us": 0.07513691},
    "rpc_testincr": {"mean_us": 63.230000, "stdev_us": 0.13482911},
}


@dataclass
class Figure8Row:
    """One row of the reproduced table."""

    key: str
    name: str
    calls_per_trial: int
    trials: int
    mean_us: float
    stdev_us: float

    @property
    def paper_mean_us(self) -> Optional[float]:
        entry = PAPER_RESULTS.get(self.key)
        return entry["mean_us"] if entry else None

    def relative_error(self) -> Optional[float]:
        paper = self.paper_mean_us
        if paper is None or paper == 0:
            return None
        return abs(self.mean_us - paper) / paper


@dataclass
class Figure8Table:
    """The full reproduced Figure 8."""

    rows: List[Figure8Row] = field(default_factory=list)
    summaries: Dict[str, MeasurementSummary] = field(default_factory=dict)

    def row(self, key: str) -> Figure8Row:
        for row in self.rows:
            if row.key == key:
                return row
        raise KeyError(key)

    # -- the claims the paper's text makes about this table --------------------
    def smod_vs_native_factor(self) -> float:
        """How many times slower SMOD(test-incr) is than native getpid()."""
        return self.row("smod_testincr").mean_us / self.row("getpid").mean_us

    def rpc_vs_smod_factor(self) -> float:
        """How many times slower RPC(test-incr) is than SMOD(test-incr).

        The paper: "invoking a SecModule function is roughly 10 times faster
        than the identical function being executed via RPC."
        """
        return self.row("rpc_testincr").mean_us / self.row("smod_testincr").mean_us

    def ordering_matches_paper(self) -> bool:
        """getpid < SMOD(test-incr) <= SMOD(SMOD-getpid) < RPC, as published."""
        getpid = self.row("getpid").mean_us
        smod_incr = self.row("smod_testincr").mean_us
        smod_getpid = self.row("smod_getpid").mean_us
        rpc = self.row("rpc_testincr").mean_us
        return getpid < smod_incr <= smod_getpid < rpc

    # -- rendering -----------------------------------------------------------------
    def render(self) -> str:
        counts = render_table(
            ["", "Number of Calls/Trial", "Total Number of Trials"],
            [[row.name, f"{row.calls_per_trial:,}", row.trials]
             for row in self.rows],
            title="Figure 8: Performance Comparisons (reproduced)")
        latencies = render_table(
            ["Test Function", "microsec/CALL", "stdev(microsec)",
             "paper microsec/CALL"],
            [[row.name, format_us(row.mean_us), format_us(row.stdev_us, 8),
              format_us(row.paper_mean_us) if row.paper_mean_us else "-"]
             for row in self.rows])
        ratios = (
            f"SMOD(test-incr) / getpid()        = {self.smod_vs_native_factor():.2f}x\n"
            f"RPC(test-incr)  / SMOD(test-incr) = {self.rpc_vs_smod_factor():.2f}x"
        )
        return "\n\n".join([counts, latencies, ratios])


def reproduce_figure8(*, trials: Optional[int] = None,
                      sample_calls: Optional[int] = None,
                      seed: int = 42) -> Figure8Table:
    """Run all four Figure 8 benchmarks and assemble the table.

    ``trials`` / ``sample_calls`` default to the paper's 10 trials with the
    standard sample size; tests pass smaller values to keep runtimes short.
    """
    def spec(key: str):
        return PAPER_SPECS[key].scaled(trials=trials, sample_calls=sample_calls)

    summaries = {
        "getpid": run_native_getpid(spec("getpid"), seed=seed + 1),
        "smod_getpid": run_smod_getpid(spec=spec("smod_getpid"), seed=seed + 2),
        "smod_testincr": run_smod_testincr(spec=spec("smod_testincr"),
                                           seed=seed + 3),
        "rpc_testincr": run_rpc_testincr(spec("rpc_testincr"), seed=seed + 4),
    }

    table = Figure8Table(summaries=summaries)
    for key, summary in summaries.items():
        table.rows.append(Figure8Row(
            key=key,
            name=summary.name,
            calls_per_trial=summary.calls_per_trial,
            trials=summary.num_trials,
            mean_us=summary.mean_us_per_call,
            stdev_us=summary.stdev_us_per_call,
        ))
    return table
