"""Service-plane benchmark: the ``abl-serve`` experiment.

The service plane turns SecModule into a served backend: clients attach
through a :class:`~repro.serve.frontend.ServiceFrontend`, their sessions
land in the (tenant-)sharded session table, and stateless traffic flows
through a bounded attachment pool.  This sweep scales the live-session
count 10^3 → 10^6 (default points stop at 10^5; ``--sessions`` reaches
the full million) and measures the four costs the design must keep flat
or bounded:

* **attach** — establishing one more session while N are already live
  (crt0 handshake + pooled-handle seat + index inserts);
* **lookup** — resolving one binding to its session: tenant index walk +
  keyed shard probe, *never* a table scan.  The per-probe op count
  (tenant lookups + shard locks) must be byte-identical at every sweep
  point — that flatness is the acceptance bar;
* **bound call** — a full dispatch through the front-end's binding path;
* **pool wait** — offered load above the attachment pool's capacity,
  measured with the K-server virtual-time model (waits and refusals are
  deterministic functions of the arrival schedule).

Everything in the report is virtual-clock-deterministic; the host-side
story (``wall_seconds``, ``peak_rss_bytes``) lives at the payload top
level where the byte-exact regression gate never looks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..hw.machine import make_paper_machine
from ..kernel.kernel import Kernel
from ..secmodule.libc_conversion import build_test_module
from ..secmodule.protection import ProtectionMode
from ..secmodule.smod_syscalls import install_secmodule
from ..serve.attachment_pool import PoolConfig
from ..serve.frontend import ServiceConfig, ServiceFrontend
from ..userland.process import Program
from .report import render_table

#: Live-session counts the default sweep measures (the acceptance run
#: extends this to 10^6 via ``repro bench serve --sessions``).
DEFAULT_SESSIONS: Tuple[int, ...] = (1_000, 10_000, 100_000)
FAST_SESSIONS: Tuple[int, ...] = (500, 2_000)
#: Tenants the sharded table is split across (>1 exercises the
#: hierarchical tenant → shard walk at every probe).
DEFAULT_TENANTS = 4
#: Sessions each surrogate client program holds (allow_multiple): 10^6
#: sessions must not need 10^6 client processes.
DEFAULT_SESSIONS_PER_CLIENT = 64
#: Sampled-phase sizes: fixed regardless of the sweep point, so their
#: per-op costs are directly comparable across table sizes.
LOOKUP_SAMPLES = 256
CALL_SAMPLES = 64
DETACH_SAMPLES = 64
#: Pool-wait leg: arrivals offered every 1 virtual us against
#: ``POOL_ATTACHMENTS`` workers each busy ~6.4 us per call — offered load
#: well above capacity, so waits accumulate deterministically.
POOL_CALLS = 128
POOL_ATTACHMENTS = 4
POOL_ARRIVAL_INTERVAL_US = 1.0


@dataclass
class ServePoint:
    """One measured live-session scale."""

    sessions: int
    clients: int
    tenants: int
    attach_cycles: int
    lookup_samples: int
    lookup_cycles: int
    #: tenant lookups + shard lock acquisitions per keyed probe — the
    #: flatness metric (an index walk's op count cannot depend on N)
    lookup_ops_per_probe: float
    call_samples: int
    call_cycles: int
    detach_samples: int
    detach_cycles: int
    pool_stats: Dict[str, object] = field(default_factory=dict)
    live_sessions: int = 0
    handle_count: int = 0

    @property
    def attach_cycles_per_session(self) -> float:
        return self.attach_cycles / self.sessions

    @property
    def lookup_cycles_per_probe(self) -> float:
        return self.lookup_cycles / self.lookup_samples

    @property
    def call_cycles_per_call(self) -> float:
        return self.call_cycles / self.call_samples

    @property
    def detach_cycles_per_op(self) -> float:
        return self.detach_cycles / self.detach_samples


@dataclass
class ServeReport:
    """The sweep plus the flatness checks the acceptance bar names."""

    sessions: Tuple[int, ...]
    tenants: int
    sessions_per_client: int
    mhz: float
    points: List[ServePoint] = field(default_factory=list)

    # -- the acceptance-bar checks ------------------------------------------
    def lookup_ops_flat(self) -> bool:
        """Per-probe op counts must be identical at every table size."""
        ops = [p.lookup_ops_per_probe for p in self.points]
        return all(a == b for a, b in zip(ops, ops[1:]))

    def lookup_cost_flat(self) -> bool:
        """Per-probe cycle cost must be identical at every table size."""
        per = [p.lookup_cycles_per_probe for p in self.points]
        return all(a == b for a, b in zip(per, per[1:]))

    # -- unit helpers --------------------------------------------------------
    def us(self, cycles: float) -> float:
        return cycles / self.mhz

    @property
    def bench_total_calls(self) -> int:
        """Dispatches driven across the sweep (for the wall-rate field)."""
        return sum(p.call_samples + int(p.pool_stats.get("checkouts", 0))
                   for p in self.points)

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        rows = []
        for p in self.points:
            rows.append([
                f"{p.sessions:,}",
                f"{p.clients:,}",
                f"{self.us(p.attach_cycles_per_session):,.1f}",
                f"{p.lookup_ops_per_probe:.1f}",
                f"{self.us(p.lookup_cycles_per_probe):.3f}",
                f"{self.us(p.call_cycles_per_call):.2f}",
                f"{self.us(p.detach_cycles_per_op):,.1f}",
                f"{p.pool_stats.get('waits', 0)}",
                f"{p.pool_stats.get('mean_wait_us', 0.0):.2f}",
                f"{p.handle_count:,}",
            ])
        table = render_table(
            ["live sessions", "clients", "attach us", "lookup ops",
             "lookup us", "call us", "detach us", "pool waits",
             "mean wait us", "handles"],
            rows,
            title=(f"Service plane: sessions swept "
                   f"{min(self.sessions):,} -> {max(self.sessions):,}, "
                   f"{self.tenants} tenants, pooled(64) backend"))
        summary = (
            f"\nper-probe lookup op count flat across table sizes: "
            f"{'yes' if self.lookup_ops_flat() else 'NO'}"
            f"\nper-probe lookup cycle cost flat across table sizes: "
            f"{'yes' if self.lookup_cost_flat() else 'NO'}")
        last = self.points[-1] if self.points else None
        if last is not None:
            stats = last.pool_stats
            summary += (
                f"\npool leg at {last.sessions:,} sessions: "
                f"{stats.get('checkouts', 0)} checkouts, "
                f"{stats.get('waits', 0)} waited "
                f"(mean {stats.get('mean_wait_us', 0.0):.2f}us, "
                f"max {stats.get('max_wait_us', 0.0):.2f}us), "
                f"{stats.get('refusals', 0)} refused")
        return table + summary

    def as_dict(self) -> Dict[str, object]:
        """Deterministic (virtual-clock) metrics only: this block sits
        inside the byte-exact ``repro bench diff`` gate.  Host wall time
        and RSS live at the payload top level instead."""
        return {
            "sessions": list(self.sessions),
            "tenants": self.tenants,
            "sessions_per_client": self.sessions_per_client,
            "mhz": self.mhz,
            "points": [
                {"sessions": p.sessions,
                 "clients": p.clients,
                 "attach_us_per_session": self.us(
                     p.attach_cycles_per_session),
                 "lookup_ops_per_probe": p.lookup_ops_per_probe,
                 "lookup_us_per_probe": self.us(p.lookup_cycles_per_probe),
                 "call_us_per_call": self.us(p.call_cycles_per_call),
                 "detach_us_per_op": self.us(p.detach_cycles_per_op),
                 "pool_stats": dict(p.pool_stats),
                 "live_sessions": p.live_sessions,
                 "handle_count": p.handle_count}
                for p in self.points],
            "lookup_ops_flat": self.lookup_ops_flat(),
            "lookup_cost_flat": self.lookup_cost_flat(),
        }


def _measure_point(sessions: int, *, tenants: int,
                   sessions_per_client: int, seed: int) -> ServePoint:
    """One fresh kernel: attach N sessions through the front-end, then
    sample the lookup, bound-call, pool and detach paths."""
    machine = make_paper_machine(seed=seed)
    kernel = Kernel(machine=machine).boot()
    extension = install_secmodule(kernel)
    extension.sessions.charge_shard_locks = True
    definition = build_test_module()
    registered = extension.registry.register(
        definition, uid=0, protection=ProtectionMode.ENCRYPT)

    clients = max(1, math.ceil(sessions / sessions_per_client))
    frontend = ServiceFrontend(
        kernel, extension,
        config=ServiceConfig(
            pool=PoolConfig(max_attachments=POOL_ATTACHMENTS),
            # surrogate clients + pooled handles + margin for workers
            max_procs=clients + sessions // 32 + 4096))
    record = frontend.register_backend("secmodule", [registered],
                                       policy="pooled:64")

    # surrogate client programs (spawned outside the attach timing: the
    # attach metric is session establishment, not process creation)
    programs = [Program.spawn(kernel, f"serve-client{index}", uid=1000)
                for index in range(clients)]

    # -- attach phase --------------------------------------------------------
    mark = machine.clock.checkpoint()
    bindings = []
    for index in range(sessions):
        client_index = index % clients
        binding = frontend.attach(record,
                                  tenant=client_index % tenants,
                                  client=programs[client_index])
        bindings.append(binding)
    attach_cycles = machine.clock.since(mark).cycles
    live_sessions = len(extension.sessions)
    handle_count = extension.sessions.handle_count()

    # -- lookup phase: keyed probes sampled across the whole table -----------
    manager = extension.sessions
    stride = max(1, len(bindings) // LOOKUP_SAMPLES)
    lookup_sample = bindings[::stride][:LOOKUP_SAMPLES]
    ops_before = (manager.shard_lock_acquisitions + manager.tenant_lookups)
    mark = machine.clock.checkpoint()
    for binding in lookup_sample:
        found = manager.lookup(binding.client.proc.pid,
                               binding.session.session_id)
        if found is not binding.session:
            raise RuntimeError("service-plane keyed probe missed a live "
                               f"session at N={sessions}")
    lookup_cycles = machine.clock.since(mark).cycles
    lookup_ops = (manager.shard_lock_acquisitions + manager.tenant_lookups
                  - ops_before)

    # -- bound-call phase ----------------------------------------------------
    call_stride = max(1, len(bindings) // CALL_SAMPLES)
    call_sample = bindings[::call_stride][:CALL_SAMPLES]
    mark = machine.clock.checkpoint()
    for index, binding in enumerate(call_sample):
        outcome = frontend.call_bound(binding.binding_id, "test_incr", index)
        if not outcome.ok:
            raise RuntimeError(f"bound call denied at N={sessions}")
    call_cycles = machine.clock.since(mark).cycles

    # -- pool-wait phase: offered load above the pool's capacity -------------
    base_us = machine.meter.profile.microseconds(machine.clock.cycles)
    for index in range(POOL_CALLS):
        outcome, _ = frontend.call_pooled(
            record, "test_incr", index,
            arrival_us=base_us + index * POOL_ARRIVAL_INTERVAL_US)
        if not outcome.ok:
            raise RuntimeError(f"pooled call failed at N={sessions}")
    pool_stats = frontend.pool(record.name).stats()

    # -- detach phase: sampled teardowns stay index walks too ----------------
    detach_stride = max(1, len(bindings) // DETACH_SAMPLES)
    detach_sample = bindings[::detach_stride][:DETACH_SAMPLES]
    mark = machine.clock.checkpoint()
    for binding in detach_sample:
        frontend.detach(binding.binding_id)
    detach_cycles = machine.clock.since(mark).cycles

    return ServePoint(
        sessions=sessions, clients=clients, tenants=tenants,
        attach_cycles=attach_cycles,
        lookup_samples=len(lookup_sample), lookup_cycles=lookup_cycles,
        lookup_ops_per_probe=lookup_ops / len(lookup_sample),
        call_samples=len(call_sample), call_cycles=call_cycles,
        detach_samples=len(detach_sample), detach_cycles=detach_cycles,
        pool_stats=pool_stats, live_sessions=live_sessions,
        handle_count=handle_count)


def run_serve_sweep(*, sessions: Sequence[int] = DEFAULT_SESSIONS,
                    tenants: int = DEFAULT_TENANTS,
                    sessions_per_client: int = DEFAULT_SESSIONS_PER_CLIENT,
                    seed: int = 0x5E21) -> ServeReport:
    """Measure the sweep: one fresh system per live-session count."""
    if not sessions or min(sessions) < 1:
        raise ValueError("session counts must be positive")
    if tenants < 1 or sessions_per_client < 1:
        raise ValueError("tenants and sessions_per_client must be >= 1")
    mhz = make_paper_machine(seed=seed).spec.mhz
    report = ServeReport(sessions=tuple(sessions), tenants=tenants,
                         sessions_per_client=sessions_per_client, mhz=mhz)
    for count in sessions:
        report.points.append(_measure_point(
            count, tenants=tenants,
            sessions_per_client=sessions_per_client, seed=seed))
    return report


def run_abl_serve() -> ServeReport:
    """Harness entry point (the ``abl-serve`` experiment id)."""
    return run_serve_sweep()
