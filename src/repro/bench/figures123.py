"""Reproductions of the paper's protocol/layout diagrams (Figures 1–3).

These figures are not performance results but protocol artifacts:

* **Figure 1** — the SecModule initialization sequence, eight numbered steps
  from ``crt0`` opening the module to the first protected call returning;
* **Figure 2** — the address-space layout of the client and handle after the
  handshake (which ranges are shared, where the secret stack/heap sits);
* **Figure 3** — the shared-stack contents at the four checkpoints around
  ``sys_smod_call``.

Each ``reproduce_figureN`` runs a real (traced) simulation, extracts the
structured facts the figure conveys, and renders them as text.  The
corresponding tests assert the structure (orderings, shared ranges, stack
slots), not the prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..hw.machine import make_paper_machine
from ..kernel.uvm.layout import (
    SECRET_BASE,
    SECRET_SIZE,
    SHARE_END,
    SHARE_START,
)
from ..secmodule.api import SecModuleSystem
from ..secmodule.dispatch import DispatchConfig
from ..sim.trace import TraceEvent

#: The Figure 1 steps, in order, as trace labels.
FIGURE1_EXPECTED_SEQUENCE: Tuple[str, ...] = (
    "smod_find",              # (1) crt0 opens access to the module
    "smod_start_session",     # (1b) formal request for the module
    "smod_std_handle",        # (2) kernel forks the handle onto the secret stack
    "map_secret_region",      # (2b) secret heap/stack created
    "smod_session_info",      # (3) handle's half of the handshake
    "uvmspace_force_share",   # (3b) data/heap/stack forcibly shared
    "load_module_text",       # (3c) module text loaded into the handle
    "smod_handle_info",       # (4) client completes the synchronization
    "smod_client_main",       # (4b) crt0 hands over to the client main
)


@dataclass
class Figure1Report:
    """The reproduced initialization sequence."""

    events: List[TraceEvent]
    labels: List[str]

    def step_indices(self) -> Dict[str, int]:
        indices: Dict[str, int] = {}
        for index, label in enumerate(self.labels):
            indices.setdefault(label, index)
        return indices

    def follows_expected_order(self) -> bool:
        position = -1
        indices = self.step_indices()
        for label in FIGURE1_EXPECTED_SEQUENCE:
            if label not in indices:
                return False
            if indices[label] < position:
                return False
            position = indices[label]
        return True

    def render(self) -> str:
        header = "Figure 1: The SecModule Initialization Sequence (reproduced)"
        lines = [header, "-" * len(header)]
        for number, label in enumerate(FIGURE1_EXPECTED_SEQUENCE, start=1):
            lines.append(f"  step {number}: {label}")
        lines.append("")
        lines.append("traced events:")
        lines.extend(f"  {event.describe()}" for event in self.events)
        return "\n".join(lines)


def reproduce_figure1(*, seed: int = 7) -> Figure1Report:
    """Run a traced session establishment and extract the Figure 1 sequence."""
    machine = make_paper_machine(seed=seed, trace_enabled=True)
    system = SecModuleSystem.create(machine=machine, include_libc=False)
    # one protected call so the trace also shows the steady-state dispatch
    system.call("test_incr", 41)
    events = [e for e in machine.trace
              if e.category.startswith("smod") or e.category == "smod.uvm"]
    return Figure1Report(events=events, labels=[e.label for e in events])


@dataclass
class Figure2Report:
    """The reproduced address-space layout comparison."""

    client_layout: object
    handle_layout: object
    shared_window: Tuple[int, int]
    secret_region: Tuple[int, int]
    shared_entry_names: List[str]
    client_text_entries: List[str]
    handle_text_entries: List[str]

    def render(self) -> str:
        header = "Figure 2: Address Space Layout (reproduced)"
        lines = [header, "-" * len(header)]
        lines.append("client:")
        lines.extend("  " + line for line in self.client_layout.describe().splitlines())
        lines.append("handle:")
        lines.extend("  " + line for line in self.handle_layout.describe().splitlines())
        lines.append(f"shared window: [{self.shared_window[0]:#010x}, "
                     f"{self.shared_window[1]:#010x})")
        lines.append(f"secret stack/heap (handle only): "
                     f"[{self.secret_region[0]:#010x}, {self.secret_region[1]:#010x})")
        lines.append("entries shared between client and handle:")
        lines.extend(f"  {name}" for name in self.shared_entry_names)
        lines.append("text mappings (never shared):")
        lines.append(f"  client: {', '.join(self.client_text_entries) or '-'}")
        lines.append(f"  handle: {', '.join(self.handle_text_entries) or '-'}")
        return "\n".join(lines)


def reproduce_figure2(*, seed: int = 8) -> Figure2Report:
    """Establish a session and compare client vs handle address spaces."""
    system = SecModuleSystem.create(seed=seed)
    # Touch the heap so the layout shows a grown, shared heap region.
    system.call("malloc", 4096)
    client_space = system.client_proc.vmspace
    handle_space = system.handle_proc.vmspace

    client_anon = {(e.start, e.end, e.name) for e in client_space.vm_map
                   if e.amap is not None}
    shared_names = []
    for entry in handle_space.vm_map:
        if entry.amap is None:
            continue
        if (entry.start, entry.end, entry.name) in client_anon:
            shared_names.append(entry.name)

    return Figure2Report(
        client_layout=client_space.layout_summary(),
        handle_layout=handle_space.layout_summary(),
        shared_window=(SHARE_START, SHARE_END),
        secret_region=(SECRET_BASE, SECRET_BASE + SECRET_SIZE),
        shared_entry_names=sorted(shared_names),
        client_text_entries=sorted(e.name for e in client_space.vm_map
                                   if e.uobj is not None),
        handle_text_entries=sorted(e.name for e in handle_space.vm_map
                                   if e.uobj is not None),
    )


@dataclass
class Figure3Report:
    """The reproduced stack-manipulation checkpoints."""

    checkpoints: Dict[str, Tuple]
    result: int

    def slot_kinds(self, step: str) -> List[str]:
        return [slot.kind.value for slot in self.checkpoints[step]]

    def render(self) -> str:
        header = "Figure 3: Stack Manipulations (reproduced)"
        lines = [header, "-" * len(header)]
        captions = {
            "step1": "(1) inside the client stub, before the ids are pushed",
            "step2": "(2) as sys_smod_call sees it (ids + duplicated ret/fp)",
            "step3": "(3) as the relayed function sees it (args only)",
            "step4": "(4) after smod_stub_receive restored the frame",
        }
        for step in ("step1", "step2", "step3", "step4"):
            slots = self.checkpoints.get(step, ())
            rendered = ", ".join(s.describe() for s in slots) or "<empty>"
            lines.append(f"{captions[step]}:")
            lines.append(f"  bottom -> top: {rendered}")
        lines.append(f"call result: {self.result}")
        return "\n".join(lines)


def reproduce_figure3(*, seed: int = 9, argument: int = 41) -> Figure3Report:
    """Make one checkpointed protected call and capture the stack states."""
    system = SecModuleSystem.create(seed=seed, include_libc=False)
    config = DispatchConfig(record_checkpoints=True)
    outcome = system.call_outcome("test_incr", argument, config=config)
    if not outcome.ok or outcome.frame is None:
        raise RuntimeError("checkpointed call failed")
    return Figure3Report(checkpoints=dict(outcome.frame.checkpoints),
                         result=outcome.value)
