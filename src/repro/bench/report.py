"""Plain-text report rendering shared by the benchmark harness and the CLI."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], *,
                 title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    for row in rendered_rows:
        parts.append(line(row))
    return "\n".join(parts)


def format_us(value: float, decimals: int = 6) -> str:
    """Format a microsecond value the way the paper prints them."""
    return f"{value:.{decimals}f}"


def format_ratio(value: float) -> str:
    return f"{value:.2f}x"


def section(title: str, body: str) -> str:
    """A titled report section."""
    underline = "-" * len(title)
    return f"{title}\n{underline}\n{body}\n"
