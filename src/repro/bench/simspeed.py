"""Simulator-speed benchmark: the ``abl-simspeed`` experiment.

Every other experiment in this repo measures *virtual* time — cycles the
simulated kernel charges for the protection mechanisms under study.  This
one measures the simulator itself: wall-clock protected calls per second
across the three execution tiers over the same deterministic steady-state
traffic workload:

* **op-by-op** — every protected call executes its full charge sequence
  (``use_trace_replay=False``);
* **replay** — hot calls replay their recorded trace as one aggregated
  clock charge (``use_trace_replay=True, use_fast_forward=False``);
* **fast-forward** — hot calls accumulate into open windows settled by a
  single closed-form ``CallTrace.scaled(n)`` charge
  (``use_trace_replay=True, use_fast_forward=True``), plus sharded
  parallel legs (``run_traffic_sharded``) at 1 and N workers.

The point is the ROADMAP's "runs as fast as the hardware allows" leg
applied to our own hot path: the interception-layer literature (arXiv:
1803.07495) argues a measurement path must be cheap or it bounds what you
can measure, and here the op-by-op execution of the fixed per-call charge
sequence is exactly such a bound — it caps how many calls
``abl-throughput`` and ``abl-adaptive`` can push through a run.

**Identity first, speed second.**  The slow tiers cannot run 10^7 calls
in tolerable wall time, so the report separates the two questions: every
tier (and both sharded worker counts) runs the *identity size* and must
agree byte-for-byte on machine cycles, clock events and the full op
histogram; only then do the rate legs — each tier at its own size cap,
fast-forward at the full requested count — earn a reported speedup.  A
fast path that changes the measured numbers is not a fast path, it is a
bug, and the report refuses to claim a speedup for it.

Wall-clock legs run with the cyclic GC paused (standard benchmarking
hygiene; at 10^7 calls collector sweeps over the result vectors would
otherwise dominate) — virtual accounting is unaffected.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..secmodule.dispatch import DispatchConfig
from ..workloads.shard import ShardedTrafficResult, run_traffic_sharded
from ..workloads.traffic import TrafficEngine, TrafficSpec
from .report import render_table

#: Fast-forward-tier protected calls (10^5 default; the CLI scales to 10^7).
DEFAULT_CALLS = 100_000
#: CI smoke size.
FAST_CALLS = 4_000
DEFAULT_CLIENTS = 4
DEFAULT_SEED = 0x51A_57
#: All tiers and worker counts run this size for the byte-identity check;
#: it doubles as the op-by-op tier's rate cap (~6 s of wall time).
IDENTITY_CALLS = 20_000
#: Replay-tier rate cap — enough for a steady rate without minutes of wall.
REPLAY_RATE_CALLS = 200_000
#: Sharded-leg size cap (both worker counts run it; identity-compared).
SHARDED_RATE_CALLS = 100_000
DEFAULT_SHARDS = 2
DEFAULT_WORKERS = 2

OP_BY_OP = "op-by-op"
REPLAY = "replay"
FAST_FORWARD = "fast-forward"

#: tier label -> dispatch configuration
TIER_CONFIGS: Dict[str, DispatchConfig] = {
    OP_BY_OP: DispatchConfig(use_trace_replay=False, use_fast_forward=False),
    REPLAY: DispatchConfig(use_trace_replay=True, use_fast_forward=False),
    FAST_FORWARD: DispatchConfig(use_trace_replay=True,
                                 use_fast_forward=True),
}


@dataclass
class SimspeedLeg:
    """One measured run: a tier at a size, serial or sharded."""

    label: str
    tier: str
    total_calls: int
    wall_seconds: float
    total_cycles: int
    clock_events: int
    op_counts: Dict[str, int] = field(default_factory=dict)
    shards: int = 1
    workers: int = 1
    #: True for the runs whose accounting feeds the identity cross-check
    identity_leg: bool = False

    @property
    def calls_per_wall_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_calls / self.wall_seconds

    @property
    def wall_us_per_call(self) -> float:
        if self.total_calls == 0:
            return 0.0
        return self.wall_seconds * 1e6 / self.total_calls


@dataclass
class SimspeedReport:
    """All measured legs plus the byte-identity cross-checks."""

    calls: int
    clients: int
    modules: int
    seed: int
    identity_calls: int = IDENTITY_CALLS
    legs: List[SimspeedLeg] = field(default_factory=list)
    #: the fast-forward rate leg's trace-cache statistics
    trace_stats: Dict[str, int] = field(default_factory=dict)
    #: sharded runs at 1 vs N workers produced byte-identical merged
    #: accounting (set by ``run_simspeed``; None when sharding was skipped)
    workers_identical: Optional[bool] = None

    def leg(self, tier: str, *, identity: Optional[bool] = None,
            workers: Optional[int] = None) -> SimspeedLeg:
        for leg in self.legs:
            if leg.tier != tier:
                continue
            if identity is not None and leg.identity_leg != identity:
                continue
            if workers is not None and leg.workers != workers:
                continue
            return leg
        raise KeyError((tier, identity, workers))

    def _identity_legs(self) -> List[SimspeedLeg]:
        return [leg for leg in self.legs if leg.identity_leg]

    # -- the acceptance-bar checks ------------------------------------------
    @property
    def cycles_identical(self) -> bool:
        legs = self._identity_legs()
        return all(leg.total_cycles == legs[0].total_cycles
                   and leg.clock_events == legs[0].clock_events
                   for leg in legs)

    @property
    def ops_identical(self) -> bool:
        legs = self._identity_legs()
        return all(leg.op_counts == legs[0].op_counts for leg in legs)

    @property
    def identical(self) -> bool:
        return (self.cycles_identical and self.ops_identical
                and self.workers_identical is not False)

    @property
    def speedup(self) -> float:
        """Wall calls/sec of the fast-forward tier over op-by-op.

        Reported as 0 when any identity check failed: a fast path that
        changes the measured numbers is not a fast path, it is a bug.
        """
        if not self.identical:
            return 0.0
        slow = self.leg(OP_BY_OP).calls_per_wall_second
        fast = self.leg(FAST_FORWARD, identity=False).calls_per_wall_second
        if slow <= 0:
            return 0.0
        return fast / slow

    @property
    def replay_speedup(self) -> float:
        if not self.identical:
            return 0.0
        slow = self.leg(OP_BY_OP).calls_per_wall_second
        fast = self.leg(REPLAY, identity=False).calls_per_wall_second
        if slow <= 0:
            return 0.0
        return fast / slow

    #: total simulated calls across every executed leg (for the export's
    #: calls_per_wall_second field)
    @property
    def bench_total_calls(self) -> int:
        return sum(leg.total_calls for leg in self.legs)

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        rows = []
        for leg in self.legs:
            rows.append([
                leg.label,
                f"{leg.shards}x{leg.workers}" if leg.shards > 1 else "-",
                f"{leg.total_calls:,}",
                f"{leg.wall_seconds:.3f}",
                f"{leg.calls_per_wall_second:,.0f}",
                f"{leg.wall_us_per_call:.2f}",
                f"{leg.total_cycles:,}",
            ])
        table = render_table(
            ["tier", "shards", "calls", "wall sec", "calls/sec (wall)",
             "wall us/call", "virtual cycles"],
            rows,
            title=(f"Simulator speed: {self.clients} clients x "
                   f"{self.modules} module(s), open-loop steady traffic, "
                   f"depth 1"))
        identity = ("byte-identical (cycles, events, op histogram)"
                    if self.cycles_identical and self.ops_identical
                    else "MISMATCH — the fast tiers are buggy")
        if self.workers_identical is None:
            workers = "skipped"
        elif self.workers_identical:
            workers = "byte-identical across worker counts"
        else:
            workers = "MISMATCH — shard merge is buggy"
        stats = self.trace_stats
        summary = (
            f"\ntier accounting at {self.identity_calls:,} calls: {identity}"
            f"\nsharded merge: {workers}"
            f"\nwall-clock speedup, fast-forward vs op-by-op: "
            f"{self.speedup:.1f}x (replay tier: {self.replay_speedup:.1f}x;"
            f" target >= 100x)"
            f"\ntrace cache: {stats.get('records', 0)} records, "
            f"{stats.get('confirms', 0)} confirms, "
            f"{stats.get('replays', 0)} replays, "
            f"{stats.get('fast_forward_calls', 0)} fast-forwarded calls, "
            f"{stats.get('hot', 0)} hot entries")
        return table + summary


def _spec(calls: int, clients: int, modules: int, seed: int,
          shards: int = 1) -> TrafficSpec:
    return TrafficSpec(clients=clients, modules=modules,
                       calls_per_client=calls // clients,
                       arrival="open", seed=seed, shards=shards)


def _run_serial_leg(spec: TrafficSpec, tier: str, *,
                    identity_leg: bool) -> Tuple[SimspeedLeg, Dict[str, int]]:
    """Build the system (untimed), then time the traffic run itself."""
    engine = TrafficEngine(spec, dispatch_config=TIER_CONFIGS[tier])
    engine.build()
    start = time.perf_counter()
    result = engine.run()
    wall = time.perf_counter() - start
    leg = SimspeedLeg(
        label=tier,
        tier=tier,
        total_calls=result.total_calls,
        wall_seconds=wall,
        total_cycles=engine.machine.clock.cycles,
        clock_events=engine.machine.clock.events,
        op_counts=dict(engine.machine.meter.op_counts),
        identity_leg=identity_leg,
    )
    return leg, engine.extension.dispatcher.trace_cache.snapshot()


def _sharded_accounting(sharded: ShardedTrafficResult) -> Dict[str, object]:
    """Everything the worker-count identity check compares, in one dict."""
    result = sharded.result
    return {
        "total_calls": result.total_calls,
        "denied_calls": result.denied_calls,
        "elapsed_us": result.elapsed_us,
        "total_cycles": result.total_cycles,
        "per_client_mean_us": result.per_client_mean_us,
        "latencies_us": result.latencies_us,
        "queue_delays_us": result.queue_delays_us,
        "cache_stats": result.cache_stats,
        "shard_sizes": result.shard_sizes,
        "session_count": result.session_count,
        "handle_count": result.handle_count,
        "broker_stats": result.broker_stats,
        "metrics": repr(result.metrics),
        "seat_fairness": repr(result.seat_fairness),
        "machine_cycles": sharded.machine_cycles,
        "clock_events": sharded.clock_events,
        "op_counts": sharded.op_counts,
        "trace_stats": sharded.trace_stats,
    }


def _run_sharded_leg(spec: TrafficSpec, *, workers: int
                     ) -> Tuple[SimspeedLeg, Dict[str, object]]:
    start = time.perf_counter()
    sharded = run_traffic_sharded(spec,
                                  dispatch_config=TIER_CONFIGS[FAST_FORWARD],
                                  workers=workers)
    wall = time.perf_counter() - start
    leg = SimspeedLeg(
        label=f"fast-forward sharded w{workers}",
        tier=FAST_FORWARD,
        total_calls=sharded.result.total_calls,
        wall_seconds=wall,
        total_cycles=sharded.machine_cycles,
        clock_events=sharded.clock_events,
        op_counts=sharded.op_counts,
        shards=spec.shards,
        workers=workers,
    )
    return leg, _sharded_accounting(sharded)


def run_simspeed(*, calls: int = DEFAULT_CALLS,
                 clients: int = DEFAULT_CLIENTS, modules: int = 1,
                 seed: int = DEFAULT_SEED, shards: int = DEFAULT_SHARDS,
                 workers: int = DEFAULT_WORKERS,
                 fast: bool = False) -> SimspeedReport:
    """Measure wall-clock calls/sec across the three execution tiers.

    ``calls`` sizes the fast-forward rate leg (split across the clients);
    the slower tiers are capped (op-by-op at the identity size, replay at
    ``REPLAY_RATE_CALLS``) so the benchmark stays tolerable at 10^7.
    Every tier runs the identity size, where the virtual accounting must
    match to the byte — only wall time may move between tiers.  Sharded
    fast-forward legs run at 1 and ``workers`` workers over ``shards``
    client groups; their merged accounting must match each other exactly.
    """
    if fast:
        calls = min(calls, FAST_CALLS)
    if calls < clients:
        raise ValueError("simspeed needs at least one call per client")
    identity_calls = min(calls, IDENTITY_CALLS)
    shards = max(1, min(shards, clients))
    report = SimspeedReport(calls=calls, clients=clients, modules=modules,
                            seed=seed, identity_calls=identity_calls)

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        # identity block: all three tiers at one size, byte-compared
        for tier in (OP_BY_OP, REPLAY, FAST_FORWARD):
            leg, _ = _run_serial_leg(
                _spec(identity_calls, clients, modules, seed), tier,
                identity_leg=True)
            report.legs.append(leg)

        # rate legs: replay and fast-forward at their own sizes (the
        # op-by-op identity leg doubles as its rate leg)
        replay_calls = min(calls, REPLAY_RATE_CALLS)
        leg, _ = _run_serial_leg(
            _spec(replay_calls, clients, modules, seed), REPLAY,
            identity_leg=False)
        report.legs.append(leg)
        leg, trace_stats = _run_serial_leg(
            _spec(calls, clients, modules, seed), FAST_FORWARD,
            identity_leg=False)
        report.legs.append(leg)
        report.trace_stats = trace_stats

        # sharded legs: same workload split over independent client
        # groups, serial in process vs on worker processes
        if shards > 1:
            sharded_calls = min(calls, SHARDED_RATE_CALLS)
            sharded_spec = _spec(sharded_calls, clients, modules, seed,
                                 shards=shards)
            leg_one, acct_one = _run_sharded_leg(sharded_spec, workers=1)
            report.legs.append(leg_one)
            if workers > 1:
                leg_n, acct_n = _run_sharded_leg(sharded_spec,
                                                 workers=workers)
                report.legs.append(leg_n)
                report.workers_identical = acct_one == acct_n
            else:
                report.workers_identical = True
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
    return report


def run_abl_simspeed() -> SimspeedReport:
    """Harness entry point (the ``abl-simspeed`` experiment id)."""
    return run_simspeed()
