"""Simulator-speed benchmark: the ``abl-simspeed`` experiment.

Every other experiment in this repo measures *virtual* time — cycles the
simulated kernel charges for the protection mechanisms under study.  This
one measures the simulator itself: wall-clock protected calls per second
with the trace-replay dispatch fast path off versus on, over the same
deterministic steady-state traffic workload.

The point is the ROADMAP's "runs as fast as the hardware allows" leg
applied to our own hot path: the interception-layer literature (arXiv:
1803.07495) argues a measurement path must be cheap or it bounds what you
can measure, and here the op-by-op execution of the fixed per-call charge
sequence is exactly such a bound — it caps how many calls ``abl-throughput``
and ``abl-adaptive`` can push through a run.  Replay collapses the recorded
sequence into one aggregated clock charge per call, with byte-identical
accounting (the report cross-checks cycle totals and the full op histogram
between the two legs and refuses to claim a speedup if they differ).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from ..secmodule.dispatch import DispatchConfig
from ..workloads.traffic import TrafficEngine, TrafficSpec
from .report import render_table

#: Protected calls issued per leg (10^5; the CLI scales up to 10^7).
DEFAULT_CALLS = 100_000
#: CI smoke size.
FAST_CALLS = 4_000
DEFAULT_CLIENTS = 4
DEFAULT_SEED = 0x51A_57


@dataclass
class SimspeedLeg:
    """One measured configuration (replay off or on)."""

    label: str
    use_trace_replay: bool
    total_calls: int
    wall_seconds: float
    total_cycles: int
    clock_events: int
    op_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def calls_per_wall_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_calls / self.wall_seconds

    @property
    def wall_us_per_call(self) -> float:
        if self.total_calls == 0:
            return 0.0
        return self.wall_seconds * 1e6 / self.total_calls


@dataclass
class SimspeedReport:
    """Both legs plus the byte-identity cross-check."""

    calls: int
    clients: int
    modules: int
    seed: int
    legs: List[SimspeedLeg] = field(default_factory=list)
    #: the replay leg's trace-cache statistics (records/confirms/replays)
    trace_stats: Dict[str, int] = field(default_factory=dict)

    def leg(self, use_trace_replay: bool) -> SimspeedLeg:
        for leg in self.legs:
            if leg.use_trace_replay == use_trace_replay:
                return leg
        raise KeyError(use_trace_replay)

    # -- the acceptance-bar checks ------------------------------------------
    @property
    def cycles_identical(self) -> bool:
        off, on = self.leg(False), self.leg(True)
        return (off.total_cycles == on.total_cycles
                and off.clock_events == on.clock_events)

    @property
    def ops_identical(self) -> bool:
        return self.leg(False).op_counts == self.leg(True).op_counts

    @property
    def identical(self) -> bool:
        return self.cycles_identical and self.ops_identical

    @property
    def speedup(self) -> float:
        """Wall-clock calls/sec gain of replay on over replay off.

        Reported as 0 when the legs are not byte-identical: a fast path
        that changes the measured numbers is not a fast path, it is a bug.
        """
        if not self.identical:
            return 0.0
        off, on = self.leg(False), self.leg(True)
        if off.calls_per_wall_second <= 0:
            return 0.0
        return on.calls_per_wall_second / off.calls_per_wall_second

    #: total simulated calls across both legs (for the export's
    #: calls_per_wall_second field)
    @property
    def bench_total_calls(self) -> int:
        return sum(leg.total_calls for leg in self.legs)

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        rows = []
        for leg in self.legs:
            rows.append([
                leg.label,
                f"{leg.total_calls:,}",
                f"{leg.wall_seconds:.3f}",
                f"{leg.calls_per_wall_second:,.0f}",
                f"{leg.wall_us_per_call:.2f}",
                f"{leg.total_cycles:,}",
            ])
        table = render_table(
            ["trace replay", "calls", "wall sec", "calls/sec (wall)",
             "wall us/call", "virtual cycles"],
            rows,
            title=(f"Simulator speed: {self.clients} clients x "
                   f"{self.modules} module(s), open-loop steady traffic, "
                   f"depth 1"))
        identity = ("byte-identical (cycles, events, op histogram)"
                    if self.identical else "MISMATCH — replay is buggy")
        stats = self.trace_stats
        summary = (
            f"\nreplay off vs on accounting: {identity}"
            f"\nwall-clock speedup: {self.speedup:.2f}x"
            f" (target >= 10x on steady-state traffic)"
            f"\ntrace cache: {stats.get('records', 0)} records, "
            f"{stats.get('confirms', 0)} confirms, "
            f"{stats.get('replays', 0)} replays, "
            f"{stats.get('hot', 0)} hot entries")
        return table + summary


def _run_leg(spec: TrafficSpec, *, use_trace_replay: bool) -> tuple:
    """Build the system (untimed), then time the traffic run itself."""
    engine = TrafficEngine(
        spec,
        dispatch_config=DispatchConfig(use_trace_replay=use_trace_replay))
    engine.build()
    start = time.perf_counter()
    result = engine.run()
    wall = time.perf_counter() - start
    leg = SimspeedLeg(
        label="on" if use_trace_replay else "off",
        use_trace_replay=use_trace_replay,
        total_calls=result.total_calls,
        wall_seconds=wall,
        total_cycles=engine.machine.clock.cycles,
        clock_events=engine.machine.clock.events,
        op_counts=dict(engine.machine.meter.op_counts),
    )
    return leg, engine.extension.dispatcher.trace_cache.snapshot()


def run_simspeed(*, calls: int = DEFAULT_CALLS,
                 clients: int = DEFAULT_CLIENTS, modules: int = 1,
                 seed: int = DEFAULT_SEED,
                 fast: bool = False) -> SimspeedReport:
    """Measure wall-clock calls/sec with the replay fast path off vs on.

    ``calls`` is the total protected-call count per leg (split across the
    clients); both legs run the identical deterministic workload, so the
    virtual accounting must match to the byte and only wall time may move.
    """
    if fast:
        calls = min(calls, FAST_CALLS)
    if calls < clients:
        raise ValueError("simspeed needs at least one call per client")
    spec = TrafficSpec(clients=clients, modules=modules,
                       calls_per_client=calls // clients,
                       arrival="open", seed=seed)
    report = SimspeedReport(calls=calls, clients=clients, modules=modules,
                            seed=seed)
    off_leg, _ = _run_leg(spec, use_trace_replay=False)
    on_leg, trace_stats = _run_leg(spec, use_trace_replay=True)
    report.legs = [off_leg, on_leg]
    report.trace_stats = trace_stats
    return report


def run_abl_simspeed() -> SimspeedReport:
    """Harness entry point (the ``abl-simspeed`` experiment id)."""
    return run_simspeed()
