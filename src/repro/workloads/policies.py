"""Policy-complexity workloads.

The paper's conclusion predicts that evaluating "more complex policy
statements" will slow protected calls "in proportion to the complexity of
the required access control check".  These workloads quantify that claim:

* :func:`run_policy_chain_sweep` sweeps a synthetic conjunction of N
  unit-cost clauses (N = 0 reproduces the measured always-allow baseline);
* :func:`run_keynote_policy` measures the KeyNote-style trust-management
  engine the paper planned as future work, for a small realistic assertion
  set and for deeper delegation chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..hw.machine import make_paper_machine
from ..secmodule.keynote import (
    Assertion,
    KeyNoteEngine,
    KeyNotePolicy,
    MAX_TRUST,
    POLICY_AUTHORIZER,
)
from ..secmodule.policy import synthetic_chain
from ..sim.stats import MeasurementSummary
from .microbench import BenchmarkSpec, PAPER_SPECS, run_smod_function

#: Chain lengths the policy ablation sweeps.
DEFAULT_CHAIN_LENGTHS: Sequence[int] = (0, 1, 2, 4, 8, 16, 32, 64)


@dataclass
class PolicySweepPoint:
    """One point of the policy-complexity sweep."""

    label: str
    complexity: int
    summary: MeasurementSummary

    @property
    def mean_us_per_call(self) -> float:
        return self.summary.mean_us_per_call


@dataclass
class PolicySweepResult:
    points: List[PolicySweepPoint] = field(default_factory=list)

    def overhead_vs_baseline(self) -> Dict[int, float]:
        """Extra µs/call of each point relative to the zero-clause baseline."""
        if not self.points:
            return {}
        baseline = self.points[0].mean_us_per_call
        return {p.complexity: p.mean_us_per_call - baseline for p in self.points}

    def per_clause_cost_us(self) -> float:
        """Least-squares slope of µs/call against clause count."""
        if len(self.points) < 2:
            return 0.0
        xs = [p.complexity for p in self.points]
        ys = [p.mean_us_per_call for p in self.points]
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        den = sum((x - mean_x) ** 2 for x in xs)
        return num / den if den else 0.0


def _sweep_spec(trials: int, sample_calls: int) -> BenchmarkSpec:
    return PAPER_SPECS["smod_testincr"].scaled(trials=trials,
                                               sample_calls=sample_calls)


def run_policy_chain_sweep(lengths: Sequence[int] = DEFAULT_CHAIN_LENGTHS, *,
                           trials: int = 3, sample_calls: int = 24,
                           seed: int = 4000) -> PolicySweepResult:
    """Measure SMOD(test-incr) under synthetic policy chains of varying length."""
    result = PolicySweepResult()
    spec = _sweep_spec(trials, sample_calls)
    for length in lengths:
        policy = synthetic_chain(length)
        summary = run_smod_function("test_incr", args=(41,), spec=spec,
                                    seed=seed + length, policy=policy,
                                    machine_factory=make_paper_machine)
        result.points.append(PolicySweepPoint(
            label=f"chain-{length}", complexity=length, summary=summary))
    return result


def deep_delegation_engine(depth: int, *, licensee: str = "alice") -> KeyNoteEngine:
    """A delegation chain of ``depth`` intermediaries ending at ``licensee``."""
    assertions = [Assertion(authorizer=POLICY_AUTHORIZER,
                            licensees=("issuer-0",), comment="root")]
    for level in range(depth):
        assertions.append(Assertion(
            authorizer=f"issuer-{level}",
            licensees=(f"issuer-{level + 1}",),
            conditions='app_domain == "SecModule"',
            comment=f"delegation level {level}"))
    assertions.append(Assertion(
        authorizer=f"issuer-{depth}", licensees=(licensee,),
        conditions='app_domain == "SecModule" && calls < 100000',
        comment="final grant"))
    return KeyNoteEngine(assertions)


def run_keynote_policy(depths: Sequence[int] = (0, 2, 4, 8), *,
                       trials: int = 3, sample_calls: int = 16,
                       seed: int = 5000) -> PolicySweepResult:
    """Measure SMOD(test-incr) under KeyNote delegation chains of varying depth."""
    result = PolicySweepResult()
    spec = _sweep_spec(trials, sample_calls)
    for depth in depths:
        policy = KeyNotePolicy(deep_delegation_engine(depth),
                               required_value=MAX_TRUST)
        summary = run_smod_function("test_incr", args=(41,), spec=spec,
                                    seed=seed + depth, policy=policy,
                                    machine_factory=make_paper_machine)
        result.points.append(PolicySweepPoint(
            label=f"keynote-depth-{depth}", complexity=depth, summary=summary))
    return result
