"""Microbenchmark drivers for the paper's Figure 8 measurements.

The paper's methodology: each mechanism is timed over 1,000,000 calls per
trial (100,000 for RPC) and 10 trials, reporting mean microseconds per call
and the standard deviation across trials.

The reproduction keeps the same trial structure but measures a *sample* of
fully simulated calls per trial and scales the per-call cost to the paper's
call count: the simulation is deterministic per call (identical code path,
identical cycle charges), so simulating the same call a million times adds
no information — it only burns wall-clock time in the Python interpreter,
which is exactly the overhead the cycle-accounted design exists to avoid
(see DESIGN.md §3).  Run-to-run variance, which on the real machine comes
from interrupts and cache state, is modelled by a per-trial multiplicative
jitter factor drawn from a deterministic, seeded lognormal whose sigma is
chosen per mechanism to match the coefficient of variation the paper
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

from ..hw.machine import Machine, make_paper_machine
from ..kernel.cred import unprivileged
from ..kernel.kernel import Kernel
from ..rpc.rpcgen import generate_service, testincr_interface
from ..secmodule.api import SecModuleSystem
from ..secmodule.dispatch import DispatchConfig
from ..sim.rng import DeterministicRNG
from ..sim.stats import MeasurementSummary, TrialResult

#: Default number of fully simulated calls measured per trial.
DEFAULT_SAMPLE_CALLS = 64
#: Calls executed before measurement starts (session warm-up, allocator state).
DEFAULT_WARMUP_CALLS = 4


@dataclass(frozen=True)
class BenchmarkSpec:
    """The shape of one Figure 8 row."""

    key: str
    display_name: str
    calls_per_trial: int
    trials: int
    #: lognormal sigma of the per-trial jitter (matches the paper's CV)
    jitter_sigma: float
    sample_calls: int = DEFAULT_SAMPLE_CALLS
    warmup_calls: int = DEFAULT_WARMUP_CALLS

    def scaled(self, *, trials: Optional[int] = None,
               sample_calls: Optional[int] = None) -> "BenchmarkSpec":
        return replace(self,
                       trials=self.trials if trials is None else trials,
                       sample_calls=self.sample_calls if sample_calls is None
                       else sample_calls)


#: The paper's four rows (Figure 8 top table gives the call/trial counts).
PAPER_SPECS: Dict[str, BenchmarkSpec] = {
    "getpid": BenchmarkSpec("getpid", "getpid()", 1_000_000, 10,
                            jitter_sigma=0.013),
    "smod_getpid": BenchmarkSpec("smod_getpid", "SMOD(SMOD-getpid)",
                                 1_000_000, 10, jitter_sigma=0.045),
    "smod_testincr": BenchmarkSpec("smod_testincr", "SMOD(test-incr)",
                                   1_000_000, 10, jitter_sigma=0.011),
    "rpc_testincr": BenchmarkSpec("rpc_testincr", "RPC(test-incr)",
                                  100_000, 10, jitter_sigma=0.002),
}


@dataclass
class TrialMeasurement:
    """Raw outcome of one sampled trial before scaling/jitter."""

    sample_calls: int
    sample_cycles: int

    @property
    def cycles_per_call(self) -> float:
        return self.sample_cycles / self.sample_calls if self.sample_calls else 0.0


def _run_trials(spec: BenchmarkSpec, *, seed: int,
                make_system: Callable[[int], object],
                run_one_call: Callable[[object, int], None],
                mhz: float) -> MeasurementSummary:
    """Shared trial loop: fresh system per trial, warm-up, sample, scale."""
    summary = MeasurementSummary(name=spec.display_name,
                                 calls_per_trial=spec.calls_per_trial)
    jitter_rng = DeterministicRNG(seed).child(f"jitter:{spec.key}")
    # Draw the whole trial-noise vector up front and normalize it to mean 1:
    # interrupt/cache noise spreads trials *around* the true cost, it does not
    # bias it, so the reported mean stays equal to the deterministic per-call
    # cost while the cross-trial stdev matches the mechanism's jitter sigma.
    raw_jitters = [jitter_rng.lognormal_factor(spec.jitter_sigma)
                   for _ in range(spec.trials)]
    jitter_mean = sum(raw_jitters) / len(raw_jitters) if raw_jitters else 1.0
    jitters = [j / jitter_mean for j in raw_jitters]

    for trial_index in range(spec.trials):
        system = make_system(seed + trial_index)
        for i in range(spec.warmup_calls):
            run_one_call(system, i)
        clock = system_clock(system)
        mark = clock.checkpoint()
        for i in range(spec.sample_calls):
            run_one_call(system, i)
        interval = clock.since(mark)
        cycles_per_call = interval.cycles / spec.sample_calls
        total_cycles = int(round(cycles_per_call * spec.calls_per_trial))
        summary.add(TrialResult(name=spec.display_name,
                                calls=spec.calls_per_trial,
                                total_cycles=total_cycles,
                                mhz=mhz, jitter_factor=jitters[trial_index]))
    return summary


def system_clock(system):
    """The virtual clock of whichever benchmark system object we were given."""
    if hasattr(system, "machine"):
        return system.machine.clock
    if hasattr(system, "kernel"):
        return system.kernel.machine.clock
    raise TypeError(f"cannot find a clock on {type(system).__name__}")


# ---------------------------------------------------------------------------
# Row 1: native getpid()
# ---------------------------------------------------------------------------

@dataclass
class _NativeGetpidSystem:
    kernel: Kernel
    proc: object

    @property
    def machine(self) -> Machine:
        return self.kernel.machine


def run_native_getpid(spec: Optional[BenchmarkSpec] = None, *,
                      seed: int = 1000,
                      machine_factory: Callable[[], Machine] = make_paper_machine
                      ) -> MeasurementSummary:
    """The paper's baseline row: a bare getpid() kernel call."""
    spec = spec or PAPER_SPECS["getpid"]

    def make_system(trial_seed: int) -> _NativeGetpidSystem:
        machine = machine_factory()
        machine.rng = DeterministicRNG(trial_seed)
        kernel = Kernel(machine=machine).boot()
        proc = kernel.create_process("getpid-bench", cred=unprivileged(1000))
        return _NativeGetpidSystem(kernel=kernel, proc=proc)

    def run_one_call(system: _NativeGetpidSystem, _i: int) -> None:
        system.kernel.syscall(system.proc, "getpid")

    mhz = machine_factory().spec.mhz
    return _run_trials(spec, seed=seed, make_system=make_system,
                       run_one_call=run_one_call, mhz=mhz)


# ---------------------------------------------------------------------------
# Rows 2-3: SecModule dispatch (SMOD-getpid and test-incr)
# ---------------------------------------------------------------------------

def run_smod_function(function_name: str, args: tuple = (),
                      spec: Optional[BenchmarkSpec] = None, *,
                      seed: int = 2000,
                      dispatch_config: Optional[DispatchConfig] = None,
                      policy=None,
                      machine_factory: Callable[[], Machine] = make_paper_machine
                      ) -> MeasurementSummary:
    """A SecModule-protected call measured under the Figure 8 methodology."""
    if spec is None:
        spec = (PAPER_SPECS["smod_getpid"] if function_name == "getpid"
                else PAPER_SPECS["smod_testincr"])
    config = dispatch_config or DispatchConfig()

    def make_system(trial_seed: int) -> SecModuleSystem:
        return SecModuleSystem.create(machine=machine_factory(),
                                      policy=policy, seed=trial_seed,
                                      dispatch_config=config)

    def run_one_call(system: SecModuleSystem, i: int) -> None:
        call_args = args if args else ((i,) if function_name != "getpid" else ())
        system.call(function_name, *call_args, config=config)

    mhz = machine_factory().spec.mhz
    return _run_trials(spec, seed=seed, make_system=make_system,
                       run_one_call=run_one_call, mhz=mhz)


def run_smod_getpid(spec: Optional[BenchmarkSpec] = None,
                    **kwargs) -> MeasurementSummary:
    """Figure 8 row 2: getpid served from the SecModule libc."""
    return run_smod_function("getpid", spec=spec or PAPER_SPECS["smod_getpid"],
                             **kwargs)


def run_smod_testincr(spec: Optional[BenchmarkSpec] = None,
                      **kwargs) -> MeasurementSummary:
    """Figure 8 row 3: the x+1 payload over SecModule."""
    return run_smod_function("test_incr", args=(41,),
                             spec=spec or PAPER_SPECS["smod_testincr"], **kwargs)


# ---------------------------------------------------------------------------
# Row 4: the local RPC baseline
# ---------------------------------------------------------------------------

@dataclass
class _RpcBenchSystem:
    kernel: Kernel
    client: object

    @property
    def machine(self) -> Machine:
        return self.kernel.machine


def run_rpc_testincr(spec: Optional[BenchmarkSpec] = None, *,
                     seed: int = 3000,
                     machine_factory: Callable[[], Machine] = make_paper_machine,
                     payload_args: tuple = (41,)
                     ) -> MeasurementSummary:
    """Figure 8 row 4: the same x+1 function behind a local RPC service."""
    spec = spec or PAPER_SPECS["rpc_testincr"]

    def make_system(trial_seed: int) -> _RpcBenchSystem:
        machine = machine_factory()
        machine.rng = DeterministicRNG(trial_seed)
        kernel = Kernel(machine=machine).boot()
        service = generate_service(kernel, testincr_interface())
        client_proc = kernel.create_process("rpc-bench", cred=unprivileged(1000))
        client = service.make_client(kernel, client_proc)
        return _RpcBenchSystem(kernel=kernel, client=client)

    def run_one_call(system: _RpcBenchSystem, _i: int) -> None:
        system.client.call("test_incr", *payload_args)

    mhz = machine_factory().spec.mhz
    return _run_trials(spec, seed=seed, make_system=make_system,
                       run_one_call=run_one_call, mhz=mhz)
