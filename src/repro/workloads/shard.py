"""Sharded parallel traffic execution: independent client groups, one
deterministic merge.

The traffic engine is single-threaded by construction — one virtual clock,
one session table.  But the *workload* is embarrassingly partitionable:
clients never share sessions, and with the paper's per-session handles
they never share handle co-processes either.  This module splits a
:class:`~repro.workloads.traffic.TrafficSpec` into ``spec.shards``
independent groups (client ``i`` goes to shard ``i % spec.shards``), runs
each group on its own machine/clock — optionally on ``multiprocessing``
workers — and merges the outcomes into one :class:`TrafficResult`.

The determinism contract, in order of strength:

* **Worker-count independence (byte-exact).**  Each shard's run depends
  only on its spec and client ids: the global client id seeds the RNG
  child stream ``client:{id}``, so a client draws the identical sequence
  inside any partition.  Whether the shards execute sequentially in
  process (``workers=1``) or on N worker processes, every shard outcome
  — and therefore the merge, which folds in shard-index order — is
  byte-identical.
* **Shard-count is part of the experiment.**  Each shard idles its own
  clock between its own clients' arrivals, and each shard's machine
  registers its own copy of the modules, so summed idle cycles and
  setup-phase op counts (registration, key schedules) scale with the
  partition — exactly as running the groups on separate physical
  machines would.  Per-call *service* accounting does not: latencies,
  issued/denied counters and per-call charge sequences merge to the
  same values the serial engine produces, client for client.

Merge rules (applied in shard-index order): counters, op histograms and
cycle totals **sum**; ``elapsed_us`` is the **max** over shards (the
longest pole, parallel-execution semantics); per-client vectors are
reassembled in **global client-id order**; telemetry merges via
:func:`~repro.telemetry.merge_telemetry_states`; per-handle fairness
reports are namespaced ``shard_index * 10**6 + pid`` since handle pids
are only unique within a shard.
"""

from __future__ import annotations

import time
from array import array
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..secmodule.dispatch import DispatchConfig
from ..telemetry import merge_telemetry_states
from .traffic import TrafficEngine, TrafficResult, TrafficSpec

#: seat-fairness namespace stride: merged report key =
#: ``shard_index * SEAT_NAMESPACE + handle_pid``
SEAT_NAMESPACE = 10 ** 6


def partition_clients(clients: int, shards: int) -> List[Tuple[int, ...]]:
    """Round-robin partition: shard ``s`` owns clients ``s, s+shards, ...``."""
    if shards < 1 or shards > clients:
        raise SimulationError("shards must be between 1 and the client count")
    return [tuple(range(shard, clients, shards)) for shard in range(shards)]


@dataclass(frozen=True)
class ShardRun:
    """Picklable description of one shard's slice of a traffic run.

    ``spec`` is the shard-local view (``clients=len(client_ids)``,
    ``shards=1``); ``client_ids`` keep the *global* indices so RNG child
    streams match the serial engine client for client.
    """

    spec: TrafficSpec
    client_ids: Tuple[int, ...]
    dispatch_config: Optional[DispatchConfig]
    shard_index: int


@dataclass
class ShardOutcome:
    """Everything one worker reports back for the deterministic merge.

    Plain dicts/lists of primitives only: this crosses a process
    boundary, and the merge must not depend on live simulator objects.
    """

    shard_index: int
    client_ids: Tuple[int, ...]
    #: global client id -> per-client vectors/counters (latency vectors
    #: stay ``array('d')`` — compact over the pickle boundary)
    calls_issued: Dict[int, int]
    calls_denied: Dict[int, int]
    latencies_us: Dict[int, "array"]
    queue_delays_us: Dict[int, "array"]
    elapsed_us: float
    total_cycles: int
    machine_cycles: int
    clock_events: int
    op_counts: Dict[str, int]
    cache_stats: Dict[str, int]
    trace_stats: Dict[str, int]
    broker_stats: Dict[str, int]
    shard_sizes: List[int]
    session_count: int
    handle_count: int
    telemetry_state: Optional[Dict[str, object]]
    #: global client id -> adaptive controller snapshot (adaptive runs)
    adaptive: Dict[int, Dict[str, object]] = field(default_factory=dict)
    #: shard-local handle pid -> fairness report (telemetry runs)
    seat_fairness: Dict[int, Dict[str, object]] = field(default_factory=dict)
    #: host wall-clock the worker spent building + running its engine
    wall_seconds: float = 0.0


def _run_shard(run: ShardRun) -> ShardOutcome:
    """Worker body: build and drive one shard's engine, flatten the result.

    Top-level so it pickles for ``ProcessPoolExecutor``; the in-process
    ``workers=1`` path calls it directly, which is what makes the
    worker-count identity trivially true for the base case.
    """
    start = time.perf_counter()
    engine = TrafficEngine(run.spec, dispatch_config=run.dispatch_config,
                           client_ids=list(run.client_ids))
    result = engine.run()
    wall = time.perf_counter() - start
    adaptive: Dict[int, Dict[str, object]] = {}
    if result.adaptive:
        snapshots = result.adaptive.get("per_client", [])
        adaptive = dict(zip(run.client_ids, snapshots))
    return ShardOutcome(
        shard_index=run.shard_index,
        client_ids=run.client_ids,
        calls_issued={s.index: s.calls_issued for s in engine.clients},
        calls_denied={s.index: s.calls_denied for s in engine.clients},
        latencies_us={s.index: s.latencies_us for s in engine.clients},
        queue_delays_us={s.index: s.queue_delays_us
                         for s in engine.clients},
        elapsed_us=result.elapsed_us,
        total_cycles=result.total_cycles,
        machine_cycles=engine.machine.clock.cycles,
        clock_events=engine.machine.clock.events,
        op_counts=dict(engine.machine.meter.op_counts),
        cache_stats=dict(result.cache_stats),
        trace_stats=engine.extension.dispatcher.trace_cache.snapshot(),
        broker_stats=dict(result.broker_stats),
        shard_sizes=list(result.shard_sizes),
        session_count=result.session_count,
        handle_count=result.handle_count,
        telemetry_state=engine.telemetry.export_state(),
        adaptive=adaptive,
        seat_fairness=dict(result.seat_fairness),
        wall_seconds=wall,
    )


def _sum_dicts(dicts: Sequence[Dict]) -> Dict:
    """Key-wise sum of counter dicts, keys in first-seen (shard) order."""
    out: Dict = {}
    for mapping in dicts:
        for key, value in mapping.items():
            out[key] = out.get(key, 0) + value
    return out


def merge_outcomes(spec: TrafficSpec,
                   outcomes: Sequence[ShardOutcome]) -> TrafficResult:
    """Fold shard outcomes into one :class:`TrafficResult`.

    Deterministic by construction: outcomes are processed in shard-index
    order, per-client vectors are reassembled in global client-id order,
    and every reduction (sum / max / histogram-bucket merge) is
    order-independent or applied in that fixed order.
    """
    ordered = sorted(outcomes, key=lambda outcome: outcome.shard_index)
    all_ids = [cid for outcome in ordered for cid in outcome.client_ids]
    if len(set(all_ids)) != len(all_ids):
        raise SimulationError("shard outcomes overlap in client ids")
    ids = sorted(all_ids)
    issued = _sum_dicts([o.calls_issued for o in ordered])
    denied = _sum_dicts([o.calls_denied for o in ordered])
    latencies: Dict[int, List[float]] = {}
    delays: Dict[int, List[float]] = {}
    adaptive: Dict[int, Dict[str, object]] = {}
    for outcome in ordered:
        latencies.update(outcome.latencies_us)
        delays.update(outcome.queue_delays_us)
        adaptive.update(outcome.adaptive)

    merged_latencies = array("d")
    merged_delays = array("d")
    for cid in ids:
        merged_latencies.extend(latencies.get(cid, ()))
        merged_delays.extend(delays.get(cid, ()))
    total_calls = sum(issued[cid] for cid in ids)
    total_cycles = sum(o.total_cycles for o in ordered)
    shard_sizes: List[int] = []
    for outcome in ordered:
        for index, count in enumerate(outcome.shard_sizes):
            if index >= len(shard_sizes):
                shard_sizes.append(0)
            shard_sizes[index] += count
    telemetry_states = [o.telemetry_state for o in ordered]
    metrics = (merge_telemetry_states(telemetry_states)
               if any(state is not None for state in telemetry_states)
               else {})
    seat_fairness = {
        outcome.shard_index * SEAT_NAMESPACE + pid: report
        for outcome in ordered
        for pid, report in outcome.seat_fairness.items()}
    return TrafficResult(
        spec=spec,
        total_calls=total_calls,
        denied_calls=sum(denied[cid] for cid in ids),
        elapsed_us=max(o.elapsed_us for o in ordered),
        total_cycles=total_cycles,
        cycles_per_call=(total_cycles / total_calls if total_calls else 0.0),
        per_client_mean_us=[
            sum(latencies[cid]) / len(latencies[cid])
            if latencies.get(cid) else 0.0
            for cid in ids],
        latencies_us=merged_latencies,
        queue_delays_us=merged_delays,
        cache_stats=_sum_dicts([o.cache_stats for o in ordered]),
        shard_sizes=shard_sizes,
        session_count=sum(o.session_count for o in ordered),
        handle_count=sum(o.handle_count for o in ordered),
        broker_stats=_sum_dicts([o.broker_stats for o in ordered]),
        metrics=metrics,
        adaptive=({"per_client": [adaptive[cid] for cid in ids]}
                  if adaptive else {}),
        seat_fairness=seat_fairness,
    )


@dataclass
class ShardedTrafficResult:
    """A merged sharded run plus the per-shard evidence behind it."""

    result: TrafficResult
    outcomes: List[ShardOutcome]
    workers: int

    @property
    def machine_cycles(self) -> int:
        """Summed full-machine cycle counts (build + run, all shards)."""
        return sum(o.machine_cycles for o in self.outcomes)

    @property
    def clock_events(self) -> int:
        return sum(o.clock_events for o in self.outcomes)

    @property
    def op_counts(self) -> Dict[str, int]:
        return _sum_dicts([o.op_counts for o in self.outcomes])

    @property
    def trace_stats(self) -> Dict[str, int]:
        return _sum_dicts([o.trace_stats for o in self.outcomes])

    @property
    def worker_wall_seconds(self) -> float:
        """Longest single worker (the parallel wall-clock lower bound)."""
        return max((o.wall_seconds for o in self.outcomes), default=0.0)


def shard_runs(spec: TrafficSpec,
               dispatch_config: Optional[DispatchConfig] = None
               ) -> List[ShardRun]:
    """The per-shard run descriptions for ``spec`` (round-robin groups)."""
    groups = partition_clients(spec.clients, spec.shards)
    return [
        ShardRun(spec=replace(spec, clients=len(ids), shards=1),
                 client_ids=ids, dispatch_config=dispatch_config,
                 shard_index=index)
        for index, ids in enumerate(groups)]


def run_traffic_sharded(spec: TrafficSpec, *,
                        dispatch_config: Optional[DispatchConfig] = None,
                        workers: int = 1) -> ShardedTrafficResult:
    """Run ``spec`` as ``spec.shards`` independent groups and merge.

    ``workers=1`` runs the shards sequentially in process; ``workers>1``
    fans them out on a ``ProcessPoolExecutor`` (clamped to the shard
    count).  The merged result is byte-identical either way.
    """
    if workers < 1:
        raise SimulationError("workers must be at least 1")
    runs = shard_runs(spec, dispatch_config)
    workers = min(workers, len(runs))
    if workers <= 1:
        outcomes = [_run_shard(run) for run in runs]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # executor.map preserves input order: outcome i is shard i
            outcomes = list(pool.map(_run_shard, runs))
    return ShardedTrafficResult(result=merge_outcomes(spec, outcomes),
                                outcomes=outcomes, workers=workers)
