"""Multi-client traffic workloads: N clients × M modules under load.

The paper measures one client hammering one session; this workload layer
builds the multi-principal traffic the LSM-overhead literature argues is
the only setting where access-control cost is meaningful.  It drives many
concurrent clients — each holding one SecModule session *per module* via
the multi-session table — through a deterministic, seeded mix of protected
calls:

* ``test_incr`` — the paper's x+1 payload (the bulk of the traffic);
* ``getpid``    — the session-state fast path (SMOD-getpid);
* ``test_null`` — *denied* by the modules' function-denylist clause, so a
  configurable slice of the traffic exercises the EACCES unwind path.

Arrival is **closed-loop** (each client issues its next call after an
exponential think time following the previous completion), **open-loop**
(each client's arrivals are a pre-drawn Poisson process, independent of
completions), or **mmpp** (open-loop with bursty two-state Markov-modulated
interarrivals: short-interval ON bursts separated by long OFF lulls).  All
randomness comes from per-client child streams of one
:class:`~repro.sim.rng.DeterministicRNG`, so a given seed replays the exact
same interleaving, call mix and cycle totals.

Clients may also *batch*: with ``batch_size > 1`` each arrival event
flushes a queue of protected calls against one session through the batched
dispatch path, paying the trap and the two context switches once per queue.

Closed-loop think times are exponential by default but may be heavy-tailed
(``think="lognormal"``/``"pareto"``, same mean, fatter tail), and the
``handle_policy`` knob registers a broker pool policy for every traffic
module — ``"per_module"`` runs all of a module's sessions through one
shared handle co-process instead of forking one per session.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..hw.machine import Machine, make_paper_machine
from ..kernel.kernel import Kernel
from ..obj.image import make_function_image
from ..secmodule.dispatch import DispatchConfig
from ..secmodule.handle_pool import HandlePolicy
from ..secmodule.module import CallEnvironment, SecModuleDefinition
from ..secmodule.policy import (
    CallQuotaPolicy,
    CompositePolicy,
    CredentialExpiryPolicy,
    FunctionDenyPolicy,
    Policy,
    PrincipalAllowPolicy,
    UidAllowPolicy,
)
from ..secmodule.protection import ProtectionMode
from ..secmodule.session import SessionDescriptor, build_requirements
from ..secmodule.smod_syscalls import SmodExtension, install_secmodule
from ..sim import costs
from ..sim.rng import DeterministicRNG, TwoStateMMPP
from ..sim.stats import percentile
from ..userland.process import Program

#: call-mix weights: (function name, relative weight)
DEFAULT_CALL_MIX: Tuple[Tuple[str, float], ...] = (
    ("test_incr", 0.70),
    ("getpid", 0.20),
    ("test_null", 0.10),          # denied by the function-denylist clause
)


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of one multi-client traffic run."""

    clients: int = 8
    modules: int = 2
    calls_per_client: int = 32
    #: "closed" (think-time loop), "open" (Poisson arrivals) or "mmpp"
    #: (open-loop with bursty two-state on/off interarrivals)
    arrival: str = "closed"
    #: mean think / inter-arrival time, virtual microseconds (the OFF-state
    #: interarrival mean under "mmpp")
    mean_interval_us: float = 25.0
    #: "mmpp" only: ON-state (burst) interarrival mean and the mean sojourn
    #: in each state, all in virtual microseconds
    burst_interval_us: float = 4.0
    burst_on_us: float = 120.0
    burst_off_us: float = 480.0
    #: closed-loop think-time distribution: "exponential" (the classic
    #: M/M/1-style loop), "lognormal" or "pareto" (heavy-tailed think times;
    #: same mean, fatter tail).  Open-loop/mmpp schedules ignore this.
    think: str = "exponential"
    #: lognormal think: sigma of the underlying normal (tail weight)
    think_sigma: float = 1.0
    #: pareto think: tail index (must exceed 1 for a finite mean)
    think_alpha: float = 2.5
    #: calls queued per flush: 1 issues every call through the paper's
    #: single-call path; >1 flushes queues through sys_smod_call_batch
    batch_size: int = 1
    #: handle attachment policy registered for every traffic module:
    #: "per_session" (the paper's 1:1 fork), "per_module" (one shared
    #: handle per module) or "pooled" (shared up to pool_max_sessions)
    handle_policy: str = "per_session"
    #: per-handle session cap when handle_policy="pooled"
    pool_max_sessions: int = 8
    #: one session per module per client (the multi-session engine); when
    #: False each client opens a single session naming every module
    multi_session: bool = True
    #: charge the per-shard lock-acquisition micro-op on session-table
    #: touches (the SMP build of the kernel; the paper's uniprocessor
    #: figures compile it out)
    smp_shard_locks: bool = True
    #: policy chain attached to every traffic module: "static" (cacheable),
    #: "quota", "expiry", or "deny-only"
    policy_kind: str = "static"
    #: quota for policy_kind="quota"
    quota_calls: int = 1 << 30
    call_mix: Tuple[Tuple[str, float], ...] = DEFAULT_CALL_MIX
    uid: int = 1000
    principal: str = "alice"
    seed: int = 0xB07_7E57

    def __post_init__(self) -> None:
        if self.clients < 1 or self.modules < 1 or self.calls_per_client < 1:
            raise SimulationError("traffic spec must be positive in all dims")
        if self.arrival not in ("closed", "open", "mmpp"):
            raise SimulationError(f"unknown arrival mode {self.arrival!r}")
        if self.think not in ("exponential", "lognormal", "pareto"):
            raise SimulationError(f"unknown think-time model {self.think!r}")
        if self.think == "pareto" and self.think_alpha <= 1.0:
            raise SimulationError("pareto think times need think_alpha > 1")
        if self.batch_size < 1:
            raise SimulationError("batch_size must be at least 1")
        # raises on an unknown policy spec
        self.broker_policy()

    def broker_policy(self) -> HandlePolicy:
        """The :class:`HandlePolicy` traffic modules register with the broker."""
        return HandlePolicy.parse(self.handle_policy,
                                  max_sessions=self.pool_max_sessions)


def traffic_policy(spec: TrafficSpec) -> Policy:
    """The per-module policy chain for a traffic run.

    The "static" chain is three cacheable clauses — uid allow-list,
    principal allow-list, function denylist — the shape of a typical
    production ACL.  "quota" and "expiry" append a dynamic clause, which
    disqualifies the whole chain from the decision cache.
    """
    static_clauses: List[Policy] = [
        UidAllowPolicy([spec.uid]),
        PrincipalAllowPolicy([spec.principal]),
        FunctionDenyPolicy(["test_null"]),
    ]
    if spec.policy_kind == "static":
        return CompositePolicy(static_clauses)
    if spec.policy_kind == "quota":
        return CompositePolicy(static_clauses +
                               [CallQuotaPolicy(spec.quota_calls)])
    if spec.policy_kind == "expiry":
        return CompositePolicy(static_clauses + [CredentialExpiryPolicy()])
    if spec.policy_kind == "deny-only":
        return FunctionDenyPolicy(["test_null"])
    raise SimulationError(f"unknown policy kind {spec.policy_kind!r}")


def _impl_incr(env: CallEnvironment, x: int) -> int:
    return x + 1


def _impl_null(env: CallEnvironment) -> int:
    return 0


def _impl_getpid(env: CallEnvironment) -> int:
    return env.client_pid


def build_traffic_module(index: int, *, policy: Policy,
                         version: int = 1) -> SecModuleDefinition:
    """One of the M protected modules the traffic fans out over."""
    module = SecModuleDefinition(f"libtraffic{index}", version, policy=policy)
    module.add_function("test_incr", _impl_incr,
                        cost_op=costs.FUNC_BODY_TESTINCR, arg_words=1,
                        doc="the paper's x+1 payload")
    module.add_function("getpid", _impl_getpid,
                        cost_op=costs.FUNC_BODY_SMOD_GETPID, arg_words=0,
                        doc="client pid from session state")
    module.add_function("test_null", _impl_null,
                        cost_op=costs.FUNC_BODY_TESTINCR, arg_words=0,
                        doc="always denied by the traffic policy")
    module.library_image = make_function_image(
        f"libtraffic{index}.so",
        {"test_incr": 48, "getpid": 32, "test_null": 32}, kind="shared")
    return module


@dataclass
class ClientState:
    """One traffic client: its program, sessions and latency record."""

    index: int
    program: Program
    #: m_id -> session (multi-session) or the single shared session
    sessions: Dict[int, object] = field(default_factory=dict)
    rng: Optional[DeterministicRNG] = None
    calls_issued: int = 0
    calls_denied: int = 0
    #: per-call service latency, microseconds of virtual time
    latencies_us: List[float] = field(default_factory=list)
    #: per-call queueing delay (open loop: start - scheduled arrival)
    queue_delays_us: List[float] = field(default_factory=list)

    def pick_session(self, m_id: int):
        return self.sessions[m_id]


@dataclass
class TrafficResult:
    """Outcome of one traffic run (all times in virtual microseconds)."""

    spec: TrafficSpec
    total_calls: int
    denied_calls: int
    elapsed_us: float
    total_cycles: int
    cycles_per_call: float
    per_client_mean_us: List[float]
    latencies_us: List[float]
    #: open-loop only: per-call (start - scheduled arrival); empty otherwise
    queue_delays_us: List[float]
    cache_stats: Dict[str, int]
    shard_sizes: List[int]
    session_count: int
    #: live handle co-processes at the end of the run (per_session: one per
    #: session; pooled/per_module: ceil(sessions / seats) per module set)
    handle_count: int = 0
    broker_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def calls_per_second(self) -> float:
        """Aggregate throughput in (virtual) calls per second."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.total_calls / (self.elapsed_us / 1e6)

    def latency_percentile(self, p: float) -> float:
        return percentile(self.latencies_us, p)

    def queue_delay_percentile(self, p: float) -> float:
        return percentile(self.queue_delays_us, p)

    def describe(self) -> str:
        text = (f"{self.spec.clients} clients x {self.spec.modules} modules, "
                f"{self.total_calls} calls ({self.denied_calls} denied), "
                f"{self.calls_per_second:,.0f} calls/s, "
                f"p50={self.latency_percentile(50):.2f}us "
                f"p95={self.latency_percentile(95):.2f}us "
                f"p99={self.latency_percentile(99):.2f}us")
        if self.queue_delays_us:
            text += f" queue-p99={self.queue_delay_percentile(99):.2f}us"
        return text


class TrafficEngine:
    """Builds the system and drives one deterministic traffic run."""

    def __init__(self, spec: TrafficSpec, *,
                 machine: Optional[Machine] = None,
                 dispatch_config: Optional[DispatchConfig] = None) -> None:
        self.spec = spec
        self.config = dispatch_config or DispatchConfig()
        if spec.batch_size != 1:
            # the workload knob wins: clients flush queues of this depth
            self.config = replace(self.config, batch_size=spec.batch_size)
        self.machine = machine or make_paper_machine(seed=spec.seed)
        self.kernel = Kernel(machine=self.machine).boot()
        self.extension: SmodExtension = install_secmodule(self.kernel)
        self.extension.sessions.charge_shard_locks = spec.smp_shard_locks
        self.rng = DeterministicRNG(spec.seed)
        self.modules: List = []
        self.clients: List[ClientState] = []
        self._built = False
        self._mix_names = [name for name, _ in spec.call_mix]
        self._mix_weights = [weight for _, weight in spec.call_mix]

    # ------------------------------------------------------------------- build
    def build(self) -> "TrafficEngine":
        """Register the M modules and establish every client's sessions."""
        if self._built:
            return self
        spec = self.spec
        policy = traffic_policy(spec)
        broker_policy = spec.broker_policy()
        for index in range(spec.modules):
            definition = build_traffic_module(index, policy=policy)
            registered = self.extension.registry.register(
                definition, uid=0, protection=ProtectionMode.ENCRYPT)
            self.modules.append(registered)
            # the module owner registers how its handles may be shared
            self.extension.broker.register_policy(registered.name,
                                                  broker_policy)

        for c in range(spec.clients):
            program = Program.spawn(self.kernel, f"traffic-client{c}",
                                    uid=spec.uid)
            state = ClientState(index=c, program=program,
                                rng=self.rng.child(f"client:{c}"))
            if spec.multi_session:
                # one session per module: N x M entries in the sharded table
                for registered in self.modules:
                    session = self._start_session(program, [registered],
                                                  allow_multiple=True)
                    state.sessions[registered.m_id] = session
            else:
                session = self._start_session(program, self.modules,
                                              allow_multiple=False)
                for registered in self.modules:
                    state.sessions[registered.m_id] = session
            self.clients.append(state)
        self._built = True
        return self

    def _start_session(self, program: Program, registered_modules,
                       *, allow_multiple: bool):
        descriptor = SessionDescriptor(
            build_requirements(registered_modules,
                               principal=self.spec.principal,
                               uid=self.spec.uid),
            allow_multiple=allow_multiple)
        session_id = program.smod_crt0_startup(self.extension, descriptor)
        return self.extension.sessions.get(session_id)

    # --------------------------------------------------------------------- run
    def _advance_clock_to(self, target_us: float) -> None:
        """Idle the machine forward to a scheduled arrival time."""
        now_us = self.machine.microseconds()
        if target_us > now_us:
            idle_cycles = int(round((target_us - now_us) *
                                    self.machine.spec.mhz))
            self.machine.clock.advance(idle_cycles)

    def _draw_call(self, state: ClientState, offset: int) -> Tuple[str, Tuple]:
        function_name = state.rng.weighted_choice(self._mix_names,
                                                  self._mix_weights)
        args = ((state.calls_issued + offset,)
                if function_name == "test_incr" else ())
        return function_name, args

    def _one_flush(self, state: ClientState, count: int) -> None:
        """One arrival event: ``count`` calls against one session.

        ``count == 1`` goes through the ordinary single-call path (so a
        ``batch_size=1`` run is the paper's per-call dispatch, cycle for
        cycle); larger counts flush one queue through the batched path.  A
        queue targets a single module/session — a super-frame lives on
        exactly one shared stack.
        """
        registered = self.modules[state.rng.integer(0, len(self.modules) - 1)]
        session = state.pick_session(registered.m_id)
        mark = self.machine.clock.checkpoint()
        if count == 1:
            name, args = self._draw_call(state, 0)
            outcome = self.extension.dispatcher.call(
                session, name, *args, config=self.config)
            denied = 0 if outcome.ok else 1
        else:
            calls = [self._draw_call(state, offset) for offset in range(count)]
            batch = self.extension.dispatcher.call_batch(
                session, calls, config=self.config)
            denied = batch.denied
        service_us = self.machine.clock.since(mark).microseconds(
            self.machine.spec.mhz)
        state.calls_issued += count
        state.latencies_us.extend([service_us / count] * count)
        state.calls_denied += denied

    def _think_source(self, state: ClientState):
        """Per-client closed-loop think-time draw (``TrafficSpec.think``).

        The exponential default reproduces the original engine draw for
        draw; lognormal/pareto keep the same mean think time but add the
        heavy tail, so a seed change is the only way totals move.
        """
        spec = self.spec
        if spec.think == "lognormal":
            return lambda: state.rng.lognormal(spec.mean_interval_us,
                                               spec.think_sigma)
        if spec.think == "pareto":
            return lambda: state.rng.pareto(spec.mean_interval_us,
                                            spec.think_alpha)
        return lambda: state.rng.exponential(spec.mean_interval_us)

    def _interarrival_source(self, state: ClientState):
        """Per-client interarrival draw for the pre-drawn (open) schedules."""
        spec = self.spec
        if spec.arrival == "mmpp":
            mmpp = TwoStateMMPP(state.rng,
                                on_interval=spec.burst_interval_us,
                                off_interval=spec.mean_interval_us,
                                on_duration=spec.burst_on_us,
                                off_duration=spec.burst_off_us)
            return mmpp.next_interarrival
        return lambda: state.rng.exponential(spec.mean_interval_us)

    def run(self) -> TrafficResult:
        """Drive the full call schedule and collect the result."""
        self.build()
        spec = self.spec
        start_mark = self.machine.clock.checkpoint()

        # each arrival event flushes up to batch_size calls
        flushes = math.ceil(spec.calls_per_client / spec.batch_size)
        last_flush = (spec.calls_per_client -
                      (flushes - 1) * spec.batch_size)

        def flush_size(nth: int) -> int:
            return spec.batch_size if nth < flushes - 1 else last_flush

        # (fire_time_us, tiebreak, client_index); the tiebreak keeps heap
        # ordering deterministic when two clients share a fire time
        events: List[Tuple[float, int, int]] = []
        tiebreak = 0
        base_us = self.machine.microseconds()
        if spec.arrival in ("open", "mmpp"):
            # pre-draw every arrival per client, independent of completions
            for state in self.clients:
                draw = self._interarrival_source(state)
                at = base_us
                for _ in range(flushes):
                    at += draw()
                    heapq.heappush(events, (at, tiebreak, state.index))
                    tiebreak += 1
            flushed: Dict[int, int] = {s.index: 0 for s in self.clients}
            while events:
                at, _, index = heapq.heappop(events)
                state = self.clients[index]
                self._advance_clock_to(at)
                count = flush_size(flushed[index])
                flushed[index] += 1
                state.queue_delays_us.extend(
                    [max(0.0, self.machine.microseconds() - at)] * count)
                self._one_flush(state, count)
        else:
            think = {s.index: self._think_source(s) for s in self.clients}
            for state in self.clients:
                first = base_us + think[state.index]()
                heapq.heappush(events, (first, tiebreak, state.index))
                tiebreak += 1
            flushed = {s.index: 0 for s in self.clients}
            while events:
                at, _, index = heapq.heappop(events)
                state = self.clients[index]
                self._advance_clock_to(at)
                count = flush_size(flushed[index])
                flushed[index] += 1
                self._one_flush(state, count)
                if state.calls_issued < spec.calls_per_client:
                    next_at = (self.machine.microseconds() +
                               think[state.index]())
                    heapq.heappush(events, (next_at, tiebreak, state.index))
                    tiebreak += 1

        interval = self.machine.clock.since(start_mark)
        latencies = [u for state in self.clients for u in state.latencies_us]
        total_calls = sum(s.calls_issued for s in self.clients)
        return TrafficResult(
            spec=spec,
            total_calls=total_calls,
            denied_calls=sum(s.calls_denied for s in self.clients),
            elapsed_us=interval.microseconds(self.machine.spec.mhz),
            total_cycles=interval.cycles,
            cycles_per_call=(interval.cycles / total_calls
                             if total_calls else 0.0),
            per_client_mean_us=[
                sum(s.latencies_us) / len(s.latencies_us)
                if s.latencies_us else 0.0
                for s in self.clients],
            latencies_us=latencies,
            queue_delays_us=[d for state in self.clients
                             for d in state.queue_delays_us],
            cache_stats=self.extension.decision_cache.snapshot(),
            shard_sizes=self.extension.sessions.shard_sizes(),
            session_count=len(self.extension.sessions),
            handle_count=self.extension.sessions.handle_count(),
            broker_stats=self.extension.broker.snapshot(),
        )

    # ---------------------------------------------------------------- teardown
    def teardown(self) -> None:
        """Tear down every client's sessions (kills all handles)."""
        for state in self.clients:
            self.extension.sessions.teardown_all_for_client(
                state.program.proc)


def run_traffic(spec: Optional[TrafficSpec] = None, *,
                dispatch_config: Optional[DispatchConfig] = None,
                teardown: bool = False) -> TrafficResult:
    """Convenience one-shot: build, run and (optionally) tear down."""
    engine = TrafficEngine(spec or TrafficSpec(),
                           dispatch_config=dispatch_config)
    result = engine.run()
    if teardown:
        engine.teardown()
    return result
