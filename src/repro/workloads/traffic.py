"""Multi-client traffic workloads: N clients × M modules under load.

The paper measures one client hammering one session; this workload layer
builds the multi-principal traffic the LSM-overhead literature argues is
the only setting where access-control cost is meaningful.  It drives many
concurrent clients — each holding one SecModule session *per module* via
the multi-session table — through a deterministic, seeded mix of protected
calls:

* ``test_incr`` — the paper's x+1 payload (the bulk of the traffic);
* ``getpid``    — the session-state fast path (SMOD-getpid);
* ``test_null`` — *denied* by the modules' function-denylist clause, so a
  configurable slice of the traffic exercises the EACCES unwind path.

Arrival is **closed-loop** (each client issues its next call after an
exponential think time following the previous completion), **open-loop**
(each client's arrivals are a pre-drawn Poisson process, independent of
completions), or **mmpp** (open-loop with bursty two-state Markov-modulated
interarrivals: short-interval ON bursts separated by long OFF lulls).  All
randomness comes from per-client child streams of one
:class:`~repro.sim.rng.DeterministicRNG`, so a given seed replays the exact
same interleaving, call mix and cycle totals.

Clients may also *batch*: with ``batch_size > 1`` each arrival event
flushes a queue of protected calls against one session through the batched
dispatch path, paying the trap and the two context switches once per queue.

Closed-loop think times are exponential by default but may be heavy-tailed
(``think="lognormal"``/``"pareto"``, same mean, fatter tail), and the
``handle_policy`` knob registers a broker pool policy for every traffic
module — ``"per_module"`` runs all of a module's sessions through one
shared handle co-process instead of forking one per session.

Two observation/control knobs ride on top: ``telemetry=True`` attaches the
telemetry plane (per-session latency histograms, batch-flush depths,
cache and per-seat queueing-delay counters — pure observation, cycle
totals unchanged) and ``adaptive_batch=True`` hands the flush depth to the
per-client AIMD controller in :mod:`repro.control.adaptive`, which grows
and shrinks the queue from the observed interarrival EWMA.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from array import array
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..control.adaptive import AdaptiveBatchController, AdaptiveConfig
from ..errors import SimulationError
from ..hw.machine import Machine, make_paper_machine
from ..kernel.kernel import Kernel
from ..obj.image import make_function_image
from ..secmodule.dispatch import DispatchConfig
from ..secmodule.handle_pool import HandlePolicy
from ..secmodule.module import CallEnvironment, SecModuleDefinition
from ..secmodule.policy import (
    CallQuotaPolicy,
    CompositePolicy,
    CredentialExpiryPolicy,
    FunctionDenyPolicy,
    Policy,
    PrincipalAllowPolicy,
    UidAllowPolicy,
)
from ..secmodule.protection import ProtectionMode
from ..secmodule.session import SessionDescriptor, build_requirements
from ..secmodule.smod_syscalls import SmodExtension, install_secmodule
from ..sim import costs
from ..sim.rng import DeterministicRNG, TwoStateMMPP
from ..sim.stats import mean, percentile
from ..telemetry import (
    NULL_TELEMETRY,
    NULL_TRACER,
    Telemetry,
    Tracer,
    make_telemetry,
)
from ..userland.process import Program

#: call-mix weights: (function name, relative weight)
DEFAULT_CALL_MIX: Tuple[Tuple[str, float], ...] = (
    ("test_incr", 0.70),
    ("getpid", 0.20),
    ("test_null", 0.10),          # denied by the function-denylist clause
)


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of one multi-client traffic run."""

    clients: int = 8
    modules: int = 2
    calls_per_client: int = 32
    #: "closed" (think-time loop), "open" (Poisson arrivals) or "mmpp"
    #: (open-loop with bursty two-state on/off interarrivals)
    arrival: str = "closed"
    #: mean think / inter-arrival time, virtual microseconds (the OFF-state
    #: interarrival mean under "mmpp")
    mean_interval_us: float = 25.0
    #: "mmpp" only: ON-state (burst) interarrival mean and the mean sojourn
    #: in each state, all in virtual microseconds
    burst_interval_us: float = 4.0
    burst_on_us: float = 120.0
    burst_off_us: float = 480.0
    #: closed-loop think-time distribution: "exponential" (the classic
    #: M/M/1-style loop), "lognormal" or "pareto" (heavy-tailed think times;
    #: same mean, fatter tail).  Open-loop/mmpp schedules ignore this.
    think: str = "exponential"
    #: lognormal think: sigma of the underlying normal (tail weight)
    think_sigma: float = 1.0
    #: pareto think: tail index (must exceed 1 for a finite mean)
    think_alpha: float = 2.5
    #: calls queued per flush: 1 issues every call through the paper's
    #: single-call path; >1 flushes queues through sys_smod_call_batch
    batch_size: int = 1
    #: let the AIMD controller grow/shrink the flush depth per client from
    #: the observed interarrival EWMA (open-loop/mmpp arrivals only; the
    #: static batch_size knob must stay at 1)
    adaptive_batch: bool = False
    #: controller depth ceiling when adaptive_batch is on; a ceiling of 1
    #: pins every flush to the paper's single-call path (the AIMD floor)
    adaptive_max_depth: int = 64
    #: collect telemetry (per-session latency histograms, batch-flush
    #: depths, cache and per-seat queueing-delay counters) into the run's
    #: ``metrics`` snapshot; recording never charges the virtual clock, so
    #: cycle totals are identical with this on or off
    telemetry: bool = False
    #: handle attachment policy registered for every traffic module:
    #: "per_session" (the paper's 1:1 fork), "per_module" (one shared
    #: handle per module) or "pooled" (shared up to pool_max_sessions)
    handle_policy: str = "per_session"
    #: per-handle session cap when handle_policy="pooled"
    pool_max_sessions: int = 8
    #: one session per module per client (the multi-session engine); when
    #: False each client opens a single session naming every module
    multi_session: bool = True
    #: charge the per-shard lock-acquisition micro-op on session-table
    #: touches (the SMP build of the kernel; the paper's uniprocessor
    #: figures compile it out)
    smp_shard_locks: bool = True
    #: policy chain attached to every traffic module: "static" (cacheable),
    #: "quota", "expiry", or "deny-only"
    policy_kind: str = "static"
    #: quota for policy_kind="quota"
    quota_calls: int = 1 << 30
    #: partition the clients into this many independent groups for the
    #: sharded parallel runner (:mod:`repro.workloads.shard`).  Clients are
    #: assigned round-robin (client ``i`` → shard ``i % shards``); each
    #: shard runs its group on its own virtual machine/clock and the
    #: results merge deterministically, independent of worker count.  The
    #: in-process :class:`TrafficEngine` ignores this knob (it always runs
    #: the clients it was given).
    shards: int = 1
    #: attach the span tracer (causal span trees with virtual-microsecond
    #: timestamps: dispatch/broker/service-plane/RPC tap points, ring-buffer
    #: flight recorder, per-request critical-path segments).  Pure
    #: observation like telemetry: span timestamps read the clock and never
    #: charge it, so traced cycle totals are byte-identical to untraced
    #: ones (asserted differentially by the non-perturbation tests)
    tracing: bool = False
    #: deterministic head sampling: keep spans for 1 in every K clients,
    #: decided per client id from a seeded child stream (1 = trace all)
    trace_sample_every: int = 1
    #: flight-recorder capacity (spans retained); 0 takes the tracer default
    trace_capacity: int = 0
    #: route the run through the service plane: clients attach through a
    #: :class:`~repro.serve.frontend.ServiceFrontend` binding and every
    #: call crosses the smodserve RPC surface before dispatching.  Off by
    #: default — the paper's figures never construct a front-end and their
    #: charge sequence is untouched (asserted differentially).
    via_service: bool = False
    #: service-plane runs: spread clients round-robin over this many
    #: tenants (>1 switches the session table hierarchical)
    service_tenants: int = 1
    #: broker seat-queue deadline shedding (overload protection): an
    #: open-loop arrival whose queueing delay already exceeds this is shed
    #: at admission — one charged SERVE_SHED instead of a full dispatch
    #: nobody is waiting for.  0 = off (the default; byte-identical paths)
    shed_deadline_us: float = 0.0
    #: closed-loop AIMD feed: when set (>0, adaptive_batch+telemetry runs
    #: only) the controller also consumes the observed flush service-time
    #: p95 from telemetry and shrinks while it exceeds this target
    service_p95_target_us: float = 0.0
    call_mix: Tuple[Tuple[str, float], ...] = DEFAULT_CALL_MIX
    uid: int = 1000
    principal: str = "alice"
    seed: int = 0xB07_7E57

    def __post_init__(self) -> None:
        if self.clients < 1 or self.modules < 1 or self.calls_per_client < 1:
            raise SimulationError("traffic spec must be positive in all dims")
        if self.shards < 1 or self.shards > self.clients:
            raise SimulationError(
                "shards must be between 1 and the client count")
        if self.arrival not in ("closed", "open", "mmpp"):
            raise SimulationError(f"unknown arrival mode {self.arrival!r}")
        if self.think not in ("exponential", "lognormal", "pareto"):
            raise SimulationError(f"unknown think-time model {self.think!r}")
        if self.think == "pareto" and self.think_alpha <= 1.0:
            raise SimulationError("pareto think times need think_alpha > 1")
        if self.batch_size < 1:
            raise SimulationError("batch_size must be at least 1")
        if self.adaptive_batch:
            if self.arrival not in ("open", "mmpp"):
                raise SimulationError(
                    "adaptive batching needs open-loop arrivals "
                    "(arrival='open' or 'mmpp'): the controller tracks the "
                    "offered interarrival rate")
            if self.batch_size != 1:
                raise SimulationError(
                    "adaptive_batch replaces the static batch_size knob; "
                    "leave batch_size at 1")
            if self.adaptive_max_depth < 1:
                raise SimulationError("adaptive_max_depth must be >= 1")
        if self.trace_sample_every < 1:
            raise SimulationError("trace_sample_every must be >= 1")
        if self.trace_capacity < 0:
            raise SimulationError("trace_capacity must be >= 0")
        if self.tracing and self.shards > 1:
            raise SimulationError(
                "tracing is in-process (one flight recorder per engine); "
                "run it unsharded (shards=1)")
        if self.via_service:
            if self.batch_size != 1:
                raise SimulationError(
                    "via_service dispatch is per-call; leave batch_size at 1")
            if self.adaptive_batch:
                raise SimulationError(
                    "via_service and adaptive_batch are mutually exclusive")
            if self.service_tenants < 1:
                raise SimulationError("service_tenants must be >= 1")
        if self.shed_deadline_us < 0.0:
            raise SimulationError("shed_deadline_us must be >= 0")
        if self.shed_deadline_us > 0.0:
            if self.arrival not in ("open", "mmpp"):
                raise SimulationError(
                    "seat-queue shedding acts on the recorded queueing "
                    "delay; it needs open-loop arrivals "
                    "(arrival='open' or 'mmpp')")
            if self.adaptive_batch:
                raise SimulationError(
                    "shed_deadline_us and adaptive_batch are mutually "
                    "exclusive (the controller owns the queue)")
        if self.service_p95_target_us < 0.0:
            raise SimulationError("service_p95_target_us must be >= 0")
        if self.service_p95_target_us > 0.0 and not (
                self.adaptive_batch and self.telemetry):
            raise SimulationError(
                "service_p95_target_us closes the loop from the telemetry "
                "plane: it needs adaptive_batch=True and telemetry=True")
        # raises on an unknown policy spec
        self.broker_policy()

    def broker_policy(self) -> HandlePolicy:
        """The :class:`HandlePolicy` traffic modules register with the broker."""
        return HandlePolicy.parse(self.handle_policy,
                                  max_sessions=self.pool_max_sessions)


def traffic_policy(spec: TrafficSpec) -> Policy:
    """The per-module policy chain for a traffic run.

    The "static" chain is three cacheable clauses — uid allow-list,
    principal allow-list, function denylist — the shape of a typical
    production ACL.  "quota" and "expiry" append a dynamic clause, which
    disqualifies the whole chain from the decision cache.
    """
    static_clauses: List[Policy] = [
        UidAllowPolicy([spec.uid]),
        PrincipalAllowPolicy([spec.principal]),
        FunctionDenyPolicy(["test_null"]),
    ]
    if spec.policy_kind == "static":
        return CompositePolicy(static_clauses)
    if spec.policy_kind == "quota":
        return CompositePolicy(static_clauses +
                               [CallQuotaPolicy(spec.quota_calls)])
    if spec.policy_kind == "expiry":
        return CompositePolicy(static_clauses + [CredentialExpiryPolicy()])
    if spec.policy_kind == "deny-only":
        return FunctionDenyPolicy(["test_null"])
    raise SimulationError(f"unknown policy kind {spec.policy_kind!r}")


def _impl_incr(env: CallEnvironment, x: int) -> int:
    return x + 1


def _impl_null(env: CallEnvironment) -> int:
    return 0


def _impl_getpid(env: CallEnvironment) -> int:
    return env.client_pid


def build_traffic_module(index: int, *, policy: Policy,
                         version: int = 1) -> SecModuleDefinition:
    """One of the M protected modules the traffic fans out over."""
    module = SecModuleDefinition(f"libtraffic{index}", version, policy=policy)
    module.add_function("test_incr", _impl_incr,
                        cost_op=costs.FUNC_BODY_TESTINCR, arg_words=1,
                        doc="the paper's x+1 payload")
    module.add_function("getpid", _impl_getpid,
                        cost_op=costs.FUNC_BODY_SMOD_GETPID, arg_words=0,
                        doc="client pid from session state")
    module.add_function("test_null", _impl_null,
                        cost_op=costs.FUNC_BODY_TESTINCR, arg_words=0,
                        doc="always denied by the traffic policy")
    module.library_image = make_function_image(
        f"libtraffic{index}.so",
        {"test_incr": 48, "getpid": 32, "test_null": 32}, kind="shared")
    return module


@dataclass
class ClientState:
    """One traffic client: its program, sessions and latency record."""

    index: int
    program: Program
    #: m_id -> session (multi-session) or the single shared session
    sessions: Dict[int, object] = field(default_factory=dict)
    rng: Optional[DeterministicRNG] = None
    calls_issued: int = 0
    calls_denied: int = 0
    #: per-call service latency, microseconds of virtual time.  Stored as
    #: ``array('d')`` — raw doubles, the exact same bits a list of floats
    #: would hold, but without one heap object per call: at 10^7 calls the
    #: object churn of plain lists dominates the whole run (allocator and
    #: cache pressure measured as a ~40% throughput loss)
    latencies_us: "array" = field(default_factory=lambda: array("d"))
    #: per-call queueing delay (open loop: start - scheduled arrival)
    queue_delays_us: "array" = field(default_factory=lambda: array("d"))

    def pick_session(self, m_id: int):
        return self.sessions[m_id]


@dataclass
class TrafficResult:
    """Outcome of one traffic run (all times in virtual microseconds)."""

    spec: TrafficSpec
    total_calls: int
    denied_calls: int
    elapsed_us: float
    total_cycles: int
    cycles_per_call: float
    per_client_mean_us: List[float]
    #: chronological per-call service latencies, concatenated per client;
    #: an ``array('d')`` (bit-identical doubles, no per-call heap objects)
    latencies_us: "array"
    #: open-loop only: per-call (start - scheduled arrival); empty otherwise
    queue_delays_us: "array"
    cache_stats: Dict[str, int]
    shard_sizes: List[int]
    session_count: int
    #: live handle co-processes at the end of the run (per_session: one per
    #: session; pooled/per_module: ceil(sessions / seats) per module set)
    handle_count: int = 0
    broker_stats: Dict[str, int] = field(default_factory=dict)
    #: telemetry snapshot (``TrafficSpec(telemetry=True)`` runs only)
    metrics: Dict[str, object] = field(default_factory=dict)
    #: adaptive-controller snapshots, one per client (adaptive runs only)
    adaptive: Dict[str, object] = field(default_factory=dict)
    #: the broker's per-handle queueing-delay fairness report (telemetry
    #: runs with open-loop arrivals; empty otherwise)
    seat_fairness: Dict[int, Dict[str, object]] = field(default_factory=dict)
    #: flight-recorder spans in chronological order (``tracing=True`` runs
    #: only; :class:`~repro.telemetry.tracing.Span` objects)
    trace_spans: List = field(default_factory=list)
    #: tracer counters: started/finished/recorded/dropped/... (tracing runs)
    trace_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def mean_service_us(self) -> float:
        """Mean per-call service latency (dispatch only, no idle time)."""
        return mean(self.latencies_us)

    def tail_mean_service_us(self, fraction: float = 0.5) -> float:
        """Mean service latency over the last ``fraction`` of each run.

        ``latencies_us`` is chronological per client, so for a one-client
        run this is the converged-state cost after a controller's ramp-up;
        multi-client runs get the per-client tails concatenated.
        """
        if not 0.0 < fraction <= 1.0:
            raise SimulationError("tail fraction must be in (0, 1]")
        per_client = self.spec.calls_per_client
        tail: List[float] = []
        for start in range(0, len(self.latencies_us), per_client):
            chunk = self.latencies_us[start:start + per_client]
            keep = max(1, int(len(chunk) * fraction))
            tail.extend(chunk[len(chunk) - keep:])
        return mean(tail)

    @property
    def calls_per_second(self) -> float:
        """Aggregate throughput in (virtual) calls per second."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.total_calls / (self.elapsed_us / 1e6)

    def latency_percentile(self, p: float) -> float:
        return percentile(self.latencies_us, p)

    def queue_delay_percentile(self, p: float) -> float:
        return percentile(self.queue_delays_us, p)

    def describe(self) -> str:
        text = (f"{self.spec.clients} clients x {self.spec.modules} modules, "
                f"{self.total_calls} calls ({self.denied_calls} denied), "
                f"{self.calls_per_second:,.0f} calls/s, "
                f"p50={self.latency_percentile(50):.2f}us "
                f"p95={self.latency_percentile(95):.2f}us "
                f"p99={self.latency_percentile(99):.2f}us")
        if self.queue_delays_us:
            text += f" queue-p99={self.queue_delay_percentile(99):.2f}us"
        return text


class TrafficEngine:
    """Builds the system and drives one deterministic traffic run."""

    def __init__(self, spec: TrafficSpec, *,
                 machine: Optional[Machine] = None,
                 dispatch_config: Optional[DispatchConfig] = None,
                 client_ids: Optional[List[int]] = None) -> None:
        self.spec = spec
        self.config = dispatch_config or DispatchConfig()
        if spec.batch_size != 1:
            # the workload knob wins: clients flush queues of this depth
            self.config = replace(self.config, batch_size=spec.batch_size)
        self.machine = machine or make_paper_machine(seed=spec.seed)
        self.kernel = Kernel(machine=self.machine).boot()
        self.extension: SmodExtension = install_secmodule(self.kernel)
        self.extension.sessions.charge_shard_locks = spec.smp_shard_locks
        self.telemetry: Telemetry = NULL_TELEMETRY
        if spec.telemetry:
            self.telemetry = self.extension.enable_telemetry(make_telemetry(True))
        self.tracer: Tracer = NULL_TRACER
        if spec.tracing:
            kwargs = {"sample_every": spec.trace_sample_every}
            if spec.trace_capacity:
                kwargs["capacity"] = spec.trace_capacity
            # wires the dispatcher and broker taps; the service-plane and
            # RPC-stub taps are wired in build() once the front-end exists
            self.tracer = self.extension.enable_tracing(**kwargs)
        self.rng = DeterministicRNG(spec.seed)
        #: global client indices this engine drives.  A shard worker passes
        #: its slice of the full run's clients; the ids seed the per-client
        #: RNG child streams (``client:{id}``), so every client draws the
        #: identical sequence whether it runs in the full serial engine or
        #: inside any shard partition.
        ids = (list(client_ids) if client_ids is not None
               else list(range(spec.clients)))
        if len(ids) != spec.clients or len(set(ids)) != len(ids):
            raise SimulationError(
                "client_ids must be unique and match spec.clients")
        self.client_ids = ids
        self.modules: List = []
        self.clients: List[ClientState] = []
        self._client_by_id: Dict[int, ClientState] = {}
        self._controllers: Dict[int, AdaptiveBatchController] = {}
        self._built = False
        self._mix_names = [name for name, _ in spec.call_mix]
        self._mix_weights = [weight for _, weight in spec.call_mix]
        # precomputed weighted-choice tables for the fused depth-1 path:
        # thresholds built by the same incremental float addition
        # weighted_choice performs, so the walk is comparison-identical
        self._mix_total = float(sum(self._mix_weights))
        acc = 0.0
        cum = []
        for name, weight in spec.call_mix:
            acc += weight
            cum.append((name, acc))
        self._mix_cum = cum
        self._mix_last = self._mix_names[-1]
        # ---- analytic fast-forward state -----------------------------------
        # HOT (session, shape, config) spans accumulate here instead of
        # replaying one by one; `_ff_flush` settles them as one closed-form
        # charge per key.  `_pending_cycles` is the total deferred virtual
        # time (spans + idle), so `_now_us` stays exact mid-window.
        self._ff_enabled = (self.config.use_trace_replay
                            and self.config.use_fast_forward
                            and not spec.via_service
                            # shed decisions are per call; the closed-form
                            # fast-forward tier would skip them
                            and spec.shed_deadline_us == 0.0)
        # ---- service plane --------------------------------------------------
        #: the front-end (built lazily with the run) when via_service is on
        self.frontend = None
        #: client index -> m_id -> binding id on the front-end
        self._service_bindings: Dict[int, Dict[int, int]] = {}
        #: client index -> the client's BoundClient RPC stub
        self._service_clients: Dict[int, object] = {}
        #: (m_id, function name) -> (func_id, arg_words) for RPC encoding
        self._service_funcs: Dict[Tuple[int, str], Tuple[int, int]] = {}
        self._pending_cycles = 0
        self._pending_idle_cycles = 0
        self._pending_idle_events = 0
        #: key -> [entry, accumulated span count, session]
        self._ff_windows: Dict[Tuple, List] = {}
        #: (session_id, function name) -> (m_id, func_id), mirroring
        #: ``session.find_function`` so the probe resolves keys in O(1)
        self._ff_resolve: Dict[Tuple[int, str], Tuple[int, int]] = {}
        #: batch depth -> the DispatchConfig `_dispatch_queue` would build
        self._ff_configs: Dict[int, DispatchConfig] = {}
        self._mhz = float(self.machine.spec.mhz)
        # hot-loop caches: bound methods/objects resolved once (the run
        # loop touches these a few times per simulated call)
        self._dispatcher = self.extension.dispatcher
        self._us_of = self.machine.meter.profile.microseconds
        self._telemetry_on = self.telemetry.enabled
        # record_queue_delay feeds both observation planes; hoist the
        # either-enabled check out of the per-call loops
        self._observe_queue = self._telemetry_on or self.tracer.enabled
        # broker seat-queue deadline shedding (default off: the gate stays
        # entirely out of the unprotected per-call paths)
        self._broker_shed = spec.shed_deadline_us > 0.0
        self.extension.broker.shed_deadline_us = spec.shed_deadline_us

    # ------------------------------------------------------------------- build
    def build(self) -> "TrafficEngine":
        """Register the M modules and establish every client's sessions."""
        if self._built:
            return self
        spec = self.spec
        policy = traffic_policy(spec)
        broker_policy = spec.broker_policy()
        for index in range(spec.modules):
            definition = build_traffic_module(index, policy=policy)
            registered = self.extension.registry.register(
                definition, uid=0, protection=ProtectionMode.ENCRYPT)
            self.modules.append(registered)
            # the module owner registers how its handles may be shared
            self.extension.broker.register_policy(registered.name,
                                                  broker_policy)

        service_backends: List = []
        if spec.via_service:
            # deferred import: the service plane is compiled out of every
            # non-service run, and the import itself stays off their path
            from ..serve.frontend import ServiceConfig, ServiceFrontend
            self.frontend = ServiceFrontend(
                self.kernel, self.extension,
                config=ServiceConfig(principal=spec.principal, uid=spec.uid),
                telemetry=self.telemetry)
            if self.tracer.enabled:
                self.frontend.attach_tracer(self.tracer)
            if spec.multi_session:
                # one backend per module, mirroring the session topology
                for registered in self.modules:
                    service_backends.append(self.frontend.register_backend(
                        registered.name, [registered], policy=broker_policy))
            else:
                service_backends.append(self.frontend.register_backend(
                    "traffic", self.modules, policy=broker_policy))
            for registered in self.modules:
                for function in registered.definition.functions():
                    self._service_funcs[(registered.m_id, function.name)] = \
                        (function.func_id, function.arg_words)

        for c in self.client_ids:
            program = Program.spawn(self.kernel, f"traffic-client{c}",
                                    uid=spec.uid)
            state = ClientState(index=c, program=program,
                                rng=self.rng.child(f"client:{c}"))
            if spec.via_service:
                tenant = c % spec.service_tenants
                bindings = self._service_bindings.setdefault(c, {})
                for record in service_backends:
                    binding = self.frontend.attach(record, tenant=tenant,
                                                   client=program)
                    bindings.update({registered.m_id: binding.binding_id
                                     for registered in record.modules})
                    for registered in record.modules:
                        state.sessions[registered.m_id] = binding.session
                stub = self.frontend.make_client(program.proc)
                stub.tracer = self.tracer
                self._service_clients[c] = stub
            elif spec.multi_session:
                # one session per module: N x M entries in the sharded table
                for registered in self.modules:
                    session = self._start_session(program, [registered],
                                                  allow_multiple=True)
                    state.sessions[registered.m_id] = session
            else:
                session = self._start_session(program, self.modules,
                                              allow_multiple=False)
                for registered in self.modules:
                    state.sessions[registered.m_id] = session
            self.clients.append(state)
            self._client_by_id[state.index] = state
        self._built = True
        return self

    def _start_session(self, program: Program, registered_modules,
                       *, allow_multiple: bool):
        descriptor = SessionDescriptor(
            build_requirements(registered_modules,
                               principal=self.spec.principal,
                               uid=self.spec.uid),
            allow_multiple=allow_multiple)
        session_id = program.smod_crt0_startup(self.extension, descriptor)
        return self.extension.sessions.get(session_id)

    # --------------------------------------------------------------------- run
    def _now_us(self) -> float:
        """Virtual now, including cycles deferred by open fast-forward
        windows.

        ``clock.cycles + pending`` is exactly the cycle count the serial
        engine's clock would show at this point, and the conversion is the
        same profile division, so every time-derived value (arrival idles,
        queueing delays, think schedules, policy contexts after a flush)
        is float-identical with fast-forward on or off.
        """
        return self._us_of(self.machine.clock.cycles + self._pending_cycles)

    def _advance_clock_to(self, target_us: float) -> None:
        """Idle the machine forward to a scheduled arrival time."""
        now_us = self._now_us()
        if target_us > now_us:
            idle_cycles = int(round((target_us - now_us) *
                                    self.machine.spec.mhz))
            if self._ff_enabled:
                # defer the wait: one accumulated event per arrival (a
                # zero-cycle wait still counts one, exactly like `idle`);
                # `_ff_flush` settles the batch through the meter
                self._pending_cycles += idle_cycles
                self._pending_idle_cycles += idle_cycles
                self._pending_idle_events += 1
            else:
                # routed through the meter (never clock.advance directly):
                # the CostMeter is the single charging authority — CLOCK001
                self.machine.idle(idle_cycles)

    def _ff_flush(self) -> None:
        """Settle every deferred charge: the fast-forward sync barrier.

        Runs before any dispatch that needs the true clock (a slow-path or
        replay execution) and at the end of the run.  Accumulated idle
        waits settle as one ``idle_many`` (cycles *and* event count exact);
        each open window settles as one scaled-trace commit.
        """
        if self._pending_idle_events:
            self.machine.meter.idle_many(self._pending_idle_cycles,
                                         self._pending_idle_events)
            self._pending_idle_cycles = 0
            self._pending_idle_events = 0
        if self._ff_windows:
            dispatcher = self.extension.dispatcher
            for entry, count, session in self._ff_windows.values():
                dispatcher.fast_forward_commit(entry, session, count)
            self._ff_windows.clear()
        self._pending_cycles = 0

    def _ff_offer(self, state: ClientState, session,
                  queue: List[Tuple[str, Tuple]], count: int) -> bool:
        """Try to absorb one flush into an open fast-forward window.

        Builds the same trace key the dispatcher would, asks it to admit
        the span (`fast_forward_probe` revalidates every replay guard *and*
        performs the span's decision-cache touches, so per-span cache state
        matches per-call replay exactly), and accumulates the charge.
        Returns False when the span must take the dispatch path instead.
        """
        resolve = self._ff_resolve
        sid = session.session_id
        pairs = []
        for name, _ in queue:
            pair = resolve.get((sid, name))
            if pair is None:
                found = session.find_function(name)
                if found is None:
                    return False
                module, function = found
                pair = (module.m_id, function.func_id)
                resolve[(sid, name)] = pair
            pairs.append(pair)
        if count == 1:
            config = self.config
            shape: Tuple = pairs[0]
        else:
            config = self._ff_configs.get(count)
            if config is None:
                config = (self.config if self.config.batch_size >= count
                          else replace(self.config, batch_size=count))
                self._ff_configs[count] = config
            shape = tuple(sorted(pairs))
        key = (sid, shape, config)
        entry = self._dispatcher.fast_forward_probe(session, key)
        if entry is None:
            return False
        window = self._ff_windows.get(key)
        if window is None:
            self._ff_windows[key] = window = [entry, 1, session]
        else:
            # keep the freshest entry: a re-recorded key stays byte-equal
            # (the probe's guards proved it) but guard fields may be newer
            window[0] = entry
            window[1] += 1
        self._pending_cycles += entry.trace.total_cycles
        # the replay span's Stopwatch measures exactly the trace's cycles,
        # so this division reproduces its latency float for float
        service_us = entry.trace.total_cycles / self._mhz
        state.calls_issued += count
        state.latencies_us.extend([service_us / count] * count)
        state.calls_denied += entry.denied
        return True

    def _draw_call(self, state: ClientState, offset: int) -> Tuple[str, Tuple]:
        function_name = state.rng.weighted_choice(self._mix_names,
                                                  self._mix_weights)
        args = ((state.calls_issued + offset,)
                if function_name == "test_incr" else ())
        return function_name, args

    def _dispatch_queue(self, state: ClientState, session,
                        queue: List[Tuple[str, Tuple]]) -> None:
        """Dispatch one client queue against one session and record it.

        A queue of one goes through the ordinary single-call path (so a
        depth-1 flush is the paper's per-call dispatch, cycle for cycle);
        longer queues flush through the batched path in one chunk.
        """
        count = len(queue)
        if self._ff_enabled:
            if self._ff_offer(state, session, queue, count):
                return
            # the span needs the real dispatch path, which must see the
            # true clock (policy contexts, stopwatches): settle everything
            self._ff_flush()
        self._dispatch_queue_slow(state, session, queue)

    def _dispatch_queue_slow(self, state: ClientState, session,
                             queue: List[Tuple[str, Tuple]]) -> None:
        """The real dispatch tail: op-by-op or per-call replay execution.

        Callers must have settled any open fast-forward state first (the
        stopwatch below needs the true clock).
        """
        count = len(queue)
        mark = self.machine.clock.checkpoint()
        if count == 1:
            name, args = queue[0]
            outcome = self.extension.dispatcher.call(
                session, name, *args, config=self.config)
            denied = 0 if outcome.ok else 1
        else:
            config = (self.config if self.config.batch_size >= count
                      else replace(self.config, batch_size=count))
            batch = self.extension.dispatcher.call_batch(
                session, queue, config=config)
            denied = batch.denied
        service_us = self.machine.clock.since(mark).microseconds(
            self.machine.spec.mhz)
        state.calls_issued += count
        state.latencies_us.extend([service_us / count] * count)
        state.calls_denied += denied

    def _one_flush(self, state: ClientState, count: int, *,
                   scheduled_at: Optional[float] = None) -> None:
        """One arrival event: ``count`` calls against one session.

        A queue targets a single module/session — a super-frame lives on
        exactly one shared stack.  Open-loop callers pass the event's
        scheduled time so the queueing delay (start minus schedule) is
        recorded per call and fed to the broker's per-seat histograms.
        """
        modules = self.modules
        # a single-value range consumes nothing from the numpy bit stream
        # (verified: Generator.integers with range 1 short-circuits), so
        # skipping the draw is sequence-identical, not just cheaper
        registered = (modules[0] if len(modules) == 1 else
                      modules[state.rng.integer(0, len(modules) - 1)])
        session = state.pick_session(registered.m_id)
        if scheduled_at is not None:
            delay = max(0.0, self._now_us() - scheduled_at)
            if self._broker_shed and not \
                    self.extension.broker.admit_delay(session, delay, count):
                # shed at admission: the queueing delay alone already blew
                # the deadline, so the flush never dispatches (and never
                # records into the served latency/queue-delay streams)
                return
            if count == 1:
                state.queue_delays_us.append(delay)
            else:
                state.queue_delays_us.extend([delay] * count)
            if self._observe_queue:
                # record_queue_delay no-ops without an observation plane;
                # hoist the check out of the per-call loop
                for _ in range(count):
                    self.extension.broker.record_queue_delay(session, delay)
        if count == 1 and self._ff_enabled:
            # fused depth-1 fast path: draw, probe and accumulate in one
            # frame instead of four (_draw_call/_dispatch_queue/_ff_offer).
            # Every observable effect — the RNG stream (one weighted draw,
            # thresholds walked exactly as weighted_choice walks them),
            # the probe's guard checks and cache touches, the accumulated
            # charge — is identical to the generic path.
            draw = self._mix_total * state.rng.random01()
            name = self._mix_last
            for candidate, threshold in self._mix_cum:
                if draw < threshold:
                    name = candidate
                    break
            sid = session.session_id
            pair = self._ff_resolve.get((sid, name))
            if pair is None:
                found = session.find_function(name)
                if found is not None:
                    module, function = found
                    pair = (module.m_id, function.func_id)
                    self._ff_resolve[(sid, name)] = pair
            if pair is not None:
                key = (sid, pair, self.config)
                entry = self._dispatcher.fast_forward_probe(session, key)
                if entry is not None:
                    window = self._ff_windows.get(key)
                    if window is None:
                        self._ff_windows[key] = [entry, 1, session]
                    else:
                        window[0] = entry
                        window[1] += 1
                    cycles = entry.trace.total_cycles
                    self._pending_cycles += cycles
                    state.calls_issued += 1
                    state.latencies_us.append(cycles / self._mhz)
                    state.calls_denied += entry.denied
                    return
            # arguments never enter the trace key and are not drawn from
            # the RNG, so synthesizing them only on the fallback is
            # draw-for-draw identical to _draw_call
            args = ((state.calls_issued,) if name == "test_incr" else ())
            self._ff_flush()
            self._dispatch_queue_slow(state, session, [(name, args)])
            return
        queue = [self._draw_call(state, offset) for offset in range(count)]
        self._dispatch_queue(state, session, queue)

    def _run_open_depth1_ff(self, times: List[float],
                            indices: List[int]) -> None:
        """Specialized static open/mmpp driver: depth 1, fast-forward on.

        The generic path spends most of each simulated call on Python
        frame overhead (five method hops per arrival); at 10^7-call sizes
        that overhead *is* the simulation time.  This driver is the same
        event loop with every hop inlined and every lookup hoisted — the
        observable sequence (RNG draws, queue-delay records, probe guard
        checks and cache touches, accumulated charges, fallback order) is
        statement-for-statement the generic ``_advance_clock_to`` +
        ``_one_flush`` flow, which the differential-identity tests pin
        against the replay and op-by-op tiers.
        """
        machine = self.machine
        clock = machine.clock
        # _now_us == profile.microseconds == cycles / profile.mhz;
        # _advance_clock_to rounds idle against spec.mhz — mirror both
        profile_mhz = machine.meter.profile.mhz
        spec_mhz = machine.spec.mhz
        mhz = self._mhz
        modules = self.modules
        single = len(modules) == 1
        first_m_id = modules[0].m_id
        resolve = self._ff_resolve
        windows = self._ff_windows
        probe = self._dispatcher.fast_forward_probe
        config = self.config
        mix_total = self._mix_total
        mix_cum = self._mix_cum
        mix_last = self._mix_last
        observe_queue = self._observe_queue
        broker = self.extension.broker
        # per-client hoists: bound methods and (single-module) the constant
        # session, so the loop touches no attribute chains on the hot path
        ctx = {}
        for cid, state in self._client_by_id.items():
            session = state.sessions[first_m_id] if single else None
            ctx[cid] = (state, state.rng.next_double,
                        state.queue_delays_us.append,
                        state.latencies_us.append,
                        session,
                        session.session_id if single else None)
        # deferred-charge accumulators mirrored into locals; written back
        # around every slow-path excursion and at loop exit
        pending = self._pending_cycles
        idle_pending = self._pending_idle_cycles
        idle_events = self._pending_idle_events
        # clock.cycles only moves on the slow path; cache it between flushes
        base_cycles = clock.cycles
        for at, index in zip(times, indices):
            state, next_double, delay_append, lat_append, session, sid = \
                ctx[index]
            # -- _advance_clock_to(at), inlined --------------------------
            now = (base_cycles + pending) / profile_mhz
            if at > now:
                idle = int(round((at - now) * spec_mhz))
                pending += idle
                idle_pending += idle
                idle_events += 1
                now = (base_cycles + pending) / profile_mhz
            # -- _one_flush(state, 1, scheduled_at=at), inlined ----------
            if not single:
                registered = modules[state.rng.integer(0, len(modules) - 1)]
                session = state.sessions[registered.m_id]
                sid = session.session_id
            delay = now - at
            if delay < 0.0:
                delay = 0.0
            delay_append(delay)
            if observe_queue:
                broker.record_queue_delay(session, delay)
            draw = mix_total * next_double()
            name = mix_last
            for candidate, threshold in mix_cum:
                if draw < threshold:
                    name = candidate
                    break
            pair = resolve.get((sid, name))
            if pair is None:
                found = session.find_function(name)
                if found is not None:
                    module, function = found
                    pair = (module.m_id, function.func_id)
                    resolve[(sid, name)] = pair
            if pair is not None:
                key = (sid, pair, config)
                entry = probe(session, key)
                if entry is not None:
                    window = windows.get(key)
                    if window is None:
                        windows[key] = [entry, 1, session]
                    else:
                        window[0] = entry
                        window[1] += 1
                    cycles = entry.trace.total_cycles
                    pending += cycles
                    state.calls_issued += 1
                    lat_append(cycles / mhz)
                    state.calls_denied += entry.denied
                    continue
            args = ((state.calls_issued,) if name == "test_incr" else ())
            # settle through the real flush: sync the mirrored state out,
            # dispatch, then re-sync (the flush zeroed the accumulators and
            # the slow call advanced the true clock)
            self._pending_cycles = pending
            self._pending_idle_cycles = idle_pending
            self._pending_idle_events = idle_events
            self._ff_flush()
            self._dispatch_queue_slow(state, session, [(name, args)])
            pending = self._pending_cycles
            idle_pending = self._pending_idle_cycles
            idle_events = self._pending_idle_events
            base_cycles = clock.cycles
        self._pending_cycles = pending
        self._pending_idle_cycles = idle_pending
        self._pending_idle_events = idle_events

    def _think_source(self, state: ClientState):
        """Per-client closed-loop think-time draw (``TrafficSpec.think``).

        The exponential default reproduces the original engine draw for
        draw; lognormal/pareto keep the same mean think time but add the
        heavy tail, so a seed change is the only way totals move.
        """
        spec = self.spec
        if spec.think == "lognormal":
            return lambda: state.rng.lognormal(spec.mean_interval_us,
                                               spec.think_sigma)
        if spec.think == "pareto":
            return lambda: state.rng.pareto(spec.mean_interval_us,
                                            spec.think_alpha)
        return lambda: state.rng.exponential(spec.mean_interval_us)

    def _interarrival_source(self, state: ClientState):
        """Per-client interarrival draw for the pre-drawn (open) schedules."""
        spec = self.spec
        if spec.arrival == "mmpp":
            mmpp = TwoStateMMPP(state.rng,
                                on_interval=spec.burst_interval_us,
                                off_interval=spec.mean_interval_us,
                                on_duration=spec.burst_on_us,
                                off_duration=spec.burst_off_us)
            return mmpp.next_interarrival
        return lambda: state.rng.exponential(spec.mean_interval_us)

    def _open_schedule(self, events_per_client: int
                       ) -> List[Tuple[float, int, int]]:
        """Pre-draw every client's open-loop arrival heap.

        Entries are ``(fire_time_us, tiebreak, client_index)``; the
        tiebreak keeps ordering deterministic when two clients share a
        fire time.  Shared by the static open/mmpp path (one event per
        flush) and the adaptive path (one event per call), so the two can
        never diverge on schedule semantics — the depth-1 cycle-identity
        guarantee rests on that.

        Returned **sorted**, which is exactly the order a heap would pop
        (keys are unique thanks to the tiebreak): the static schedule
        never grows mid-run, so the consumers iterate instead of popping.
        Pure-exponential clients draw their gaps in one vectorized call —
        bit-identical to the scalar loop (see ``exponential_array``).
        """
        times, indices = self._open_schedule_sorted(events_per_client)
        # the middle element only ever served as the sort tiebreak; the
        # schedule arrives pre-sorted, so the post-sort position is the
        # (equally unique, equally ordered) stand-in
        return list(zip(times, range(len(times)), indices))

    def _open_schedule_sorted(self, events_per_client: int
                              ) -> Tuple[List[float], List[int]]:
        """The open/mmpp schedule as parallel ``(times, indices)`` lists.

        Vectorized form of the tuple-list schedule, bit-identical by
        construction at every step:

        * gaps accumulate through ``np.cumsum`` seeded with ``base_us``
          as element 0, which performs the same left-to-right float
          additions as the scalar ``at += gap`` loop (verified);
        * the global ordering is a **stable** argsort on fire time, which
          equals sorting ``(time, insertion-order)`` tuples — the old
          tiebreak was insertion order by construction.

        Two parallel primitive lists instead of one tuple list keeps
        10^7-event schedules out of the cyclic GC's way: floats and ints
        are untracked, so full collections no longer crawl ten million
        tracked tuples (measured ~2x end-to-end at 10^7 calls).
        """
        base_us = self._now_us()
        per_client: List[np.ndarray] = []
        for state in self.clients:
            if self.spec.arrival == "open":
                gaps = state.rng.exponential_array(
                    self.spec.mean_interval_us, events_per_client)
            else:
                draw = self._interarrival_source(state)
                gaps = np.asarray([draw() for _ in range(events_per_client)])
            per_client.append(
                np.cumsum(np.concatenate(((base_us,), gaps)))[1:])
        times = np.concatenate(per_client)
        indices = np.concatenate([
            np.full(events_per_client, state.index, dtype=np.int64)
            for state in self.clients])
        order = np.argsort(times, kind="stable")
        return times[order].tolist(), indices[order].tolist()

    def _run_adaptive(self) -> None:
        """Open-loop arrivals, one call each, flushed by the AIMD controller.

        Each client accumulates arrivals in a pending queue targeting one
        module — chosen when the queue opens, so a depth-1 controller draws
        the exact RNG sequence of the static single-call open loop and
        stays cycle-identical to it.  The queue flushes when it reaches the
        controller's current depth, and lull detection is **gap-based**: an
        arrival gap at or beyond ``linger_us`` drains the queue at that
        next arrival, so a burst's stragglers wait at most one lull (not an
        age-based timer — holding a filling queue is the price of
        amortization, and the recorded queueing delays state it honestly).
        A client's last arrival drains whatever it leaves pending, so tail
        calls are never deferred to another client's schedule.
        """
        spec = self.spec
        events = self._open_schedule(spec.calls_per_client)
        start_us = self._now_us()
        controllers = {
            state.index: AdaptiveBatchController(
                AdaptiveConfig(
                    max_depth=spec.adaptive_max_depth,
                    service_p95_target_us=spec.service_p95_target_us),
                telemetry=self.telemetry, client=state.index,
                start_us=start_us)
            for state in self.clients}
        if spec.service_p95_target_us > 0.0:
            # closed loop: the controllers consume the observed flush
            # service-time tail straight from the telemetry plane (the
            # spec validator pinned telemetry on for this mode)
            registry = self.telemetry.registry

            def service_p95() -> float:
                return registry.merged_histogram(
                    "flush_service_us").quantile(95)

            for controller in controllers.values():
                controller.service_p95_supplier = service_p95
        pending: Dict[int, List[Tuple[str, Tuple]]] = \
            {state.index: [] for state in self.clients}
        arrivals: Dict[int, List[float]] = \
            {state.index: [] for state in self.clients}
        target: Dict[int, object] = {}

        def flush(index: int) -> None:
            queue = pending[index]
            if not queue:
                return
            state = self._client_by_id[index]
            session = state.pick_session(target[index].m_id)
            now_us = self._now_us()
            for at in arrivals[index]:
                delay = max(0.0, now_us - at)
                state.queue_delays_us.append(delay)
                if self._observe_queue:
                    self.extension.broker.record_queue_delay(session, delay)
            self._dispatch_queue(state, session, queue)
            controllers[index].on_flush(len(queue), self._now_us())
            queue.clear()
            arrivals[index].clear()

        remaining: Dict[int, int] = \
            {state.index: spec.calls_per_client for state in self.clients}
        for at, _, index in events:
            state = self._client_by_id[index]
            self._advance_clock_to(at)
            controller = controllers[index]
            if controller.observe_arrival(at) and pending[index]:
                flush(index)        # lull: the queue will not fill, drain it
            if not pending[index]:
                # a queue targets one module/session for its whole lifetime
                # (single-module: the range-1 draw consumes no stream bits,
                # so skipping it is sequence-identical)
                target[index] = (
                    self.modules[0] if len(self.modules) == 1 else
                    self.modules[state.rng.integer(
                        0, len(self.modules) - 1)])
            pending[index].append(self._draw_call(state, len(pending[index])))
            arrivals[index].append(at)
            remaining[index] -= 1
            if len(pending[index]) >= controller.depth or not remaining[index]:
                flush(index)
        for state in self.clients:
            flush(state.index)      # safety net; the last arrival drained it
        self._controllers = controllers

    def _one_service_call(self, state: ClientState, *,
                          scheduled_at: Optional[float] = None) -> None:
        """One arrival, dispatched across the smodserve RPC surface.

        The call crosses the front-end exactly as a remote client's would:
        client stub encode, loopback datagram, server dispatch, binding
        resolve (keyed shard probe), SecModule dispatch, reply.  Latency is
        measured around the whole round trip, so service-plane runs report
        the served call cost, not just the dispatch tail.
        """
        modules = self.modules
        registered = (modules[0] if len(modules) == 1 else
                      modules[state.rng.integer(0, len(modules) - 1)])
        session = state.pick_session(registered.m_id)
        if scheduled_at is not None:
            delay = max(0.0, self._now_us() - scheduled_at)
            if self._broker_shed and not \
                    self.extension.broker.admit_delay(session, delay):
                return
            state.queue_delays_us.append(delay)
            if self._observe_queue:
                self.extension.broker.record_queue_delay(session, delay)
        name, args = self._draw_call(state, 0)
        func_id, arg_words = self._service_funcs[(registered.m_id, name)]
        binding_id = self._service_bindings[state.index][registered.m_id]
        stub = self._service_clients[state.index]
        mark = self.machine.clock.checkpoint()
        result = stub.call("serve_call", binding_id, registered.m_id,
                           func_id, args[0] if arg_words and args else 0)
        service_us = self.machine.clock.since(mark).microseconds(
            self.machine.spec.mhz)
        state.calls_issued += 1
        state.latencies_us.append(service_us)
        if result < 0:
            state.calls_denied += 1

    def _run_via_service(self) -> None:
        """The service-plane driver: every call is one served RPC.

        Batching, adaptive control and fast-forward are all off (the spec
        validator pins the first two; the constructor pins the third): a
        served call's cost is dominated by the transport round trip, and
        the replay tiers' guards do not span the RPC boundary.
        """
        spec = self.spec
        if spec.arrival in ("open", "mmpp"):
            times, indices = self._open_schedule_sorted(
                spec.calls_per_client)
            for at, index in zip(times, indices):
                state = self._client_by_id[index]
                self._advance_clock_to(at)
                self._one_service_call(state, scheduled_at=at)
            return
        events: List[Tuple[float, int, int]] = []
        tiebreak = 0
        base_us = self._now_us()
        think = {s.index: self._think_source(s) for s in self.clients}
        for state in self.clients:
            first = base_us + think[state.index]()
            heapq.heappush(events, (first, tiebreak, state.index))
            tiebreak += 1
        while events:
            at, _, index = heapq.heappop(events)
            state = self._client_by_id[index]
            self._advance_clock_to(at)
            self._one_service_call(state)
            if state.calls_issued < spec.calls_per_client:
                next_at = self._now_us() + think[state.index]()
                heapq.heappush(events, (next_at, tiebreak, state.index))
                tiebreak += 1

    def run(self) -> TrafficResult:
        """Drive the full call schedule and collect the result."""
        self.build()
        spec = self.spec
        start_mark = self.machine.clock.checkpoint()

        # static paths: each arrival event flushes up to batch_size calls
        flushes = math.ceil(spec.calls_per_client / spec.batch_size)
        last_flush = (spec.calls_per_client -
                      (flushes - 1) * spec.batch_size)

        def flush_size(nth: int) -> int:
            return spec.batch_size if nth < flushes - 1 else last_flush

        if spec.via_service:
            self._run_via_service()
        elif spec.adaptive_batch:
            self._run_adaptive()
        elif spec.arrival in ("open", "mmpp"):
            # pre-draw every arrival per client, independent of completions
            if spec.batch_size == 1 and self._ff_enabled:
                # every flush is depth 1; take the hoisted/inlined driver
                times, indices = self._open_schedule_sorted(flushes)
                self._run_open_depth1_ff(times, indices)
            else:
                events = self._open_schedule(flushes)
                flushed: Dict[int, int] = {s.index: 0 for s in self.clients}
                for at, _, index in events:
                    state = self._client_by_id[index]
                    self._advance_clock_to(at)
                    count = flush_size(flushed[index])
                    flushed[index] += 1
                    self._one_flush(state, count, scheduled_at=at)
        else:
            # closed loop: the next event is drawn after each completion
            events: List[Tuple[float, int, int]] = []
            tiebreak = 0
            base_us = self._now_us()
            think = {s.index: self._think_source(s) for s in self.clients}
            for state in self.clients:
                first = base_us + think[state.index]()
                heapq.heappush(events, (first, tiebreak, state.index))
                tiebreak += 1
            flushed = {s.index: 0 for s in self.clients}
            while events:
                at, _, index = heapq.heappop(events)
                state = self._client_by_id[index]
                self._advance_clock_to(at)
                count = flush_size(flushed[index])
                flushed[index] += 1
                self._one_flush(state, count)
                if state.calls_issued < spec.calls_per_client:
                    next_at = self._now_us() + think[state.index]()
                    heapq.heappush(events, (next_at, tiebreak, state.index))
                    tiebreak += 1

        # settle every open fast-forward window before reading the clock
        self._ff_flush()
        if self.tracer.enabled:
            # a clean run leaves no open spans; force-close (and flag) any
            # stragglers so the recorder's view is complete
            self.tracer.drain()
        interval = self.machine.clock.since(start_mark)
        # array-to-array extends are raw memcpys — no 10^7-object churn
        latencies = array("d")
        delays = array("d")
        for state in self.clients:
            latencies.extend(state.latencies_us)
            delays.extend(state.queue_delays_us)
        total_calls = sum(s.calls_issued for s in self.clients)
        return TrafficResult(
            spec=spec,
            total_calls=total_calls,
            denied_calls=sum(s.calls_denied for s in self.clients),
            elapsed_us=interval.microseconds(self.machine.spec.mhz),
            total_cycles=interval.cycles,
            cycles_per_call=(interval.cycles / total_calls
                             if total_calls else 0.0),
            per_client_mean_us=[
                sum(s.latencies_us) / len(s.latencies_us)
                if s.latencies_us else 0.0
                for s in self.clients],
            latencies_us=latencies,
            queue_delays_us=delays,
            cache_stats=self.extension.decision_cache.snapshot(),
            shard_sizes=self.extension.sessions.shard_sizes(),
            session_count=len(self.extension.sessions),
            handle_count=self.extension.sessions.handle_count(),
            broker_stats=self.extension.broker.snapshot(),
            metrics=(self.telemetry.snapshot()
                     if self.telemetry.enabled else {}),
            adaptive=({"per_client": [self._controllers[s.index].snapshot()
                                      for s in self.clients]}
                      if self._controllers else {}),
            seat_fairness=(self.extension.broker.seat_delay_report()
                           if self.telemetry.enabled else {}),
            trace_spans=(self.tracer.spans()
                         if self.tracer.enabled else []),
            trace_stats=(self.tracer.stats()
                         if self.tracer.enabled else {}),
        )

    # ---------------------------------------------------------------- teardown
    def teardown(self) -> None:
        """Tear down every client's sessions (kills all handles)."""
        for state in self.clients:
            self.extension.sessions.teardown_all_for_client(
                state.program.proc)


def run_traffic(spec: Optional[TrafficSpec] = None, *,
                dispatch_config: Optional[DispatchConfig] = None,
                teardown: bool = False) -> TrafficResult:
    """Convenience one-shot: build, run and (optionally) tear down."""
    engine = TrafficEngine(spec or TrafficSpec(),
                           dispatch_config=dispatch_config)
    result = engine.run()
    if teardown:
        engine.teardown()
    return result
