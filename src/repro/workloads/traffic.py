"""Multi-client traffic workloads: N clients × M modules under load.

The paper measures one client hammering one session; this workload layer
builds the multi-principal traffic the LSM-overhead literature argues is
the only setting where access-control cost is meaningful.  It drives many
concurrent clients — each holding one SecModule session *per module* via
the multi-session table — through a deterministic, seeded mix of protected
calls:

* ``test_incr`` — the paper's x+1 payload (the bulk of the traffic);
* ``getpid``    — the session-state fast path (SMOD-getpid);
* ``test_null`` — *denied* by the modules' function-denylist clause, so a
  configurable slice of the traffic exercises the EACCES unwind path.

Arrival is **closed-loop** (each client issues its next call after an
exponential think time following the previous completion), **open-loop**
(each client's arrivals are a pre-drawn Poisson process, independent of
completions), or **mmpp** (open-loop with bursty two-state Markov-modulated
interarrivals: short-interval ON bursts separated by long OFF lulls).  All
randomness comes from per-client child streams of one
:class:`~repro.sim.rng.DeterministicRNG`, so a given seed replays the exact
same interleaving, call mix and cycle totals.

Clients may also *batch*: with ``batch_size > 1`` each arrival event
flushes a queue of protected calls against one session through the batched
dispatch path, paying the trap and the two context switches once per queue.

Closed-loop think times are exponential by default but may be heavy-tailed
(``think="lognormal"``/``"pareto"``, same mean, fatter tail), and the
``handle_policy`` knob registers a broker pool policy for every traffic
module — ``"per_module"`` runs all of a module's sessions through one
shared handle co-process instead of forking one per session.

Two observation/control knobs ride on top: ``telemetry=True`` attaches the
telemetry plane (per-session latency histograms, batch-flush depths,
cache and per-seat queueing-delay counters — pure observation, cycle
totals unchanged) and ``adaptive_batch=True`` hands the flush depth to the
per-client AIMD controller in :mod:`repro.control.adaptive`, which grows
and shrinks the queue from the observed interarrival EWMA.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..control.adaptive import AdaptiveBatchController, AdaptiveConfig
from ..errors import SimulationError
from ..hw.machine import Machine, make_paper_machine
from ..kernel.kernel import Kernel
from ..obj.image import make_function_image
from ..secmodule.dispatch import DispatchConfig
from ..secmodule.handle_pool import HandlePolicy
from ..secmodule.module import CallEnvironment, SecModuleDefinition
from ..secmodule.policy import (
    CallQuotaPolicy,
    CompositePolicy,
    CredentialExpiryPolicy,
    FunctionDenyPolicy,
    Policy,
    PrincipalAllowPolicy,
    UidAllowPolicy,
)
from ..secmodule.protection import ProtectionMode
from ..secmodule.session import SessionDescriptor, build_requirements
from ..secmodule.smod_syscalls import SmodExtension, install_secmodule
from ..sim import costs
from ..sim.rng import DeterministicRNG, TwoStateMMPP
from ..sim.stats import mean, percentile
from ..telemetry import NULL_TELEMETRY, Telemetry, make_telemetry
from ..userland.process import Program

#: call-mix weights: (function name, relative weight)
DEFAULT_CALL_MIX: Tuple[Tuple[str, float], ...] = (
    ("test_incr", 0.70),
    ("getpid", 0.20),
    ("test_null", 0.10),          # denied by the function-denylist clause
)


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of one multi-client traffic run."""

    clients: int = 8
    modules: int = 2
    calls_per_client: int = 32
    #: "closed" (think-time loop), "open" (Poisson arrivals) or "mmpp"
    #: (open-loop with bursty two-state on/off interarrivals)
    arrival: str = "closed"
    #: mean think / inter-arrival time, virtual microseconds (the OFF-state
    #: interarrival mean under "mmpp")
    mean_interval_us: float = 25.0
    #: "mmpp" only: ON-state (burst) interarrival mean and the mean sojourn
    #: in each state, all in virtual microseconds
    burst_interval_us: float = 4.0
    burst_on_us: float = 120.0
    burst_off_us: float = 480.0
    #: closed-loop think-time distribution: "exponential" (the classic
    #: M/M/1-style loop), "lognormal" or "pareto" (heavy-tailed think times;
    #: same mean, fatter tail).  Open-loop/mmpp schedules ignore this.
    think: str = "exponential"
    #: lognormal think: sigma of the underlying normal (tail weight)
    think_sigma: float = 1.0
    #: pareto think: tail index (must exceed 1 for a finite mean)
    think_alpha: float = 2.5
    #: calls queued per flush: 1 issues every call through the paper's
    #: single-call path; >1 flushes queues through sys_smod_call_batch
    batch_size: int = 1
    #: let the AIMD controller grow/shrink the flush depth per client from
    #: the observed interarrival EWMA (open-loop/mmpp arrivals only; the
    #: static batch_size knob must stay at 1)
    adaptive_batch: bool = False
    #: controller depth ceiling when adaptive_batch is on; a ceiling of 1
    #: pins every flush to the paper's single-call path (the AIMD floor)
    adaptive_max_depth: int = 64
    #: collect telemetry (per-session latency histograms, batch-flush
    #: depths, cache and per-seat queueing-delay counters) into the run's
    #: ``metrics`` snapshot; recording never charges the virtual clock, so
    #: cycle totals are identical with this on or off
    telemetry: bool = False
    #: handle attachment policy registered for every traffic module:
    #: "per_session" (the paper's 1:1 fork), "per_module" (one shared
    #: handle per module) or "pooled" (shared up to pool_max_sessions)
    handle_policy: str = "per_session"
    #: per-handle session cap when handle_policy="pooled"
    pool_max_sessions: int = 8
    #: one session per module per client (the multi-session engine); when
    #: False each client opens a single session naming every module
    multi_session: bool = True
    #: charge the per-shard lock-acquisition micro-op on session-table
    #: touches (the SMP build of the kernel; the paper's uniprocessor
    #: figures compile it out)
    smp_shard_locks: bool = True
    #: policy chain attached to every traffic module: "static" (cacheable),
    #: "quota", "expiry", or "deny-only"
    policy_kind: str = "static"
    #: quota for policy_kind="quota"
    quota_calls: int = 1 << 30
    call_mix: Tuple[Tuple[str, float], ...] = DEFAULT_CALL_MIX
    uid: int = 1000
    principal: str = "alice"
    seed: int = 0xB07_7E57

    def __post_init__(self) -> None:
        if self.clients < 1 or self.modules < 1 or self.calls_per_client < 1:
            raise SimulationError("traffic spec must be positive in all dims")
        if self.arrival not in ("closed", "open", "mmpp"):
            raise SimulationError(f"unknown arrival mode {self.arrival!r}")
        if self.think not in ("exponential", "lognormal", "pareto"):
            raise SimulationError(f"unknown think-time model {self.think!r}")
        if self.think == "pareto" and self.think_alpha <= 1.0:
            raise SimulationError("pareto think times need think_alpha > 1")
        if self.batch_size < 1:
            raise SimulationError("batch_size must be at least 1")
        if self.adaptive_batch:
            if self.arrival not in ("open", "mmpp"):
                raise SimulationError(
                    "adaptive batching needs open-loop arrivals "
                    "(arrival='open' or 'mmpp'): the controller tracks the "
                    "offered interarrival rate")
            if self.batch_size != 1:
                raise SimulationError(
                    "adaptive_batch replaces the static batch_size knob; "
                    "leave batch_size at 1")
            if self.adaptive_max_depth < 1:
                raise SimulationError("adaptive_max_depth must be >= 1")
        # raises on an unknown policy spec
        self.broker_policy()

    def broker_policy(self) -> HandlePolicy:
        """The :class:`HandlePolicy` traffic modules register with the broker."""
        return HandlePolicy.parse(self.handle_policy,
                                  max_sessions=self.pool_max_sessions)


def traffic_policy(spec: TrafficSpec) -> Policy:
    """The per-module policy chain for a traffic run.

    The "static" chain is three cacheable clauses — uid allow-list,
    principal allow-list, function denylist — the shape of a typical
    production ACL.  "quota" and "expiry" append a dynamic clause, which
    disqualifies the whole chain from the decision cache.
    """
    static_clauses: List[Policy] = [
        UidAllowPolicy([spec.uid]),
        PrincipalAllowPolicy([spec.principal]),
        FunctionDenyPolicy(["test_null"]),
    ]
    if spec.policy_kind == "static":
        return CompositePolicy(static_clauses)
    if spec.policy_kind == "quota":
        return CompositePolicy(static_clauses +
                               [CallQuotaPolicy(spec.quota_calls)])
    if spec.policy_kind == "expiry":
        return CompositePolicy(static_clauses + [CredentialExpiryPolicy()])
    if spec.policy_kind == "deny-only":
        return FunctionDenyPolicy(["test_null"])
    raise SimulationError(f"unknown policy kind {spec.policy_kind!r}")


def _impl_incr(env: CallEnvironment, x: int) -> int:
    return x + 1


def _impl_null(env: CallEnvironment) -> int:
    return 0


def _impl_getpid(env: CallEnvironment) -> int:
    return env.client_pid


def build_traffic_module(index: int, *, policy: Policy,
                         version: int = 1) -> SecModuleDefinition:
    """One of the M protected modules the traffic fans out over."""
    module = SecModuleDefinition(f"libtraffic{index}", version, policy=policy)
    module.add_function("test_incr", _impl_incr,
                        cost_op=costs.FUNC_BODY_TESTINCR, arg_words=1,
                        doc="the paper's x+1 payload")
    module.add_function("getpid", _impl_getpid,
                        cost_op=costs.FUNC_BODY_SMOD_GETPID, arg_words=0,
                        doc="client pid from session state")
    module.add_function("test_null", _impl_null,
                        cost_op=costs.FUNC_BODY_TESTINCR, arg_words=0,
                        doc="always denied by the traffic policy")
    module.library_image = make_function_image(
        f"libtraffic{index}.so",
        {"test_incr": 48, "getpid": 32, "test_null": 32}, kind="shared")
    return module


@dataclass
class ClientState:
    """One traffic client: its program, sessions and latency record."""

    index: int
    program: Program
    #: m_id -> session (multi-session) or the single shared session
    sessions: Dict[int, object] = field(default_factory=dict)
    rng: Optional[DeterministicRNG] = None
    calls_issued: int = 0
    calls_denied: int = 0
    #: per-call service latency, microseconds of virtual time
    latencies_us: List[float] = field(default_factory=list)
    #: per-call queueing delay (open loop: start - scheduled arrival)
    queue_delays_us: List[float] = field(default_factory=list)

    def pick_session(self, m_id: int):
        return self.sessions[m_id]


@dataclass
class TrafficResult:
    """Outcome of one traffic run (all times in virtual microseconds)."""

    spec: TrafficSpec
    total_calls: int
    denied_calls: int
    elapsed_us: float
    total_cycles: int
    cycles_per_call: float
    per_client_mean_us: List[float]
    latencies_us: List[float]
    #: open-loop only: per-call (start - scheduled arrival); empty otherwise
    queue_delays_us: List[float]
    cache_stats: Dict[str, int]
    shard_sizes: List[int]
    session_count: int
    #: live handle co-processes at the end of the run (per_session: one per
    #: session; pooled/per_module: ceil(sessions / seats) per module set)
    handle_count: int = 0
    broker_stats: Dict[str, int] = field(default_factory=dict)
    #: telemetry snapshot (``TrafficSpec(telemetry=True)`` runs only)
    metrics: Dict[str, object] = field(default_factory=dict)
    #: adaptive-controller snapshots, one per client (adaptive runs only)
    adaptive: Dict[str, object] = field(default_factory=dict)
    #: the broker's per-handle queueing-delay fairness report (telemetry
    #: runs with open-loop arrivals; empty otherwise)
    seat_fairness: Dict[int, Dict[str, object]] = field(default_factory=dict)

    @property
    def mean_service_us(self) -> float:
        """Mean per-call service latency (dispatch only, no idle time)."""
        return mean(self.latencies_us)

    def tail_mean_service_us(self, fraction: float = 0.5) -> float:
        """Mean service latency over the last ``fraction`` of each run.

        ``latencies_us`` is chronological per client, so for a one-client
        run this is the converged-state cost after a controller's ramp-up;
        multi-client runs get the per-client tails concatenated.
        """
        if not 0.0 < fraction <= 1.0:
            raise SimulationError("tail fraction must be in (0, 1]")
        per_client = self.spec.calls_per_client
        tail: List[float] = []
        for start in range(0, len(self.latencies_us), per_client):
            chunk = self.latencies_us[start:start + per_client]
            keep = max(1, int(len(chunk) * fraction))
            tail.extend(chunk[len(chunk) - keep:])
        return mean(tail)

    @property
    def calls_per_second(self) -> float:
        """Aggregate throughput in (virtual) calls per second."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.total_calls / (self.elapsed_us / 1e6)

    def latency_percentile(self, p: float) -> float:
        return percentile(self.latencies_us, p)

    def queue_delay_percentile(self, p: float) -> float:
        return percentile(self.queue_delays_us, p)

    def describe(self) -> str:
        text = (f"{self.spec.clients} clients x {self.spec.modules} modules, "
                f"{self.total_calls} calls ({self.denied_calls} denied), "
                f"{self.calls_per_second:,.0f} calls/s, "
                f"p50={self.latency_percentile(50):.2f}us "
                f"p95={self.latency_percentile(95):.2f}us "
                f"p99={self.latency_percentile(99):.2f}us")
        if self.queue_delays_us:
            text += f" queue-p99={self.queue_delay_percentile(99):.2f}us"
        return text


class TrafficEngine:
    """Builds the system and drives one deterministic traffic run."""

    def __init__(self, spec: TrafficSpec, *,
                 machine: Optional[Machine] = None,
                 dispatch_config: Optional[DispatchConfig] = None) -> None:
        self.spec = spec
        self.config = dispatch_config or DispatchConfig()
        if spec.batch_size != 1:
            # the workload knob wins: clients flush queues of this depth
            self.config = replace(self.config, batch_size=spec.batch_size)
        self.machine = machine or make_paper_machine(seed=spec.seed)
        self.kernel = Kernel(machine=self.machine).boot()
        self.extension: SmodExtension = install_secmodule(self.kernel)
        self.extension.sessions.charge_shard_locks = spec.smp_shard_locks
        self.telemetry: Telemetry = NULL_TELEMETRY
        if spec.telemetry:
            self.telemetry = self.extension.enable_telemetry(make_telemetry(True))
        self.rng = DeterministicRNG(spec.seed)
        self.modules: List = []
        self.clients: List[ClientState] = []
        self._controllers: Dict[int, AdaptiveBatchController] = {}
        self._built = False
        self._mix_names = [name for name, _ in spec.call_mix]
        self._mix_weights = [weight for _, weight in spec.call_mix]

    # ------------------------------------------------------------------- build
    def build(self) -> "TrafficEngine":
        """Register the M modules and establish every client's sessions."""
        if self._built:
            return self
        spec = self.spec
        policy = traffic_policy(spec)
        broker_policy = spec.broker_policy()
        for index in range(spec.modules):
            definition = build_traffic_module(index, policy=policy)
            registered = self.extension.registry.register(
                definition, uid=0, protection=ProtectionMode.ENCRYPT)
            self.modules.append(registered)
            # the module owner registers how its handles may be shared
            self.extension.broker.register_policy(registered.name,
                                                  broker_policy)

        for c in range(spec.clients):
            program = Program.spawn(self.kernel, f"traffic-client{c}",
                                    uid=spec.uid)
            state = ClientState(index=c, program=program,
                                rng=self.rng.child(f"client:{c}"))
            if spec.multi_session:
                # one session per module: N x M entries in the sharded table
                for registered in self.modules:
                    session = self._start_session(program, [registered],
                                                  allow_multiple=True)
                    state.sessions[registered.m_id] = session
            else:
                session = self._start_session(program, self.modules,
                                              allow_multiple=False)
                for registered in self.modules:
                    state.sessions[registered.m_id] = session
            self.clients.append(state)
        self._built = True
        return self

    def _start_session(self, program: Program, registered_modules,
                       *, allow_multiple: bool):
        descriptor = SessionDescriptor(
            build_requirements(registered_modules,
                               principal=self.spec.principal,
                               uid=self.spec.uid),
            allow_multiple=allow_multiple)
        session_id = program.smod_crt0_startup(self.extension, descriptor)
        return self.extension.sessions.get(session_id)

    # --------------------------------------------------------------------- run
    def _advance_clock_to(self, target_us: float) -> None:
        """Idle the machine forward to a scheduled arrival time."""
        now_us = self.machine.microseconds()
        if target_us > now_us:
            idle_cycles = int(round((target_us - now_us) *
                                    self.machine.spec.mhz))
            # routed through the meter (never clock.advance directly): the
            # CostMeter is the single charging authority — CLOCK001
            self.machine.idle(idle_cycles)

    def _draw_call(self, state: ClientState, offset: int) -> Tuple[str, Tuple]:
        function_name = state.rng.weighted_choice(self._mix_names,
                                                  self._mix_weights)
        args = ((state.calls_issued + offset,)
                if function_name == "test_incr" else ())
        return function_name, args

    def _dispatch_queue(self, state: ClientState, session,
                        queue: List[Tuple[str, Tuple]]) -> None:
        """Dispatch one client queue against one session and record it.

        A queue of one goes through the ordinary single-call path (so a
        depth-1 flush is the paper's per-call dispatch, cycle for cycle);
        longer queues flush through the batched path in one chunk.
        """
        count = len(queue)
        mark = self.machine.clock.checkpoint()
        if count == 1:
            name, args = queue[0]
            outcome = self.extension.dispatcher.call(
                session, name, *args, config=self.config)
            denied = 0 if outcome.ok else 1
        else:
            config = (self.config if self.config.batch_size >= count
                      else replace(self.config, batch_size=count))
            batch = self.extension.dispatcher.call_batch(
                session, queue, config=config)
            denied = batch.denied
        service_us = self.machine.clock.since(mark).microseconds(
            self.machine.spec.mhz)
        state.calls_issued += count
        state.latencies_us.extend([service_us / count] * count)
        state.calls_denied += denied

    def _one_flush(self, state: ClientState, count: int, *,
                   scheduled_at: Optional[float] = None) -> None:
        """One arrival event: ``count`` calls against one session.

        A queue targets a single module/session — a super-frame lives on
        exactly one shared stack.  Open-loop callers pass the event's
        scheduled time so the queueing delay (start minus schedule) is
        recorded per call and fed to the broker's per-seat histograms.
        """
        registered = self.modules[state.rng.integer(0, len(self.modules) - 1)]
        session = state.pick_session(registered.m_id)
        if scheduled_at is not None:
            delay = max(0.0, self.machine.microseconds() - scheduled_at)
            state.queue_delays_us.extend([delay] * count)
            for _ in range(count):
                self.extension.broker.record_queue_delay(session, delay)
        queue = [self._draw_call(state, offset) for offset in range(count)]
        self._dispatch_queue(state, session, queue)

    def _think_source(self, state: ClientState):
        """Per-client closed-loop think-time draw (``TrafficSpec.think``).

        The exponential default reproduces the original engine draw for
        draw; lognormal/pareto keep the same mean think time but add the
        heavy tail, so a seed change is the only way totals move.
        """
        spec = self.spec
        if spec.think == "lognormal":
            return lambda: state.rng.lognormal(spec.mean_interval_us,
                                               spec.think_sigma)
        if spec.think == "pareto":
            return lambda: state.rng.pareto(spec.mean_interval_us,
                                            spec.think_alpha)
        return lambda: state.rng.exponential(spec.mean_interval_us)

    def _interarrival_source(self, state: ClientState):
        """Per-client interarrival draw for the pre-drawn (open) schedules."""
        spec = self.spec
        if spec.arrival == "mmpp":
            mmpp = TwoStateMMPP(state.rng,
                                on_interval=spec.burst_interval_us,
                                off_interval=spec.mean_interval_us,
                                on_duration=spec.burst_on_us,
                                off_duration=spec.burst_off_us)
            return mmpp.next_interarrival
        return lambda: state.rng.exponential(spec.mean_interval_us)

    def _open_schedule(self, events_per_client: int
                       ) -> List[Tuple[float, int, int]]:
        """Pre-draw every client's open-loop arrival heap.

        Entries are ``(fire_time_us, tiebreak, client_index)``; the
        tiebreak keeps heap ordering deterministic when two clients share a
        fire time.  Shared by the static open/mmpp path (one event per
        flush) and the adaptive path (one event per call), so the two can
        never diverge on schedule semantics — the depth-1 cycle-identity
        guarantee rests on that.
        """
        events: List[Tuple[float, int, int]] = []
        tiebreak = 0
        base_us = self.machine.microseconds()
        for state in self.clients:
            draw = self._interarrival_source(state)
            at = base_us
            for _ in range(events_per_client):
                at += draw()
                heapq.heappush(events, (at, tiebreak, state.index))
                tiebreak += 1
        return events

    def _run_adaptive(self) -> None:
        """Open-loop arrivals, one call each, flushed by the AIMD controller.

        Each client accumulates arrivals in a pending queue targeting one
        module — chosen when the queue opens, so a depth-1 controller draws
        the exact RNG sequence of the static single-call open loop and
        stays cycle-identical to it.  The queue flushes when it reaches the
        controller's current depth, and lull detection is **gap-based**: an
        arrival gap at or beyond ``linger_us`` drains the queue at that
        next arrival, so a burst's stragglers wait at most one lull (not an
        age-based timer — holding a filling queue is the price of
        amortization, and the recorded queueing delays state it honestly).
        A client's last arrival drains whatever it leaves pending, so tail
        calls are never deferred to another client's schedule.
        """
        spec = self.spec
        events = self._open_schedule(spec.calls_per_client)
        start_us = self.machine.microseconds()
        controllers = {
            state.index: AdaptiveBatchController(
                AdaptiveConfig(max_depth=spec.adaptive_max_depth),
                telemetry=self.telemetry, client=state.index,
                start_us=start_us)
            for state in self.clients}
        pending: Dict[int, List[Tuple[str, Tuple]]] = \
            {state.index: [] for state in self.clients}
        arrivals: Dict[int, List[float]] = \
            {state.index: [] for state in self.clients}
        target: Dict[int, object] = {}

        def flush(index: int) -> None:
            queue = pending[index]
            if not queue:
                return
            state = self.clients[index]
            session = state.pick_session(target[index].m_id)
            now_us = self.machine.microseconds()
            for at in arrivals[index]:
                delay = max(0.0, now_us - at)
                state.queue_delays_us.append(delay)
                self.extension.broker.record_queue_delay(session, delay)
            self._dispatch_queue(state, session, queue)
            controllers[index].on_flush(len(queue),
                                        self.machine.microseconds())
            queue.clear()
            arrivals[index].clear()

        remaining: Dict[int, int] = \
            {state.index: spec.calls_per_client for state in self.clients}
        while events:
            at, _, index = heapq.heappop(events)
            state = self.clients[index]
            self._advance_clock_to(at)
            controller = controllers[index]
            if controller.observe_arrival(at) and pending[index]:
                flush(index)        # lull: the queue will not fill, drain it
            if not pending[index]:
                # a queue targets one module/session for its whole lifetime
                target[index] = self.modules[
                    state.rng.integer(0, len(self.modules) - 1)]
            pending[index].append(self._draw_call(state, len(pending[index])))
            arrivals[index].append(at)
            remaining[index] -= 1
            if len(pending[index]) >= controller.depth or not remaining[index]:
                flush(index)
        for state in self.clients:
            flush(state.index)      # safety net; the last arrival drained it
        self._controllers = controllers

    def run(self) -> TrafficResult:
        """Drive the full call schedule and collect the result."""
        self.build()
        spec = self.spec
        start_mark = self.machine.clock.checkpoint()

        # static paths: each arrival event flushes up to batch_size calls
        flushes = math.ceil(spec.calls_per_client / spec.batch_size)
        last_flush = (spec.calls_per_client -
                      (flushes - 1) * spec.batch_size)

        def flush_size(nth: int) -> int:
            return spec.batch_size if nth < flushes - 1 else last_flush

        if spec.adaptive_batch:
            self._run_adaptive()
        elif spec.arrival in ("open", "mmpp"):
            # pre-draw every arrival per client, independent of completions
            events = self._open_schedule(flushes)
            flushed: Dict[int, int] = {s.index: 0 for s in self.clients}
            while events:
                at, _, index = heapq.heappop(events)
                state = self.clients[index]
                self._advance_clock_to(at)
                count = flush_size(flushed[index])
                flushed[index] += 1
                self._one_flush(state, count, scheduled_at=at)
        else:
            # closed loop: the next event is drawn after each completion
            events: List[Tuple[float, int, int]] = []
            tiebreak = 0
            base_us = self.machine.microseconds()
            think = {s.index: self._think_source(s) for s in self.clients}
            for state in self.clients:
                first = base_us + think[state.index]()
                heapq.heappush(events, (first, tiebreak, state.index))
                tiebreak += 1
            flushed = {s.index: 0 for s in self.clients}
            while events:
                at, _, index = heapq.heappop(events)
                state = self.clients[index]
                self._advance_clock_to(at)
                count = flush_size(flushed[index])
                flushed[index] += 1
                self._one_flush(state, count)
                if state.calls_issued < spec.calls_per_client:
                    next_at = (self.machine.microseconds() +
                               think[state.index]())
                    heapq.heappush(events, (next_at, tiebreak, state.index))
                    tiebreak += 1

        interval = self.machine.clock.since(start_mark)
        latencies = [u for state in self.clients for u in state.latencies_us]
        total_calls = sum(s.calls_issued for s in self.clients)
        return TrafficResult(
            spec=spec,
            total_calls=total_calls,
            denied_calls=sum(s.calls_denied for s in self.clients),
            elapsed_us=interval.microseconds(self.machine.spec.mhz),
            total_cycles=interval.cycles,
            cycles_per_call=(interval.cycles / total_calls
                             if total_calls else 0.0),
            per_client_mean_us=[
                sum(s.latencies_us) / len(s.latencies_us)
                if s.latencies_us else 0.0
                for s in self.clients],
            latencies_us=latencies,
            queue_delays_us=[d for state in self.clients
                             for d in state.queue_delays_us],
            cache_stats=self.extension.decision_cache.snapshot(),
            shard_sizes=self.extension.sessions.shard_sizes(),
            session_count=len(self.extension.sessions),
            handle_count=self.extension.sessions.handle_count(),
            broker_stats=self.extension.broker.snapshot(),
            metrics=(self.telemetry.snapshot()
                     if self.telemetry.enabled else {}),
            adaptive=({"per_client": [self._controllers[s.index].snapshot()
                                      for s in self.clients]}
                      if self._controllers else {}),
            seat_fairness=(self.extension.broker.seat_delay_report()
                           if self.telemetry.enabled else {}),
        )

    # ---------------------------------------------------------------- teardown
    def teardown(self) -> None:
        """Tear down every client's sessions (kills all handles)."""
        for state in self.clients:
            self.extension.sessions.teardown_all_for_client(
                state.program.proc)


def run_traffic(spec: Optional[TrafficSpec] = None, *,
                dispatch_config: Optional[DispatchConfig] = None,
                teardown: bool = False) -> TrafficResult:
    """Convenience one-shot: build, run and (optionally) tear down."""
    engine = TrafficEngine(spec or TrafficSpec(),
                           dispatch_config=dispatch_config)
    result = engine.run()
    if teardown:
        engine.teardown()
    return result
