"""Benchmark workload drivers (Figure 8 rows, policy sweeps, ...)."""

from .microbench import (
    BenchmarkSpec,
    DEFAULT_SAMPLE_CALLS,
    PAPER_SPECS,
    run_native_getpid,
    run_rpc_testincr,
    run_smod_function,
    run_smod_getpid,
    run_smod_testincr,
)
from .policies import (
    DEFAULT_CHAIN_LENGTHS,
    PolicySweepPoint,
    PolicySweepResult,
    deep_delegation_engine,
    run_keynote_policy,
    run_policy_chain_sweep,
)

__all__ = [
    "BenchmarkSpec", "DEFAULT_SAMPLE_CALLS", "PAPER_SPECS",
    "run_native_getpid", "run_rpc_testincr", "run_smod_function",
    "run_smod_getpid", "run_smod_testincr",
    "DEFAULT_CHAIN_LENGTHS", "PolicySweepPoint", "PolicySweepResult",
    "deep_delegation_engine", "run_keynote_policy", "run_policy_chain_sweep",
]
