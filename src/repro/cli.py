"""Command-line interface: ``repro`` (alias ``secmodule-bench``).

Regenerates the paper's tables and figures (and the ablations) from the
command line::

    repro list                    # show available experiments
    repro fig8                    # the Figure 8 latency table
    repro fig8 --trials 3         # faster, fewer trials
    repro all -o report.txt       # everything, written to a file
    repro describe                # one-page tour of a live system
    repro bench throughput --clients 32   # multi-client traffic engine
    repro bench pool --sessions 64        # handle pooling sweep (abl-pool)
    repro bench adaptive                  # AIMD batch controller (abl-adaptive)
    repro stats                   # pretty-print metrics (BENCH_*.json or live)

Experiment and bench commands also write a machine-readable
``BENCH_<experiment id>.json`` into the working directory (suppress with
``--no-export``); ``repro stats`` reads those files back.
"""

from __future__ import annotations

import argparse
import glob
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from .bench.adaptive import DEFAULT_DEPTHS, run_adaptive_bench
from .bench.batch import DEFAULT_CALLS, DEFAULT_SIZES, run_batch_sweep
from .bench.diff import BenchDiffError, diff_files
from .bench.figure8 import reproduce_figure8
from .bench.harness import (
    EXPERIMENTS,
    experiment_payload,
    export_payload,
    full_report,
    run_all,
    run_experiment,
)
from .bench.overload import (
    DEFAULT_ADMIT_CALLS,
    DEFAULT_RATIOS as OVERLOAD_RATIOS,
    FAST_ADMIT_CALLS,
    FAST_RATIOS as OVERLOAD_FAST_RATIOS,
    DEFAULT_CALLS as OVERLOAD_CALLS,
    FAST_CALLS as OVERLOAD_FAST_CALLS,
    run_overload_sweep,
)
from .bench.pool import (
    DEFAULT_CALLS_PER_SESSION,
    DEFAULT_SEATS,
    DEFAULT_SESSIONS,
    run_pool_sweep,
)
from .bench.serve import (
    DEFAULT_SESSIONS as SERVE_SESSIONS,
    DEFAULT_SESSIONS_PER_CLIENT,
    DEFAULT_TENANTS,
    FAST_SESSIONS,
    run_serve_sweep,
)
from .bench.simspeed import DEFAULT_CALLS as SIMSPEED_CALLS, run_simspeed
from .bench.throughput import run_throughput
from .secmodule.api import SecModuleSystem
from .telemetry import render_snapshot
from .workloads.traffic import TrafficSpec, run_traffic


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="secmodule-bench",
        description="Regenerate the SecModule paper's tables, figures and ablations.")
    parser.add_argument("-o", "--output", help="write the report to this file")
    parser.add_argument("--no-export", action="store_true",
                        help="skip writing BENCH_<id>.json next to the report")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")
    subparsers.add_parser("describe",
                          help="build a SecModule system and describe it")
    all_parser = subparsers.add_parser("all", help="run every experiment")
    all_parser.add_argument("--only", nargs="*", default=None,
                            help="restrict to these experiment ids")

    fig8_parser = subparsers.add_parser("fig8", help="the Figure 8 table")
    fig8_parser.add_argument("--trials", type=int, default=None)
    fig8_parser.add_argument("--sample-calls", type=int, default=None)
    fig8_parser.add_argument("--seed", type=int, default=42)

    bench_parser = subparsers.add_parser(
        "bench", help="workload benchmarks (beyond the paper's figures)")
    bench_sub = bench_parser.add_subparsers(dest="bench_command")
    tp = bench_sub.add_parser(
        "throughput", help="multi-client traffic engine + decision cache")
    tp.add_argument("--clients", type=int, default=32,
                    help="number of concurrent clients")
    tp.add_argument("--modules", type=int, default=2,
                    help="number of protected modules")
    tp.add_argument("--sample-calls", type=int, default=24,
                    help="calls issued per client")
    tp.add_argument("--policy", default="static",
                    choices=["static", "quota", "expiry", "deny-only"],
                    help="policy chain attached to every module")
    tp.add_argument("--seed", type=int, default=0xB07_7E57)
    tp.add_argument("--fast", action="store_true",
                    help="CI smoke: skip the open-loop leg")

    pp = bench_sub.add_parser(
        "pool", help="handle pooling: sessions/handle vs process count")
    pp.add_argument("--seats", default=",".join(map(str, DEFAULT_SEATS)),
                    help="comma-separated seats-per-handle values to sweep")
    pp.add_argument("--sessions", type=int, default=DEFAULT_SESSIONS,
                    help="sessions established per point")
    pp.add_argument("--calls", type=int, default=DEFAULT_CALLS_PER_SESSION,
                    help="protected calls per session in the call phase")
    pp.add_argument("--seed", type=int, default=0x900_1)
    pp.add_argument("--fast", action="store_true",
                    help="CI smoke: fewer seats and sessions")

    vp = bench_sub.add_parser(
        "serve", help="service plane: attach/lookup/pool costs vs "
                      "live-session count (abl-serve)")
    vp.add_argument("--sessions",
                    default=",".join(map(str, SERVE_SESSIONS)),
                    help="comma-separated live-session counts to sweep "
                         "(reaches 10^6: --sessions 1000000)")
    vp.add_argument("--tenants", type=int, default=DEFAULT_TENANTS,
                    help="tenants the sharded session table is split across")
    vp.add_argument("--sessions-per-client", type=int,
                    default=DEFAULT_SESSIONS_PER_CLIENT,
                    help="sessions each surrogate client program holds")
    vp.add_argument("--seed", type=int, default=0x5E21)
    vp.add_argument("--fast", action="store_true",
                    help="CI smoke: two small sweep points")

    bp = bench_sub.add_parser(
        "batch", help="batched dispatch: latency/call vs queue depth")
    bp.add_argument("--sizes", default=",".join(map(str, DEFAULT_SIZES)),
                    help="comma-separated queue depths to sweep")
    bp.add_argument("--calls", type=int, default=DEFAULT_CALLS,
                    help="protected calls measured per point")
    bp.add_argument("--seed", type=int, default=0xBA7C_4)
    bp.add_argument("--fast", action="store_true",
                    help="CI smoke: fewer sizes and calls")

    ap = bench_sub.add_parser(
        "adaptive", help="AIMD batch controller vs static queue depths")
    ap.add_argument("--depths", default=",".join(map(str, DEFAULT_DEPTHS)),
                    help="comma-separated static depths for the baseline sweep")
    ap.add_argument("--calls", type=int, default=None,
                    help="calls in the adaptive steady leg")
    ap.add_argument("--seed", type=int, default=0xADA_57)
    ap.add_argument("--fast", action="store_true",
                    help="CI smoke: fewer depths and calls")

    sp = bench_sub.add_parser(
        "simspeed", help="simulator wall-clock speed: op-by-op vs replay "
                         "vs fast-forward, serial and sharded")
    sp.add_argument("--calls", type=int, default=SIMSPEED_CALLS,
                    help="fast-forward-tier protected calls (10^5 to 10^7; "
                         "slower tiers are capped)")
    sp.add_argument("--clients", type=int, default=4)
    sp.add_argument("--modules", type=int, default=1)
    sp.add_argument("--seed", type=int, default=0x51A_57)
    sp.add_argument("--shards", type=int, default=2,
                    help="independent client groups for the sharded legs "
                         "(1 skips them)")
    sp.add_argument("--workers", type=int, default=2,
                    help="worker processes for the parallel sharded leg "
                         "(merged accounting must match workers=1 exactly)")
    sp.add_argument("--fast", action="store_true",
                    help="CI smoke: a few thousand calls per leg")

    op = bench_sub.add_parser(
        "overload", help="overload protection: goodput/tail-latency knee "
                         "past saturation, shedding off vs on "
                         "(abl-overload)")
    op.add_argument("--ratios",
                    default=",".join(f"{r:g}" for r in OVERLOAD_RATIOS),
                    help="comma-separated offered-load ratios "
                         "(offered rate / pool capacity)")
    op.add_argument("--calls", type=int, default=OVERLOAD_CALLS,
                    help="open-loop arrivals offered per (leg, ratio) point")
    op.add_argument("--admit-calls", type=int, default=DEFAULT_ADMIT_CALLS,
                    help="bound calls offered in the admission-control leg")
    op.add_argument("--seed", type=int, default=0x0AD_10)
    op.add_argument("--fast", action="store_true",
                    help="CI smoke: fewer ratios and calls")

    dp = bench_sub.add_parser(
        "diff", help="regression gate: compare two BENCH_<id>.json exports")
    dp.add_argument("old", nargs="?", default=None,
                    help="baseline export (e.g. benchmarks/baselines/"
                         "BENCH_fig8.json)")
    dp.add_argument("new", nargs="?", default=None,
                    help="freshly generated export to check")
    dp.add_argument("--rel-tol", type=float, default=0.0,
                    help="relative tolerance before a cycle increase fails "
                         "(default 0: byte-exact)")
    dp.add_argument("--update", action="store_true",
                    help="regenerate every committed baseline under "
                         "benchmarks/baselines/ from its recorded params "
                         "and git-add the results (use when a cost change "
                         "is intentional)")
    dp.add_argument("--baselines-dir", default="benchmarks/baselines",
                    help="baseline directory for --update")

    an = subparsers.add_parser(
        "analyze", help="simulator-invariant static analysis "
                        "(determinism, cost, clock, telemetry, epoch lints)")
    an.add_argument("--format", choices=["human", "json"], default="human",
                    help="findings as human-readable lines or one JSON blob")
    an.add_argument("--root", default=None,
                    help="directory tree to scan "
                         "(default: the installed repro package)")
    an.add_argument("--rules", default=None,
                    help="comma-separated rule ids or family prefixes to "
                         "run (e.g. DET,COST001); default: all")
    an.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")

    sv = subparsers.add_parser(
        "serve", help="service-plane surfaces (status snapshot)")
    sv_sub = sv.add_subparsers(dest="serve_command")
    ss = sv_sub.add_parser(
        "status", help="boot a demo service plane and print its telemetry "
                       "snapshot: live sessions per tenant, pool occupancy, "
                       "broker health")
    ss.add_argument("--json", action="store_true",
                    help="emit the raw status dict as JSON")
    ss.add_argument("--clients", type=int, default=6,
                    help="demo clients attached through the front-end")
    ss.add_argument("--tenants", type=int, default=3,
                    help="tenants the demo clients are spread across")
    ss.add_argument("--calls", type=int, default=24,
                    help="pooled calls driven before the snapshot")
    ss.add_argument("--seed", type=int, default=0x5E21)

    tr = subparsers.add_parser(
        "trace", help="virtual-time causal tracing: run a traced workload, "
                      "print the critical-path breakdown, export to Perfetto")
    tr_sub = tr.add_subparsers(dest="trace_command")
    trr = tr_sub.add_parser(
        "run", help="drive a traced workload and print flight-recorder "
                    "stats (a via-service MMPP run by default)")
    trp = tr_sub.add_parser(
        "report", help="per-request critical-path breakdown: service vs "
                       "queue vs resolve vs switch, p50/p95 per segment")
    tre = tr_sub.add_parser(
        "export", help="write the recorded spans as Chrome trace-event "
                       "JSON (load at https://ui.perfetto.dev)")
    for trace_parser in (trr, trp, tre):
        trace_parser.add_argument("--clients", type=int, default=8)
        trace_parser.add_argument("--modules", type=int, default=2)
        trace_parser.add_argument("--sample-calls", type=int, default=64,
                                  help="calls issued per client")
        trace_parser.add_argument("--arrival", default="mmpp",
                                  choices=["closed", "open", "mmpp"])
        trace_parser.add_argument("--direct", action="store_true",
                                  help="trace the direct dispatch path "
                                       "instead of the service plane")
        trace_parser.add_argument("--sample-every", type=int, default=1,
                                  help="deterministic head sampling: keep "
                                       "spans for 1 in K clients")
        trace_parser.add_argument("--capacity", type=int, default=0,
                                  help="flight-recorder span capacity "
                                       "(0: tracer default)")
        trace_parser.add_argument("--seed", type=int, default=0xB07_7E57)
        trace_parser.add_argument("--fast", action="store_true",
                                  help="CI smoke: tiny run")
    tre.add_argument("--out", default="TRACE_smod.json",
                     help="output path for the Chrome trace-event JSON")

    st = subparsers.add_parser(
        "stats", help="pretty-print metrics snapshots "
                      "(from BENCH_*.json files, or a live traffic run)")
    st.add_argument("paths", nargs="*",
                    help="BENCH_*.json files to summarize "
                         "(default: every BENCH_*.json in the working "
                         "directory; a live run when none exist)")
    st.add_argument("--live", action="store_true",
                    help="run a small telemetry-enabled traffic workload "
                         "and print its metrics snapshot")
    st.add_argument("--clients", type=int, default=4)
    st.add_argument("--sample-calls", type=int, default=8)
    st.add_argument("--seed", type=int, default=0xB07_7E57)

    for experiment_id in EXPERIMENTS:
        if experiment_id == "fig8":
            continue
        subparsers.add_parser(experiment_id,
                              help=EXPERIMENTS[experiment_id].title)
    return parser


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as stream:
            stream.write(text + "\n")
        print(f"wrote {output}")
    else:
        print(text)


#: bench subcommand -> the experiment id its JSON export is filed under
_BENCH_EXPERIMENT_IDS = {
    "throughput": "abl-throughput",
    "batch": "abl-batch",
    "pool": "abl-pool",
    "serve": "abl-serve",
    "adaptive": "abl-adaptive",
    "simspeed": "abl-simspeed",
    "overload": "abl-overload",
}


def _export_bench(bench_command: str, report: object, rendered: str,
                  params: Dict[str, object],
                  wall_seconds: Optional[float] = None) -> str:
    """Write a bench subcommand's result as its experiment's BENCH json."""
    experiment_id = _BENCH_EXPERIMENT_IDS[bench_command]
    spec = EXPERIMENTS[experiment_id]
    return export_payload(
        experiment_payload(experiment_id, spec.title, spec.kind,
                           report, rendered, params=params,
                           wall_seconds=wall_seconds))


def _update_baselines(baselines_dir: str) -> List[str]:
    """Regenerate every committed baseline from its recorded params.

    Each ``BENCH_<id>.json`` under ``baselines_dir`` names its experiment
    and the exact parameters it was generated with, so an intentional
    cost-model change becomes one command: rerun each with those params,
    rewrite the file and ``git add`` it for the next commit.
    """
    import subprocess

    paths = sorted(glob.glob(str(Path(baselines_dir) / "BENCH_*.json")))
    if not paths:
        raise BenchDiffError(f"no BENCH_*.json baselines in {baselines_dir}")
    staged: List[str] = []
    for path in paths:
        with open(path, encoding="utf-8") as stream:
            payload = json.load(stream)
        experiment = payload.get("experiment")
        params = payload.get("params") or {}
        started = time.perf_counter()
        if experiment == "fig8":
            report = reproduce_figure8(trials=params.get("trials"),
                                       sample_calls=params.get("sample_calls"),
                                       seed=params.get("seed", 42))
        elif experiment == "abl-batch":
            report = run_batch_sweep(sizes=tuple(params["sizes"]),
                                     calls=params["calls"],
                                     seed=params["seed"])
        elif experiment == "abl-serve":
            report = run_serve_sweep(
                sessions=tuple(params["sessions"]),
                tenants=params["tenants"],
                sessions_per_client=params["sessions_per_client"],
                seed=params["seed"])
        elif experiment == "abl-overload":
            report = run_overload_sweep(
                ratios=tuple(params["ratios"]),
                calls=params["calls"],
                admit_calls=params["admit_calls"],
                seed=params["seed"])
        else:
            raise BenchDiffError(
                f"{path}: no regenerator for experiment {experiment!r} — "
                "teach _update_baselines about it before committing a "
                "baseline for it")
        wall_seconds = time.perf_counter() - started
        spec = EXPERIMENTS[experiment]
        export_payload(
            experiment_payload(experiment, spec.title, spec.kind, report,
                               report.render(), params=params,
                               wall_seconds=wall_seconds),
            baselines_dir)
        staged.append(path)
    result = subprocess.run(["git", "add", "--"] + staged,
                            capture_output=True, text=True)
    if result.returncode != 0:
        print(f"warning: git add failed: {result.stderr.strip()}",
              file=sys.stderr)
    return staged


def _render_payload_value(key: str, value: object, indent: int,
                          lines: List[str]) -> None:
    pad = "  " * indent
    if isinstance(value, dict):
        if {"counters", "gauges", "histograms"} <= set(value.keys()):
            lines.append(f"{pad}{key}:")
            body = render_snapshot(value, title="metrics").splitlines()[2:]
            lines.extend(pad + "  " + line for line in body)
            return
        lines.append(f"{pad}{key}:")
        for sub_key, sub_value in value.items():
            _render_payload_value(str(sub_key), sub_value, indent + 1, lines)
    elif isinstance(value, list):
        if len(value) > 8 or any(isinstance(v, (dict, list)) for v in value):
            lines.append(f"{pad}{key}: [{len(value)} entries]")
        else:
            lines.append(f"{pad}{key}: {value}")
    elif isinstance(value, float):
        lines.append(f"{pad}{key}: {value:.4f}")
    else:
        lines.append(f"{pad}{key}: {value}")


def _render_bench_file(path: str) -> str:
    """Summarize one BENCH_<id>.json for ``repro stats``."""
    with open(path, "r", encoding="utf-8") as stream:
        payload = json.load(stream)
    title = f"{path}: [{payload.get('experiment')}] {payload.get('title')}"
    lines = [title, "-" * len(title)]
    host: List[str] = []
    wall = payload.get("wall_seconds")
    if isinstance(wall, (int, float)):
        host.append(f"wall={wall:.2f}s")
    rate = payload.get("calls_per_wall_second")
    if isinstance(rate, (int, float)) and rate:
        host.append(f"{rate:,.0f} calls/wall-s")
    rss = payload.get("peak_rss_bytes")
    if isinstance(rss, (int, float)) and rss:
        host.append(f"peak-rss={rss / (1 << 20):.1f}MiB")
    if host:
        lines.append("  host: " + "  ".join(host))
    data = payload.get("data")
    if isinstance(data, dict):
        for key, value in data.items():
            _render_payload_value(str(key), value, 1, lines)
    elif data is not None:
        lines.append(f"  data: {data}")
    else:
        lines.append("  (no structured data; see the rendered report)")
    return "\n".join(lines)


def _run_traced(args) -> "TrafficResult":
    """Drive the ``repro trace`` workload: a traced traffic run."""
    clients = args.clients
    calls = args.sample_calls
    if args.fast:
        clients = min(clients, 4)
        calls = min(calls, 16)
    spec = TrafficSpec(clients=clients, modules=args.modules,
                       calls_per_client=calls, arrival=args.arrival,
                       via_service=not args.direct, tracing=True,
                       trace_sample_every=args.sample_every,
                       trace_capacity=args.capacity, seed=args.seed)
    return run_traffic(spec)


def _render_trace_stats(result) -> str:
    """Human-readable ``repro trace run`` summary."""
    stats = result.trace_stats
    spec = result.spec
    path = "via-service" if spec.via_service else "direct"
    lines = [
        f"traced {path} {spec.arrival} run: {result.describe()}",
        f"  flight recorder: {stats.get('recorded', 0)} spans recorded "
        f"({stats.get('dropped', 0)} dropped by the ring, "
        f"{stats.get('sampled_out', 0)} sampled out, "
        f"{stats.get('open', 0)} left open), "
        f"capacity {stats.get('capacity', 0)}, "
        f"head sampling 1-in-{stats.get('sample_every', 1)}",
    ]
    kinds: Dict[str, int] = {}
    for span in result.trace_spans:
        kinds[span.kind] = kinds.get(span.kind, 0) + 1
    if kinds:
        per = ", ".join(f"{kind}: {count}"
                        for kind, count in sorted(kinds.items()))
        lines.append(f"  span kinds: {per}")
    return "\n".join(lines)


def _live_stats(clients: int, sample_calls: int, seed: int) -> str:
    """Run a small telemetry-enabled traffic workload and snapshot it."""
    spec = TrafficSpec(clients=clients, modules=2,
                       calls_per_client=sample_calls, arrival="open",
                       telemetry=True, seed=seed)
    result = run_traffic(spec)
    return render_snapshot(
        result.metrics,
        title=(f"live metrics: {clients} clients x 2 modules, "
               f"{sample_calls} calls/client, open-loop arrivals"))


def _serve_status_demo(clients: int, tenants: int, calls: int,
                       seed: int) -> Dict[str, object]:
    """Boot a small service plane, drive it, and return its status dict."""
    from .control.overload import OverloadConfig
    from .hw.machine import make_paper_machine
    from .kernel.kernel import Kernel
    from .secmodule.libc_conversion import build_test_module
    from .secmodule.protection import ProtectionMode
    from .secmodule.smod_syscalls import install_secmodule
    from .serve.attachment_pool import PoolConfig
    from .serve.frontend import ServiceConfig, ServiceFrontend

    machine = make_paper_machine(seed=seed)
    kernel = Kernel(machine=machine).boot()
    extension = install_secmodule(kernel)
    registered = extension.registry.register(
        build_test_module(), uid=0, protection=ProtectionMode.ENCRYPT)
    # a deliberately small, protected pool: the 1us-spaced demo calls
    # overload it, so the status shows live shed/breaker/retry counters
    frontend = ServiceFrontend(
        kernel, extension,
        config=ServiceConfig(
            pool=PoolConfig(max_attachments=2),
            overload=OverloadConfig(deadline_us=12.0,
                                    breaker_window_us=100.0,
                                    retry_budget=4)))
    record = frontend.register_backend("secmodule", [registered])
    for index in range(max(1, clients)):
        frontend.attach(record, tenant=index % max(1, tenants))
    base_us = machine.meter.profile.microseconds(machine.clock.cycles)
    for index in range(calls):
        frontend.call_pooled(record, "test_incr", index,
                             arrival_us=base_us + index * 1.0)
    return frontend.status()


def _render_serve_status(status: Dict[str, object]) -> str:
    """Human-readable ``repro serve status`` lines."""
    lines = [f"service plane @ {status['now_us']:.1f}us (virtual)",
             f"  live sessions: {status['live_sessions']}  "
             f"bindings: {status['bindings']}  "
             f"attaches: {status['attaches']}  "
             f"detaches: {status['detaches']}"]
    tenants = status.get("sessions_by_tenant") or {}
    if tenants:
        per = ", ".join(f"tenant {tenant}: {count}"
                        for tenant, count in sorted(tenants.items()))
        lines.append(f"  sessions by tenant: {per}")
    lines.append(f"  calls: {status['bound_calls']} bound, "
                 f"{status['pooled_calls']} pooled")
    for name, backend in sorted((status.get("backends") or {}).items()):
        lines.append(
            f"  backend {name}: state={backend.get('state')} "
            f"handles={backend.get('handles')} "
            f"live={backend.get('live_handles')} "
            f"seated={backend.get('seated_sessions')} "
            f"policy={backend.get('policy')}")
    for name, pool in sorted((status.get("pools") or {}).items()):
        lines.append(
            f"  pool {name}: {pool['size']}/{pool['max_attachments']} "
            f"attachments, busy={pool.get('busy', 0)} "
            f"queued={pool.get('queued', 0)}, "
            f"{pool['checkouts']} checkouts "
            f"({pool['waits']} waited, mean {pool['mean_wait_us']:.2f}us, "
            f"max {pool['max_wait_us']:.2f}us; "
            f"{pool['refusals']} refused)")
    overload = status.get("overload") or {}
    if overload:
        sheds = overload.get("pool_sheds") or {}
        lines.append(
            f"  overload: {sum(sheds.values())} pool sheds, "
            f"{overload.get('broker_seat_sheds', 0)} seat sheds, "
            f"{overload.get('dispatcher_calls_shed', 0)} admission "
            f"refusals, {overload.get('down_refusals', 0)} down + "
            f"{overload.get('breaker_refusals', 0)} breaker refusals")
        for name, breaker in sorted((overload.get("breakers") or {}).items()):
            lines.append(
                f"  breaker {name}: state={breaker.get('state')} "
                f"trips={breaker.get('trips')} "
                f"fast-fails={breaker.get('fast_fails')} "
                f"probes={breaker.get('probes')} "
                f"window={breaker.get('window')}")
        for name, budget in sorted(
                (overload.get("retry_budgets") or {}).items()):
            lines.append(
                f"  retry budget {name}: {budget.get('remaining')}/"
                f"{budget.get('budget')} remaining "
                f"({budget.get('consumed')} consumed, "
                f"{budget.get('exhaustions')} exhaustions)")
        admission = overload.get("admission")
        if admission:
            lines.append(
                f"  admission: {admission.get('admitted')} admitted, "
                f"{admission.get('refused')} refused across "
                f"{len(admission.get('clients') or {})} client buckets")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    command = args.command or "list"
    export_dir = None if args.no_export else "."

    if command == "list":
        lines = [f"{experiment_id:<16s} {spec.title}"
                 for experiment_id, spec in EXPERIMENTS.items()]
        _emit("\n".join(lines), args.output)
        return 0

    if command == "describe":
        system = SecModuleSystem.create()
        body = [system.describe(), "",
                f"native getpid()    -> {system.native_getpid()}",
                f"SMOD test_incr(41) -> {system.call('test_incr', 41)}",
                f"SMOD getpid()      -> {system.call('getpid')}"]
        _emit("\n".join(body), args.output)
        return 0

    if command == "all":
        runs = run_all(args.only, export_dir=export_dir)
        _emit(full_report(runs), args.output)
        return 0

    if command == "fig8":
        fig8_started = time.perf_counter()
        table = reproduce_figure8(trials=args.trials,
                                  sample_calls=args.sample_calls,
                                  seed=args.seed)
        wall_seconds = time.perf_counter() - fig8_started
        rendered = table.render()
        if export_dir is not None:
            spec = EXPERIMENTS["fig8"]
            export_payload(
                experiment_payload("fig8", spec.title, spec.kind, table,
                                   rendered,
                                   params={"trials": args.trials,
                                           "sample_calls": args.sample_calls,
                                           "seed": args.seed},
                                   wall_seconds=wall_seconds),
                export_dir)
        _emit(rendered, args.output)
        return 0

    if command == "analyze":
        from .analyze import analyze_tree, iter_rules
        from .analyze.config import default_config
        if args.list_rules:
            lines = [f"{rule:<10s} {description}"
                     for rule, description in iter_rules().items()]
            _emit("\n".join(lines), args.output)
            return 0
        only = tuple(rule.strip()
                     for rule in (args.rules or "").split(",") if rule.strip())
        overrides = {"only_rules": only} if only else {}
        root = Path(args.root).resolve() if args.root else None
        report = analyze_tree(default_config(root, **overrides))
        _emit(report.render_json() if args.format == "json"
              else report.render(), args.output)
        return 0 if report.ok else 1

    if command == "serve":
        if getattr(args, "serve_command", None) != "status":
            parser.error("usage: repro serve status [--json]")
        status = _serve_status_demo(args.clients, args.tenants, args.calls,
                                    args.seed)
        if args.json:
            _emit(json.dumps(status, indent=2, sort_keys=True), args.output)
        else:
            _emit(_render_serve_status(status), args.output)
        return 0

    if command == "trace":
        trace_command = getattr(args, "trace_command", None)
        if trace_command not in ("run", "report", "export"):
            parser.error("usage: repro trace {run,report,export} [options]")
        from .telemetry.trace_export import (
            chrome_trace,
            critical_path_report,
            render_critical_path,
            validate_chrome_trace,
        )
        result = _run_traced(args)
        if trace_command == "run":
            _emit(_render_trace_stats(result), args.output)
            return 0
        if trace_command == "report":
            spec = result.spec
            title = (f"critical-path breakdown: "
                     f"{'via-service' if spec.via_service else 'direct'} "
                     f"{spec.arrival}, {spec.clients} clients x "
                     f"{spec.modules} modules")
            _emit(render_critical_path(critical_path_report(
                result.trace_spans), title=title), args.output)
            return 0
        payload = chrome_trace(result.trace_spans)
        error = validate_chrome_trace(payload)
        if error is not None:
            print(f"trace export error: {error}", file=sys.stderr)
            return 1
        with open(args.out, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=1)
        _emit(f"wrote {args.out} ({len(payload['traceEvents'])} events "
              f"from {len(result.trace_spans)} spans; load it at "
              f"https://ui.perfetto.dev)", args.output)
        return 0

    if command == "stats":
        paths = list(args.paths) or sorted(glob.glob("BENCH_*.json"))
        if args.live or not paths:
            _emit(_live_stats(args.clients, args.sample_calls, args.seed),
                  args.output)
            return 0
        _emit("\n\n".join(_render_bench_file(path) for path in paths),
              args.output)
        return 0

    if command == "bench":
        if args.bench_command == "diff":
            if args.update:
                try:
                    staged = _update_baselines(args.baselines_dir)
                except (BenchDiffError, OSError,
                        json.JSONDecodeError) as exc:
                    print(f"bench diff --update error: {exc}",
                          file=sys.stderr)
                    return 2
                _emit("\n".join(f"regenerated and staged {path}"
                                for path in staged), args.output)
                return 0
            if not args.old or not args.new:
                parser.error("bench diff needs OLD and NEW exports "
                             "(or --update)")
            try:
                diff = diff_files(args.old, args.new, rel_tol=args.rel_tol)
            except (BenchDiffError, OSError, json.JSONDecodeError) as exc:
                print(f"bench diff error: {exc}", file=sys.stderr)
                return 2
            _emit(diff.render(), args.output)
            return 0 if diff.ok else 1
        bench_started = time.perf_counter()
        if args.bench_command == "throughput":
            params = {"clients": args.clients, "modules": args.modules,
                      "calls_per_client": args.sample_calls,
                      "policy_kind": args.policy, "seed": args.seed,
                      "fast": args.fast}
            report = run_throughput(clients=args.clients, modules=args.modules,
                                    calls_per_client=args.sample_calls,
                                    policy_kind=args.policy, seed=args.seed,
                                    fast=args.fast)
        elif args.bench_command == "batch":
            sizes = tuple(int(s) for s in args.sizes.split(",") if s)
            calls = args.calls
            if args.fast:
                # shrink only what the user left at the defaults
                if sizes == DEFAULT_SIZES:
                    sizes = (1, 4, 16)
                calls = min(calls, 48)
            params = {"sizes": sizes, "calls": calls, "seed": args.seed,
                      "fast": args.fast}
            report = run_batch_sweep(sizes=sizes, calls=calls, seed=args.seed)
        elif args.bench_command == "pool":
            seats = tuple(int(s) for s in args.seats.split(",") if s)
            sessions = args.sessions
            if args.fast:
                # shrink only what the user left at the defaults
                if seats == DEFAULT_SEATS:
                    seats = (1, 4, 16)
                sessions = min(sessions, 16)
            params = {"seats": seats, "sessions": sessions,
                      "calls_per_session": args.calls, "seed": args.seed,
                      "fast": args.fast}
            report = run_pool_sweep(seats=seats, sessions=sessions,
                                    calls_per_session=args.calls,
                                    seed=args.seed)
        elif args.bench_command == "serve":
            serve_sessions = tuple(int(s) for s in args.sessions.split(",")
                                   if s)
            if args.fast and serve_sessions == SERVE_SESSIONS:
                # shrink only what the user left at the defaults
                serve_sessions = FAST_SESSIONS
            params = {"sessions": serve_sessions, "tenants": args.tenants,
                      "sessions_per_client": args.sessions_per_client,
                      "seed": args.seed, "fast": args.fast}
            report = run_serve_sweep(
                sessions=serve_sessions, tenants=args.tenants,
                sessions_per_client=args.sessions_per_client,
                seed=args.seed)
        elif args.bench_command == "adaptive":
            depths = tuple(int(s) for s in args.depths.split(",") if s)
            kwargs = {"depths": depths, "seed": args.seed}
            if args.calls is not None:
                kwargs["adaptive_calls"] = args.calls
            if args.fast:
                # shrink only what the user left at the defaults
                if depths == DEFAULT_DEPTHS:
                    kwargs["depths"] = (1, 4, 16)
                kwargs.setdefault("adaptive_calls", 256)
                kwargs.update(static_calls=96, mmpp_calls=256)
            params = dict(kwargs, fast=args.fast)
            report = run_adaptive_bench(**kwargs)
        elif args.bench_command == "simspeed":
            params = {"calls": args.calls, "clients": args.clients,
                      "modules": args.modules, "seed": args.seed,
                      "shards": args.shards, "workers": args.workers,
                      "fast": args.fast}
            report = run_simspeed(calls=args.calls, clients=args.clients,
                                  modules=args.modules, seed=args.seed,
                                  shards=args.shards, workers=args.workers,
                                  fast=args.fast)
        elif args.bench_command == "overload":
            ratios = tuple(float(s) for s in args.ratios.split(",") if s)
            calls = args.calls
            admit_calls = args.admit_calls
            if args.fast:
                # shrink only what the user left at the defaults
                if ratios == OVERLOAD_RATIOS:
                    ratios = OVERLOAD_FAST_RATIOS
                calls = min(calls, OVERLOAD_FAST_CALLS)
                admit_calls = min(admit_calls, FAST_ADMIT_CALLS)
            params = {"ratios": ratios, "calls": calls,
                      "admit_calls": admit_calls, "seed": args.seed,
                      "fast": args.fast}
            report = run_overload_sweep(ratios=ratios, calls=calls,
                                        admit_calls=admit_calls,
                                        seed=args.seed)
        else:
            parser.error("usage: repro bench "
                         "{throughput,batch,pool,serve,adaptive,simspeed,"
                         "overload,diff} [options]")
        wall_seconds = time.perf_counter() - bench_started
        rendered = report.render()
        if export_dir is not None:
            _export_bench(args.bench_command, report, rendered, params,
                          wall_seconds)
        _emit(rendered, args.output)
        return 0

    if command in EXPERIMENTS:
        run = run_experiment(command, export_dir=export_dir)
        _emit(run.rendered, args.output)
        return 0

    parser.error(f"unknown command {command!r}")
    return 2


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
