"""Command-line interface: ``repro`` (alias ``secmodule-bench``).

Regenerates the paper's tables and figures (and the ablations) from the
command line::

    repro list                    # show available experiments
    repro fig8                    # the Figure 8 latency table
    repro fig8 --trials 3         # faster, fewer trials
    repro all -o report.txt       # everything, written to a file
    repro describe                # one-page tour of a live system
    repro bench throughput --clients 32   # multi-client traffic engine
    repro bench pool --sessions 64        # handle pooling sweep (abl-pool)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench.batch import DEFAULT_CALLS, DEFAULT_SIZES, run_batch_sweep
from .bench.figure8 import reproduce_figure8
from .bench.harness import EXPERIMENTS, full_report, run_all, run_experiment
from .bench.pool import (
    DEFAULT_CALLS_PER_SESSION,
    DEFAULT_SEATS,
    DEFAULT_SESSIONS,
    run_pool_sweep,
)
from .bench.throughput import run_throughput
from .secmodule.api import SecModuleSystem


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="secmodule-bench",
        description="Regenerate the SecModule paper's tables, figures and ablations.")
    parser.add_argument("-o", "--output", help="write the report to this file")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")
    subparsers.add_parser("describe",
                          help="build a SecModule system and describe it")
    all_parser = subparsers.add_parser("all", help="run every experiment")
    all_parser.add_argument("--only", nargs="*", default=None,
                            help="restrict to these experiment ids")

    fig8_parser = subparsers.add_parser("fig8", help="the Figure 8 table")
    fig8_parser.add_argument("--trials", type=int, default=None)
    fig8_parser.add_argument("--sample-calls", type=int, default=None)
    fig8_parser.add_argument("--seed", type=int, default=42)

    bench_parser = subparsers.add_parser(
        "bench", help="workload benchmarks (beyond the paper's figures)")
    bench_sub = bench_parser.add_subparsers(dest="bench_command")
    tp = bench_sub.add_parser(
        "throughput", help="multi-client traffic engine + decision cache")
    tp.add_argument("--clients", type=int, default=32,
                    help="number of concurrent clients")
    tp.add_argument("--modules", type=int, default=2,
                    help="number of protected modules")
    tp.add_argument("--sample-calls", type=int, default=24,
                    help="calls issued per client")
    tp.add_argument("--policy", default="static",
                    choices=["static", "quota", "expiry", "deny-only"],
                    help="policy chain attached to every module")
    tp.add_argument("--seed", type=int, default=0xB07_7E57)
    tp.add_argument("--fast", action="store_true",
                    help="CI smoke: skip the open-loop leg")

    pp = bench_sub.add_parser(
        "pool", help="handle pooling: sessions/handle vs process count")
    pp.add_argument("--seats", default=",".join(map(str, DEFAULT_SEATS)),
                    help="comma-separated seats-per-handle values to sweep")
    pp.add_argument("--sessions", type=int, default=DEFAULT_SESSIONS,
                    help="sessions established per point")
    pp.add_argument("--calls", type=int, default=DEFAULT_CALLS_PER_SESSION,
                    help="protected calls per session in the call phase")
    pp.add_argument("--seed", type=int, default=0x900_1)
    pp.add_argument("--fast", action="store_true",
                    help="CI smoke: fewer seats and sessions")

    bp = bench_sub.add_parser(
        "batch", help="batched dispatch: latency/call vs queue depth")
    bp.add_argument("--sizes", default=",".join(map(str, DEFAULT_SIZES)),
                    help="comma-separated queue depths to sweep")
    bp.add_argument("--calls", type=int, default=DEFAULT_CALLS,
                    help="protected calls measured per point")
    bp.add_argument("--seed", type=int, default=0xBA7C_4)
    bp.add_argument("--fast", action="store_true",
                    help="CI smoke: fewer sizes and calls")

    for experiment_id in EXPERIMENTS:
        if experiment_id == "fig8":
            continue
        subparsers.add_parser(experiment_id,
                              help=EXPERIMENTS[experiment_id].title)
    return parser


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as stream:
            stream.write(text + "\n")
        print(f"wrote {output}")
    else:
        print(text)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    command = args.command or "list"

    if command == "list":
        lines = [f"{experiment_id:<16s} {spec.title}"
                 for experiment_id, spec in EXPERIMENTS.items()]
        _emit("\n".join(lines), args.output)
        return 0

    if command == "describe":
        system = SecModuleSystem.create()
        body = [system.describe(), "",
                f"native getpid()    -> {system.native_getpid()}",
                f"SMOD test_incr(41) -> {system.call('test_incr', 41)}",
                f"SMOD getpid()      -> {system.call('getpid')}"]
        _emit("\n".join(body), args.output)
        return 0

    if command == "all":
        runs = run_all(args.only)
        _emit(full_report(runs), args.output)
        return 0

    if command == "fig8":
        table = reproduce_figure8(trials=args.trials,
                                  sample_calls=args.sample_calls,
                                  seed=args.seed)
        _emit(table.render(), args.output)
        return 0

    if command == "bench":
        if args.bench_command == "throughput":
            report = run_throughput(clients=args.clients, modules=args.modules,
                                    calls_per_client=args.sample_calls,
                                    policy_kind=args.policy, seed=args.seed,
                                    fast=args.fast)
        elif args.bench_command == "batch":
            sizes = tuple(int(s) for s in args.sizes.split(",") if s)
            calls = args.calls
            if args.fast:
                # shrink only what the user left at the defaults
                if sizes == DEFAULT_SIZES:
                    sizes = (1, 4, 16)
                calls = min(calls, 48)
            report = run_batch_sweep(sizes=sizes, calls=calls, seed=args.seed)
        elif args.bench_command == "pool":
            seats = tuple(int(s) for s in args.seats.split(",") if s)
            sessions = args.sessions
            if args.fast:
                # shrink only what the user left at the defaults
                if seats == DEFAULT_SEATS:
                    seats = (1, 4, 16)
                sessions = min(sessions, 16)
            report = run_pool_sweep(seats=seats, sessions=sessions,
                                    calls_per_session=args.calls,
                                    seed=args.seed)
        else:
            parser.error("usage: repro bench {throughput,batch,pool} [options]")
        _emit(report.render(), args.output)
        return 0

    if command in EXPERIMENTS:
        run = run_experiment(command)
        _emit(run.rendered, args.output)
        return 0

    parser.error(f"unknown command {command!r}")
    return 2


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
