"""Simulation substrate: virtual clock, cost model, statistics, tracing.

This package is the foundation everything else charges time to.  See
``DESIGN.md`` §3 for why the reproduction uses a cycle-accounted simulation
instead of wall-clock timing.
"""

from .clock import VirtualClock, ClockCheckpoint, ClockInterval
from .costs import (
    ALL_OPERATIONS,
    CostMeter,
    CostProfile,
    MODERN_X86_3GHZ,
    PENTIUM_III_599,
    PROFILES,
    get_profile,
    total_cycles,
)
from .rng import DeterministicRNG
from .stats import (
    MeasurementSummary,
    RunningStats,
    TrialResult,
    coefficient_of_variation,
    mean,
    stdev,
)
from .trace import TraceBuffer, TraceEvent

__all__ = [
    "VirtualClock", "ClockCheckpoint", "ClockInterval",
    "ALL_OPERATIONS", "CostMeter", "CostProfile", "MODERN_X86_3GHZ",
    "PENTIUM_III_599", "PROFILES", "get_profile", "total_cycles",
    "DeterministicRNG",
    "MeasurementSummary", "RunningStats", "TrialResult",
    "coefficient_of_variation", "mean", "stdev",
    "TraceBuffer", "TraceEvent",
]
