"""Deterministic random number helpers.

Everything in the reproduction that needs randomness — trial-to-trial timing
jitter, synthetic workload generation, key material for the toy cipher —
draws from a :class:`DeterministicRNG` seeded explicitly, so every benchmark
table regenerates bit-identically from the same seed.
"""

from __future__ import annotations

import numpy as np


class DeterministicRNG:
    """Thin, explicitly-seeded wrapper over :class:`numpy.random.Generator`.

    A wrapper (rather than using ``numpy`` directly at call sites) buys two
    things: a single place to document which distributions the simulation
    uses, and the ability to derive independent child streams for components
    so that adding randomness in one subsystem does not perturb another.
    """

    def __init__(self, seed: int = 0x5EC_0DD5) -> None:
        self.seed = int(seed)
        # smod: allow(DET001)  the deterministic gateway itself: explicitly
        # seeded, and the only sanctioned entropy source in the simulation
        self._rng = np.random.default_rng(self.seed)
        #: the raw bound sampler behind :meth:`random01` — a scalar
        #: ``Generator.random()`` already returns a Python float, so hot
        #: loops may call this directly to skip one frame per draw
        self.next_double = self._rng.random

    def child(self, label: str) -> "DeterministicRNG":
        """Derive an independent stream named by ``label``.

        The derivation hashes the label into the parent's seed, so streams
        are stable across runs and independent of creation order.
        """
        digest = 0
        for ch in label:
            digest = (digest * 131 + ord(ch)) & 0xFFFF_FFFF
        return DeterministicRNG(seed=(self.seed ^ digest) & 0xFFFF_FFFF)

    # -- scalar draws --------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        # Generator.uniform's kernel computes low + (high - low) *
        # next_double; reproducing that expression over the scalar
        # random() path consumes the identical stream value and returns
        # the identical float at a third of the numpy call overhead
        return low + (high - low) * float(self._rng.random())

    def normal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        return float(self._rng.normal(mean, sigma))

    def lognormal_factor(self, sigma: float) -> float:
        """A multiplicative jitter factor with median 1.0."""
        return float(np.exp(self._rng.normal(0.0, sigma)))

    def random01(self) -> float:
        """One raw double in ``[0, 1)`` — the primitive scalar draw that
        :meth:`uniform` and :meth:`weighted_choice` are built on; exposed
        so hot loops can fold the affine transform into their own code."""
        return float(self._rng.random())

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return int(self._rng.integers(low, high + 1))

    def exponential(self, mean: float) -> float:
        """An exponential inter-arrival draw with the given mean (Poisson
        arrivals for the open-loop traffic workloads)."""
        return float(self._rng.exponential(mean))

    def lognormal(self, mean: float, sigma: float) -> float:
        """A lognormal draw with the given *arithmetic* mean.

        Heavy-tailed think times for the closed-loop traffic engine:
        ``sigma`` controls the tail weight while the arithmetic mean stays
        pinned at ``mean`` (the underlying normal gets
        ``mu = ln(mean) - sigma^2 / 2``), so swapping the think-time
        distribution never changes the offered load, only its variance.
        """
        if mean <= 0 or sigma < 0:
            raise ValueError("lognormal needs mean > 0 and sigma >= 0")
        mu = np.log(mean) - sigma * sigma / 2.0
        return float(self._rng.lognormal(mu, sigma))

    def pareto(self, mean: float, alpha: float) -> float:
        """A classic (type I) Pareto draw with the given mean.

        ``alpha`` is the tail index; ``alpha <= 1`` has no finite mean, so
        it is rejected.  The scale is derived as
        ``x_m = mean * (alpha - 1) / alpha`` so, like :meth:`lognormal`,
        the draw matches the exponential think time in offered load while
        adding the power-law tail the web-traffic literature measures.
        """
        if mean <= 0:
            raise ValueError("pareto needs mean > 0")
        if alpha <= 1.0:
            raise ValueError(
                "pareto tail index alpha must exceed 1 for a finite mean")
        x_m = mean * (alpha - 1.0) / alpha
        # numpy's pareto() samples the Lomax form: (x + 1) ~ Pareto(alpha, 1)
        return float(x_m * (self._rng.pareto(alpha) + 1.0))

    def weighted_choice(self, items, weights):
        """Choose one of ``items`` with the given relative weights."""
        if len(items) != len(weights) or not items:
            raise ValueError("items and weights must be equal-length, non-empty")
        total = float(sum(weights))
        # bit-identical to uniform(0, total): 0.0 + total * d == total * d
        draw = total * float(self._rng.random())
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if draw < acc:
                return item
        return items[-1]

    def choice(self, seq):
        """Uniformly choose an element of a non-empty sequence."""
        if not len(seq):
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self._rng.integers(0, len(seq)))]

    def bytes(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes."""
        return self._rng.bytes(n)

    # -- vector draws --------------------------------------------------------
    def exponential_array(self, mean: float, size: int) -> np.ndarray:
        """``size`` consecutive exponential draws in one vectorized call.

        numpy fills the array element-wise from the same ziggurat sampler
        the scalar :meth:`exponential` uses, so the sequence is
        bit-identical to ``[self.exponential(mean) for _ in range(size)]``
        — a pure wall-clock win for pre-drawn arrival schedules.  Returns
        the ``float64`` ndarray itself so 10^7-draw schedules skip the
        list round-trip.
        """
        return self._rng.exponential(mean, size)

    def normal_array(self, mean: float, sigma: float, size: int) -> np.ndarray:
        return self._rng.normal(mean, sigma, size)

    def permutation(self, n: int) -> np.ndarray:
        return self._rng.permutation(n)


class TwoStateMMPP:
    """A two-state Markov-modulated Poisson process (on/off bursts).

    The classic bursty-arrival model: the source alternates between an ON
    state, where arrivals are Poisson with a short mean interval, and an OFF
    state with a long mean interval (or near-silence).  State sojourn times
    are themselves exponential, so a trace is fully described by four means —
    all in the same (virtual-microsecond) unit the traffic engine uses.

    Every draw comes from one :class:`DeterministicRNG` stream, so a given
    seed replays the exact same burst pattern.
    """

    ON = "on"
    OFF = "off"

    def __init__(self, rng: DeterministicRNG, *,
                 on_interval: float, off_interval: float,
                 on_duration: float, off_duration: float,
                 start_state: str = ON) -> None:
        if min(on_interval, off_interval, on_duration, off_duration) <= 0:
            raise ValueError("MMPP means must all be positive")
        if start_state not in (self.ON, self.OFF):
            raise ValueError(f"unknown MMPP state {start_state!r}")
        self.rng = rng
        self.on_interval = float(on_interval)
        self.off_interval = float(off_interval)
        self.on_duration = float(on_duration)
        self.off_duration = float(off_duration)
        self.state = start_state
        self._state_remaining = rng.exponential(
            on_duration if start_state == self.ON else off_duration)

    def _mean_interval(self) -> float:
        return (self.on_interval if self.state == self.ON
                else self.off_interval)

    def _flip(self) -> None:
        self.state = self.OFF if self.state == self.ON else self.ON
        self._state_remaining = self.rng.exponential(
            self.on_duration if self.state == self.ON else self.off_duration)

    def next_interarrival(self) -> float:
        """Time to the next arrival, advancing the modulating chain.

        Uses the standard thinning-free construction: draw an interarrival
        at the current state's rate; if it outlives the state's remaining
        sojourn, spend the sojourn, flip states and continue drawing from
        the new rate until an arrival lands inside a sojourn.
        """
        elapsed = 0.0
        while True:
            gap = self.rng.exponential(self._mean_interval())
            if gap <= self._state_remaining:
                self._state_remaining -= gap
                return elapsed + gap
            elapsed += self._state_remaining
            self._flip()
