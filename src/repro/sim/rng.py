"""Deterministic random number helpers.

Everything in the reproduction that needs randomness — trial-to-trial timing
jitter, synthetic workload generation, key material for the toy cipher —
draws from a :class:`DeterministicRNG` seeded explicitly, so every benchmark
table regenerates bit-identically from the same seed.
"""

from __future__ import annotations

import numpy as np


class DeterministicRNG:
    """Thin, explicitly-seeded wrapper over :class:`numpy.random.Generator`.

    A wrapper (rather than using ``numpy`` directly at call sites) buys two
    things: a single place to document which distributions the simulation
    uses, and the ability to derive independent child streams for components
    so that adding randomness in one subsystem does not perturb another.
    """

    def __init__(self, seed: int = 0x5EC_0DD5) -> None:
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def child(self, label: str) -> "DeterministicRNG":
        """Derive an independent stream named by ``label``.

        The derivation hashes the label into the parent's seed, so streams
        are stable across runs and independent of creation order.
        """
        digest = 0
        for ch in label:
            digest = (digest * 131 + ord(ch)) & 0xFFFF_FFFF
        return DeterministicRNG(seed=(self.seed ^ digest) & 0xFFFF_FFFF)

    # -- scalar draws --------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def normal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        return float(self._rng.normal(mean, sigma))

    def lognormal_factor(self, sigma: float) -> float:
        """A multiplicative jitter factor with median 1.0."""
        return float(np.exp(self._rng.normal(0.0, sigma)))

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return int(self._rng.integers(low, high + 1))

    def exponential(self, mean: float) -> float:
        """An exponential inter-arrival draw with the given mean (Poisson
        arrivals for the open-loop traffic workloads)."""
        return float(self._rng.exponential(mean))

    def weighted_choice(self, items, weights):
        """Choose one of ``items`` with the given relative weights."""
        if len(items) != len(weights) or not items:
            raise ValueError("items and weights must be equal-length, non-empty")
        total = float(sum(weights))
        draw = float(self._rng.uniform(0.0, total))
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if draw < acc:
                return item
        return items[-1]

    def choice(self, seq):
        """Uniformly choose an element of a non-empty sequence."""
        if not len(seq):
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self._rng.integers(0, len(seq)))]

    def bytes(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes."""
        return self._rng.bytes(n)

    # -- vector draws --------------------------------------------------------
    def normal_array(self, mean: float, sigma: float, size: int) -> np.ndarray:
        return self._rng.normal(mean, sigma, size)

    def permutation(self, n: int) -> np.ndarray:
        return self._rng.permutation(n)
