"""Statistics helpers for the benchmark harness.

The paper reports, for each dispatch mechanism, the mean microseconds per
call and the standard deviation across ten trials (Figure 8).  This module
provides the small amount of statistics machinery needed to regenerate that
table: an online (Welford) accumulator, a per-trial summary record, and a
multi-trial aggregate matching the paper's columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence


class RunningStats:
    """Welford online mean/variance accumulator.

    Numerically stable for the millions of per-call samples a trial can
    produce, and cheap enough to sit on the hot path of the microbenchmark
    drivers.
    """

    __slots__ = ("n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample into the running statistics."""
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 for fewer than 2 samples."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self.n else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.n else 0.0

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to seeing both sample sets."""
        merged = RunningStats()
        if self.n == 0:
            merged.n, merged._mean, merged._m2 = other.n, other._mean, other._m2
            merged._min, merged._max = other._min, other._max
            return merged
        if other.n == 0:
            merged.n, merged._mean, merged._m2 = self.n, self._mean, self._m2
            merged._min, merged._max = self._min, self._max
            return merged
        n = self.n + other.n
        delta = other._mean - self._mean
        merged.n = n
        merged._mean = self._mean + delta * other.n / n
        merged._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / n
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged


@dataclass(frozen=True)
class TrialResult:
    """One benchmark trial: ``calls`` invocations measured as a block."""

    name: str
    calls: int
    total_cycles: int
    mhz: float
    jitter_factor: float = 1.0

    @property
    def total_microseconds(self) -> float:
        return self.total_cycles / self.mhz * self.jitter_factor

    @property
    def microseconds_per_call(self) -> float:
        if self.calls <= 0:
            return 0.0
        return self.total_microseconds / self.calls

    @property
    def cycles_per_call(self) -> float:
        if self.calls <= 0:
            return 0.0
        return self.total_cycles / self.calls


@dataclass
class MeasurementSummary:
    """Aggregate of several trials of the same benchmark.

    Mirrors a row of the paper's Figure 8: the benchmark name, the number of
    calls per trial, the number of trials, mean microseconds per call and the
    standard deviation across trials.
    """

    name: str
    calls_per_trial: int
    trials: List[TrialResult] = field(default_factory=list)

    def add(self, trial: TrialResult) -> None:
        if trial.calls != self.calls_per_trial:
            raise ValueError(
                f"trial has {trial.calls} calls; summary expects "
                f"{self.calls_per_trial} per trial"
            )
        self.trials.append(trial)

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    @property
    def per_call_samples(self) -> List[float]:
        return [t.microseconds_per_call for t in self.trials]

    @property
    def mean_us_per_call(self) -> float:
        samples = self.per_call_samples
        return sum(samples) / len(samples) if samples else 0.0

    @property
    def stdev_us_per_call(self) -> float:
        samples = self.per_call_samples
        if len(samples) < 2:
            return 0.0
        mean = self.mean_us_per_call
        var = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
        return math.sqrt(var)

    def ratio_to(self, other: "MeasurementSummary") -> float:
        """How many times slower this benchmark is than ``other``."""
        denom = other.mean_us_per_call
        if denom == 0:
            return math.inf
        return self.mean_us_per_call / denom


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(xs) / len(xs) if xs else 0.0


def stdev(xs: Sequence[float]) -> float:
    """Sample standard deviation (n-1); 0.0 for fewer than two samples."""
    if len(xs) < 2:
        return 0.0
    m = mean(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / (len(xs) - 1))


def coefficient_of_variation(xs: Sequence[float]) -> float:
    """stdev / mean, guarding against a zero mean."""
    m = mean(xs)
    return stdev(xs) / m if m else 0.0


def jain_fairness_index(xs: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means every party got the same allocation; ``1/n`` means one party
    got everything.  Used by the handle-pool telemetry to score how evenly
    a shared handle's queueing delay spreads across its seated clients.
    An empty or all-zero allocation is perfectly fair by convention.
    """
    if not xs:
        return 1.0
    total = float(sum(xs))
    squares = float(sum(x * x for x in xs))
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(xs) * squares)


def percentile(xs: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0-100) by linear interpolation.

    Used by the throughput benchmarks for per-client latency percentiles;
    0.0 for an empty sequence.
    """
    if not xs:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(xs)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction
