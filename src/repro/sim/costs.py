"""Micro-operation cost model.

The reproduction replaces the paper's Pentium III test machine (Figure 7)
with a *cycle-accounted* simulation: every privileged micro-operation the
simulated kernel performs — trap entry/exit, context switch, SysV message
queue operation, copyin/copyout, page-table manipulation, XDR item
encode/decode, loopback packet traversal, cipher block, policy-check step —
charges a fixed number of cycles taken from a :class:`CostProfile`.

The profile shipped as :data:`PENTIUM_III_599` is calibrated so that the
*native getpid* microbenchmark lands near the paper's 0.658 µs/call.  Every
other number reported by the benchmark harness is then a *prediction* that
emerges from how many micro-operations each dispatch path actually executes
in the simulation, which is exactly the quantity the paper is measuring.

Two philosophies were possible here:

* hard-code the paper's four latencies — trivially "accurate", but useless:
  ablations (policy complexity, protection mode, marshalling mode, argument
  size) would have nothing to vary;
* count operations against a calibrated per-operation cost table — the
  approach taken, because changing the design (e.g. replacing shared-VM
  argument passing with explicit copies) changes the op sequence and hence
  the reported latency, which is what makes the ablation benchmarks
  meaningful.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError

# ---------------------------------------------------------------------------
# Operation names.
#
# Kept as plain module-level string constants (not an Enum) so that the hot
# dispatch path pays a dict lookup on an interned string rather than an
# attribute access + hash of an Enum member.
# ---------------------------------------------------------------------------

# --- CPU privilege transitions ---------------------------------------------
TRAP_ENTRY = "trap_entry"                 # user -> kernel transition
TRAP_EXIT = "trap_exit"                   # kernel -> user transition
CONTEXT_SWITCH = "context_switch"         # full process switch (MMU reload)

# --- generic kernel work ----------------------------------------------------
SYSCALL_DEMUX = "syscall_demux"           # syscall table lookup + argument fetch
COPY_WORD = "copy_word"                   # copyin/copyout, per 32-bit word
SCHED_ENQUEUE = "sched_enqueue"
SCHED_WAKEUP = "sched_wakeup"
KMALLOC = "kmalloc"
KFREE = "kfree"

# --- process lifecycle ------------------------------------------------------
FORK_BASE = "fork_base"                   # fork1() fixed overhead
FORK_PER_MAP_ENTRY = "fork_per_map_entry" # duplicating one vm_map_entry
EXEC_BASE = "exec_base"
EXIT_BASE = "exit_base"

# --- UVM virtual memory -----------------------------------------------------
UVM_MAP_ENTRY_OP = "uvm_map_entry_op"     # insert/remove a vm_map_entry
UVM_PAGE_OP = "uvm_page_op"               # map/unmap/share one page (pmap op)
UVM_FAULT_BASE = "uvm_fault_base"         # taking a page fault (trap + lookup)
UVM_FAULT_SHARE = "uvm_fault_share"       # resolving a forced-share fault
OBREAK_BASE = "obreak_base"

# --- SysV message queues ----------------------------------------------------
MSGQ_SEND = "msgq_send"
MSGQ_RECV = "msgq_recv"
MSGQ_PER_WORD = "msgq_per_word"

# --- SecModule-specific kernel work ----------------------------------------
SMOD_SESSION_LOOKUP = "smod_session_lookup"
SMOD_SHARD_LOCK = "smod_shard_lock"       # acquire one session-table shard lock
SMOD_CRED_CHECK = "smod_cred_check"       # the "always allowed" base check
SMOD_POLICY_STEP = "smod_policy_step"     # each additional policy clause
SMOD_POLICY_CACHE_HIT = "smod_policy_cache_hit"  # memoized decision lookup
SMOD_STACK_FIXUP_WORD = "smod_stack_fixup_word"
SMOD_BATCH_SETUP = "smod_batch_setup"     # per-batch super-frame bookkeeping
SMOD_BATCH_ENTRY = "smod_batch_entry"     # per-entry walk of the call queue
SMOD_POOL_ATTACH = "smod_pool_attach"     # seat a session on a live handle
SMOD_POOL_ROUTE = "smod_pool_route"       # shared handle resolves the calling session
SMOD_TENANT_LOOKUP = "smod_tenant_lookup"  # tenant-index walk above the shards
SMOD_REGISTER_BASE = "smod_register_base"
CIPHER_BLOCK = "cipher_block"             # decrypt/encrypt one 8-byte block
KEY_SCHEDULE = "key_schedule"

# --- user-level work --------------------------------------------------------
USER_STACK_WORD = "user_stack_word"       # push/pop one word in userland
USER_CALL_OVERHEAD = "user_call_overhead" # call/ret pair
FUNC_BODY_TESTINCR = "func_body_testincr" # the paper's x+1 payload
FUNC_BODY_GETPID = "func_body_getpid"     # getpid() kernel-side body
FUNC_BODY_SMOD_GETPID = "func_body_smod_getpid"  # handle-side cached pid read
MALLOC_BODY = "malloc_body"

# --- RPC / networking -------------------------------------------------------
XDR_ITEM = "xdr_item"                     # encode or decode one XDR item
UDP_SEND_PATH = "udp_send_path"           # socket send through UDP/IP + loopback
UDP_RECV_PATH = "udp_recv_path"           # soreceive + protocol processing
SOCKET_ALLOC = "socket_alloc"             # mbuf/cluster allocation per packet
RPC_CLNT_CALL_OVERHEAD = "rpc_clnt_call_overhead"  # xid, timeout, retransmit setup
RPC_SVC_DISPATCH = "rpc_svc_dispatch"     # svc_getreqset + program/proc lookup
RPC_AUTH_CHECK = "rpc_auth_check"

# --- service plane (serve/) -------------------------------------------------
SERVE_BACKEND_RESOLVE = "serve_backend_resolve"  # discovery registry lookup
SERVE_POOL_CHECKOUT = "serve_pool_checkout"      # claim a pooled attachment
SERVE_POOL_CHECKIN = "serve_pool_checkin"        # return a pooled attachment
SERVE_HEALTH_PROBE = "serve_health_probe"        # one backend health check

# --- overload protection (control/overload.py taps) -------------------------
SMOD_ADMIT_CHECK = "smod_admit_check"     # token-bucket admission decision
SMOD_ADMIT_REFILL = "smod_admit_refill"   # lazy bucket refill bookkeeping
SERVE_SHED = "serve_shed"                 # build one shed/fast-fail reply
SERVE_BREAKER_CHECK = "serve_breaker_check"  # consult a circuit breaker
SERVE_BREAKER_TRIP = "serve_breaker_trip"    # breaker state transition

#: Every operation name known to the cost model.  Profiles must define all
#: of them; the check happens at construction time so a typo in kernel code
#: shows up as a loud KeyError rather than a silently-free operation.
ALL_OPERATIONS: tuple[str, ...] = (
    TRAP_ENTRY, TRAP_EXIT, CONTEXT_SWITCH,
    SYSCALL_DEMUX, COPY_WORD, SCHED_ENQUEUE, SCHED_WAKEUP,
    KMALLOC, KFREE,
    FORK_BASE, FORK_PER_MAP_ENTRY, EXEC_BASE, EXIT_BASE,
    UVM_MAP_ENTRY_OP, UVM_PAGE_OP, UVM_FAULT_BASE, UVM_FAULT_SHARE,
    OBREAK_BASE,
    MSGQ_SEND, MSGQ_RECV, MSGQ_PER_WORD,
    SMOD_SESSION_LOOKUP, SMOD_SHARD_LOCK, SMOD_CRED_CHECK, SMOD_POLICY_STEP,
    SMOD_POLICY_CACHE_HIT,
    SMOD_STACK_FIXUP_WORD, SMOD_BATCH_SETUP, SMOD_BATCH_ENTRY,
    SMOD_POOL_ATTACH, SMOD_POOL_ROUTE, SMOD_TENANT_LOOKUP,
    SMOD_REGISTER_BASE, CIPHER_BLOCK, KEY_SCHEDULE,
    USER_STACK_WORD, USER_CALL_OVERHEAD,
    FUNC_BODY_TESTINCR, FUNC_BODY_GETPID, FUNC_BODY_SMOD_GETPID, MALLOC_BODY,
    XDR_ITEM, UDP_SEND_PATH, UDP_RECV_PATH, SOCKET_ALLOC,
    RPC_CLNT_CALL_OVERHEAD, RPC_SVC_DISPATCH, RPC_AUTH_CHECK,
    SERVE_BACKEND_RESOLVE, SERVE_POOL_CHECKOUT, SERVE_POOL_CHECKIN,
    SERVE_HEALTH_PROBE,
    SMOD_ADMIT_CHECK, SMOD_ADMIT_REFILL,
    SERVE_SHED, SERVE_BREAKER_CHECK, SERVE_BREAKER_TRIP,
)


@dataclass(frozen=True)
class CostProfile:
    """A named table of per-operation cycle costs.

    Parameters
    ----------
    name:
        Human-readable profile name, e.g. ``"pentium3-599"``.
    mhz:
        CPU clock frequency used to convert cycles to microseconds.
    cycles:
        Mapping from operation name (one of :data:`ALL_OPERATIONS`) to the
        cycle cost of a single occurrence.
    """

    name: str
    mhz: float
    cycles: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [op for op in ALL_OPERATIONS if op not in self.cycles]
        if missing:
            raise ConfigurationError(
                f"cost profile {self.name!r} is missing operations: {missing}"
            )
        unknown = [op for op in self.cycles if op not in ALL_OPERATIONS]
        if unknown:
            raise ConfigurationError(
                f"cost profile {self.name!r} defines unknown operations: {unknown}"
            )
        negative = [op for op, c in self.cycles.items() if c < 0]
        if negative:
            raise ConfigurationError(
                f"cost profile {self.name!r} has negative costs for: {negative}"
            )

    def cost(self, operation: str) -> int:
        """Return the cycle cost of a single ``operation``."""
        return self.cycles[operation]

    def scaled(self, factor: float, *, name: str | None = None,
               mhz: float | None = None) -> "CostProfile":
        """Return a copy with every cost multiplied by ``factor``.

        Useful for building "what if the machine were N× faster at kernel
        work" sensitivity profiles without editing the table by hand.
        """
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        scaled = {op: max(0, round(c * factor)) for op, c in self.cycles.items()}
        return CostProfile(
            name=name or f"{self.name}-x{factor:g}",
            mhz=self.mhz if mhz is None else mhz,
            cycles=scaled,
        )

    def with_overrides(self, overrides: Mapping[str, int], *,
                       name: str | None = None) -> "CostProfile":
        """Return a copy with selected operation costs replaced."""
        merged: Dict[str, int] = dict(self.cycles)
        for op, value in overrides.items():
            if op not in ALL_OPERATIONS:
                raise ConfigurationError(f"unknown operation {op!r} in override")
            merged[op] = value
        return replace(self, name=name or f"{self.name}-custom", cycles=merged)

    def microseconds(self, cycles: int) -> float:
        """Convert a cycle count to microseconds under this profile."""
        return cycles / self.mhz


def _pentium3_table() -> Dict[str, int]:
    """Cycle costs calibrated to the paper's 599 MHz Pentium III (Figure 7).

    Calibration anchors:

    * ``trap_entry + syscall_demux + func_body_getpid + trap_exit`` ≈ 394
      cycles ⇒ native getpid ≈ 0.658 µs/call (paper row 1).
    * a SecModule dispatch executes two traps, two context switches, two
      message-queue operations and the stub stack fix-ups ⇒ ≈ 3.8 k cycles
      ⇒ ≈ 6.4 µs/call (paper rows 2–3).
    * a local ONC-RPC round trip executes two UDP send paths, two receive
      paths, XDR encode/decode on both sides and two context switches
      ⇒ ≈ 37 k cycles ⇒ ≈ 62 µs/call (paper row 4).
    """
    return {
        # privilege transitions
        TRAP_ENTRY: 170,
        TRAP_EXIT: 140,
        CONTEXT_SWITCH: 1000,
        # generic kernel work
        SYSCALL_DEMUX: 36,
        COPY_WORD: 3,
        SCHED_ENQUEUE: 60,
        SCHED_WAKEUP: 95,
        KMALLOC: 180,
        KFREE: 140,
        # process lifecycle
        FORK_BASE: 24_000,
        FORK_PER_MAP_ENTRY: 900,
        EXEC_BASE: 60_000,
        EXIT_BASE: 18_000,
        # UVM
        UVM_MAP_ENTRY_OP: 420,
        UVM_PAGE_OP: 160,
        UVM_FAULT_BASE: 1_400,
        UVM_FAULT_SHARE: 900,
        OBREAK_BASE: 600,
        # SysV message queues
        MSGQ_SEND: 260,
        MSGQ_RECV: 240,
        MSGQ_PER_WORD: 4,
        # SecModule kernel work
        SMOD_SESSION_LOOKUP: 85,
        SMOD_SHARD_LOCK: 26,
        SMOD_CRED_CHECK: 110,
        SMOD_POLICY_STEP: 140,
        SMOD_POLICY_CACHE_HIT: 30,
        SMOD_STACK_FIXUP_WORD: 9,
        SMOD_BATCH_SETUP: 120,
        SMOD_BATCH_ENTRY: 18,
        SMOD_POOL_ATTACH: 650,
        SMOD_POOL_ROUTE: 34,
        SMOD_TENANT_LOOKUP: 30,
        SMOD_REGISTER_BASE: 9_000,
        CIPHER_BLOCK: 52,
        KEY_SCHEDULE: 1_400,
        # user-level work
        USER_STACK_WORD: 2,
        USER_CALL_OVERHEAD: 8,
        FUNC_BODY_TESTINCR: 14,
        FUNC_BODY_GETPID: 48,
        FUNC_BODY_SMOD_GETPID: 86,
        MALLOC_BODY: 220,
        # RPC / networking
        XDR_ITEM: 58,
        UDP_SEND_PATH: 7_000,
        UDP_RECV_PATH: 6_100,
        SOCKET_ALLOC: 700,
        RPC_CLNT_CALL_OVERHEAD: 1_350,
        RPC_SVC_DISPATCH: 1_500,
        RPC_AUTH_CHECK: 420,
        # service plane: hash lookups and heap pushes on kernel-side tables,
        # sized like the other SecModule bookkeeping ops
        SERVE_BACKEND_RESOLVE: 44,
        SERVE_POOL_CHECKOUT: 52,
        SERVE_POOL_CHECKIN: 38,
        SERVE_HEALTH_PROBE: 70,
        # overload protection: a bucket/breaker decision is a couple of
        # table reads and compares; a refill or trip writes state back;
        # a shed builds the EAGAIN reply without touching the stack
        SMOD_ADMIT_CHECK: 22,
        SMOD_ADMIT_REFILL: 18,
        SERVE_SHED: 30,
        SERVE_BREAKER_CHECK: 16,
        SERVE_BREAKER_TRIP: 48,
    }


#: The paper's test machine (Figure 7): OpenBSD 3.6, Pentium III, 599 MHz.
PENTIUM_III_599 = CostProfile(name="pentium3-599", mhz=599.0,
                              cycles=_pentium3_table())

#: A faster, flatter machine: protection transitions are relatively cheaper.
#: Used by the sensitivity benchmarks to show how the SecModule/RPC/native
#: ratios shift on hardware with cheaper traps and context switches.
MODERN_X86_3GHZ = PENTIUM_III_599.with_overrides(
    {
        TRAP_ENTRY: 320, TRAP_EXIT: 260, CONTEXT_SWITCH: 2_400,
        UDP_SEND_PATH: 7_500, UDP_RECV_PATH: 6_500,
        MSGQ_SEND: 420, MSGQ_RECV: 380,
        FUNC_BODY_GETPID: 60,
    },
    name="modern-x86-3000",
)
# Re-root the frequency: same table semantics, different cycle->µs conversion.
MODERN_X86_3GHZ = CostProfile(name=MODERN_X86_3GHZ.name, mhz=3000.0,
                              cycles=MODERN_X86_3GHZ.cycles)

#: Registry of named profiles for the CLI / benchmark harness.
PROFILES: Dict[str, CostProfile] = {
    PENTIUM_III_599.name: PENTIUM_III_599,
    MODERN_X86_3GHZ.name: MODERN_X86_3GHZ,
}


def get_profile(name: str) -> CostProfile:
    """Look up a registered profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown cost profile {name!r}; known: {sorted(PROFILES)}"
        ) from None


class CallTrace:
    """An aggregated record of one span's charge sequence.

    Built from the raw ``(operation, count)`` events a :class:`TraceRecorder`
    captured, it precomputes everything a replay needs: per-operation totals
    (to keep the op histogram exact), per-operation cycles (for the telemetry
    mirror), the grand cycle total (one clock advance) and the number of
    individual charge events (so ``VirtualClock.events`` stays identical to
    the op-by-op execution).
    """

    __slots__ = ("ops", "op_cycles", "total_cycles", "events")

    def __init__(self, raw_ops: Sequence[Tuple[str, int]],
                 profile: CostProfile) -> None:
        aggregated: Dict[str, int] = {}
        for operation, count in raw_ops:
            aggregated[operation] = aggregated.get(operation, 0) + count
        #: per-operation totals, in first-occurrence order
        self.ops: Tuple[Tuple[str, int], ...] = tuple(aggregated.items())
        #: ``(operation, count, cycles)`` triples for the telemetry mirror
        self.op_cycles: Tuple[Tuple[str, int, int], ...] = tuple(
            (operation, count, profile.cost(operation) * count)
            for operation, count in self.ops)
        self.total_cycles: int = sum(c for _, _, c in self.op_cycles)
        self.events: int = len(raw_ops)

    def scaled(self, n: int) -> "CallTrace":
        """The exact aggregate of ``n`` back-to-back replays of this trace.

        Every field is an integer total, so multiplying by ``n`` is the
        closed form of charging the trace ``n`` times: cycles, the event
        count, the per-op histogram merge and the telemetry mirror all come
        out byte-identical to the loop they replace.  This is the analytic
        fast-forward tier's charge unit.
        """
        if n < 0:
            raise ValueError(f"cannot scale a trace by negative n: {n}")
        if n == 1:
            return self
        clone = CallTrace.__new__(CallTrace)
        clone.ops = tuple((op, count * n) for op, count in self.ops)
        clone.op_cycles = tuple((op, count * n, cycles * n)
                                for op, count, cycles in self.op_cycles)
        clone.total_cycles = self.total_cycles * n
        clone.events = self.events * n
        return clone

    def __repr__(self) -> str:
        return (f"CallTrace(ops={len(self.ops)}, events={self.events}, "
                f"cycles={self.total_cycles})")


class TraceRecorder:
    """Captures the exact charge sequence of one dispatch span.

    ``start`` arms the meter's trace log; every subsequent :meth:`CostMeter.
    charge` appends its ``(operation, count)`` pair until ``stop`` disarms
    it and returns the raw sequence.  Recording never nests: a second
    ``start`` while armed returns False and the inner span simply stays part
    of the outer recording.
    """

    def __init__(self, meter: "CostMeter") -> None:
        self.meter = meter
        self._armed = False

    def start(self) -> bool:
        if self.meter._trace_log is not None:
            return False
        self.meter._trace_log = []
        self._armed = True
        return True

    def stop(self) -> Tuple[Tuple[str, int], ...]:
        if not self._armed:
            return ()
        raw = self.meter._trace_log or []
        self.meter._trace_log = None
        self._armed = False
        return tuple(raw)

    def abort(self) -> None:
        """Disarm without keeping the partial sequence (error paths)."""
        if self._armed:
            self.meter._trace_log = None
            self._armed = False


class CostMeter:
    """Binds a :class:`CostProfile` to a :class:`VirtualClock`.

    This is the object the simulated kernel actually talks to.  It keeps a
    per-operation histogram so tests can assert statements such as "a
    SecModule call performs exactly two context switches" — the structural
    facts behind the paper's latency table.

    The dispatch hot loop runs :meth:`charge` millions of times per traffic
    trial, so the body stays lean: the profile's cost table and the clock's
    ``advance`` are bound once at construction, and the histogram is a
    :class:`collections.Counter` (one C-level ``+=`` instead of a
    get-then-store pair).
    """

    def __init__(self, profile: CostProfile, clock) -> None:
        self.profile = profile
        self.clock = clock
        self.op_counts: Counter = Counter()
        #: per-operation cycle table, aliased out of the profile so a charge
        #: pays one dict index instead of an attribute walk + method call
        self._costs: Dict[str, int] = dict(profile.cycles)
        self._advance = clock.advance
        #: armed by a :class:`TraceRecorder`: raw (operation, count) events
        self._trace_log: Optional[List[Tuple[str, int]]] = None
        # the telemetry tap point: when a live Telemetry is attached every
        # charge is mirrored into its per-operation counters (hook-level
        # instrumentation); the shared null default makes the tap one
        # attribute load and a never-taken branch
        from ..telemetry import NULL_TELEMETRY
        self.telemetry = NULL_TELEMETRY

    def charge(self, operation: str, count: int = 1) -> int:
        """Charge ``count`` occurrences of ``operation`` to the clock."""
        if count <= 0:
            if count == 0:
                return 0
            raise ValueError("count must be non-negative")
        cycles = self._costs[operation] * count
        self._advance(cycles)
        self.op_counts[operation] += count
        if self._trace_log is not None:
            self._trace_log.append((operation, count))
        if self.telemetry.enabled:
            self.telemetry.op_charge(operation, count, cycles)
        return cycles

    def charge_words(self, operation: str, words: int) -> int:
        """Charge a per-word operation (e.g. :data:`COPY_WORD`).

        A negative word count is a caller bug (a size went negative), not a
        request to charge nothing — it raises exactly as :meth:`charge`
        does, instead of being silently clamped to zero.
        """
        # smod: allow(COST002)  forwarding wrapper; the operation was named
        # as a costs constant at the outer charge_words call site
        return self.charge(operation, count=words)

    def idle(self, cycles: int) -> int:
        """Advance the clock for metered idle time (no operation charged).

        Open-loop workloads wait for scheduled arrivals; that waiting is
        real simulated time but not a priced micro-operation, so it bypasses
        the per-operation histogram and the telemetry mirror while still
        flowing through the meter — the single charging authority.  One
        clock advance, one clock event: byte-identical to the charge paths'
        accounting granularity.
        """
        if cycles < 0:
            raise ValueError(f"cannot idle for negative cycles: {cycles}")
        return self._advance(cycles)

    def idle_many(self, cycles: int, events: int) -> int:
        """Apply ``events`` accumulated idle waits as one clock advance.

        The fast-forward tier defers per-arrival idles and settles them in
        bulk at a flush barrier; ``advance_many`` keeps both the cycle total
        and the clock's event count byte-identical to the per-arrival
        :meth:`idle` calls it stands in for (a zero-cycle wait still counts
        one event, exactly as ``advance(0)`` does).
        """
        if cycles < 0:
            raise ValueError(f"cannot idle for negative cycles: {cycles}")
        if events < 0:
            raise ValueError(f"cannot idle for negative events: {events}")
        return self.clock.advance_many(cycles, events)

    def record_trace(self) -> TraceRecorder:
        """A recorder bound to this meter (the dispatch fast path's tap)."""
        return TraceRecorder(self)

    def build_trace(self, raw_ops: Sequence[Tuple[str, int]]) -> CallTrace:
        """Aggregate a recorded charge sequence under this meter's profile."""
        return CallTrace(raw_ops, self.profile)

    def charge_trace(self, trace: CallTrace) -> int:
        """Replay a recorded span as one aggregated clock charge.

        Guarantees byte-identical accounting with the op-by-op execution it
        replaces: one ``advance_many`` keeps cycles *and* the event count
        exact, the per-operation histogram is merged from the trace's
        totals, and an attached telemetry plane receives the same per-op
        mirror it would have seen live.
        """
        self.clock.advance_many(trace.total_cycles, trace.events)
        counts = self.op_counts
        for operation, count in trace.ops:
            counts[operation] += count
        if self.telemetry.enabled:
            self.telemetry.op_charge_bulk(trace.op_cycles)
        return trace.total_cycles

    def count(self, operation: str) -> int:
        """Number of times ``operation`` has been charged."""
        return self.op_counts.get(operation, 0)

    def reset_counts(self) -> None:
        """Clear the per-operation histogram (does not touch the clock)."""
        self.op_counts.clear()

    def snapshot(self) -> Dict[str, int]:
        """Return a copy of the per-operation histogram."""
        return dict(self.op_counts)

    def diff(self, before: Mapping[str, int]) -> Dict[str, int]:
        """Return the per-operation counts accumulated since ``before``."""
        out: Dict[str, int] = {}
        for op, value in self.op_counts.items():
            delta = value - before.get(op, 0)
            if delta:
                out[op] = delta
        return out

    def microseconds(self) -> float:
        """Elapsed virtual time on the bound clock, in microseconds."""
        return self.profile.microseconds(self.clock.cycles)


def total_cycles(profile: CostProfile, operations: Iterable[str]) -> int:
    """Sum the cost of a sequence of operation names under ``profile``.

    Convenience helper for analytical tests that want to state an expected
    cycle total explicitly.
    """
    return sum(profile.cost(op) for op in operations)
