"""Event tracing.

The paper explains SecModule with three protocol diagrams — the
initialization handshake (Figure 1), the address-space layout after the
handshake (Figure 2) and the stack discipline around ``sys_smod_call``
(Figure 3).  To regenerate those figures, the simulation emits structured
trace events at the same protocol points; the benchmark harness then renders
the recorded event streams as text diagrams and the test suite asserts the
expected orderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    Attributes
    ----------
    cycles:
        Virtual-clock timestamp at emission.
    category:
        Coarse grouping, e.g. ``"smod.session"``, ``"smod.call"``, ``"uvm"``,
        ``"rpc"``, ``"sched"``.
    label:
        Short machine-readable event name, e.g. ``"smod_start_session"``.
    pid:
        Simulated process id the event is attributed to, if any.
    detail:
        Free-form keyword payload (argument values, address ranges, ...).
    """

    cycles: int
    category: str
    label: str
    pid: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Render a single human-readable line for figure output."""
        pid_part = f"pid={self.pid} " if self.pid is not None else ""
        detail_part = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.cycles:>10d}] {self.category:<14s} {pid_part}{self.label} {detail_part}".rstrip()


class TraceBuffer:
    """An append-only list of :class:`TraceEvent` with simple querying.

    Tracing is off by default (``enabled=False``) so that the million-call
    microbenchmarks do not allocate an event per dispatch; the protocol
    tests and the Figure 1–3 reproductions flip it on for the handful of
    operations they examine.
    """

    def __init__(self, clock, enabled: bool = False, capacity: int | None = None) -> None:
        self._clock = clock
        self.enabled = enabled
        self.capacity = capacity
        self._events: List[TraceEvent] = []
        self.dropped = 0

    def emit(self, category: str, label: str, *, pid: Optional[int] = None,
             **detail: Any) -> Optional[TraceEvent]:
        """Record an event if tracing is enabled; return it (or ``None``)."""
        if not self.enabled:
            return None
        if self.capacity is not None and len(self._events) >= self.capacity:
            self.dropped += 1
            return None
        event = TraceEvent(
            cycles=self._clock.cycles,
            category=category,
            label=label,
            pid=pid,
            detail=dict(detail),
        )
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    # -- queries -------------------------------------------------------------
    def filter(self, *, category: str | None = None, label: str | None = None,
               pid: int | None = None,
               predicate: Callable[[TraceEvent], bool] | None = None) -> List[TraceEvent]:
        """Return events matching all supplied criteria, in emission order."""
        out = []
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if label is not None and event.label != label:
                continue
            if pid is not None and event.pid != pid:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def labels(self, category: str | None = None) -> List[str]:
        """Return the ordered label sequence (optionally within a category)."""
        return [e.label for e in self._events
                if category is None or e.category == category]

    def first(self, label: str) -> Optional[TraceEvent]:
        for event in self._events:
            if event.label == label:
                return event
        return None

    def assert_order(self, labels: List[str], category: str | None = None) -> bool:
        """Check that ``labels`` appear in the buffer in the given relative order.

        Other events may be interleaved.  Returns True/False rather than
        raising, so it can be used both by tests and by report generation.
        """
        seq = self.labels(category)
        position = 0
        for wanted in labels:
            try:
                position = seq.index(wanted, position) + 1
            except ValueError:
                return False
        return True

    def render(self, *, category: str | None = None) -> str:
        """Render events as a text block (used for figure regeneration)."""
        lines = [e.describe() for e in self._events
                 if category is None or e.category == category]
        return "\n".join(lines)
