"""Virtual cycle clock.

Every privileged operation performed by the simulated kernel charges a number
of CPU cycles to a :class:`VirtualClock`.  Benchmarks convert accumulated
cycles to microseconds using the simulated CPU frequency, which is how the
reproduction regenerates the ``microsec/CALL`` column of the paper's Figure 8
without depending on Python wall-clock time (which would be dominated by
interpreter overhead rather than by the protection mechanisms under study).

The clock is deliberately tiny and allocation-free on the hot path: the
dispatch microbenchmarks advance it millions of times per trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ClockCheckpoint:
    """An immutable snapshot of the clock, used to measure intervals."""

    cycles: int
    events: int

    def __sub__(self, other: "ClockCheckpoint") -> "ClockInterval":
        return ClockInterval(
            cycles=self.cycles - other.cycles,
            events=self.events - other.events,
        )


@dataclass
class ClockInterval:
    """The difference between two checkpoints."""

    cycles: int
    events: int

    def microseconds(self, mhz: float) -> float:
        """Convert the cycle delta to microseconds at ``mhz`` megahertz."""
        return self.cycles / float(mhz)


@dataclass
class VirtualClock:
    """Monotonic virtual cycle counter.

    Attributes
    ----------
    cycles:
        Total cycles charged since construction (or the last :meth:`reset`).
    events:
        Number of individual charges; useful for sanity checks such as
        "the RPC path executes more privileged operations than SecModule".
    """

    cycles: int = 0
    events: int = 0
    _frozen: bool = field(default=False, repr=False)

    def advance(self, cycles: int) -> int:
        """Charge ``cycles`` to the clock and return the new total.

        Negative charges are rejected: simulated time never runs backwards.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance clock by negative cycles: {cycles}")
        if self._frozen:
            return self.cycles
        self.cycles += cycles
        self.events += 1
        return self.cycles

    def checkpoint(self) -> ClockCheckpoint:
        """Return a snapshot to later measure an interval against."""
        return ClockCheckpoint(cycles=self.cycles, events=self.events)

    def since(self, mark: ClockCheckpoint) -> ClockInterval:
        """Return the interval elapsed since ``mark``."""
        return self.checkpoint() - mark

    def reset(self) -> None:
        """Zero the clock (used between independent benchmark trials)."""
        self.cycles = 0
        self.events = 0

    def freeze(self) -> None:
        """Stop accumulating charges (used to exclude setup phases)."""
        self._frozen = True

    def unfreeze(self) -> None:
        """Resume accumulating charges."""
        self._frozen = False

    @property
    def frozen(self) -> bool:
        return self._frozen

    def microseconds(self, mhz: float) -> float:
        """Total elapsed virtual time in microseconds at ``mhz``."""
        return self.cycles / float(mhz)
