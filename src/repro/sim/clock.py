"""Virtual cycle clock.

Every privileged operation performed by the simulated kernel charges a number
of CPU cycles to a :class:`VirtualClock`.  Benchmarks convert accumulated
cycles to microseconds using the simulated CPU frequency, which is how the
reproduction regenerates the ``microsec/CALL`` column of the paper's Figure 8
without depending on Python wall-clock time (which would be dominated by
interpreter overhead rather than by the protection mechanisms under study).

The clock is deliberately tiny and allocation-free on the hot path: the
dispatch microbenchmarks advance it millions of times per trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ClockCheckpoint:
    """An immutable snapshot of the clock, used to measure intervals."""

    cycles: int
    events: int

    def __sub__(self, other: "ClockCheckpoint") -> "ClockInterval":
        return ClockInterval(
            cycles=self.cycles - other.cycles,
            events=self.events - other.events,
        )


@dataclass
class ClockInterval:
    """The difference between two checkpoints."""

    cycles: int
    events: int

    def microseconds(self, mhz: float) -> float:
        """Convert the cycle delta to microseconds at ``mhz`` megahertz."""
        return self.cycles / float(mhz)


class Stopwatch:
    """Measure elapsed virtual microseconds without touching the clock.

    The telemetry tap point at the simulated-cycle layer: the dispatcher's
    latency taps construct one per observed call/flush and read
    ``elapsed_us()`` at the exit points.  The reading is pure observation —
    the clock is never charged, so a run with stopwatches active is
    cycle-identical to one without.
    """

    __slots__ = ("_clock", "_mhz", "_start_cycles")

    def __init__(self, clock: "VirtualClock", mhz: float) -> None:
        self._clock = clock
        self._mhz = float(mhz)
        self._start_cycles = clock.cycles

    def restart(self) -> None:
        self._start_cycles = self._clock.cycles

    def elapsed_cycles(self) -> int:
        return self._clock.cycles - self._start_cycles

    def elapsed_us(self) -> float:
        return (self._clock.cycles - self._start_cycles) / self._mhz


@dataclass
class VirtualClock:
    """Monotonic virtual cycle counter.

    Attributes
    ----------
    cycles:
        Total cycles charged since construction (or the last :meth:`reset`).
    events:
        Number of individual charges; useful for sanity checks such as
        "the RPC path executes more privileged operations than SecModule".
    """

    cycles: int = 0
    events: int = 0
    _frozen: bool = field(default=False, repr=False)

    def advance(self, cycles: int) -> int:
        """Charge ``cycles`` to the clock and return the new total.

        Negative charges are rejected: simulated time never runs backwards.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance clock by negative cycles: {cycles}")
        if self._frozen:
            return self.cycles
        self.cycles += cycles
        self.events += 1
        return self.cycles

    def advance_many(self, cycles: int, events: int) -> int:
        """Charge an aggregated span: ``cycles`` total over ``events`` charges.

        The trace-replay fast path collapses a recorded sequence of charges
        into one call; passing the recorded event count keeps ``events``
        (and every interval measured across the replay) identical to the
        op-by-op execution it stands in for.
        """
        if cycles < 0 or events < 0:
            raise ValueError(
                f"cannot advance clock backwards: {cycles} cycles / "
                f"{events} events")
        if self._frozen:
            return self.cycles
        self.cycles += cycles
        self.events += events
        return self.cycles

    def checkpoint(self) -> ClockCheckpoint:
        """Return a snapshot to later measure an interval against."""
        return ClockCheckpoint(cycles=self.cycles, events=self.events)

    def since(self, mark: ClockCheckpoint) -> ClockInterval:
        """Return the interval elapsed since ``mark``."""
        return self.checkpoint() - mark

    def reset(self) -> None:
        """Zero the clock (used between independent benchmark trials)."""
        self.cycles = 0
        self.events = 0

    def freeze(self) -> None:
        """Stop accumulating charges (used to exclude setup phases)."""
        self._frozen = True

    def unfreeze(self) -> None:
        """Resume accumulating charges."""
        self._frozen = False

    @property
    def frozen(self) -> bool:
        return self._frozen

    def microseconds(self, mhz: float) -> float:
        """Total elapsed virtual time in microseconds at ``mhz``."""
        return self.cycles / float(mhz)
