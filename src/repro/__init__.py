"""Reproduction of "Base Line Performance Measurements of Access Controls
for Libraries and Modules" (Kim & Prevelakis, IPPS 2006).

The package implements the paper's SecModule framework on top of a
cycle-accounted simulation of the OpenBSD 3.6 substrate it was built on,
plus the local-RPC baseline it is compared against, and a benchmark harness
that regenerates every table and figure of the evaluation.

Quick start::

    from repro import secmodule_system
    system = secmodule_system()
    result = system.call("test_incr", 41)      # a protected library call
    assert result == 42

See ``examples/quickstart.py`` and ``README.md`` for the longer tour.
"""

from ._version import PAPER_AUTHORS, PAPER_TITLE, PAPER_VENUE, __version__

__all__ = [
    "__version__", "PAPER_AUTHORS", "PAPER_TITLE", "PAPER_VENUE",
    "secmodule_system",
]


def secmodule_system(**kwargs):
    """Build a ready-to-use SecModule system (kernel + registered libc module).

    Thin convenience wrapper around :class:`repro.secmodule.api.SecModuleSystem`;
    imported lazily so that ``import repro`` stays cheap.
    """
    from .secmodule.api import SecModuleSystem

    return SecModuleSystem.create(**kwargs)
