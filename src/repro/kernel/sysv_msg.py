"""SysV message queues.

Section 4.1: *"the second goal of keeping the client and handle synchronized
is much easier to achieve, as OpenBSD already comes with the proper kernel
resources in the form of the SYSV MSG interface.  The msgsnd() and msgrcv()
functions already contain efficient blocking and awakening that we desire
for synchronization."*

SecModule therefore does not invent its own wait/wake primitive; the client
and handle rendezvous through an ordinary message queue pair, and every
dispatch pays one send and one receive in each direction.  The queue
implementation below charges exactly those costs and exposes the blocking
behaviour through the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..sim import costs
from .errno import Errno
from .proc import Proc

#: msgget key meaning "create a new private queue" (IPC_PRIVATE).
IPC_PRIVATE = 0
#: flag bit: create the queue if it does not exist.
IPC_CREAT = 0o1000
#: msgrcv/msgsnd flag: do not block.
IPC_NOWAIT = 0o4000


@dataclass
class Message:
    """One queued message: a type tag plus a payload of 32-bit words.

    A message may carry several logical *parts* — the batched dispatch path
    packs one part per queued protected call into a single send, so the whole
    queue pays one ``msgsnd``/``msgrcv`` pair instead of one per call.  The
    flat ``payload`` is what travels (and what the per-word charge covers);
    ``parts`` records the boundaries so the receiver can unpack without
    re-parsing.
    """

    mtype: int
    payload: Tuple[int, ...] = ()
    #: logical sub-payload boundaries; empty for ordinary single-part messages
    parts: Tuple[Tuple[int, ...], ...] = ()

    @classmethod
    def batched(cls, mtype: int,
                parts: List[Tuple[int, ...]]) -> "Message":
        """Pack several per-call payloads into one multi-part message."""
        packed = tuple(tuple(part) for part in parts)
        flat = tuple(word for part in packed for word in part)
        return cls(mtype=mtype, payload=flat, parts=packed)

    @property
    def part_count(self) -> int:
        return len(self.parts) if self.parts else (1 if self.payload else 0)

    @property
    def words(self) -> int:
        return len(self.payload)


@dataclass
class MessageQueue:
    """One SysV message queue (``struct msqid_ds``)."""

    msqid: int
    key: int
    owner_uid: int
    max_bytes: int = 16384
    messages: List[Message] = field(default_factory=list)
    removed: bool = False

    @property
    def queued_bytes(self) -> int:
        return sum(4 * m.words for m in self.messages)

    def find(self, mtype: int) -> Optional[int]:
        """Index of the first message matching ``mtype`` (0 = any)."""
        for index, message in enumerate(self.messages):
            if mtype == 0 or message.mtype == mtype:
                return index
        return None


class SysVMsgSystem:
    """The kernel's message-queue subsystem."""

    def __init__(self, machine, scheduler) -> None:
        self.machine = machine
        self.scheduler = scheduler
        self._queues: Dict[int, MessageQueue] = {}
        self._by_key: Dict[int, int] = {}
        self._next_id = 1

    # -- queue management -------------------------------------------------------
    def msgget(self, proc: Proc, key: int, flags: int = 0) -> int:
        """Create or look up a queue; returns the msqid or -errno semantics
        are handled by the syscall wrapper."""
        if key != IPC_PRIVATE and key in self._by_key:
            return self._by_key[key]
        if key != IPC_PRIVATE and not (flags & IPC_CREAT):
            raise KeyError(key)
        msqid = self._next_id
        self._next_id += 1
        queue = MessageQueue(msqid=msqid, key=key, owner_uid=proc.cred.uid)
        self._queues[msqid] = queue
        if key != IPC_PRIVATE:
            self._by_key[key] = msqid
        return msqid

    def msgctl_remove(self, proc: Proc, msqid: int) -> None:
        queue = self._queues.get(msqid)
        if queue is None:
            raise KeyError(msqid)
        if proc.cred.uid not in (0, queue.owner_uid):
            raise PermissionError(Errno.EPERM)
        queue.removed = True
        del self._queues[msqid]
        self._by_key = {k: v for k, v in self._by_key.items() if v != msqid}
        # wake anyone blocked on it so they can observe EIDRM
        self.scheduler.wakeup(self._wchan(msqid))

    def lookup(self, msqid: int) -> Optional[MessageQueue]:
        return self._queues.get(msqid)

    @staticmethod
    def _wchan(msqid: int) -> str:
        return f"msgwait:{msqid}"

    # -- data path ---------------------------------------------------------------
    def msgsnd(self, proc: Proc, msqid: int, message: Message,
               flags: int = 0) -> None:
        """Append a message; wakes any receiver sleeping on the queue."""
        queue = self._queues.get(msqid)
        if queue is None:
            raise KeyError(msqid)
        if queue.queued_bytes + 4 * message.words > queue.max_bytes:
            if flags & IPC_NOWAIT:
                raise BlockingIOError(Errno.EAGAIN)
            raise SimulationError(
                "queue full and blocking msgsnd is not needed by SecModule")
        self.machine.charge(costs.MSGQ_SEND)
        self.machine.charge_words(costs.MSGQ_PER_WORD, message.words)
        queue.messages.append(message)
        self.scheduler.wakeup(self._wchan(msqid))

    def msgrcv(self, proc: Proc, msqid: int, mtype: int = 0,
               flags: int = 0) -> Optional[Message]:
        """Remove and return the first matching message.

        Returns ``None`` when the queue is empty and ``IPC_NOWAIT`` was not
        given; in that case the caller is expected to have been put to sleep
        on :meth:`block_receiver` — the synchronous dispatch code in
        SecModule and RPC drives that sequencing explicitly.
        """
        queue = self._queues.get(msqid)
        if queue is None:
            raise KeyError(msqid)
        self.machine.charge(costs.MSGQ_RECV)
        index = queue.find(mtype)
        if index is None:
            if flags & IPC_NOWAIT:
                raise BlockingIOError(Errno.ENOMSG)
            return None
        message = queue.messages.pop(index)
        self.machine.charge_words(costs.MSGQ_PER_WORD, message.words)
        return message

    def block_receiver(self, proc: Proc, msqid: int) -> None:
        """Put ``proc`` to sleep until something is sent to ``msqid``."""
        self.scheduler.sleep(proc, self._wchan(msqid))

    def queues_owned_by(self, uid: int) -> List[MessageQueue]:
        return [q for q in self._queues.values() if q.owner_uid == uid]

    def __len__(self) -> int:
        return len(self._queues)
