"""Process-related system calls: getpid, getppid, fork, execve, exit, wait4, kill, ptrace.

``getpid`` deserves a comment because it *is* one of the paper's benchmarks:
the native row of Figure 8 is a tight loop of ``getpid()`` calls, chosen
because the call does nearly nothing inside the kernel, so its latency is a
clean measurement of the trap machinery alone.  The handler below therefore
charges only :data:`~repro.sim.costs.FUNC_BODY_GETPID` beyond what the trap
layer already charged.

Note also the §4.3 rule baked into ``getpid``/``getppid``: when the caller
is a SecModule *handle* running a call on behalf of its client, the pid
returned is the *client's*.
"""

from __future__ import annotations

from ...sim import costs
from ..errno import Errno, SyscallResult, fail, ok
from ..proc import Proc, ProcState
from ..ptrace import PtraceRequest
from ..signals import Signal


def sys_getpid(kernel, proc: Proc) -> SyscallResult:
    kernel.machine.charge(costs.FUNC_BODY_GETPID)
    return ok(proc.effective_client().pid)


def sys_getppid(kernel, proc: Proc) -> SyscallResult:
    kernel.machine.charge(costs.FUNC_BODY_GETPID)
    return ok(proc.effective_client().ppid)


def sys_fork(kernel, proc: Proc) -> SyscallResult:
    child = kernel.fork_process(proc)
    return ok(child.pid)


def sys_execve(kernel, proc: Proc, plan, new_name: str | None = None) -> SyscallResult:
    if plan is None:
        return fail(Errno.EINVAL)
    kernel.exec_process(proc, plan, new_name=new_name)
    return ok(0)


def sys_exit(kernel, proc: Proc, status: int = 0) -> SyscallResult:
    kernel.exit_process(proc, status=status)
    return ok(0)


def sys_wait4(kernel, proc: Proc, pid: int) -> SyscallResult:
    """Collect one zombie child.  Non-blocking variant: returns EAGAIN when
    the child exists but has not exited, ESRCH when it is not our child."""
    child = kernel.procs.lookup(pid)
    if child is None or child.ppid != proc.pid:
        return fail(Errno.ESRCH)
    if child.state is not ProcState.ZOMBIE:
        return fail(Errno.EAGAIN)
    status = kernel.reap(proc, pid)
    return ok(status if status is not None else 0)


def sys_kill(kernel, proc: Proc, pid: int, signo: int) -> SyscallResult:
    target = kernel.procs.lookup(pid)
    if target is None or not target.alive:
        return fail(Errno.ESRCH)
    if proc.cred.uid != 0 and proc.cred.uid != target.cred.uid:
        return fail(Errno.EPERM)
    kernel.signals.post(target, Signal(signo), sender=proc)
    return ok(0)


def sys_ptrace(kernel, proc: Proc, request: PtraceRequest, pid: int) -> SyscallResult:
    target = kernel.procs.lookup(pid)
    if target is None:
        return fail(Errno.ESRCH)
    decision = kernel.ptrace.check(proc, target, request)
    if not decision.allowed:
        return fail(decision.errno or Errno.EPERM)
    return ok(0)
