"""SysV message queue system calls: msgget, msgsnd, msgrcv, msgctl.

These are the synchronization primitive the paper reuses for the
client/handle rendezvous (§4.1), and they are also used — unchanged — by
the loopback RPC baseline's transport, which keeps the comparison honest:
both dispatch mechanisms block and wake through the same kernel machinery.
"""

from __future__ import annotations

from ..errno import Errno, SyscallResult, fail, ok
from ..proc import Proc
from ..sysv_msg import Message


def sys_msgget(kernel, proc: Proc, key: int, flags: int = 0) -> SyscallResult:
    try:
        msqid = kernel.msg.msgget(proc, key, flags)
    except KeyError:
        return fail(Errno.ENOENT)
    return ok(msqid)


def sys_msgsnd(kernel, proc: Proc, msqid: int, mtype: int,
               payload: tuple = ()) -> SyscallResult:
    try:
        kernel.msg.msgsnd(proc, msqid, Message(mtype=mtype, payload=tuple(payload)))
    except KeyError:
        return fail(Errno.EINVAL)
    except BlockingIOError:
        return fail(Errno.EAGAIN)
    return ok(0)


def sys_msgrcv(kernel, proc: Proc, msqid: int, mtype: int = 0,
               flags: int = 0) -> SyscallResult:
    try:
        message = kernel.msg.msgrcv(proc, msqid, mtype, flags)
    except KeyError:
        return fail(Errno.EINVAL)
    except BlockingIOError:
        return fail(Errno.ENOMSG)
    if message is None:
        # Caller must block; the synchronous benchmark drivers never hit this
        # path because they sequence send-before-receive explicitly.
        kernel.msg.block_receiver(proc, msqid)
        return fail(Errno.EAGAIN)
    return ok(message)


def sys_msgctl_rmid(kernel, proc: Proc, msqid: int) -> SyscallResult:
    try:
        kernel.msg.msgctl_remove(proc, msqid)
    except KeyError:
        return fail(Errno.EINVAL)
    except PermissionError:
        return fail(Errno.EPERM)
    return ok(0)
