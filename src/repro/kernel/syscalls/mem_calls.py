"""Memory-related system calls: obreak (brk) and mmap/munmap-lite.

``obreak`` is the interesting one: the paper modified ``sys_obreak`` so that
heap growth requested by either half of a SecModule pair creates *shared*
mappings visible to both processes — otherwise a ``malloc`` running inside
the handle would extend a heap the client cannot see.  The handler passes
the pairing information down to :meth:`VMSpace.sys_obreak`, which performs
exactly that.
"""

from __future__ import annotations

from ..errno import Errno, SyscallResult, fail, ok
from ..proc import Proc
from ..uvm.layout import HEAP_LIMIT, PAGE_SIZE
from ..uvm.map import Protection


def sys_obreak(kernel, proc: Proc, new_break: int) -> SyscallResult:
    """Set the heap break; returns the (page-aligned) new break."""
    if new_break < 0 or new_break > HEAP_LIMIT:
        return fail(Errno.ENOMEM)
    is_pair = proc.is_smod_client or proc.is_smod_handle
    try:
        result = proc.vmspace.sys_obreak(new_break, smod_pair=is_pair)
    except Exception:
        return fail(Errno.ENOMEM)
    return ok(result)


def sys_mmap_anon(kernel, proc: Proc, addr: int, length: int) -> SyscallResult:
    """A minimal anonymous mmap used by the userland malloc for big blocks."""
    if length <= 0 or addr % PAGE_SIZE:
        return fail(Errno.EINVAL)
    try:
        entry = proc.vmspace.vm_map.uvm_map(addr, length, Protection.rw(),
                                            name=f"mmap@{addr:#x}")
    except Exception:
        return fail(Errno.ENOMEM)
    return ok(entry.start)


def sys_munmap(kernel, proc: Proc, addr: int, length: int) -> SyscallResult:
    if length <= 0:
        return fail(Errno.EINVAL)
    removed = proc.vmspace.vm_map.uvm_unmap(addr, addr + length)
    if removed == 0:
        return fail(Errno.EINVAL)
    return ok(0)
