"""Standard system-call implementations and their registration."""

from .. import syscall as sysno
from .mem_calls import sys_mmap_anon, sys_munmap, sys_obreak
from .msg_calls import sys_msgctl_rmid, sys_msgget, sys_msgrcv, sys_msgsnd
from .proc_calls import (
    sys_execve,
    sys_exit,
    sys_fork,
    sys_getpid,
    sys_getppid,
    sys_kill,
    sys_ptrace,
    sys_wait4,
)

#: (number, name, handler, arg_words) for every standard syscall.
STANDARD_SYSCALLS = (
    (sysno.SYS_exit, "exit", sys_exit, 1),
    (sysno.SYS_fork, "fork", sys_fork, 0),
    (sysno.SYS_getpid, "getpid", sys_getpid, 0),
    (sysno.SYS_getppid, "getppid", sys_getppid, 0),
    (sysno.SYS_kill, "kill", sys_kill, 2),
    (sysno.SYS_obreak, "obreak", sys_obreak, 1),
    (sysno.SYS_execve, "execve", sys_execve, 3),
    (sysno.SYS_wait4, "wait4", sys_wait4, 2),
    (sysno.SYS_ptrace, "ptrace", sys_ptrace, 4),
    (sysno.SYS_msgget, "msgget", sys_msgget, 2),
    (sysno.SYS_msgsnd, "msgsnd", sys_msgsnd, 4),
    (sysno.SYS_msgrcv, "msgrcv", sys_msgrcv, 5),
    (sysno.SYS_msgctl, "msgctl", sys_msgctl_rmid, 3),
    (71, "mmap", sys_mmap_anon, 6),
    (73, "munmap", sys_munmap, 2),
)


def register_standard_syscalls(kernel) -> None:
    """Install every standard syscall into a kernel's dispatch table."""
    for number, name, handler, arg_words in STANDARD_SYSCALLS:
        kernel.syscalls.register(number, name, handler, arg_words=arg_words)


__all__ = [
    "STANDARD_SYSCALLS",
    "register_standard_syscalls",
    "sys_execve", "sys_exit", "sys_fork", "sys_getpid", "sys_getppid",
    "sys_kill", "sys_ptrace", "sys_wait4",
    "sys_mmap_anon", "sys_munmap", "sys_obreak",
    "sys_msgctl_rmid", "sys_msgget", "sys_msgrcv", "sys_msgsnd",
]
